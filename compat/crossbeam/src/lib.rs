//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, exposing the scoped-thread API the workspace uses.
//!
//! Since Rust 1.63 the standard library ships scoped threads with the same
//! soundness guarantees crossbeam pioneered, so this shim is a thin adapter
//! that keeps crossbeam's calling convention (`scope(|s| { s.spawn(|_| …) })`
//! returning a `Result`) while delegating to [`std::thread::scope`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    /// Handle used to spawn threads inside a [`scope`].
    ///
    /// Mirrors `crossbeam::thread::Scope`: spawn closures receive a `&Scope`
    /// so they can spawn further siblings.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread bound to the enclosing scope.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which borrowing, scoped threads can be
    /// spawned; joins them all before returning.
    ///
    /// All spawned threads are joined by `std::thread::scope`, which panics
    /// if a child panicked; the `Result` wrapper is kept for crossbeam API
    /// compatibility and is always `Ok` on normal return.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        super::thread::scope(|s| {
            let (left, right) = out.split_at_mut(2);
            s.spawn(|_| {
                for (o, v) in left.iter_mut().zip(&data[..2]) {
                    *o = v * 10;
                }
            });
            s.spawn(|_| {
                for (o, v) in right.iter_mut().zip(&data[2..]) {
                    *o = v * 10;
                }
            });
        })
        .unwrap();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .unwrap();
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
