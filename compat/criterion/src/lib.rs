//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset the workspace benches use — `Criterion`,
//! `benchmark_group`/`bench_function`, `Bencher::iter`, the
//! `criterion_group!`/`criterion_main!` macros and `black_box` — with a
//! simple wall-clock measurement loop (warm-up, then timed samples; the
//! mean, min and max per-iteration times are printed).
//!
//! When the binary is not invoked with `--bench` (e.g. under `cargo test`,
//! which runs `harness = false` bench targets directly), every benchmark
//! body executes exactly once as a smoke test, so `cargo test` stays fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Is this process doing real measurement (`cargo bench` passes `--bench`)?
fn measuring() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Top-level benchmark driver (`criterion::Criterion` stand-in).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        run_one(self, &id.to_string(), f);
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named benchmark group (`criterion::BenchmarkGroup` stand-in).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion, &full, f);
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the payload.
pub struct Bencher {
    mode: Mode,
    /// Mean per-iteration time of the last `iter` call, when measuring.
    last_mean: Option<Duration>,
    stats: Option<(Duration, Duration)>,
}

enum Mode {
    Smoke,
    Measure {
        sample_size: usize,
        measurement_time: Duration,
        warm_up_time: Duration,
    },
}

impl Bencher {
    /// Repeatedly run `f`, measuring wall-clock time per iteration.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        match self.mode {
            Mode::Smoke => {
                black_box(f());
            }
            Mode::Measure {
                sample_size,
                measurement_time,
                warm_up_time,
            } => {
                // Warm-up: run until the warm-up budget is spent, counting
                // iterations to size the timed samples.
                let warm_start = Instant::now();
                let mut warm_iters: u64 = 0;
                while warm_start.elapsed() < warm_up_time {
                    black_box(f());
                    warm_iters += 1;
                }
                let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
                // Spread the measurement budget over `sample_size` samples.
                let budget = measurement_time.max(Duration::from_millis(1));
                let iters_per_sample = ((budget.as_nanos()
                    / per_iter.as_nanos().max(1)
                    / sample_size as u128)
                    .max(1)) as u64;
                let mut samples = Vec::with_capacity(sample_size);
                for _ in 0..sample_size {
                    let t0 = Instant::now();
                    for _ in 0..iters_per_sample {
                        black_box(f());
                    }
                    samples.push(t0.elapsed() / iters_per_sample as u32);
                }
                let total: Duration = samples.iter().sum();
                let mean = total / samples.len() as u32;
                let min = samples.iter().min().copied().unwrap_or(mean);
                let max = samples.iter().max().copied().unwrap_or(mean);
                self.last_mean = Some(mean);
                self.stats = Some((min, max));
            }
        }
    }
}

fn run_one(c: &Criterion, id: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        mode: if measuring() {
            Mode::Measure {
                sample_size: c.sample_size,
                measurement_time: c.measurement_time,
                warm_up_time: c.warm_up_time,
            }
        } else {
            Mode::Smoke
        },
        last_mean: None,
        stats: None,
    };
    f(&mut b);
    match (b.last_mean, b.stats) {
        (Some(mean), Some((min, max))) => {
            println!(
                "{id:<48} time: [{} {} {}]",
                fmt_dur(min),
                fmt_dur(mean),
                fmt_dur(max)
            );
        }
        _ => {
            if measuring() {
                println!("{id:<48} (no iter() call)");
            } else {
                println!("{id:<48} ... smoke ok");
            }
        }
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Build a function that runs the listed benchmark targets with a config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point invoking one or more [`criterion_group!`] functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion::default().sample_size(10);
        let mut count = 0;
        c.bench_function("counting", |b| b.iter(|| count += 1));
        // Not invoked with --bench inside the test harness -> smoke mode.
        assert_eq!(count, 1);
        let mut group = c.benchmark_group("g");
        group.bench_function("inner", |b| b.iter(|| count += 1));
        group.finish();
        assert_eq!(count, 2);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_dur(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(fmt_dur(Duration::from_millis(9)), "9.00 ms");
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.00 s");
    }
}
