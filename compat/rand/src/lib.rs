//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so the workspace vendors the
//! tiny slice of the `rand 0.8` API it actually uses: the [`Rng`] /
//! [`SeedableRng`] traits, `gen_range` over half-open and inclusive ranges,
//! and a deterministic [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64,
//! the same construction real `rand` uses for its small RNG).
//!
//! Determinism is the only contract the workspace relies on: the same seed
//! always yields the same stream on every platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random `u32`/`u64` values.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range, mirroring `rand`'s
/// `SampleUniform`.
///
/// Keeping a *single* generic [`SampleRange`] impl over this trait (rather
/// than one impl per concrete type) is what lets type inference unify an
/// unsuffixed literal range like `0.0..1.0` with a surrounding `f32` context,
/// exactly as real `rand` does.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges that can produce a uniform sample, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range on empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! int_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_uniform_impls!(usize, u64, u32, i64, i32, i16, u16, u8, i8);

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        // 24 random mantissa bits -> u in [0, 1) with full f32 resolution.
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        let v = lo + (hi - lo) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= hi {
            hi - (hi - lo) * f32::EPSILON
        } else {
            v
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / ((1u32 << 24) - 1) as f32);
        (lo + (hi - lo) * u).clamp(lo, hi)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = lo + (hi - lo) * u;
        if v >= hi {
            hi - (hi - lo) * f64::EPSILON
        } else {
            v
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        (lo + (hi - lo) * u).clamp(lo, hi)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the algorithm behind real
    /// `rand`'s `SmallRng` on 64-bit targets).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as real rand does for small seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// Snapshot the raw xoshiro256++ state (checkpoint support).
        ///
        /// Together with [`SmallRng::from_state`] this makes the generator
        /// fully serialisable: a restored generator continues the exact
        /// stream the snapshot was taken from.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a snapshot taken with
        /// [`SmallRng::state`].
        ///
        /// # Panics
        /// Panics on the all-zero state, which is invalid for xoshiro256++
        /// (the generator would emit zeros forever).
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s.iter().any(|&w| w != 0),
                "all-zero xoshiro256++ state is invalid"
            );
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&v), "{v}");
        }
    }

    #[test]
    fn int_ranges_cover_span() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
            let inc = rng.gen_range(0usize..=4);
            assert!(inc <= 4);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut a = SmallRng::seed_from_u64(11);
        for _ in 0..17 {
            a.gen_range(0usize..100);
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    #[should_panic]
    fn all_zero_state_rejected() {
        let _ = SmallRng::from_state([0; 4]);
    }

    #[test]
    fn works_through_mut_reference() {
        fn take(rng: &mut impl Rng) -> f32 {
            rng.gen_range(0.0f32..1.0)
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let v = take(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
