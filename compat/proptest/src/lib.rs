//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the subset the workspace tests use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - `prop_assert!` / `prop_assert_eq!`,
//! - [`Strategy`] with `prop_map`, range strategies, tuple strategies,
//!   and [`collection::vec`].
//!
//! Cases are generated from a deterministic per-test RNG, so failures
//! reproduce exactly. There is no shrinking: the failing case's inputs are
//! reported via the panic message of the inner assertion instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runner configuration (`proptest::test_runner::Config` stand-in).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies while generating a case.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic RNG for case `case` of the test named `test_name`.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name keeps streams distinct per test while
        // staying fully deterministic run-to-run.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(h ^ ((case as u64) << 32)))
    }

    /// Borrow the underlying generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}

/// A generator of random values (`proptest::strategy::Strategy` stand-in).
///
/// No shrinking machinery: a strategy just produces one value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! numeric_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategies!(usize, u64, u32, i64, i32);

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        use rand::Rng;
        rng.rng().gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        use rand::Rng;
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Boolean strategies (`proptest::bool` stand-in).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy type behind [`ANY`].
    #[derive(Clone, Copy)]
    pub struct Any;

    /// Uniformly random `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            use rand::Rng;
            rng.rng().gen_range(0u32..2) == 1
        }
    }
}

/// Collection strategies (`proptest::collection` stand-in).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s of a fixed length, from [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// `Vec` of exactly `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Property-test assertion; panics (and thus fails the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declare property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs `body` over `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = { $cfg }; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = { $crate::ProptestConfig::default() }; $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = { $cfg:expr }; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Common imports (`proptest::prelude` stand-in).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Map, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn squares() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|x| x * x)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn ranges_stay_in_bounds(x in -5.0f32..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        fn mapped_and_tuple_strategies(sq in squares(), pair in (0usize..4, 0u64..7)) {
            let root = (sq as f64).sqrt().round() as u64;
            prop_assert_eq!(root * root, sq);
            prop_assert!(pair.0 < 4 && pair.1 < 7);
        }

        fn vec_strategy_has_fixed_len(v in collection::vec(-1.0f32..1.0, 8)) {
            prop_assert_eq!(v.len(), 8);
        }
    }

    #[test]
    fn deterministic_per_test_and_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        let s = 0u64..1_000_000;
        assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(s.new_value(&mut a), s.new_value(&mut c));
    }
}
