//! Dataset specifications mirroring Table 4 of the paper.

/// Which synthetic generator produces a dataset's values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SynthKind {
    /// Highway travel-speed series (METR-LA, PEMS-BAY).
    TrafficSpeed,
    /// Traffic-flow/volume series (PEMS03/04/07/08).
    TrafficFlow,
    /// PV plant production (Solar-Energy).
    Solar,
    /// Client electricity consumption (Electricity).
    Electricity,
}

/// Forecasting task type (§2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Task {
    /// Predict all of the next `output_len` steps (Eq. 2).
    MultiStep,
    /// Predict only the step `horizon` ahead (Eq. 1).
    SingleStep {
        /// The future offset `Q` (3 or 24 in Table 8).
        horizon: usize,
    },
}

/// A dataset configuration: everything needed to generate, window, and
/// evaluate one benchmark.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper's tables.
    pub name: String,
    /// Number of time series / graph nodes (Table 4 column `N`).
    pub n: usize,
    /// Total number of timestamps (Table 4 column `T`).
    pub t: usize,
    /// Input features per timestamp (value + time-of-day encoding).
    pub features: usize,
    /// History window `P`.
    pub input_len: usize,
    /// Forecast window `Q` (multi-step) — see also [`Task`].
    pub output_len: usize,
    /// Train/val/test split ratio.
    pub split: (f32, f32, f32),
    /// Timestamps per synthetic "day" (drives seasonality).
    pub steps_per_day: usize,
    /// Which generator to use.
    pub kind: SynthKind,
    /// Sentinel for missing values in metrics/losses (traffic datasets
    /// mask zeros, following Li et al. / Wu et al.).
    pub null_value: Option<f32>,
    /// Whether a predefined adjacency matrix exists (Table 4: the traffic
    /// datasets have one, Solar-Energy/Electricity do not).
    pub has_graph: bool,
    /// The forecasting task this dataset is evaluated on.
    pub task: Task,
}

impl DatasetSpec {
    fn traffic(
        name: &str,
        n: usize,
        t: usize,
        kind: SynthKind,
        split: (f32, f32, f32),
    ) -> Self {
        Self {
            name: name.into(),
            n,
            t,
            features: 2,
            input_len: 12,
            output_len: 12,
            split,
            steps_per_day: 288, // 5-minute sampling
            kind,
            null_value: Some(0.0),
            has_graph: true,
            task: Task::MultiStep,
        }
    }

    /// METR-LA (Table 4: N=207, T=34 272, split 7:1:2, 12→12).
    pub fn metr_la() -> Self {
        Self::traffic("METR-LA", 207, 34_272, SynthKind::TrafficSpeed, (0.7, 0.1, 0.2))
    }

    /// PEMS-BAY (N=325, T=52 116, split 7:1:2, 12→12).
    pub fn pems_bay() -> Self {
        Self::traffic("PEMS-BAY", 325, 52_116, SynthKind::TrafficSpeed, (0.7, 0.1, 0.2))
    }

    /// PEMS03 (N=358, T=26 208, split 6:2:2, 12→12).
    pub fn pems03() -> Self {
        Self::traffic("PEMS03", 358, 26_208, SynthKind::TrafficFlow, (0.6, 0.2, 0.2))
    }

    /// PEMS04 (N=307, T=16 992, split 6:2:2, 12→12).
    pub fn pems04() -> Self {
        Self::traffic("PEMS04", 307, 16_992, SynthKind::TrafficFlow, (0.6, 0.2, 0.2))
    }

    /// PEMS07 (N=883, T=28 224, split 6:2:2, 12→12).
    pub fn pems07() -> Self {
        Self::traffic("PEMS07", 883, 28_224, SynthKind::TrafficFlow, (0.6, 0.2, 0.2))
    }

    /// PEMS08 (N=170, T=17 856, split 6:2:2, 12→12).
    pub fn pems08() -> Self {
        Self::traffic("PEMS08", 170, 17_856, SynthKind::TrafficFlow, (0.6, 0.2, 0.2))
    }

    /// Solar-Energy (N=137, T=52 560, split 6:2:2, 168→1), 10-min sampling.
    pub fn solar_energy(horizon: usize) -> Self {
        Self {
            name: "Solar-Energy".into(),
            n: 137,
            t: 52_560,
            features: 2,
            input_len: 168,
            output_len: 1,
            split: (0.6, 0.2, 0.2),
            steps_per_day: 144,
            kind: SynthKind::Solar,
            null_value: None,
            has_graph: false,
            task: Task::SingleStep { horizon },
        }
    }

    /// Electricity (N=321, T=26 304, split 6:2:2, 168→1), hourly sampling.
    pub fn electricity(horizon: usize) -> Self {
        Self {
            name: "Electricity".into(),
            n: 321,
            t: 26_304,
            features: 2,
            input_len: 168,
            output_len: 1,
            split: (0.6, 0.2, 0.2),
            steps_per_day: 24,
            kind: SynthKind::Electricity,
            null_value: None,
            has_graph: false,
            task: Task::SingleStep { horizon },
        }
    }

    /// All six multi-step presets (Tables 5–6) at full paper size.
    pub fn all_multistep() -> Vec<Self> {
        vec![
            Self::metr_la(),
            Self::pems_bay(),
            Self::pems03(),
            Self::pems04(),
            Self::pems07(),
            Self::pems08(),
        ]
    }

    /// Shrink the dataset for CPU-scale experiments while keeping its
    /// structure: node count and length scale down, windows and splits stay.
    ///
    /// `node_scale`/`time_scale` of 1.0 reproduce the paper sizes. The
    /// synthetic "day" also shrinks (min 24 steps) so seasonality remains
    /// learnable within the shorter history.
    pub fn scaled(&self, node_scale: f32, time_scale: f32) -> Self {
        let mut out = self.clone();
        out.n = ((self.n as f32 * node_scale).round() as usize).max(8);
        out.steps_per_day = ((self.steps_per_day as f32 * time_scale).round() as usize).max(24);
        let min_t = (self.input_len + self.output_len + 64) * 5;
        out.t = ((self.t as f32 * time_scale).round() as usize).max(min_t);
        out
    }

    /// The horizon used for single-step tasks (panics on multi-step).
    pub fn single_step_horizon(&self) -> usize {
        match self.task {
            Task::SingleStep { horizon } => horizon,
            Task::MultiStep => panic!("{} is a multi-step dataset", self.name),
        }
    }

    /// Number of usable windows given the total length.
    pub fn max_windows(&self) -> usize {
        let tail = match self.task {
            Task::MultiStep => self.output_len,
            Task::SingleStep { horizon } => horizon,
        };
        self.t.saturating_sub(self.input_len + tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table4() {
        let m = DatasetSpec::metr_la();
        assert_eq!((m.n, m.t), (207, 34_272));
        assert_eq!(m.split, (0.7, 0.1, 0.2));
        assert_eq!((m.input_len, m.output_len), (12, 12));
        let p7 = DatasetSpec::pems07();
        assert_eq!((p7.n, p7.t), (883, 28_224));
        assert_eq!(p7.split, (0.6, 0.2, 0.2));
        let s = DatasetSpec::solar_energy(24);
        assert_eq!((s.n, s.t), (137, 52_560));
        assert_eq!((s.input_len, s.output_len), (168, 1));
        let e = DatasetSpec::electricity(3);
        assert_eq!((e.n, e.t), (321, 26_304));
    }

    #[test]
    fn scaling_respects_minimums() {
        let s = DatasetSpec::metr_la().scaled(0.05, 0.01);
        assert!(s.n >= 8);
        assert!(s.t >= (12 + 12 + 64) * 5);
        assert!(s.steps_per_day >= 24);
        assert_eq!(s.input_len, 12); // windows unchanged
    }

    #[test]
    fn single_step_horizon_accessor() {
        assert_eq!(DatasetSpec::solar_energy(3).single_step_horizon(), 3);
    }

    #[test]
    #[should_panic]
    fn horizon_on_multistep_panics() {
        DatasetSpec::metr_la().single_step_horizon();
    }

    #[test]
    fn max_windows_counts() {
        let mut s = DatasetSpec::metr_la();
        s.t = 100;
        assert_eq!(s.max_windows(), 100 - 24);
    }

    #[test]
    fn traffic_masks_zeros_energy_does_not() {
        assert_eq!(DatasetSpec::pems03().null_value, Some(0.0));
        assert_eq!(DatasetSpec::electricity(3).null_value, None);
    }
}
