//! Mini-batch assembly from windows.

use crate::Window;
use cts_tensor::Tensor;
use rand::Rng;

/// Batched tensors ready for a training loop: `(x [B,N,P,F], y [B,N,Q])`.
pub type Batches = Vec<(Tensor, Tensor)>;

/// Group windows into batches (the final partial batch is kept).
pub fn batches_from_windows(windows: &[Window], batch_size: usize) -> Batches {
    assert!(batch_size >= 1);
    let mut out = Vec::with_capacity(windows.len().div_ceil(batch_size));
    for chunk in windows.chunks(batch_size) {
        let b = chunk.len();
        let xs = chunk[0].x.shape().to_vec();
        let ys = chunk[0].y.shape().to_vec();
        let mut x = Vec::with_capacity(b * chunk[0].x.len());
        let mut y = Vec::with_capacity(b * chunk[0].y.len());
        for w in chunk {
            x.extend_from_slice(w.x.data());
            y.extend_from_slice(w.y.data());
        }
        let mut x_shape = vec![b];
        x_shape.extend_from_slice(&xs);
        let mut y_shape = vec![b];
        y_shape.extend_from_slice(&ys);
        out.push((Tensor::from_vec(x_shape, x), Tensor::from_vec(y_shape, y)));
    }
    out
}

/// Fisher–Yates shuffle of any slice.
///
/// This is the single source of shuffle RNG consumption: an index
/// permutation shuffled with the same RNG stream stays bit-identical
/// with a shuffled window list, which checkpoint resume relies on to
/// replay epoch orderings deterministically.
pub fn shuffle_in_place<T>(rng: &mut impl Rng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Fisher–Yates shuffle of a window list (fresh order per epoch).
pub fn shuffle_windows(rng: &mut impl Rng, windows: &mut [Window]) {
    shuffle_in_place(rng, windows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    fn mk_windows(count: usize) -> Vec<Window> {
        (0..count)
            .map(|i| Window {
                x: Tensor::full([2, 3, 1], i as f32),
                y: Tensor::full([2, 1], i as f32),
            })
            .collect()
    }

    #[test]
    fn batch_shapes_and_partial_tail() {
        let batches = batches_from_windows(&mk_windows(7), 3);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].0.shape(), &[3, 2, 3, 1]);
        assert_eq!(batches[0].1.shape(), &[3, 2, 1]);
        assert_eq!(batches[2].0.shape(), &[1, 2, 3, 1]);
    }

    #[test]
    fn batch_preserves_values_in_order() {
        let batches = batches_from_windows(&mk_windows(4), 2);
        assert_eq!(batches[1].1.at(&[0, 0, 0]), 2.0);
        assert_eq!(batches[1].1.at(&[1, 1, 0]), 3.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut w = mk_windows(20);
        shuffle_windows(&mut rng, &mut w);
        let mut labels: Vec<i32> = w.iter().map(|w| w.y.at(&[0, 0]) as i32).collect();
        labels.sort_unstable();
        assert_eq!(labels, (0..20).collect::<Vec<_>>());
    }
}
