//! Sliding-window extraction with chronological train/val/test splits.

use crate::{CtsData, Scaler, Task};
use cts_tensor::Tensor;

/// One training example: standardised inputs, raw-scale targets.
#[derive(Clone, Debug)]
pub struct Window {
    /// `[N, P, F]`, z-scored.
    pub x: Tensor,
    /// `[N, Q]` (multi-step) or `[N, 1]` (single-step), original scale.
    pub y: Tensor,
}

/// Windows split chronologically by the spec's ratio, plus the scaler the
/// inputs were standardised with.
#[derive(Clone, Debug)]
pub struct SplitWindows {
    /// Training windows.
    pub train: Vec<Window>,
    /// Validation windows.
    pub val: Vec<Window>,
    /// Test windows.
    pub test: Vec<Window>,
    /// Standardiser fit on the training span.
    pub scaler: Scaler,
}

impl SplitWindows {
    /// Merge train+val into one list (architecture evaluation retrains on
    /// both, §3.4).
    pub fn train_and_val(&self) -> Vec<Window> {
        let mut out = self.train.clone();
        out.extend(self.val.iter().cloned());
        out
    }

    /// Split the training windows in half: pseudo-train / pseudo-validation
    /// for the bi-level architecture search (§3.4).
    pub fn pseudo_split(&self) -> (Vec<Window>, Vec<Window>) {
        let half = self.train.len() / 2;
        (
            self.train[..half].to_vec(),
            self.train[half..].to_vec(),
        )
    }
}

/// Extract windows from generated data.
///
/// `stride` subsamples window start positions (1 = every window);
/// `cap_per_split` bounds each split's size (0 = unbounded). Inputs are
/// standardised with a scaler fit on the training span only — no
/// information leaks from val/test.
pub fn build_windows(data: &CtsData, stride: usize, cap_per_split: usize) -> SplitWindows {
    let spec = &data.spec;
    let (n, t, f) = (spec.n, spec.t, spec.features);
    let p = spec.input_len;
    let (y_offsets, q_out): (Vec<usize>, usize) = match spec.task {
        Task::MultiStep => ((1..=spec.output_len).collect(), spec.output_len),
        Task::SingleStep { horizon } => (vec![horizon], 1),
    };
    // invariant: callers pass a non-empty horizon list (asserted in the message).
    let max_offset = *y_offsets.last().expect("empty horizon list");
    let num_windows = t.saturating_sub(p + max_offset) + 1;
    assert!(num_windows > 3, "dataset too short for windows");

    let (r_train, r_val, _) = spec.split;
    let t_train_span = (t as f32 * r_train) as usize;
    let scaler = Scaler::fit(&data.values, t_train_span);

    let stride = stride.max(1);
    let starts: Vec<usize> = (0..num_windows).step_by(stride).collect();
    let n_tr = (starts.len() as f32 * r_train) as usize;
    let n_va = (starts.len() as f32 * r_val) as usize;

    let make_window = |start: usize| -> Window {
        let mut x = Tensor::zeros([n, p, f]);
        for i in 0..n {
            for s in 0..p {
                for k in 0..f {
                    *x.at_mut(&[i, s, k]) = data.values.at(&[i, start + s, k]);
                }
            }
        }
        scaler.transform(&mut x);
        let mut y = Tensor::zeros([n, q_out]);
        for i in 0..n {
            for (qi, &off) in y_offsets.iter().enumerate() {
                *y.at_mut(&[i, qi]) = data.values.at(&[i, start + p + off - 1, 0]);
            }
        }
        Window { x, y }
    };

    let cap = |v: Vec<Window>| -> Vec<Window> {
        if cap_per_split > 0 && v.len() > cap_per_split {
            // keep an evenly spaced subsample to preserve time coverage
            let step = v.len() as f32 / cap_per_split as f32;
            (0..cap_per_split)
                .map(|i| v[(i as f32 * step) as usize].clone())
                .collect()
        } else {
            v
        }
    };

    let train = cap(starts[..n_tr].iter().map(|&s| make_window(s)).collect());
    let val = cap(starts[n_tr..n_tr + n_va].iter().map(|&s| make_window(s)).collect());
    let test = cap(starts[n_tr + n_va..].iter().map(|&s| make_window(s)).collect());

    SplitWindows {
        train,
        val,
        test,
        scaler,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, DatasetSpec};

    fn tiny_split() -> (SplitWindows, DatasetSpec) {
        let spec = DatasetSpec::metr_la().scaled(0.05, 0.02);
        let data = generate(&spec, 0);
        (build_windows(&data, 1, 0), spec)
    }

    #[test]
    fn window_shapes() {
        let (sw, spec) = tiny_split();
        let w = &sw.train[0];
        assert_eq!(w.x.shape(), &[spec.n, spec.input_len, spec.features]);
        assert_eq!(w.y.shape(), &[spec.n, spec.output_len]);
    }

    #[test]
    fn split_ratios_roughly_hold() {
        let (sw, _) = tiny_split();
        let total = (sw.train.len() + sw.val.len() + sw.test.len()) as f32;
        let r = sw.train.len() as f32 / total;
        assert!((r - 0.7).abs() < 0.05, "train ratio {r}");
    }

    #[test]
    fn multi_step_targets_are_consecutive_raw_values() {
        let spec = DatasetSpec::metr_la().scaled(0.05, 0.02);
        let data = generate(&spec, 1);
        let sw = build_windows(&data, 1, 0);
        // first window starts at 0: y[:, q] == raw value at P+q
        let p = spec.input_len;
        for q in 0..spec.output_len {
            assert_eq!(sw.train[0].y.at(&[3, q]), data.values.at(&[3, p + q, 0]));
        }
    }

    #[test]
    fn single_step_picks_horizon() {
        let spec = DatasetSpec::electricity(3).scaled(0.03, 0.03);
        let data = generate(&spec, 2);
        let sw = build_windows(&data, 4, 0);
        assert_eq!(sw.train[0].y.shape(), &[spec.n, 1]);
        let p = spec.input_len;
        assert_eq!(sw.train[0].y.at(&[0, 0]), data.values.at(&[0, p + 3 - 1, 0]));
    }

    #[test]
    fn cap_limits_each_split() {
        let spec = DatasetSpec::metr_la().scaled(0.05, 0.02);
        let data = generate(&spec, 3);
        let sw = build_windows(&data, 1, 20);
        assert!(sw.train.len() <= 20 && sw.val.len() <= 20 && sw.test.len() <= 20);
        assert!(sw.train.len() == 20);
    }

    #[test]
    fn pseudo_split_halves_training() {
        let (sw, _) = tiny_split();
        let (a, b) = sw.pseudo_split();
        assert_eq!(a.len() + b.len(), sw.train.len());
        assert!((a.len() as i64 - b.len() as i64).abs() <= 1);
    }

    #[test]
    fn inputs_are_standardized() {
        let (sw, _) = tiny_split();
        // target feature of standardized inputs should be O(1)
        let mut acc = 0.0f32;
        let mut cnt = 0.0f32;
        for w in sw.train.iter().take(20) {
            for v in w.x.data() {
                acc += v.abs();
                cnt += 1.0;
            }
        }
        let mean_abs = acc / cnt;
        assert!(mean_abs < 3.0, "inputs not standardized: {mean_abs}");
        // but targets stay in raw scale (speeds ~ tens)
        assert!(sw.train[0].y.max() > 10.0);
    }
}
