//! Forecasting accuracy metrics (§4.1.2).
//!
//! Multi-step tasks report masked MAE / RMSE / MAPE (missing readings are
//! excluded, the convention of Li et al. 2018 the paper follows);
//! single-step tasks report RRSE and CORR (Lai et al. 2018).

use cts_tensor::Tensor;

/// All metrics at once, for report tables.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalMetrics {
    /// Masked mean absolute error.
    pub mae: f32,
    /// Masked root mean squared error.
    pub rmse: f32,
    /// Masked mean absolute percentage error (fraction, not %).
    pub mape: f32,
    /// Root relative squared error.
    pub rrse: f32,
    /// Empirical correlation coefficient.
    pub corr: f32,
}

impl EvalMetrics {
    /// Compute every metric for `pred` vs `target` (identical shapes).
    pub fn compute(pred: &Tensor, target: &Tensor, null_value: Option<f32>) -> Self {
        Self {
            mae: masked_mae(pred, target, null_value),
            rmse: masked_rmse(pred, target, null_value),
            mape: masked_mape(pred, target, null_value),
            rrse: rrse_metric(pred, target, null_value),
            corr: corr_metric(pred, target, null_value),
        }
    }
}

fn masked_iter<'a>(
    pred: &'a Tensor,
    target: &'a Tensor,
    null_value: Option<f32>,
) -> impl Iterator<Item = (f32, f32)> + 'a {
    assert_eq!(pred.shape(), target.shape(), "metric shape mismatch");
    pred.data()
        .iter()
        .zip(target.data().iter())
        .filter(move |(_, &t)| match null_value {
            Some(nv) => (t - nv).abs() > 1e-4,
            None => true,
        })
        .map(|(&p, &t)| (p, t))
}

/// Masked mean absolute error.
pub fn masked_mae(pred: &Tensor, target: &Tensor, null_value: Option<f32>) -> f32 {
    let (mut acc, mut n) = (0.0f64, 0.0f64);
    for (p, t) in masked_iter(pred, target, null_value) {
        acc += (p - t).abs() as f64;
        n += 1.0;
    }
    if n == 0.0 {
        0.0
    } else {
        (acc / n) as f32
    }
}

/// Masked root mean squared error.
pub fn masked_rmse(pred: &Tensor, target: &Tensor, null_value: Option<f32>) -> f32 {
    let (mut acc, mut n) = (0.0f64, 0.0f64);
    for (p, t) in masked_iter(pred, target, null_value) {
        let d = (p - t) as f64;
        acc += d * d;
        n += 1.0;
    }
    if n == 0.0 {
        0.0
    } else {
        (acc / n).sqrt() as f32
    }
}

/// Masked mean absolute percentage error (as a fraction; ×100 for %).
/// Zero targets are always excluded (division).
pub fn masked_mape(pred: &Tensor, target: &Tensor, null_value: Option<f32>) -> f32 {
    let (mut acc, mut n) = (0.0f64, 0.0f64);
    for (p, t) in masked_iter(pred, target, null_value) {
        if t.abs() < 1e-4 {
            continue;
        }
        acc += ((p - t).abs() / t.abs()) as f64;
        n += 1.0;
    }
    if n == 0.0 {
        0.0
    } else {
        (acc / n) as f32
    }
}

/// Root relative squared error: `√(Σ(p−t)² / Σ(t−t̄)²)` (Lai et al. 2018).
///
/// Masked entries (`target ≈ null_value`) are excluded from both sums and
/// from the target mean, matching the MAE/RMSE/MAPE convention — a missing
/// reading used to contribute `(p − null)²` to the numerator and drag the
/// mean toward the null sentinel.
pub fn rrse_metric(pred: &Tensor, target: &Tensor, null_value: Option<f32>) -> f32 {
    let (mut t_sum, mut n) = (0.0f64, 0.0f64);
    for (_, t) in masked_iter(pred, target, null_value) {
        t_sum += t as f64;
        n += 1.0;
    }
    if n == 0.0 {
        return 0.0;
    }
    let t_mean = t_sum / n;
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (p, t) in masked_iter(pred, target, null_value) {
        num += (p as f64 - t as f64).powi(2);
        den += (t as f64 - t_mean).powi(2);
    }
    if den == 0.0 {
        0.0
    } else {
        (num / den).sqrt() as f32
    }
}

/// Empirical correlation coefficient: Pearson correlation between pred and
/// target computed per series (last-axis-flattened per node), averaged over
/// nodes with non-degenerate variance (Lai et al. 2018).
///
/// Expects `[S, N, Q]` (samples × nodes × horizons). Masked entries
/// (`target ≈ null_value`) are skipped per node, matching the masked-MAE
/// convention — a run of missing readings used to read as a block of
/// constant targets and bias the per-node correlation.
pub fn corr_metric(pred: &Tensor, target: &Tensor, null_value: Option<f32>) -> f32 {
    assert_eq!(pred.shape(), target.shape());
    assert_eq!(pred.rank(), 3, "corr expects [S,N,Q]");
    let (s, n, q) = (pred.shape()[0], pred.shape()[1], pred.shape()[2]);
    let keep = |t: f32| match null_value {
        Some(nv) => (t - nv).abs() > 1e-4,
        None => true,
    };
    let mut total = 0.0f64;
    let mut nodes = 0.0f64;
    for node in 0..n {
        let mut ps = Vec::with_capacity(s * q);
        let mut ts = Vec::with_capacity(s * q);
        for si in 0..s {
            for qi in 0..q {
                let t = target.at(&[si, node, qi]);
                if !keep(t) {
                    continue;
                }
                ps.push(pred.at(&[si, node, qi]) as f64);
                ts.push(t as f64);
            }
        }
        if ps.is_empty() {
            continue;
        }
        let len = ps.len() as f64;
        let mp = ps.iter().sum::<f64>() / len;
        let mt = ts.iter().sum::<f64>() / len;
        let mut num = 0.0;
        let mut vp = 0.0;
        let mut vt = 0.0;
        for (p, t) in ps.iter().zip(ts.iter()) {
            num += (p - mp) * (t - mt);
            vp += (p - mp) * (p - mp);
            vt += (t - mt) * (t - mt);
        }
        if vp > 1e-9 && vt > 1e-9 {
            total += num / (vp.sqrt() * vt.sqrt());
            nodes += 1.0;
        }
    }
    if nodes == 0.0 {
        0.0
    } else {
        (total / nodes) as f32
    }
}

/// Slice horizon `h` (0-based) out of stacked `[S, N, Q]` predictions —
/// used for the 15/30/60-min columns of Tables 5, 9, 10.
pub fn horizon_slice(x: &Tensor, h: usize) -> Tensor {
    cts_tensor::ops::slice(x, 2, h, h + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores() {
        let t = Tensor::from_vec([2, 2, 1], vec![1.0, 2.0, 3.0, 4.0]);
        let m = EvalMetrics::compute(&t, &t, None);
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.rrse, 0.0);
        assert!((m.corr - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mae_and_rmse_basics() {
        let p = Tensor::from_vec([1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let t = Tensor::from_vec([1, 1, 4], vec![2.0, 2.0, 5.0, 4.0]);
        assert!((masked_mae(&p, &t, None) - 0.75).abs() < 1e-6);
        assert!((masked_rmse(&p, &t, None) - (5.0f32 / 4.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn masking_excludes_null_targets() {
        let p = Tensor::from_vec([1, 1, 3], vec![100.0, 2.0, 3.0]);
        let t = Tensor::from_vec([1, 1, 3], vec![0.0, 2.0, 4.0]);
        // entry 0 masked: errors (0, 1) -> mae 0.5
        assert!((masked_mae(&p, &t, Some(0.0)) - 0.5).abs() < 1e-6);
        // unmasked: (100 + 0 + 1)/3
        assert!((masked_mae(&p, &t, None) - 101.0 / 3.0).abs() < 1e-4);
    }

    #[test]
    fn mape_relative_errors() {
        let p = Tensor::from_vec([1, 1, 2], vec![110.0, 90.0]);
        let t = Tensor::from_vec([1, 1, 2], vec![100.0, 100.0]);
        assert!((masked_mape(&p, &t, None) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn rrse_of_mean_predictor_is_one() {
        let t = Tensor::from_vec([1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let p = Tensor::full([1, 1, 4], 2.5);
        assert!((rrse_metric(&p, &t, None) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn corr_detects_anticorrelation() {
        let t = Tensor::from_vec([4, 1, 1], vec![1.0, 2.0, 3.0, 4.0]);
        let p = Tensor::from_vec([4, 1, 1], vec![4.0, 3.0, 2.0, 1.0]);
        assert!((corr_metric(&p, &t, None) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn corr_skips_constant_nodes() {
        // node 1 has zero variance; corr must come from node 0 only
        let t = Tensor::from_vec([3, 2, 1], vec![1.0, 5.0, 2.0, 5.0, 3.0, 5.0]);
        let p = t.clone();
        assert!((corr_metric(&p, &t, None) - 1.0).abs() < 1e-6);
    }

    /// Regression: RRSE used to ignore the null mask entirely. With the
    /// masked entry excluded, RRSE over the real entries must equal RRSE of
    /// the same data with the masked entry physically absent — and a wildly
    /// wrong prediction at a masked position must not move the score.
    #[test]
    fn rrse_masks_null_targets() {
        let t = Tensor::from_vec([1, 1, 4], vec![1.0, 0.0, 3.0, 4.0]);
        let p = Tensor::from_vec([1, 1, 4], vec![1.5, 999.0, 2.5, 4.5]);
        let t_clean = Tensor::from_vec([1, 1, 3], vec![1.0, 3.0, 4.0]);
        let p_clean = Tensor::from_vec([1, 1, 3], vec![1.5, 2.5, 4.5]);
        let masked = rrse_metric(&p, &t, Some(0.0));
        let reference = rrse_metric(&p_clean, &t_clean, None);
        assert!((masked - reference).abs() < 1e-6, "{masked} vs {reference}");
        // Unmasked, the 999 at the null slot dominates the numerator.
        assert!(rrse_metric(&p, &t, None) > 100.0 * masked);
    }

    /// Regression: CORR used to feed null sentinels into the per-node
    /// Pearson sums. Masked entries are skipped per node; a node whose
    /// readings are all null contributes nothing.
    #[test]
    fn corr_masks_null_targets_per_node() {
        // node 0: targets [1,2,3] + one null; predictions track the real
        // entries perfectly but are garbage at the null slot.
        // node 1: every target null -> the node is dropped entirely.
        let t = Tensor::from_vec(
            [4, 2, 1],
            vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 0.0, 0.0],
        );
        let p = Tensor::from_vec(
            [4, 2, 1],
            vec![1.0, 7.0, 2.0, 7.0, 3.0, 7.0, -50.0, 7.0],
        );
        assert!((corr_metric(&p, &t, Some(0.0)) - 1.0).abs() < 1e-6);
        // Unmasked, the -50 at the null slot wrecks node 0's correlation.
        assert!(corr_metric(&p, &t, None) < 0.99);
    }

    /// `EvalMetrics::compute` must thread the mask into all five metrics.
    #[test]
    fn compute_threads_mask_into_rrse_and_corr() {
        let t = Tensor::from_vec([4, 1, 1], vec![1.0, 2.0, 0.0, 4.0]);
        let p = Tensor::from_vec([4, 1, 1], vec![1.0, 2.0, 123.0, 4.0]);
        let m = EvalMetrics::compute(&p, &t, Some(0.0));
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.rrse, 0.0);
        assert!((m.corr - 1.0).abs() < 1e-6);
    }

    #[test]
    fn horizon_slice_extracts_column() {
        let x = Tensor::from_vec([1, 2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let h1 = horizon_slice(&x, 1);
        assert_eq!(h1.shape(), &[1, 2, 1]);
        assert_eq!(h1.data(), &[2.0, 5.0]);
    }
}
