//! CSV export/import of generated datasets (dependency-free), so synthetic
//! benchmarks can be inspected, plotted, or consumed by other tools — and
//! real CSV data can be loaded into the same pipeline.
//!
//! Layout: one row per timestamp; columns `t, node0_f0, node0_f1, …`
//! (node-major, feature-minor), with a header row.

use crate::{CtsData, DatasetSpec};
use cts_graph::SensorGraph;
use cts_tensor::Tensor;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Write the dataset's values as CSV.
pub fn write_values_csv(mut w: impl Write, data: &CtsData) -> io::Result<()> {
    let (n, t, f) = (
        data.values.shape()[0],
        data.values.shape()[1],
        data.values.shape()[2],
    );
    // header
    write!(w, "t")?;
    for i in 0..n {
        for k in 0..f {
            write!(w, ",node{i}_f{k}")?;
        }
    }
    writeln!(w)?;
    for s in 0..t {
        write!(w, "{s}")?;
        for i in 0..n {
            for k in 0..f {
                write!(w, ",{}", data.values.at(&[i, s, k]))?;
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Save values CSV to a file.
pub fn save_values_csv(path: impl AsRef<Path>, data: &CtsData) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_values_csv(io::BufWriter::new(file), data)
}

/// Parse a values CSV produced by [`write_values_csv`] (or any file with
/// the same layout) back into a `[N, T, F]` tensor.
///
/// `features` tells the parser how many columns belong to each node.
pub fn read_values_csv(r: impl BufRead, features: usize) -> io::Result<Tensor> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty csv"))??;
    let cols = header.split(',').count() - 1; // minus the t column
    if cols == 0 || cols % features != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{cols} value columns not divisible by {features} features"),
        ));
    }
    let n = cols / features;
    let mut rows: Vec<Vec<f32>> = Vec::new();
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let vals: Result<Vec<f32>, _> = line
            .split(',')
            .skip(1)
            .map(|v| v.trim().parse::<f32>())
            .collect();
        let vals = vals.map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if vals.len() != cols {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "ragged csv row"));
        }
        rows.push(vals);
    }
    let t = rows.len();
    // rows are [t][node*feature]; output is [N, T, F]
    let mut out = Tensor::zeros([n, t, features]);
    for (s, row) in rows.iter().enumerate() {
        for i in 0..n {
            for k in 0..features {
                *out.at_mut(&[i, s, k]) = row[i * features + k];
            }
        }
    }
    Ok(out)
}

/// Write the sensor graph's weighted edge list as CSV (`src,dst,weight`).
pub fn write_edges_csv(mut w: impl Write, graph: &SensorGraph) -> io::Result<()> {
    writeln!(w, "src,dst,weight")?;
    let a = graph.adjacency();
    for i in 0..graph.n() {
        for j in 0..graph.n() {
            let weight = a.at(&[i, j]);
            if weight != 0.0 {
                writeln!(w, "{i},{j},{weight}")?;
            }
        }
    }
    Ok(())
}

/// Wrap an externally loaded `[N, T, F]` tensor as a [`CtsData`] usable by
/// the windowing pipeline (graph optional).
pub fn from_values(spec: &DatasetSpec, values: Tensor, graph: Option<SensorGraph>) -> CtsData {
    assert_eq!(
        values.shape(),
        &[spec.n, spec.t, spec.features],
        "values do not match the spec"
    );
    CtsData {
        spec: spec.clone(),
        graph: graph.unwrap_or_else(|| SensorGraph::disconnected(spec.n)),
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn tiny() -> CtsData {
        let spec = crate::DatasetSpec::pems08().scaled(0.04, 0.015);
        generate(&spec, 3)
    }

    #[test]
    fn csv_roundtrip_preserves_values() {
        let data = tiny();
        let mut buf = Vec::new();
        write_values_csv(&mut buf, &data).unwrap();
        let parsed = read_values_csv(io::BufReader::new(&buf[..]), data.spec.features).unwrap();
        assert_eq!(parsed.shape(), data.values.shape());
        assert!(parsed.approx_eq(&data.values, 1e-3));
    }

    #[test]
    fn from_values_feeds_windowing() {
        let data = tiny();
        let mut buf = Vec::new();
        write_values_csv(&mut buf, &data).unwrap();
        let parsed = read_values_csv(io::BufReader::new(&buf[..]), data.spec.features).unwrap();
        let rebuilt = from_values(&data.spec, parsed, Some(data.graph.clone()));
        let windows = crate::build_windows(&rebuilt, 8, 8);
        assert!(!windows.train.is_empty());
    }

    #[test]
    fn edges_csv_lists_every_edge_once() {
        let data = tiny();
        let mut buf = Vec::new();
        write_edges_csv(&mut buf, &data.graph).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count() - 1, data.graph.edge_count());
        assert!(text.starts_with("src,dst,weight"));
    }

    #[test]
    fn rejects_garbage_csv() {
        assert!(read_values_csv(io::BufReader::new(&b""[..]), 2).is_err());
        let bad = b"t,node0_f0\n0,notanumber\n";
        assert!(read_values_csv(io::BufReader::new(&bad[..]), 1).is_err());
        // column count not divisible by features
        let bad2 = b"t,node0_f0,node0_f1,node1_f0\n";
        assert!(read_values_csv(io::BufReader::new(&bad2[..]), 2).is_err());
    }
}
