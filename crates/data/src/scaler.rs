//! Z-score normalisation fit on the training portion only.
#![allow(clippy::needless_range_loop)]

use cts_tensor::Tensor;

/// Per-feature standardiser for `[N, T, F]` values.
#[derive(Clone, Debug)]
pub struct Scaler {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Scaler {
    /// Fit on `values[:, ..t_train, :]`.
    pub fn fit(values: &Tensor, t_train: usize) -> Self {
        let (n, t, f) = (values.shape()[0], values.shape()[1], values.shape()[2]);
        let t_train = t_train.min(t).max(1);
        let mut mean = vec![0.0f64; f];
        let mut count = 0.0f64;
        for i in 0..n {
            for s in 0..t_train {
                for k in 0..f {
                    mean[k] += values.data()[(i * t + s) * f + k] as f64;
                }
                count += 1.0;
            }
        }
        for m in mean.iter_mut() {
            *m /= count;
        }
        let mut var = vec![0.0f64; f];
        for i in 0..n {
            for s in 0..t_train {
                for k in 0..f {
                    let d = values.data()[(i * t + s) * f + k] as f64 - mean[k];
                    var[k] += d * d;
                }
            }
        }
        let std: Vec<f32> = var
            .iter()
            .map(|v| ((v / count).sqrt() as f32).max(1e-4))
            .collect();
        Self {
            mean: mean.iter().map(|&m| m as f32).collect(),
            std,
        }
    }

    /// Identity scaler (tests, toy pipelines).
    pub fn identity(f: usize) -> Self {
        Self {
            mean: vec![0.0; f],
            std: vec![1.0; f],
        }
    }

    /// Mean of the target feature (feature 0).
    pub fn target_mean(&self) -> f32 {
        self.mean[0]
    }

    /// Std of the target feature (feature 0).
    pub fn target_std(&self) -> f32 {
        self.std[0]
    }

    /// Standardise an `[..., F]` tensor in place.
    pub fn transform(&self, x: &mut Tensor) {
        // invariant: scaler inputs are at least rank 1.
        let f = *x.shape().last().expect("scaler on rank-0");
        assert_eq!(f, self.mean.len(), "feature mismatch");
        for (i, v) in x.data_mut().iter_mut().enumerate() {
            let k = i % f;
            *v = (*v - self.mean[k]) / self.std[k];
        }
    }

    /// Invert the target-feature transform on a value.
    pub fn invert_target(&self, v: f32) -> f32 {
        v * self.std[0] + self.mean[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_standardizes_train_region() {
        // two features with different scales
        let mut vals = Vec::new();
        for i in 0..200 {
            vals.push(10.0 + (i % 7) as f32); // feature 0
            vals.push(0.5); // feature 1 constant
        }
        let t = Tensor::from_vec([1, 200, 2], vals);
        let scaler = Scaler::fit(&t, 150);
        let mut x = t.clone();
        scaler.transform(&mut x);
        // feature 0 approx zero-mean on train region
        let m: f32 = (0..150).map(|s| x.at(&[0, s, 0])).sum::<f32>() / 150.0;
        assert!(m.abs() < 0.05, "mean {m}");
        // constant feature doesn't blow up (std floored)
        assert!(!x.has_non_finite());
    }

    #[test]
    fn invert_roundtrip() {
        let t = Tensor::from_vec([1, 4, 1], vec![2.0, 4.0, 6.0, 8.0]);
        let scaler = Scaler::fit(&t, 4);
        let mut x = t.clone();
        scaler.transform(&mut x);
        for (orig, z) in t.data().iter().zip(x.data().iter()) {
            assert!((scaler.invert_target(*z) - orig).abs() < 1e-4);
        }
    }

    #[test]
    fn identity_scaler_is_noop() {
        let scaler = Scaler::identity(2);
        let mut x = Tensor::from_vec([1, 1, 2], vec![5.0, -3.0]);
        scaler.transform(&mut x);
        assert_eq!(x.data(), &[5.0, -3.0]);
        assert_eq!(scaler.target_mean(), 0.0);
        assert_eq!(scaler.target_std(), 1.0);
    }
}
