//! Null-sentinel masking helpers shared by metrics, admission control, and
//! the adversarial generators.
//!
//! The traffic datasets mark missing readings with a sentinel value
//! (`DatasetSpec::null_value`, conventionally `0.0` following Li et al.);
//! the serving layer additionally has to survive windows carrying NaN/Inf
//! from broken sensors. Both kinds of "missing" are detected here with one
//! shared tolerance so admission control, loss masking, and metrics agree
//! on what counts as absent.

use cts_tensor::Tensor;

/// Tolerance for sentinel comparison, matching the masked-metric
/// convention in [`crate::metrics`].
pub const NULL_TOL: f32 = 1e-4;

/// Is `v` a missing reading? Non-finite values always count as missing;
/// finite values count when they sit within [`NULL_TOL`] of the sentinel.
pub fn is_missing(v: f32, null_value: Option<f32>) -> bool {
    if !v.is_finite() {
        return true;
    }
    match null_value {
        Some(nv) => (v - nv).abs() <= NULL_TOL,
        None => false,
    }
}

/// Fraction of missing entries (non-finite or sentinel) in a slice.
/// Empty slices report `0.0`.
pub fn missing_fraction(values: &[f32], null_value: Option<f32>) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let missing = values.iter().filter(|&&v| is_missing(v, null_value)).count();
    missing as f32 / values.len() as f32
}

/// Replace every non-finite entry of `x` with `null_value` in place,
/// returning how many entries were rewritten. This is the admission-path
/// sanitizer: a NaN-laden sensor window becomes an ordinary
/// missing-reading window that the masked losses/metrics already know how
/// to ignore.
pub fn mask_non_finite(x: &mut Tensor, null_value: f32) -> usize {
    let mut masked = 0;
    for v in x.data_mut() {
        if !v.is_finite() {
            *v = null_value;
            masked += 1;
        }
    }
    masked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_detection_covers_both_kinds() {
        assert!(is_missing(f32::NAN, None));
        assert!(is_missing(f32::INFINITY, Some(0.0)));
        assert!(is_missing(0.0, Some(0.0)));
        assert!(is_missing(5e-5, Some(0.0)), "within tolerance of sentinel");
        assert!(!is_missing(0.0, None));
        assert!(!is_missing(1.0, Some(0.0)));
    }

    #[test]
    fn fraction_counts_sentinels_and_non_finite() {
        let v = [1.0, 0.0, f32::NAN, 3.0];
        assert!((missing_fraction(&v, Some(0.0)) - 0.5).abs() < 1e-6);
        assert!((missing_fraction(&v, None) - 0.25).abs() < 1e-6);
        assert_eq!(missing_fraction(&[], Some(0.0)), 0.0);
    }

    #[test]
    fn mask_rewrites_only_non_finite() {
        let mut t = Tensor::from_vec([4], vec![1.0, f32::NAN, f32::NEG_INFINITY, 2.0]);
        assert_eq!(mask_non_finite(&mut t, 0.0), 2);
        assert_eq!(t.data(), &[1.0, 0.0, 0.0, 2.0]);
        assert_eq!(mask_non_finite(&mut t, 0.0), 0);
    }
}
