//! Traffic-speed (METR-LA / PEMS-BAY) and traffic-flow (PEMS03-08)
//! generators.
//!
//! Structure planted (so the real datasets' learning signals survive the
//! substitution):
//! * a sensor graph with Gaussian-kernel weights (spatial correlation);
//! * rush-hour congestion that *propagates* along the graph with per-hop
//!   lag (diffusion dynamics — what DGCN models);
//! * daily and weekly seasonality (what temporal operators model);
//! * AR(1) noise diffused over the graph;
//! * zero-valued sensor outages (what the masked metrics are for).

use super::common::*;
use super::CtsData;
use crate::DatasetSpec;
use cts_graph::{random_geometric_graph, GraphGenConfig};
use cts_tensor::Tensor;
use rand::Rng;

fn make_graph(spec: &DatasetSpec, rng: &mut impl Rng) -> cts_graph::SensorGraph {
    random_geometric_graph(
        rng,
        &GraphGenConfig {
            n: spec.n,
            sigma: 0.35,
            threshold: 0.35,
        },
    )
}

/// Travel-speed series: free-flow speed minus propagating congestion waves.
pub fn generate_speed(spec: &DatasetSpec, rng: &mut impl Rng) -> CtsData {
    let graph = make_graph(spec, rng);
    let (n, t, spd) = (spec.n, spec.t, spec.steps_per_day);
    let free_flow = 65.0f32;

    // Per-node congestion severity, spatially smoothed.
    let amp = smoothed_node_field(rng, &graph, 0.25, 0.95, 2);
    // Congestion waves start at a few "hotspot" sensors and arrive later at
    // sensors further away (hop lag).
    let sources: Vec<usize> = (0..3.min(n)).map(|_| rng.gen_range(0..n)).collect();
    let mut lag = vec![usize::MAX; n];
    for &s in &sources {
        for (i, d) in graph.hop_distances(s).iter().enumerate() {
            if *d < lag[i] {
                lag[i] = *d;
            }
        }
    }
    let lag_steps: Vec<usize> = lag
        .iter()
        .map(|&d| if d == usize::MAX { 0 } else { d * 2 })
        .collect();

    let noise = spatial_smooth(&ar1_field(rng, n, t, 0.9, 1.2), &graph, 2, 0.5);

    let mut target = Tensor::zeros([n, t]);
    for i in 0..n {
        for s in 0..t {
            let shifted = s.saturating_sub(lag_steps[i]);
            let tod = time_of_day(shifted, spd);
            let dow = day_of_week(shifted, spd);
            let weekday = if dow < 5 { 1.0 } else { 0.45 };
            let rush = day_bump(tod, 8.0 / 24.0, 0.05) + 1.2 * day_bump(tod, 17.5 / 24.0, 0.06);
            let congestion = (amp[i] * rush * weekday).min(1.0);
            let v = free_flow * (1.0 - 0.55 * congestion) + noise.at(&[i, s]);
            target.data_mut()[i * t + s] = v.clamp(3.0, 75.0);
        }
    }
    inject_missing(rng, &mut target, 0.002, 6);
    CtsData {
        spec: spec.clone(),
        values: with_time_feature(&target, spd),
        graph,
    }
}

/// Traffic-flow (volume) series: double-peaked daily demand modulated by a
/// weekly pattern, scaled per sensor, with diffused noise.
pub fn generate_flow(spec: &DatasetSpec, rng: &mut impl Rng) -> CtsData {
    let graph = make_graph(spec, rng);
    let (n, t, spd) = (spec.n, spec.t, spec.steps_per_day);

    let base = smoothed_node_field(rng, &graph, 120.0, 420.0, 2);
    let noise = spatial_smooth(&ar1_field(rng, n, t, 0.85, 0.08), &graph, 2, 0.5);
    // Per-node peak-shape preference (some sensors see more morning traffic).
    let morning_share = smoothed_node_field(rng, &graph, 0.35, 0.65, 2);

    let mut target = Tensor::zeros([n, t]);
    for i in 0..n {
        for s in 0..t {
            let tod = time_of_day(s, spd);
            let dow = day_of_week(s, spd);
            let weekday = if dow < 5 { 1.0 } else { 0.6 };
            let profile = 0.15
                + morning_share[i] * day_bump(tod, 8.0 / 24.0, 0.07)
                + (1.0 - morning_share[i]) * day_bump(tod, 17.5 / 24.0, 0.08);
            let v = base[i] * profile * weekday * (1.0 + noise.at(&[i, s]));
            target.data_mut()[i * t + s] = v.max(0.5);
        }
    }
    inject_missing(rng, &mut target, 0.001, 4);
    CtsData {
        spec: spec.clone(),
        values: with_time_feature(&target, spd),
        graph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    fn speed_data() -> CtsData {
        let spec = DatasetSpec::metr_la().scaled(0.08, 0.03);
        generate_speed(&spec, &mut SmallRng::seed_from_u64(0))
    }

    #[test]
    fn speeds_in_physical_range() {
        let d = speed_data();
        let target = d.target();
        // aside from injected zeros, everything is a plausible mph
        for &v in target.data() {
            assert!(v == 0.0 || (3.0..=75.0).contains(&v), "speed {v}");
        }
        assert!(target.max() > 50.0, "no free-flow regime");
    }

    #[test]
    fn rush_hour_slower_than_night() {
        let d = speed_data();
        let spd = d.spec.steps_per_day;
        let target = d.target();
        let (n, days) = (d.spec.n, d.spec.t / spd);
        let mut rush = 0.0;
        let mut night = 0.0;
        let mut count = 0.0;
        for day in 0..days.min(10) {
            if day % 7 >= 5 {
                continue; // weekends are mild by design
            }
            for i in 0..n {
                let r = target.at(&[i, day * spd + spd * 17 / 24]);
                let q = target.at(&[i, day * spd + spd * 3 / 24]);
                if r > 0.0 && q > 0.0 {
                    rush += r;
                    night += q;
                    count += 1.0;
                }
            }
        }
        assert!(rush / count < night / count, "rush {} night {}", rush / count, night / count);
    }

    #[test]
    fn flow_nonnegative_with_daily_peaks() {
        let spec = DatasetSpec::pems04().scaled(0.08, 0.05);
        let d = generate_flow(&spec, &mut SmallRng::seed_from_u64(1));
        let target = d.target();
        assert!(target.min() >= 0.0);
        let spd = spec.steps_per_day;
        // peak-hour flow beats 3am flow on weekdays
        let mut peak = 0.0;
        let mut low = 0.0;
        for i in 0..spec.n {
            peak += target.at(&[i, spd + spd * 8 / 24]);
            low += target.at(&[i, spd + spd * 3 / 24]);
        }
        assert!(peak > low * 1.5, "peak {peak} low {low}");
    }

    #[test]
    fn some_outages_injected() {
        let d = speed_data();
        let zeros = d.target().data().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 0, "missing-data path untested");
    }
}
