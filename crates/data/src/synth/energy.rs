//! Solar-Energy and Electricity generators (single-step datasets, Table 8).
#![allow(clippy::needless_range_loop)]

use super::common::*;
use super::CtsData;
use crate::DatasetSpec;
use cts_graph::SensorGraph;
use cts_tensor::Tensor;
use rand::Rng;

/// PV production: per-plant capacity × diurnal bell × shared cloud process.
/// Exactly zero at night (as in the real Solar-Energy data).
pub fn generate_solar(spec: &DatasetSpec, rng: &mut impl Rng) -> CtsData {
    let (n, t, spd) = (spec.n, spec.t, spec.steps_per_day);
    let capacity: Vec<f32> = (0..n).map(|_| rng.gen_range(20.0..80.0)).collect();
    // Regional cloud cover: a few shared latent AR processes, mixed per
    // plant — correlates nearby plants without a predefined graph.
    let regions = 4usize;
    let clouds = ar1_field(rng, regions, t, 0.97, 0.08);
    let mix: Vec<Vec<f32>> = (0..n)
        .map(|_| {
            let mut w: Vec<f32> = (0..regions).map(|_| rng.gen_range(0.0..1.0)).collect();
            let s: f32 = w.iter().sum();
            w.iter_mut().for_each(|x| *x /= s);
            w
        })
        .collect();

    let mut target = Tensor::zeros([n, t]);
    for i in 0..n {
        for s in 0..t {
            let tod = time_of_day(s, spd);
            // daylight window 0.25..0.75 of the day
            let bell = if (0.25..0.75).contains(&tod) {
                (std::f32::consts::PI * (tod - 0.25) / 0.5).sin().powf(1.5)
            } else {
                0.0
            };
            if bell == 0.0 {
                continue;
            }
            let cloud_lat: f32 = (0..regions).map(|r| mix[i][r] * clouds.at(&[r, s])).sum();
            let clearness = (0.75 + cloud_lat).clamp(0.15, 1.0);
            target.data_mut()[i * t + s] = capacity[i] * bell * clearness;
        }
    }
    CtsData {
        spec: spec.clone(),
        values: with_time_feature(&target, spd),
        graph: SensorGraph::disconnected(n),
    }
}

/// Client electricity consumption: base load × daily profile (evening peak)
/// × weekday factor, plus persistent noise. Always positive.
pub fn generate_electricity(spec: &DatasetSpec, rng: &mut impl Rng) -> CtsData {
    let (n, t, spd) = (spec.n, spec.t, spec.steps_per_day);
    let base: Vec<f32> = (0..n)
        .map(|_| (rng.gen_range(3.0f32..6.0)).exp()) // ~20..400 kWh
        .collect();
    let noise = ar1_field(rng, n, t, 0.9, 0.05);
    // A shared "grid" factor correlates all clients (weather/economy).
    let shared = ar1_field(rng, 1, t, 0.98, 0.03);

    let mut target = Tensor::zeros([n, t]);
    for i in 0..n {
        for s in 0..t {
            let tod = time_of_day(s, spd);
            let dow = day_of_week(s, spd);
            let weekday = if dow < 5 { 1.0 } else { 0.8 };
            let profile = 0.5
                + 0.25 * day_bump(tod, 9.0 / 24.0, 0.1)
                + 0.6 * day_bump(tod, 19.5 / 24.0, 0.08);
            let v = base[i]
                * profile
                * weekday
                * (1.0 + noise.at(&[i, s]) + shared.at(&[0, s]));
            target.data_mut()[i * t + s] = v.max(0.1);
        }
    }
    CtsData {
        spec: spec.clone(),
        values: with_time_feature(&target, spd),
        graph: SensorGraph::disconnected(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn solar_nonnegative_and_bounded_by_capacity() {
        let spec = DatasetSpec::solar_energy(3).scaled(0.06, 0.01);
        let d = generate_solar(&spec, &mut SmallRng::seed_from_u64(0));
        let target = d.target();
        assert!(target.min() >= 0.0);
        assert!(target.max() <= 80.0 + 1e-3);
        // plenty of night zeros
        let zeros = target.data().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros as f32 > 0.3 * target.len() as f32);
    }

    #[test]
    fn electricity_positive_with_evening_peak() {
        let spec = DatasetSpec::electricity(3).scaled(0.04, 0.04);
        let d = generate_electricity(&spec, &mut SmallRng::seed_from_u64(1));
        let target = d.target();
        assert!(target.min() > 0.0);
        let spd = spec.steps_per_day;
        let mut evening = 0.0;
        let mut early = 0.0;
        for i in 0..spec.n {
            for day in 0..3 {
                evening += target.at(&[i, day * spd + spd * 19 / 24]);
                early += target.at(&[i, day * spd + spd * 3 / 24]);
            }
        }
        assert!(evening > early, "no evening peak");
    }

    #[test]
    fn clients_are_heterogeneous() {
        let spec = DatasetSpec::electricity(3).scaled(0.05, 0.02);
        let d = generate_electricity(&spec, &mut SmallRng::seed_from_u64(2));
        let target = d.target();
        let means: Vec<f32> = (0..spec.n)
            .map(|i| (0..spec.t).map(|s| target.at(&[i, s])).sum::<f32>() / spec.t as f32)
            .collect();
        let lo = means.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = means.iter().cloned().fold(0.0f32, f32::max);
        assert!(hi > lo * 2.0, "clients too similar: {lo}..{hi}");
    }
}
