//! Shared building blocks for the synthetic generators.

use cts_graph::SensorGraph;
use cts_tensor::{ops, Tensor};
use rand::Rng;

/// AR(1) noise field `[N, T]` with persistence `phi` and innovation `sigma`.
pub fn ar1_field(rng: &mut impl Rng, n: usize, t: usize, phi: f32, sigma: f32) -> Tensor {
    let mut out = Tensor::zeros([n, t]);
    for i in 0..n {
        let mut prev = 0.0f32;
        for s in 0..t {
            let innov: f32 = rng.gen_range(-1.0..1.0) * sigma;
            let v = phi * prev + innov;
            out.data_mut()[i * t + s] = v;
            prev = v;
        }
    }
    out
}

/// Diffuse a `[N, T]` field over the graph: `x ← (1−mix)·x + mix·P·x`,
/// repeated `rounds` times, where `P` is the row-normalised adjacency with
/// self-loops. This plants the spatial correlations DGCN-style operators
/// can exploit.
pub fn spatial_smooth(x: &Tensor, graph: &SensorGraph, rounds: usize, mix: f32) -> Tensor {
    if rounds == 0 || graph.edge_count() == 0 {
        return x.clone();
    }
    let p = SensorGraph::new(graph.with_self_loops(), vec![]).row_normalized();
    let mut cur = x.clone();
    for _ in 0..rounds {
        let mixed = ops::matmul(&p, &cur);
        cur = ops::add(&ops::scale(&cur, 1.0 - mix), &ops::scale(&mixed, mix));
    }
    cur
}

/// Time-of-day fraction in `[0, 1)`.
pub fn time_of_day(step: usize, steps_per_day: usize) -> f32 {
    (step % steps_per_day) as f32 / steps_per_day as f32
}

/// Day-of-week index 0..7 (synthetic weeks are 7 "days").
pub fn day_of_week(step: usize, steps_per_day: usize) -> usize {
    (step / steps_per_day) % 7
}

/// Gaussian bump centred at `center` (both in day-fraction units), wrapping
/// around midnight.
pub fn day_bump(tod: f32, center: f32, width: f32) -> f32 {
    let mut d = (tod - center).abs();
    if d > 0.5 {
        d = 1.0 - d;
    }
    (-d * d / (2.0 * width * width)).exp()
}

/// Assemble `[N, T, 2]` values from a target field and the day clock.
pub fn with_time_feature(target: &Tensor, steps_per_day: usize) -> Tensor {
    let (n, t) = (target.shape()[0], target.shape()[1]);
    let mut out = Tensor::zeros([n, t, 2]);
    for i in 0..n {
        for s in 0..t {
            out.data_mut()[(i * t + s) * 2] = target.data()[i * t + s];
            out.data_mut()[(i * t + s) * 2 + 1] = time_of_day(s, steps_per_day);
        }
    }
    out
}

/// Knock out a fraction of readings (set to 0) in short bursts, mimicking
/// sensor outages; returns the number of zeroed entries.
pub fn inject_missing(rng: &mut impl Rng, target: &mut Tensor, rate: f32, burst: usize) -> usize {
    let (n, t) = (target.shape()[0], target.shape()[1]);
    let mut zeroed = 0;
    for i in 0..n {
        let mut s = 0;
        while s < t {
            if rng.gen_range(0.0..1.0) < rate {
                for b in 0..burst.min(t - s) {
                    target.data_mut()[i * t + s + b] = 0.0;
                    zeroed += 1;
                }
                s += burst;
            } else {
                s += 1;
            }
        }
    }
    zeroed
}

/// Per-node scalar field smoothed over the graph (e.g. congestion
/// amplitudes shared by nearby sensors).
pub fn smoothed_node_field(
    rng: &mut impl Rng,
    graph: &SensorGraph,
    lo: f32,
    hi: f32,
    rounds: usize,
) -> Vec<f32> {
    let n = graph.n();
    let raw = Tensor::from_vec(
        vec![n, 1],
        (0..n).map(|_| rng.gen_range(lo..hi)).collect::<Vec<f32>>(),
    );
    let sm = spatial_smooth(&raw, graph, rounds, 0.5);
    sm.into_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_graph::{random_geometric_graph, GraphGenConfig};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn ar1_is_persistent() {
        let mut rng = SmallRng::seed_from_u64(0);
        let x = ar1_field(&mut rng, 1, 5000, 0.95, 1.0);
        // lag-1 autocorrelation should be close to phi
        let d = x.data();
        let mean = x.mean();
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 1..d.len() {
            num += (d[i] - mean) * (d[i - 1] - mean);
        }
        for v in d {
            den += (v - mean) * (v - mean);
        }
        let rho = num / den;
        assert!(rho > 0.85, "autocorr {rho}");
    }

    #[test]
    fn smoothing_reduces_variance_across_nodes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = random_geometric_graph(&mut rng, &GraphGenConfig { n: 20, ..Default::default() });
        let x = ar1_field(&mut rng, 20, 50, 0.0, 1.0);
        let sm = spatial_smooth(&x, &g, 3, 0.5);
        let col_var = |t: &Tensor| {
            let mut total = 0.0;
            for s in 0..50 {
                let col: Vec<f32> = (0..20).map(|i| t.at(&[i, s])).collect();
                let m: f32 = col.iter().sum::<f32>() / 20.0;
                total += col.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / 20.0;
            }
            total / 50.0
        };
        assert!(col_var(&sm) < col_var(&x));
    }

    #[test]
    fn day_bump_peaks_at_center_and_wraps() {
        assert!((day_bump(0.3, 0.3, 0.05) - 1.0).abs() < 1e-6);
        assert!(day_bump(0.35, 0.3, 0.05) < 1.0);
        // wrap: 0.02 and 0.98 are 0.04 apart
        assert!(day_bump(0.98, 0.02, 0.05) > 0.5);
    }

    #[test]
    fn clock_features() {
        assert_eq!(time_of_day(0, 24), 0.0);
        assert_eq!(time_of_day(12, 24), 0.5);
        assert_eq!(time_of_day(24, 24), 0.0);
        assert_eq!(day_of_week(0, 24), 0);
        assert_eq!(day_of_week(24 * 6, 24), 6);
        assert_eq!(day_of_week(24 * 7, 24), 0);
    }

    #[test]
    fn missing_injection_zeroes_entries() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut x = Tensor::ones([4, 500]);
        let zeroed = inject_missing(&mut rng, &mut x, 0.01, 3);
        assert!(zeroed > 0);
        let zeros = x.data().iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, zeroed);
    }
}
