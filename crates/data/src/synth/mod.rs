//! Synthetic correlated-time-series generators (dataset substitutes).

mod adversarial;
mod common;
mod energy;
mod traffic;

pub use adversarial::{apply_regime, Regime};

use crate::{DatasetSpec, SynthKind};
use cts_graph::SensorGraph;
use cts_tensor::Tensor;
use rand::{rngs::SmallRng, SeedableRng};


/// A generated dataset: raw values plus the sensor graph.
#[derive(Clone, Debug)]
pub struct CtsData {
    /// The spec this data was generated from.
    pub spec: DatasetSpec,
    /// Values `[N, T, F]`; feature 0 is the forecast target, feature 1 the
    /// time-of-day encoding.
    pub values: Tensor,
    /// Sensor graph (disconnected for datasets without a predefined
    /// adjacency, mirroring Table 4).
    pub graph: SensorGraph,
}

impl CtsData {
    /// The target series `[N, T]` (feature 0).
    pub fn target(&self) -> Tensor {
        let (n, t, f) = (
            self.values.shape()[0],
            self.values.shape()[1],
            self.values.shape()[2],
        );
        let mut out = Tensor::zeros([n, t]);
        for i in 0..n {
            for ti in 0..t {
                out.data_mut()[i * t + ti] = self.values.data()[(i * t + ti) * f];
            }
        }
        out
    }
}

/// Generate a dataset from its spec, deterministically per seed.
pub fn generate(spec: &DatasetSpec, seed: u64) -> CtsData {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5ca1_ab1e);
    match spec.kind {
        SynthKind::TrafficSpeed => traffic::generate_speed(spec, &mut rng),
        SynthKind::TrafficFlow => traffic::generate_flow(spec, &mut rng),
        SynthKind::Solar => energy::generate_solar(spec, &mut rng),
        SynthKind::Electricity => energy::generate_electricity(spec, &mut rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(kind: SynthKind) -> DatasetSpec {
        let base = match kind {
            SynthKind::TrafficSpeed => DatasetSpec::metr_la(),
            SynthKind::TrafficFlow => DatasetSpec::pems08(),
            SynthKind::Solar => DatasetSpec::solar_energy(3),
            SynthKind::Electricity => DatasetSpec::electricity(3),
        };
        base.scaled(0.06, 0.02)
    }

    #[test]
    fn shapes_match_spec_for_all_kinds() {
        for kind in [
            SynthKind::TrafficSpeed,
            SynthKind::TrafficFlow,
            SynthKind::Solar,
            SynthKind::Electricity,
        ] {
            let spec = tiny(kind);
            let data = generate(&spec, 1);
            assert_eq!(data.values.shape(), &[spec.n, spec.t, spec.features]);
            assert_eq!(data.graph.n(), spec.n);
            assert!(!data.values.has_non_finite(), "{kind:?} produced NaN/inf");
        }
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let spec = tiny(SynthKind::TrafficSpeed);
        let a = generate(&spec, 7);
        let b = generate(&spec, 7);
        let c = generate(&spec, 8);
        assert!(a.values.approx_eq(&b.values, 0.0));
        assert!(!a.values.approx_eq(&c.values, 1e-3));
    }

    #[test]
    fn traffic_has_graph_energy_does_not() {
        let t = generate(&tiny(SynthKind::TrafficSpeed), 0);
        assert!(t.graph.edge_count() > 0);
        let s = generate(&tiny(SynthKind::Solar), 0);
        assert_eq!(s.graph.edge_count(), 0);
    }

    #[test]
    fn time_of_day_feature_wraps_daily() {
        let spec = tiny(SynthKind::TrafficFlow);
        let data = generate(&spec, 3);
        let spd = spec.steps_per_day;
        // feature 1 at t and t+steps_per_day must match
        let f0 = data.values.at(&[0, 0, 1]);
        let f1 = data.values.at(&[0, spd, 1]);
        assert!((f0 - f1).abs() < 1e-6);
    }

    #[test]
    fn target_extraction_matches_feature0() {
        let spec = tiny(SynthKind::Electricity);
        let data = generate(&spec, 4);
        let target = data.target();
        assert_eq!(target.at(&[2, 5]), data.values.at(&[2, 5, 0]));
    }

    #[test]
    fn solar_is_zero_at_night_positive_at_noon() {
        let spec = tiny(SynthKind::Solar);
        let data = generate(&spec, 5);
        let spd = spec.steps_per_day;
        let mut night_zeros = 0;
        let mut noon_positive = 0;
        for day in 1..4 {
            let midnight = day * spd;
            let noon = day * spd + spd / 2;
            if data.values.at(&[0, midnight, 0]) == 0.0 {
                night_zeros += 1;
            }
            if data.values.at(&[0, noon, 0]) > 0.0 {
                noon_positive += 1;
            }
        }
        assert_eq!(night_zeros, 3);
        assert!(noon_positive >= 2);
    }

    #[test]
    fn neighbours_correlate_more_than_strangers() {
        // the planted spatial structure must be recoverable from Pearson
        // correlations of neighbouring vs distant nodes
        let spec = DatasetSpec::metr_la().scaled(0.1, 0.05);
        let data = generate(&spec, 11);
        let target = data.target();
        let n = spec.n;
        let t = spec.t;
        let series = |i: usize| -> Vec<f32> { (0..t).map(|s| target.at(&[i, s])).collect() };
        let pearson = |a: &[f32], b: &[f32]| -> f32 {
            let ma = a.iter().sum::<f32>() / a.len() as f32;
            let mb = b.iter().sum::<f32>() / b.len() as f32;
            let mut num = 0.0;
            let mut va = 0.0;
            let mut vb = 0.0;
            for (x, y) in a.iter().zip(b.iter()) {
                num += (x - ma) * (y - mb);
                va += (x - ma) * (x - ma);
                vb += (y - mb) * (y - mb);
            }
            num / (va.sqrt() * vb.sqrt() + 1e-9)
        };
        // average correlation of graph neighbours vs non-neighbours
        let adj = data.graph.adjacency();
        let mut cn = Vec::new();
        let mut cf = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let c = pearson(&series(i), &series(j));
                if adj.at(&[i, j]) > 0.0 {
                    cn.push(c);
                } else {
                    cf.push(c);
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
        assert!(
            mean(&cn) > mean(&cf),
            "neighbour corr {} <= stranger corr {}",
            mean(&cn),
            mean(&cf)
        );
    }
}
