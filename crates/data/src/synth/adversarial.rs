//! Adversarial data regimes (ROADMAP 5(c)): transformations applied on top
//! of the clean synthetic generators to probe robustness — sensor dropout,
//! contiguous missing spans, and distribution (regime) shifts.
//!
//! Each regime is deterministic per seed, leaves the clean data untouched
//! (it clones), and marks missing readings with the dataset's
//! `null_value` sentinel so the masked losses/metrics and the serving
//! admission path treat them consistently. Per-regime MAE/RMSE rows are
//! emitted into `BENCH_obs.json` by the `obs_smoke` bench so robustness
//! regressions are visible next to the performance counters.

use crate::CtsData;
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// One adversarial input regime.
#[derive(Clone, Debug, PartialEq)]
pub enum Regime {
    /// The untouched generator output (baseline row).
    Clean,
    /// A fraction of sensors go completely dark (their target feature is
    /// nulled) for one contiguous span each — dead loop detectors,
    /// unplugged meters.
    SensorDropout {
        /// Fraction of sensors affected (`0..=1`).
        sensor_frac: f32,
        /// Length of each sensor's dark span as a fraction of `T`.
        span_frac: f32,
    },
    /// Short contiguous missing spans scattered across all sensors —
    /// transmission hiccups rather than dead hardware.
    MissingSpans {
        /// Target fraction of all readings nulled (`0..=1`).
        frac: f32,
        /// Length of each span in timestamps.
        span: usize,
    },
    /// A permanent level/scale change partway through the series — a
    /// sensor recalibration, a road closure, a tariff change.
    RegimeShift {
        /// Cut point as a fraction of `T`.
        at_frac: f32,
        /// Multiplier applied to readings after the cut.
        scale: f32,
        /// Offset added to readings after the cut.
        shift: f32,
    },
}

impl Regime {
    /// Stable snake_case name used for run-log rows and report tables.
    pub fn name(&self) -> &'static str {
        match self {
            Regime::Clean => "clean",
            Regime::SensorDropout { .. } => "sensor_dropout",
            Regime::MissingSpans { .. } => "missing_spans",
            Regime::RegimeShift { .. } => "regime_shift",
        }
    }

    /// The standard robustness suite reported in `BENCH_obs.json`: clean
    /// baseline plus one representative instance of each adversarial
    /// regime.
    pub fn standard_suite() -> Vec<Regime> {
        vec![
            Regime::Clean,
            Regime::SensorDropout {
                sensor_frac: 0.25,
                span_frac: 0.2,
            },
            Regime::MissingSpans { frac: 0.05, span: 6 },
            Regime::RegimeShift {
                at_frac: 0.7,
                scale: 1.3,
                shift: 2.0,
            },
        ]
    }
}

/// Apply `regime` to a generated dataset, returning a corrupted copy.
/// Deterministic per `(regime, seed)`; the input is never mutated.
///
/// Missing readings are written to the target feature (feature 0) only —
/// the time-of-day encoding stays intact, mirroring real telemetry where
/// the timestamp is known even when the reading is lost. Datasets without
/// a `null_value` sentinel use `0.0` as the fill, the convention the
/// traffic presets already follow.
pub fn apply_regime(data: &CtsData, regime: &Regime, seed: u64) -> CtsData {
    let mut out = data.clone();
    let (n, t, f) = (
        out.values.shape()[0],
        out.values.shape()[1],
        out.values.shape()[2],
    );
    let null = out.spec.null_value.unwrap_or(0.0);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xad5e_7a57);
    let values = out.values.data_mut();
    let mut null_span = |node: usize, start: usize, len: usize| {
        for ti in start..(start + len).min(t) {
            values[(node * t + ti) * f] = null;
        }
    };
    match regime {
        Regime::Clean => {}
        Regime::SensorDropout {
            sensor_frac,
            span_frac,
        } => {
            let sensors = ((n as f32 * sensor_frac).ceil() as usize).min(n);
            let span = ((t as f32 * span_frac).ceil() as usize).clamp(1, t);
            // Sample distinct sensors by index walk: deterministic and
            // unbiased enough for a corruption model.
            let mut picked = vec![false; n];
            let mut count = 0;
            while count < sensors {
                let i = rng.gen_range(0..n);
                if !picked[i] {
                    picked[i] = true;
                    count += 1;
                    let start = rng.gen_range(0..t.saturating_sub(span).max(1));
                    null_span(i, start, span);
                }
            }
        }
        Regime::MissingSpans { frac, span } => {
            let span = (*span).clamp(1, t);
            let target = (n as f32 * t as f32 * frac).ceil() as usize;
            let spans = target.div_ceil(span);
            for _ in 0..spans {
                let node = rng.gen_range(0..n);
                let start = rng.gen_range(0..t.saturating_sub(span).max(1));
                null_span(node, start, span);
            }
        }
        Regime::RegimeShift {
            at_frac,
            scale,
            shift,
        } => {
            let t0 = ((t as f32 * at_frac) as usize).min(t);
            for node in 0..n {
                for ti in t0..t {
                    let idx = (node * t + ti) * f;
                    // Missing readings stay missing through the shift.
                    if !crate::masking::is_missing(values[idx], out.spec.null_value) {
                        values[idx] = values[idx] * scale + shift;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::masking::missing_fraction;
    use crate::{generate, DatasetSpec};

    fn base() -> CtsData {
        generate(&DatasetSpec::metr_la().scaled(0.06, 0.02), 9)
    }

    fn target_missing(data: &CtsData) -> f32 {
        missing_fraction(data.target().data(), data.spec.null_value)
    }

    #[test]
    fn clean_is_identity_and_input_untouched() {
        let data = base();
        let before = data.values.clone();
        let out = apply_regime(&data, &Regime::Clean, 1);
        assert!(out.values.approx_eq(&before, 0.0));
        assert!(data.values.approx_eq(&before, 0.0));
    }

    #[test]
    fn regimes_are_deterministic_per_seed() {
        let data = base();
        let r = Regime::MissingSpans { frac: 0.1, span: 4 };
        let a = apply_regime(&data, &r, 5);
        let b = apply_regime(&data, &r, 5);
        let c = apply_regime(&data, &r, 6);
        assert!(a.values.approx_eq(&b.values, 0.0));
        assert!(!a.values.approx_eq(&c.values, 0.0));
    }

    #[test]
    fn dropout_and_spans_increase_missing_fraction() {
        let data = base();
        let clean = target_missing(&data);
        let dropped = apply_regime(
            &data,
            &Regime::SensorDropout {
                sensor_frac: 0.25,
                span_frac: 0.2,
            },
            3,
        );
        let holes = apply_regime(&data, &Regime::MissingSpans { frac: 0.05, span: 6 }, 3);
        assert!(target_missing(&dropped) > clean + 0.01, "dropout added no holes");
        assert!(target_missing(&holes) > clean + 0.01, "spans added no holes");
        // The time-of-day feature survives untouched.
        for node in 0..data.spec.n {
            for ti in 0..data.spec.t {
                assert_eq!(
                    dropped.values.at(&[node, ti, 1]),
                    data.values.at(&[node, ti, 1])
                );
            }
        }
    }

    #[test]
    fn shift_moves_late_mean_only() {
        let data = base();
        let shifted = apply_regime(
            &data,
            &Regime::RegimeShift {
                at_frac: 0.5,
                scale: 1.0,
                shift: 10.0,
            },
            0,
        );
        let t = data.spec.t;
        let t0 = t / 2;
        let mean = |d: &CtsData, range: std::ops::Range<usize>| -> f32 {
            let tgt = d.target();
            let mut acc = 0.0f32;
            let mut cnt = 0.0f32;
            for ti in range {
                let v = tgt.at(&[0, ti]);
                if !crate::masking::is_missing(v, d.spec.null_value) {
                    acc += v;
                    cnt += 1.0;
                }
            }
            acc / cnt.max(1.0)
        };
        assert!((mean(&shifted, 0..t0) - mean(&data, 0..t0)).abs() < 1e-4);
        assert!(mean(&shifted, t0..t) > mean(&data, t0..t) + 5.0);
    }

    #[test]
    fn suite_names_are_distinct() {
        let suite = Regime::standard_suite();
        let names: Vec<&str> = suite.iter().map(Regime::name).collect();
        assert_eq!(names, ["clean", "sensor_dropout", "missing_spans", "regime_shift"]);
    }
}
