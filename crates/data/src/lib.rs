//! `cts-data`: datasets, windowing, scaling, and metrics for correlated
//! time series forecasting.
//!
//! The eight benchmark datasets of Table 4 (METR-LA, PEMS-BAY, PEMS03/04/
//! 07/08, Solar-Energy, Electricity) are unavailable offline, so this crate
//! generates *synthetic equivalents* that plant the same structures the real
//! data exercises: graph-diffused spatial correlation, daily/weekly
//! seasonality, rush-hour congestion waves, night-time solar zeros, and
//! missing readings. Each preset mirrors the paper's node count, window
//! lengths, and split ratio at a configurable scale factor (see DESIGN.md,
//! "Substitutions").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod export;
mod masking;
mod metrics;
mod scaler;
mod spec;
mod synth;
mod window;

pub use batch::{batches_from_windows, shuffle_in_place, shuffle_windows, Batches};
pub use masking::{is_missing, mask_non_finite, missing_fraction, NULL_TOL};
pub use metrics::{
    corr_metric, horizon_slice, masked_mae, masked_mape, masked_rmse, rrse_metric, EvalMetrics,
};
pub use scaler::Scaler;
pub use spec::{DatasetSpec, SynthKind, Task};
pub use synth::{apply_regime, generate, CtsData, Regime};
pub use window::{build_windows, SplitWindows, Window};
