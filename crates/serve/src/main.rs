//! `serve_bench`: latency benchmark of the concurrent serving front-end.
//!
//! Builds two smoke-scale [`DerivedModel`]s ("autocts-a", "autocts-b"),
//! and for each entry in `SERVE_THREADS` starts a [`ServeFront`]: that
//! many worker threads, each compiling its own bit-identical plan
//! replicas on-thread (plans are `Rc`-based and `!Send`), admitting them
//! through the per-shard registry canary gate (bit parity vs the tape on
//! a probe window), and serving them behind a per-model micro-batcher
//! and a horizon-TTL forecast cache. Each measured round submits one
//! window per stream — streams alternate between the two models — and
//! flushes once; the flush wall-time is the serving latency sample.
//!
//! After measurement the bench **proves** the cache: the same window is
//! served twice and the cached answer must equal a fresh main-thread
//! `try_run` bit for bit (`f32::to_bits`), or the bench exits non-zero.
//! A chaos round then throws admission-level hostility at the front
//! (wrong shape, NaN window, expired deadline, unknown model id) to
//! exercise the typed-error paths end to end.
//!
//! Emits `BENCH_serve.json` (override the directory with
//! `BENCH_OUT_DIR`): one row per thread count with p50/p99 flush
//! latency, compiled and tape milliseconds per window, the
//! tape-vs-compiled `speedup` column, per-row `cache_hit` /
//! `cache_miss` / `cache_evict` deltas, plus every `cts_obs::serve`
//! counter and the per-shard queue-depth high-water marks.
//!
//! Knobs (environment):
//! * `SERVE_THREADS`     — comma-separated worker-thread counts to
//!   bench, one report row each (default `1,4`)
//! * `SERVE_STREAMS`     — concurrent streams per round (default 8)
//! * `SERVE_ROUNDS`      — measured rounds per row (default 200)
//! * `SERVE_BATCH`       — micro-batcher window cap (default = streams)
//! * `SERVE_QUEUE`       — pending-queue bound (default 1024)
//! * `SERVE_CACHE_MB`    — per-model result-cache byte cap in MiB,
//!   0 disables the cache (default 8)
//! * `SERVE_DEADLINE_MS` — per-request deadline budget (default: none)
//! * `SERVE_MISSING_CAP` — per-window missing-fraction cap (default 1.0)
//! * `SERVE_RETRIES`     — solo re-run retries per quarantined request
//!   (default 1)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use autocts::{BlockGenotype, DerivedModel, Genotype, SearchConfig};
use cts_autograd::Tape;
use cts_data::{batches_from_windows, build_windows, generate, DatasetSpec};
use cts_nn::Forecaster;
use cts_obs::Stopwatch;
use cts_ops::OpKind;
use cts_runtime::{
    AdmissionPolicy, ExecPlan, FrontConfig, ServeFront, ShardCanary, ShardFactory, ShardModel,
};
use cts_tensor::Tensor;
use rand::{rngs::SmallRng, SeedableRng};
use std::rc::Rc;
use std::sync::Arc;

/// `(model id, derivation seed)` for the two-model serving catalogue.
/// Derivation is seed-deterministic, so every shard (and the main-thread
/// reference below) compiles bit-identical replicas from these alone.
const MODELS: [(&str, u64); 2] = [("autocts-a", 7), ("autocts-b", 13)];

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn env_f64(key: &str) -> Option<f64> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

/// Parse `SERVE_THREADS` as a comma-separated list of worker counts.
fn env_threads() -> Vec<usize> {
    let raw = std::env::var("SERVE_THREADS").unwrap_or_else(|_| "1,4".into());
    let counts: Vec<usize> = raw
        .split(',')
        .filter_map(|t| t.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .collect();
    if counts.is_empty() {
        vec![1, 4]
    } else {
        counts
    }
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn fail(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::other(msg.into())
}

/// The bench genotype: temporal conv, ProbSparse attention, diffusion
/// graph conv — the same mix the verify-space sweep uses.
fn genotype(cfg: &SearchConfig) -> Genotype {
    let block = BlockGenotype {
        m: 3,
        edges: vec![
            (0, 1, OpKind::Gdcc),
            (1, 2, OpKind::InformerT),
            (0, 2, OpKind::Dgcn),
        ],
    };
    Genotype {
        blocks: vec![block.clone(); cfg.b],
        backbone: vec![0, 1],
    }
}

/// Derive one model from its seed. Deterministic: same seed → the same
/// weights, on any thread.
fn derive(seed: u64) -> Result<(Rc<DerivedModel>, Rc<ExecPlan>), String> {
    let spec = DatasetSpec::metr_la().scaled(0.04, 0.015);
    let data = generate(&spec, 11);
    let windows = build_windows(&data, 6, 24);
    let cfg = SearchConfig {
        m: 3,
        b: 2,
        d_model: 8,
        batch_size: 2,
        ..Default::default()
    };
    let genotype = genotype(&cfg);
    let mut rng = SmallRng::seed_from_u64(seed);
    let model = Rc::new(DerivedModel::new(
        &mut rng,
        &cfg,
        &genotype,
        &spec,
        &data.graph,
        &windows.scaler,
    ));
    let plan = model.compiled_plan().map_err(|e| e.to_string())?;
    Ok((model, plan))
}

fn tape_forward(model: &DerivedModel, x: &Tensor) -> Tensor {
    let tape = Tape::new();
    let xv = tape.constant(x.clone());
    model.forward(&tape, &xv).value()
}

fn bitwise_eq(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Shard factory: derives both models on the worker thread, canary-gates
/// each replica against its own tape forward (bit parity), installs the
/// tape as the last ladder rung, and prewarms the steady-state batch
/// shape so measured rounds never allocate.
fn factory(probe: Tensor, prewarm_rows: usize) -> ShardFactory {
    Arc::new(move |_shard| {
        let mut out = Vec::with_capacity(MODELS.len());
        for (id, seed) in MODELS {
            let (model, plan) = derive(seed).map_err(cts_runtime::ServeError::Config)?;
            let reference = tape_forward(&model, &probe);
            plan.prewarm(prewarm_rows);
            out.push(ShardModel {
                id: id.into(),
                plan,
                tape_fallback: Some(Box::new(move |x| Some(tape_forward(&model, x)))),
                canary: Some(ShardCanary {
                    probe: probe.clone(),
                    reference,
                    tol: 0.0,
                }),
            });
        }
        Ok(out)
    })
}

/// One measured configuration's report row.
struct Row {
    threads: usize,
    p50: f64,
    p99: f64,
    compiled_ms_per_window: f64,
    speedup: f64,
    cache_hit: u64,
    cache_miss: u64,
    cache_evict: u64,
}

fn main() -> std::io::Result<()> {
    let thread_counts = env_threads();
    let streams = env_usize("SERVE_STREAMS", 8);
    let rounds = env_usize("SERVE_ROUNDS", 200);
    let max_batch = env_usize("SERVE_BATCH", streams);
    let queue_limit = env_usize("SERVE_QUEUE", 1024);
    let cache_mb = env_f64("SERVE_CACHE_MB").unwrap_or(8.0).max(0.0);
    let cache_bytes = (cache_mb * (1 << 20) as f64) as usize;
    let deadline_ms = env_f64("SERVE_DEADLINE_MS");
    let missing_cap = env_f64("SERVE_MISSING_CAP").unwrap_or(1.0) as f32;
    let retries = env_usize("SERVE_RETRIES", 1);
    let out_dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".into());

    // Main-thread reference replicas: the bit-identity oracle for the
    // cache proof, and the tape baseline.
    let spec = DatasetSpec::metr_la().scaled(0.04, 0.015);
    let data = generate(&spec, 11);
    let windows = build_windows(&data, 6, 24);
    let locals: Vec<(Rc<DerivedModel>, Rc<ExecPlan>)> = MODELS
        .iter()
        .map(|&(_, seed)| derive(seed).map_err(fail))
        .collect::<Result<_, _>>()?;

    // A small cycling window pool: repeats across rounds are what makes
    // the result cache earn hits under steady traffic.
    let test_batches = batches_from_windows(&windows.test, 1);
    if test_batches.is_empty() {
        return Err(fail("test split produced no windows"));
    }
    let pool: Vec<Tensor> = test_batches
        .iter()
        .take(16)
        .map(|(x, _)| x.clone())
        .collect();
    let probe = pool[0].clone();

    let admission =
        AdmissionPolicy::new(spec.null_value, missing_cap).map_err(|e| fail(e.to_string()))?;
    let prewarm_rows = max_batch.min(streams).max(1);

    // Tape baseline once — per-window cost of the pre-compile serving
    // loop; every row's speedup is measured against it.
    let tape_rounds = rounds.min(25);
    let tape_sw = Stopwatch::start();
    for r in 0..tape_rounds {
        for s in 0..streams {
            let w = &pool[(r * streams + s) % pool.len()];
            let _ = tape_forward(&locals[s % locals.len()].0, w);
        }
    }
    let tape_ms_per_window = tape_sw.elapsed_secs() * 1e3 / (tape_rounds * streams) as f64;

    // Counters cover every row end to end (warm-up and chaos included —
    // they are real traffic through the real path).
    cts_obs::serve::reset();
    let mut rows: Vec<Row> = Vec::with_capacity(thread_counts.len());
    let mut served = 0usize;
    let mut cache_proofs = 0usize;
    let mut chaos_recovered = 0usize;
    let mut chaos_total = 0usize;

    for &threads in &thread_counts {
        let cfg = FrontConfig {
            threads,
            max_batch,
            queue_limit,
            retries,
            admission,
            cache_bytes,
        };
        let mut front = ServeFront::new(cfg, factory(probe.clone(), prewarm_rows))
            .map_err(|e| fail(format!("front with {threads} thread(s) failed: {e}")))?;
        println!(
            "serve_bench: {threads} thread(s) serving [{}], {streams} stream(s), \
             {rounds} round(s), max_batch {max_batch}, cache {cache_mb} MiB",
            front.models().join(", ")
        );
        let before = cts_obs::serve::snapshot();

        // Warm-up: run the steady-state shapes through every shard once.
        for r in 0..3 {
            for s in 0..streams {
                let w = pool[(r * streams + s) % pool.len()].clone();
                let id = MODELS[s % MODELS.len()].0;
                front
                    .submit_with(id, w, deadline_ms, 0)
                    .map_err(|e| fail(e.to_string()))?;
            }
            front.flush().map_err(|e| fail(e.to_string()))?;
        }

        // Measured rounds: one flush latency sample per round. The round
        // index doubles as the window origin, driving the cache TTL.
        let mut flush_ms = Vec::with_capacity(rounds);
        let total = Stopwatch::start();
        for r in 0..rounds {
            for s in 0..streams {
                let w = pool[(r * streams + s) % pool.len()].clone();
                let id = MODELS[s % MODELS.len()].0;
                front
                    .submit_with(id, w, deadline_ms, r as u64)
                    .map_err(|e| fail(e.to_string()))?;
            }
            let sw = Stopwatch::start();
            let out = front.flush().map_err(|e| fail(e.to_string()))?;
            flush_ms.push(sw.elapsed_ms());
            if out.len() != streams {
                return Err(fail(format!(
                    "flush answered {} of {streams} requests",
                    out.len()
                )));
            }
            served += out.iter().filter(|(_, r)| r.is_ok()).count();
        }
        let compiled_ms_per_window = total.elapsed_secs() * 1e3 / (rounds * streams) as f64;
        flush_ms.sort_by(|a, b| a.total_cmp(b));

        // Cache proof: serve a window nobody has seen (so the miss is
        // computed as a solo run — ProbSparse selection is batch-averaged,
        // making batched rows legitimately differ from solo ones), then
        // serve it again. Both the solo answer and the cached one must be
        // bit-identical to a fresh main-thread try_run, or the bench
        // fails. The second flush must actually hit the cache when it is
        // enabled.
        for (m, &(id, _)) in MODELS.iter().enumerate() {
            let mut w = pool[m].clone();
            w.data_mut()[0] += 1e-3 * (m as f32 + 1.0); // unseen content
            let fresh = locals[m].1.try_run(&w).map_err(|e| fail(e.to_string()))?;
            let hits_before = cts_obs::serve::snapshot().cache_hit;
            for pass in ["solo-computed", "cached"] {
                front
                    .submit_with(id, w.clone(), None, rounds as u64)
                    .map_err(|e| fail(e.to_string()))?;
                let out = front.flush().map_err(|e| fail(e.to_string()))?;
                let (_, answer) = out
                    .into_iter()
                    .next()
                    .ok_or_else(|| fail("cache-proof flush returned no answer"))?;
                let y = answer.map_err(|e| fail(e.to_string()))?;
                if !bitwise_eq(&y, &fresh) {
                    return Err(fail(format!(
                        "cache proof FAILED: '{id}' {pass} answer diverged \
                         from a fresh try_run"
                    )));
                }
            }
            if cache_bytes > 0 && cts_obs::serve::snapshot().cache_hit == hits_before {
                return Err(fail(format!(
                    "cache proof FAILED: '{id}' repeat window never hit the cache"
                )));
            }
            cache_proofs += 1;
        }

        // Chaos round: admission-level hostility (plan-level faults are
        // thread-local and belong to the chaos test suite). Every
        // failure must come back as a typed per-ticket error.
        let _ = front.submit(MODELS[0].0, Tensor::zeros([1, 2, 3, 4])); // shape
        let mut poisoned = pool[0].clone();
        poisoned.data_mut()[0] = f32::NAN; // masked into the null sentinel
        let _ = front.submit(MODELS[0].0, poisoned);
        let _ = front.submit_with(MODELS[1].0, pool[1].clone(), Some(-1.0), 0);
        let _ = front.submit("no-such-model", pool[0].clone());
        let _ = front.submit(MODELS[1].0, pool[2].clone());
        let chaos = front.flush().map_err(|e| fail(e.to_string()))?;
        chaos_total += chaos.len();
        chaos_recovered += chaos.iter().filter(|(_, r)| r.is_ok()).count();

        let after = cts_obs::serve::snapshot();
        rows.push(Row {
            threads,
            p50: percentile(&flush_ms, 0.50),
            p99: percentile(&flush_ms, 0.99),
            compiled_ms_per_window,
            speedup: tape_ms_per_window / compiled_ms_per_window,
            cache_hit: after.cache_hit - before.cache_hit,
            cache_miss: after.cache_miss - before.cache_miss,
            cache_evict: after.cache_evict - before.cache_evict,
        });
        drop(front); // joins the workers before the next row starts
    }

    let counters = cts_obs::serve::rows();
    let shard_rows = cts_obs::serve::shard_rows();
    cts_obs::serve::emit_row();

    for row in &rows {
        println!(
            "  {} thread(s): p50 {:.3} ms, p99 {:.3} ms, {:.4} ms/window \
             (tape {tape_ms_per_window:.4}, speedup {:.2}x), cache {}/{} hit/miss, \
             {} evicted",
            row.threads,
            row.p50,
            row.p99,
            row.compiled_ms_per_window,
            row.speedup,
            row.cache_hit,
            row.cache_miss,
            row.cache_evict,
        );
    }
    println!(
        "  served {served} measured requests; cache proof passed for \
         {cache_proofs} model-row(s); chaos recovered {chaos_recovered}/{chaos_total}"
    );
    let counter_line: Vec<String> = counters
        .iter()
        .filter(|(_, v)| *v > 0)
        .map(|(k, v)| format!("{k} {v}"))
        .collect();
    println!("  degradation counters: {}", counter_line.join(", "));

    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"streams\": {streams}, \"max_batch\": {max_batch}, \
                 \"rounds\": {rounds}, \"p50_ms\": {:.6}, \"p99_ms\": {:.6}, \
                 \"compiled_ms_per_window\": {:.6}, \
                 \"tape_ms_per_window\": {tape_ms_per_window:.6}, \"speedup\": {:.4}, \
                 \"cache_hit\": {}, \"cache_miss\": {}, \"cache_evict\": {}}}",
                r.threads,
                r.p50,
                r.p99,
                r.compiled_ms_per_window,
                r.speedup,
                r.cache_hit,
                r.cache_miss,
                r.cache_evict,
            )
        })
        .collect();
    let shard_json: Vec<String> = shard_rows
        .iter()
        .map(|(shard, depth, peak)| {
            format!("{{\"shard\": {shard}, \"depth\": {depth}, \"peak\": {peak}}}")
        })
        .collect();
    let counter_json: Vec<String> = counters
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect();
    let par = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let cfg = SearchConfig {
        m: 3,
        b: 2,
        d_model: 8,
        batch_size: 2,
        ..Default::default()
    };
    let json = format!(
        "{{\n  \"host\": {{\"available_parallelism\": {par}, \
         \"simd_detected\": \"{simd_detected}\", \"simd_active\": \"{simd_active}\"}},\n  \
         \"rows\": [\n{}\n  ],\n  \"summary\": {{\"genotype\": \"{}\", \
         \"models\": [{}], \"cache_mb\": {cache_mb}, \"windows_served\": {served}, \
         \"cache_proof_rows\": {cache_proofs}, \
         \"chaos_recovered\": {chaos_recovered}}},\n  \
         \"serve_counters\": {{{}}},\n  \"shard_depth\": [{}]\n}}\n",
        row_json.join(",\n"),
        genotype(&cfg).to_text(),
        MODELS
            .iter()
            .map(|(id, _)| format!("\"{id}\""))
            .collect::<Vec<_>>()
            .join(", "),
        counter_json.join(", "),
        shard_json.join(", "),
        simd_detected = cts_tensor::simd::detected_name(),
        simd_active = cts_tensor::simd::level_name(),
    );
    let path = format!("{out_dir}/BENCH_serve.json");
    std::fs::write(&path, json)?;
    println!("  wrote {path}");
    Ok(())
}
