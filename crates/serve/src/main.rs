//! `serve_bench`: latency benchmark of the fault-tolerant serving layer.
//!
//! Builds a smoke-scale [`DerivedModel`], compiles it to a tape-free
//! [`cts_runtime::ExecPlan`], admits it through the [`PlanRegistry`]
//! canary gate (parity vs the tape on a probe window), and drives
//! `SERVE_STREAMS` concurrent sensor streams through a [`MicroBatcher`]
//! for `SERVE_ROUNDS` rounds. Each round submits one window per stream
//! and flushes once; the flush wall-time is the serving latency sample.
//! After measurement, a chaos round exercises every degradation-ladder
//! rung (admission reject, deadline shed, batch failure → quarantine →
//! solo re-run) so the counters in the report are exercised end to end.
//!
//! Emits `BENCH_serve.json` (override the directory with
//! `BENCH_OUT_DIR`): p50/p99 flush latency, compiled and tape
//! milliseconds per window, the tape-vs-compiled `speedup` column, and
//! every `cts_obs::serve` degradation counter.
//!
//! Knobs (environment):
//! * `SERVE_STREAMS`     — concurrent streams per round (default 8)
//! * `SERVE_ROUNDS`      — measured rounds (default 200)
//! * `SERVE_BATCH`       — micro-batcher window cap (default = streams)
//! * `SERVE_QUEUE`       — pending-queue bound (default 1024)
//! * `SERVE_DEADLINE_MS` — per-request deadline budget (default: none)
//! * `SERVE_MISSING_CAP` — per-window missing-fraction cap (default 1.0)
//! * `SERVE_RETRIES`     — solo re-run retries per quarantined request
//!   (default 1)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use autocts::{BlockGenotype, DerivedModel, Genotype, SearchConfig};
use cts_autograd::Tape;
use cts_data::{batches_from_windows, build_windows, generate, DatasetSpec};
use cts_nn::{fault, Forecaster};
use cts_obs::Stopwatch;
use cts_ops::OpKind;
use cts_runtime::{AdmissionPolicy, MicroBatcher, PlanRegistry};
use cts_tensor::Tensor;
use rand::{rngs::SmallRng, SeedableRng};
use std::rc::Rc;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn env_f64(key: &str) -> Option<f64> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn fail(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::other(msg.into())
}

fn main() -> std::io::Result<()> {
    let streams = env_usize("SERVE_STREAMS", 8);
    let rounds = env_usize("SERVE_ROUNDS", 200);
    let max_batch = env_usize("SERVE_BATCH", streams);
    let queue_limit = env_usize("SERVE_QUEUE", 1024);
    let deadline_ms = env_f64("SERVE_DEADLINE_MS");
    let missing_cap = env_f64("SERVE_MISSING_CAP").unwrap_or(1.0) as f32;
    let retries = env_usize("SERVE_RETRIES", 1);
    let out_dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".into());

    // Smoke-scale derived model, same scale as the verify-space sweep:
    // a representative genotype mixing temporal conv, ProbSparse
    // attention, and diffusion graph conv.
    let spec = DatasetSpec::metr_la().scaled(0.04, 0.015);
    let data = generate(&spec, 11);
    let windows = build_windows(&data, 6, 24);
    let cfg = SearchConfig {
        m: 3,
        b: 2,
        d_model: 8,
        batch_size: 2,
        ..Default::default()
    };
    let block = BlockGenotype {
        m: 3,
        edges: vec![
            (0, 1, OpKind::Gdcc),
            (1, 2, OpKind::InformerT),
            (0, 2, OpKind::Dgcn),
        ],
    };
    let genotype = Genotype {
        blocks: vec![block.clone(); cfg.b],
        backbone: vec![0, 1],
    };
    let mut rng = SmallRng::seed_from_u64(7);
    let model = Rc::new(DerivedModel::new(
        &mut rng,
        &cfg,
        &genotype,
        &spec,
        &data.graph,
        &windows.scaler,
    ));

    let plan = model
        .compiled_plan()
        .map_err(|e| fail(e.to_string()))?;

    // One live window per stream, cycled from the test split.
    let test_batches = batches_from_windows(&windows.test, 1);
    if test_batches.is_empty() {
        return Err(fail("test split produced no windows"));
    }
    let stream_windows: Vec<Tensor> = (0..streams)
        .map(|s| test_batches[s % test_batches.len()].0.clone())
        .collect();

    // Counters cover everything from the canary gate on (warm-up traffic
    // included — it is real traffic through the real path).
    cts_obs::serve::reset();

    // Canary gate: the plan must match the tape bit for bit on a probe
    // window before it may serve.
    let probe = &stream_windows[0];
    let reference = {
        let tape = Tape::new();
        let xv = tape.constant(probe.clone());
        model.forward(&tape, &xv).value()
    };
    let mut registry = PlanRegistry::new();
    registry
        .admit("autocts-smoke", Rc::clone(&plan), probe, &reference, 0.0)
        .map_err(|e| fail(format!("canary gate rejected the plan: {e}")))?;
    println!(
        "serve_bench: {} plan(s) admitted ({}), {streams} stream(s), \
         {rounds} round(s), max_batch {max_batch}, queue {queue_limit}, \
         retries {retries}",
        registry.len(),
        registry.ids().join(", ")
    );

    // The serving batcher: admission from the dataset's null sentinel,
    // bounded queue, and the model's tape forward as the last ladder rung.
    let fallback_model = Rc::clone(&model);
    let admission = AdmissionPolicy::new(spec.null_value, missing_cap)
        .map_err(|e| fail(e.to_string()))?;
    let mut batcher = MicroBatcher::new(Rc::clone(&plan), max_batch)
        .map_err(|e| fail(e.to_string()))?
        .with_queue_limit(queue_limit)
        .map_err(|e| fail(e.to_string()))?
        .with_admission(admission)
        .with_retries(retries)
        .with_tape_fallback(Box::new(move |x| {
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            Some(fallback_model.forward(&tape, &xv).value())
        }));

    // Warm-up: pre-size the arena for the coalesced batch and run the
    // steady-state shapes once so measured rounds never allocate.
    plan.prewarm(streams.min(max_batch));
    for _ in 0..3 {
        for w in &stream_windows {
            batcher.submit(w.clone()).map_err(|e| fail(e.to_string()))?;
        }
        let _ = batcher.flush();
    }

    // Measured rounds: one flush latency sample per round.
    let mut flush_ms = Vec::with_capacity(rounds);
    let mut served = 0usize;
    let total = Stopwatch::start();
    for _ in 0..rounds {
        for w in &stream_windows {
            batcher
                .submit_with_deadline(w.clone(), deadline_ms)
                .map_err(|e| fail(e.to_string()))?;
        }
        let sw = Stopwatch::start();
        let out = batcher.flush();
        flush_ms.push(sw.elapsed_ms());
        if out.len() != streams {
            return Err(fail(format!(
                "flush answered {} of {streams} requests",
                out.len()
            )));
        }
        served += out.iter().filter(|r| r.is_ok()).count();
    }
    let compiled_secs = total.elapsed_secs();
    let compiled_ms_per_window = compiled_secs * 1e3 / (rounds * streams) as f64;
    flush_ms.sort_by(|a, b| a.total_cmp(b));
    let p50 = percentile(&flush_ms, 0.50);
    let p99 = percentile(&flush_ms, 0.99);

    // Tape baseline over the same windows (fewer rounds — the tape path
    // is the slow one): one Tape forward per request, as the pre-compile
    // serving loop would have run it.
    let tape_rounds = rounds.min(25);
    let tape_sw = Stopwatch::start();
    for _ in 0..tape_rounds {
        for w in &stream_windows {
            let tape = Tape::new();
            let xv = tape.constant(w.clone());
            let _ = model.forward(&tape, &xv).value();
        }
    }
    let tape_ms_per_window = tape_sw.elapsed_secs() * 1e3 / (tape_rounds * streams) as f64;
    let speedup = tape_ms_per_window / compiled_ms_per_window;

    // Chaos round (after measurement so it cannot skew latency): one
    // malformed request, one expired deadline, and one injected batch
    // failure whose quarantined request recovers solo.
    let _ = batcher.submit(Tensor::zeros([1, 2, 3, 4])); // rejected: shape
    let mut poisoned = stream_windows[0].clone();
    poisoned.data_mut()[0] = f32::NAN; // masked into the null sentinel
    let _ = batcher.submit(poisoned);
    let _ = batcher.submit_with_deadline(stream_windows[0].clone(), Some(-1.0));
    let _ = batcher.submit(stream_windows[0].clone());
    fault::arm(fault::FaultPlan {
        fail_plan_run_at: Some(0),
        ..fault::FaultPlan::default()
    });
    let chaos_out = batcher.flush();
    fault::disarm();
    let chaos_recovered = chaos_out.iter().filter(|r| r.is_ok()).count();

    let counters = cts_obs::serve::rows();
    cts_obs::serve::emit_row();

    println!(
        "  flush latency: p50 {p50:.3} ms, p99 {p99:.3} ms \
         ({streams} windows per flush)"
    );
    println!(
        "  per-window: compiled {compiled_ms_per_window:.4} ms, \
         tape {tape_ms_per_window:.4} ms, speedup {speedup:.2}x"
    );
    println!(
        "  served {served}/{} measured requests; chaos round recovered \
         {chaos_recovered}/{} submissions",
        rounds * streams,
        chaos_out.len()
    );
    let counter_line: Vec<String> = counters
        .iter()
        .filter(|(_, v)| *v > 0)
        .map(|(k, v)| format!("{k} {v}"))
        .collect();
    println!("  degradation counters: {}", counter_line.join(", "));

    let counter_json: Vec<String> = counters
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect();
    let par = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"host\": {{\"available_parallelism\": {par}, \
         \"simd_detected\": \"{simd_detected}\", \"simd_active\": \"{simd_active}\"}},\n  \
         \"rows\": [\n    {{\"streams\": {streams}, \"max_batch\": {max_batch}, \
         \"rounds\": {rounds}, \"p50_ms\": {p50:.6}, \"p99_ms\": {p99:.6}, \
         \"compiled_ms_per_window\": {compiled_ms_per_window:.6}, \
         \"tape_ms_per_window\": {tape_ms_per_window:.6}, \
         \"speedup\": {speedup:.4}}}\n  ],\n  \"summary\": {{\"model\": \"{}\", \
         \"plans_registered\": {}, \"windows_served\": {served}, \
         \"chaos_recovered\": {chaos_recovered}, \"speedup\": {speedup:.4}}},\n  \
         \"serve_counters\": {{{}}}\n}}\n",
        genotype.to_text(),
        registry.len(),
        counter_json.join(", "),
        simd_detected = cts_tensor::simd::detected_name(),
        simd_active = cts_tensor::simd::level_name(),
    );
    let path = format!("{out_dir}/BENCH_serve.json");
    std::fs::write(&path, json)?;
    println!("  wrote {path}");
    Ok(())
}
