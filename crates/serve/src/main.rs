//! `serve_bench`: latency benchmark of the forecast-serving layer.
//!
//! Builds a smoke-scale [`DerivedModel`], compiles it to a tape-free
//! [`cts_runtime::ExecPlan`], registers it in a [`PlanRegistry`], and
//! drives `SERVE_STREAMS` concurrent sensor streams through a
//! [`MicroBatcher`] for `SERVE_ROUNDS` rounds. Each round submits one
//! window per stream and flushes once; the flush wall-time is the
//! serving latency sample.
//!
//! Emits `BENCH_serve.json` (override the directory with
//! `BENCH_OUT_DIR`): p50/p99 flush latency, compiled and tape
//! milliseconds per window, and the tape-vs-compiled `speedup` column.
//!
//! Knobs (environment):
//! * `SERVE_STREAMS` — concurrent streams per round (default 8)
//! * `SERVE_ROUNDS`  — measured rounds (default 200)
//! * `SERVE_BATCH`   — micro-batcher window cap (default = streams)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use autocts::{BlockGenotype, DerivedModel, Genotype, SearchConfig};
use cts_autograd::Tape;
use cts_data::{batches_from_windows, build_windows, generate, DatasetSpec};
use cts_nn::Forecaster;
use cts_obs::Stopwatch;
use cts_ops::OpKind;
use cts_runtime::{MicroBatcher, PlanRegistry};
use cts_tensor::Tensor;
use rand::{rngs::SmallRng, SeedableRng};
use std::rc::Rc;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() -> std::io::Result<()> {
    let streams = env_usize("SERVE_STREAMS", 8);
    let rounds = env_usize("SERVE_ROUNDS", 200);
    let max_batch = env_usize("SERVE_BATCH", streams);
    let out_dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".into());

    // Smoke-scale derived model, same scale as the verify-space sweep:
    // a representative genotype mixing temporal conv, ProbSparse
    // attention, and diffusion graph conv.
    let spec = DatasetSpec::metr_la().scaled(0.04, 0.015);
    let data = generate(&spec, 11);
    let windows = build_windows(&data, 6, 24);
    let cfg = SearchConfig {
        m: 3,
        b: 2,
        d_model: 8,
        batch_size: 2,
        ..Default::default()
    };
    let block = BlockGenotype {
        m: 3,
        edges: vec![
            (0, 1, OpKind::Gdcc),
            (1, 2, OpKind::InformerT),
            (0, 2, OpKind::Dgcn),
        ],
    };
    let genotype = Genotype {
        blocks: vec![block.clone(); cfg.b],
        backbone: vec![0, 1],
    };
    let mut rng = SmallRng::seed_from_u64(7);
    let model = DerivedModel::new(&mut rng, &cfg, &genotype, &spec, &data.graph, &windows.scaler);

    let plan = model
        .compiled_plan()
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    let mut registry = PlanRegistry::new();
    registry.insert("autocts-smoke", Rc::clone(&plan));
    println!(
        "serve_bench: {} plan(s) registered ({}), {streams} stream(s), \
         {rounds} round(s), max_batch {max_batch}",
        registry.len(),
        registry.ids().join(", ")
    );

    // One live window per stream, cycled from the test split.
    let test_batches = batches_from_windows(&windows.test, 1);
    assert!(!test_batches.is_empty(), "test split produced no windows");
    let stream_windows: Vec<Tensor> = (0..streams)
        .map(|s| test_batches[s % test_batches.len()].0.clone())
        .collect();

    // Warm-up: pre-size the arena for the coalesced batch and run the
    // steady-state shapes once so measured rounds never allocate.
    plan.prewarm(streams.min(max_batch));
    let mut batcher = MicroBatcher::new(Rc::clone(&plan), max_batch);
    for _ in 0..3 {
        for w in &stream_windows {
            batcher.submit(w.clone());
        }
        let _ = batcher.flush();
    }

    // Measured rounds: one flush latency sample per round.
    let mut flush_ms = Vec::with_capacity(rounds);
    let total = Stopwatch::start();
    for _ in 0..rounds {
        for w in &stream_windows {
            batcher.submit(w.clone());
        }
        let sw = Stopwatch::start();
        let out = batcher.flush();
        flush_ms.push(sw.elapsed_ms());
        assert_eq!(out.len(), streams);
    }
    let compiled_secs = total.elapsed_secs();
    let compiled_ms_per_window = compiled_secs * 1e3 / (rounds * streams) as f64;
    flush_ms.sort_by(|a, b| a.total_cmp(b));
    let p50 = percentile(&flush_ms, 0.50);
    let p99 = percentile(&flush_ms, 0.99);

    // Tape baseline over the same windows (fewer rounds — the tape path
    // is the slow one): one Tape forward per request, as the pre-compile
    // serving loop would have run it.
    let tape_rounds = rounds.min(25);
    let tape_sw = Stopwatch::start();
    for _ in 0..tape_rounds {
        for w in &stream_windows {
            let tape = Tape::new();
            let xv = tape.constant(w.clone());
            let _ = model.forward(&tape, &xv).value();
        }
    }
    let tape_ms_per_window = tape_sw.elapsed_secs() * 1e3 / (tape_rounds * streams) as f64;
    let speedup = tape_ms_per_window / compiled_ms_per_window;

    println!(
        "  flush latency: p50 {p50:.3} ms, p99 {p99:.3} ms \
         ({streams} windows per flush)"
    );
    println!(
        "  per-window: compiled {compiled_ms_per_window:.4} ms, \
         tape {tape_ms_per_window:.4} ms, speedup {speedup:.2}x"
    );

    let json = format!(
        "{{\n  \"rows\": [\n    {{\"streams\": {streams}, \"max_batch\": {max_batch}, \
         \"rounds\": {rounds}, \"p50_ms\": {p50:.6}, \"p99_ms\": {p99:.6}, \
         \"compiled_ms_per_window\": {compiled_ms_per_window:.6}, \
         \"tape_ms_per_window\": {tape_ms_per_window:.6}, \
         \"speedup\": {speedup:.4}}}\n  ],\n  \"summary\": {{\"model\": \"{}\", \
         \"plans_registered\": {}, \"windows_served\": {}, \"speedup\": {speedup:.4}}}\n}}\n",
        genotype.to_text(),
        registry.len(),
        rounds * streams
    );
    let path = format!("{out_dir}/BENCH_serve.json");
    std::fs::write(&path, json)?;
    println!("  wrote {path}");
    Ok(())
}
