//! Model evaluation: run a forecaster over batches, collect predictions,
//! and compute the paper's metrics; plus the architecture-evaluation stage
//! (retrain the derived model from scratch, §3.4).

use crate::{DerivedModel, Genotype, SearchConfig};
use cts_data::{
    batches_from_windows, horizon_slice, Batches, DatasetSpec, EvalMetrics, SplitWindows,
};
use cts_graph::SensorGraph;
use cts_nn::{train_full, Forecaster, LossKind, TrainConfig, TrainError};
use cts_tensor::{ops, Tensor};
use rand::{rngs::SmallRng, SeedableRng};

/// RAII guard: flips a model into eval mode and restores the mode it had on
/// entry when dropped. The eval helpers used to `set_training(false)` and
/// never restore, silently leaving a mid-training model (batch-norm
/// statistics frozen) in eval mode after any validation pass.
struct EvalModeGuard<'a> {
    model: &'a dyn Forecaster,
    was_training: bool,
}

impl<'a> EvalModeGuard<'a> {
    fn new(model: &'a dyn Forecaster) -> Self {
        let was_training = model.is_training();
        model.set_training(false);
        Self {
            model,
            was_training,
        }
    }
}

impl Drop for EvalModeGuard<'_> {
    fn drop(&mut self) {
        self.model.set_training(self.was_training);
    }
}

/// Stacked predictions and targets over a batch list: both `[S, N, Q]`.
///
/// Uses the model's gradient-free [`Forecaster::forward_inference`] — for a
/// [`DerivedModel`] that is the compiled tape-free plan.
pub fn collect_predictions(model: &dyn Forecaster, batches: &Batches) -> (Tensor, Tensor) {
    let _eval = EvalModeGuard::new(model);
    let mut preds: Vec<Tensor> = Vec::with_capacity(batches.len());
    let mut targets: Vec<Tensor> = Vec::with_capacity(batches.len());
    for (x, y) in batches {
        preds.push(model.forward_inference(x));
        targets.push(y.clone());
    }
    let pred_refs: Vec<&Tensor> = preds.iter().collect();
    let target_refs: Vec<&Tensor> = targets.iter().collect();
    (ops::concat(&pred_refs, 0), ops::concat(&target_refs, 0))
}

/// Full evaluation report of one trained model on one dataset.
#[derive(Clone, Debug)]
pub struct EvalReport {
    /// Metrics over all horizons.
    pub overall: EvalMetrics,
    /// Per-horizon metrics (index `h` = horizon `h+1`); used for the
    /// 15/30/60-min columns of Tables 5, 9–10, 17–20, 35–36.
    pub horizons: Vec<EvalMetrics>,
    /// Mean training seconds per epoch (Tables 27–34).
    pub train_secs_per_epoch: f64,
    /// Mean inference milliseconds per window (Tables 27–34).
    pub inference_ms_per_window: f64,
    /// Trainable parameter count (Tables 27–34).
    pub parameters: usize,
}

/// Evaluate a trained forecaster on test batches.
pub fn evaluate_model(
    model: &dyn Forecaster,
    test_batches: &Batches,
    null_value: Option<f32>,
) -> (EvalMetrics, Vec<EvalMetrics>) {
    let (pred, target) = collect_predictions(model, test_batches);
    let overall = EvalMetrics::compute(&pred, &target, null_value);
    let q = pred.shape()[2];
    let horizons = (0..q)
        .map(|h| {
            EvalMetrics::compute(&horizon_slice(&pred, h), &horizon_slice(&target, h), null_value)
        })
        .collect();
    (overall, horizons)
}

/// Measure mean inference latency per window (milliseconds) through the
/// model's gradient-free forward (the compiled plan for derived models).
pub fn inference_ms_per_window(model: &dyn Forecaster, batches: &Batches) -> f64 {
    let _eval = EvalModeGuard::new(model);
    let mut windows = 0usize;
    let started = cts_obs::Stopwatch::start();
    for (x, _) in batches {
        let _ = model.forward_inference(x);
        windows += x.shape()[0];
    }
    if windows == 0 {
        0.0
    } else {
        started.elapsed_secs() * 1e3 / windows as f64
    }
}

/// Train any forecaster on train(+val) windows and evaluate on test —
/// the protocol every baseline and AutoCTS itself follows.
///
/// # Errors
/// Propagates [`TrainError`] from the training loop: watchdog budget
/// exhaustion, interruption, or checkpoint I/O failures.
pub fn train_and_evaluate(
    model: &dyn Forecaster,
    spec: &DatasetSpec,
    windows: &SplitWindows,
    train_cfg: &TrainConfig,
    batch_size: usize,
) -> Result<EvalReport, TrainError> {
    let train_batches = batches_from_windows(&windows.train, batch_size);
    let val_batches = batches_from_windows(&windows.val, batch_size);
    let test_batches = batches_from_windows(&windows.test, batch_size);
    let report = train_full(
        model,
        &train_batches,
        (!val_batches.is_empty()).then_some(&val_batches[..]),
        train_cfg,
    )?;
    let (overall, horizons) = evaluate_model(model, &test_batches, spec.null_value);
    Ok(EvalReport {
        overall,
        horizons,
        train_secs_per_epoch: report.secs_per_epoch,
        inference_ms_per_window: inference_ms_per_window(model, &test_batches),
        parameters: cts_nn::count_parameters(&model.parameters()),
    })
}

/// Architecture evaluation (§3.4): instantiate the genotype with fresh
/// weights, retrain on the training+validation windows, report on test.
///
/// The retraining loop inherits the search config's divergence watchdog,
/// and — when the config checkpoints — persists its own run state to the
/// `retrain` stage file (see `CheckpointConfig::stage`), so a killed
/// retraining resumes from its last epoch boundary instead of restarting.
///
/// # Errors
/// Propagates [`TrainError`] from the training loop.
pub fn evaluate_genotype(
    cfg: &SearchConfig,
    genotype: &Genotype,
    spec: &DatasetSpec,
    graph: &SensorGraph,
    windows: &SplitWindows,
    epochs: usize,
) -> Result<EvalReport, TrainError> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(0x9e37));
    let model = DerivedModel::new(&mut rng, cfg, genotype, spec, graph, &windows.scaler);
    let train_cfg = TrainConfig {
        epochs,
        lr: cfg.weight_lr,
        weight_decay: cfg.weight_wd,
        clip: cfg.clip,
        loss: LossKind::MaskedMae {
            null_value: spec.null_value,
        },
        patience: 0,
        checkpoint: cfg.checkpoint.as_ref().map(|ck| ck.stage("retrain")),
        watchdog: cfg.watchdog.clone(),
    };
    // §3.4: retrain on the original training AND validation data.
    let merged = windows.train_and_val();
    let train_batches = batches_from_windows(&merged, cfg.batch_size);
    let test_batches = batches_from_windows(&windows.test, cfg.batch_size);
    let report = {
        let _span = cts_obs::span(cts_obs::Phase::Retrain);
        train_full(&model, &train_batches, None, &train_cfg)?
    };
    let (overall, horizons) = evaluate_model(&model, &test_batches, spec.null_value);
    Ok(EvalReport {
        overall,
        horizons,
        train_secs_per_epoch: report.secs_per_epoch,
        inference_ms_per_window: inference_ms_per_window(&model, &test_batches),
        parameters: cts_nn::count_parameters(&model.parameters()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_autograd::{Parameter, Tape, Var};
    use std::cell::Cell;

    /// Predicts the mean of the input history per node (sane baseline).
    struct MeanModel;

    impl Forecaster for MeanModel {
        fn forward(&self, _tape: &Tape, x: &Var) -> Var {
            // x [B,N,P,F] -> mean over P of feature 0 -> [B,N,1]
            x.slice(3, 0, 1).mean_axis(2, false)
        }
        fn parameters(&self) -> Vec<Parameter> {
            vec![]
        }
    }

    #[test]
    fn collect_stacks_all_samples() {
        let batches: Batches = (0..3)
            .map(|i| {
                (
                    Tensor::full([2, 3, 4, 1], i as f32),
                    Tensor::full([2, 3, 1], i as f32),
                )
            })
            .collect();
        let (pred, target) = collect_predictions(&MeanModel, &batches);
        assert_eq!(pred.shape(), &[6, 3, 1]);
        assert_eq!(target.shape(), &[6, 3, 1]);
        // MeanModel reproduces constant batches exactly
        assert!(pred.approx_eq(&target, 1e-6));
    }

    #[test]
    fn evaluate_model_perfect_on_constant_data() {
        let batches: Batches = vec![(
            Tensor::full([2, 2, 4, 1], 3.0),
            Tensor::full([2, 2, 1], 3.0),
        )];
        let (overall, horizons) = evaluate_model(&MeanModel, &batches, None);
        assert_eq!(overall.mae, 0.0);
        assert_eq!(horizons.len(), 1);
        assert_eq!(horizons[0].rmse, 0.0);
    }

    /// A model with mode-dependent state (stand-in for batch-norm).
    struct ModalModel {
        training: Cell<bool>,
    }

    impl Forecaster for ModalModel {
        fn forward(&self, _tape: &Tape, x: &Var) -> Var {
            x.slice(3, 0, 1).mean_axis(2, false)
        }
        fn parameters(&self) -> Vec<Parameter> {
            vec![]
        }
        fn set_training(&self, training: bool) {
            self.training.set(training);
        }
        fn is_training(&self) -> bool {
            self.training.get()
        }
    }

    /// Regression: the eval helpers used to leave any stateful model stuck
    /// in eval mode. They must restore the entry mode — both directions.
    #[test]
    fn eval_helpers_restore_training_mode() {
        let model = ModalModel {
            training: Cell::new(true),
        };
        let batches: Batches = vec![(
            Tensor::full([2, 2, 4, 1], 3.0),
            Tensor::full([2, 2, 1], 3.0),
        )];
        let _ = collect_predictions(&model, &batches);
        assert!(
            model.is_training(),
            "collect_predictions left the model in eval mode"
        );
        let _ = inference_ms_per_window(&model, &batches);
        assert!(
            model.is_training(),
            "inference_ms_per_window left the model in eval mode"
        );
        let _ = evaluate_model(&model, &batches, None);
        assert!(model.is_training(), "evaluate_model flipped the mode");
        // An already-eval model must stay in eval mode afterwards.
        model.set_training(false);
        let _ = collect_predictions(&model, &batches);
        assert!(!model.is_training());
    }

    #[test]
    fn inference_timer_positive() {
        let batches: Batches = vec![(
            Tensor::full([4, 2, 3, 1], 1.0),
            Tensor::full([4, 2, 1], 1.0),
        )];
        let ms = inference_ms_per_window(&MeanModel, &batches);
        assert!(ms >= 0.0);
    }
}
