//! The supernet forecasting model (search stage) and the derived
//! forecasting model (architecture-evaluation stage).
//!
//! Both share the three-part structure of Figure 2: embedding layer →
//! ST-backbone → output layer. The output layer reads the sum of all block
//! outputs (the hard-coded skip connections of §3.3) and maps the flattened
//! `[T·D]` features of each node to the `Q` forecast steps, then applies
//! the dataset scaler's inverse affine so predictions live in the data's
//! original units.

use crate::{BlockGenotype, Genotype, MacroTopology, MicroCell, SearchConfig};
use cts_autograd::{Parameter, Tape, Var};
use cts_data::{DatasetSpec, Scaler, Task};
use cts_graph::SensorGraph;
use cts_nn::{Forecaster, Linear};
use cts_ops::{build_operator, GraphContext, StOperator};
use cts_runtime::{BlockPlan, ExecPlan, PlanError, PlanSpec};
use cts_tensor::Tensor;
use rand::Rng;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Output horizon for a task.
fn q_out(spec: &DatasetSpec) -> usize {
    match spec.task {
        Task::MultiStep => spec.output_len,
        Task::SingleStep { .. } => 1,
    }
}

fn make_context(cfg: &SearchConfig, rng: &mut impl Rng, graph: &SensorGraph) -> GraphContext {
    let ctx = GraphContext::from_graph(graph, cfg.gcn_k);
    if ctx.has_spatial_signal() {
        ctx
    } else {
        // No predefined adjacency (Solar-Energy / Electricity): learn one.
        GraphContext::from_graph(graph, cfg.gcn_k).with_adaptive(rng, cfg.adaptive_emb)
    }
}

/// Shared embedding/output scaffolding. The layers and graph context are
/// reference-counted so a compiled [`ExecPlan`] can share them with the
/// model and read their weights in place.
struct Scaffold {
    embed: Rc<Linear>,
    output: Rc<Linear>,
    ctx: Rc<GraphContext>,
    out_scale: f32,
    out_shift: f32,
    input_len: usize,
    d_model: usize,
}

impl Scaffold {
    fn new(
        rng: &mut impl Rng,
        cfg: &SearchConfig,
        spec: &DatasetSpec,
        graph: &SensorGraph,
        scaler: &Scaler,
    ) -> Self {
        Self {
            embed: Rc::new(Linear::new(rng, "embed", spec.features, cfg.d_model, true)),
            output: Rc::new(Linear::new(
                rng,
                "output",
                spec.input_len * cfg.d_model,
                q_out(spec),
                true,
            )),
            ctx: Rc::new(make_context(cfg, rng, graph)),
            out_scale: scaler.target_std(),
            out_shift: scaler.target_mean(),
            input_len: spec.input_len,
            d_model: cfg.d_model,
        }
    }

    fn embed(&self, tape: &Tape, x: &Var) -> Var {
        self.embed.forward(tape, x)
    }

    /// Output layer over the merged backbone representation `[B,N,T,D]`.
    fn project(&self, tape: &Tape, merged: &Var) -> Var {
        let s = merged.shape();
        let (b, n) = (s[0], s[1]);
        let flat = merged
            .relu()
            .reshape(&[b, n, self.input_len * self.d_model]);
        self.output
            .forward(tape, &flat)
            .scale(self.out_scale)
            .add_scalar(self.out_shift)
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.embed.parameters();
        v.extend(self.output.parameters());
        v.extend(self.ctx.parameters());
        v
    }
}

/// The continuous-relaxation supernet of Algorithm 1.
pub struct SupernetModel {
    cfg: SearchConfig,
    scaffold: Scaffold,
    cells: Vec<MicroCell>,
    topology: Option<MacroTopology>,
    tau: Cell<f32>,
}

impl SupernetModel {
    /// Assemble the supernet for a dataset.
    pub fn new(
        rng: &mut impl Rng,
        cfg: &SearchConfig,
        spec: &DatasetSpec,
        graph: &SensorGraph,
        scaler: &Scaler,
    ) -> Self {
        cfg.validate();
        let scaffold = Scaffold::new(rng, cfg, spec, graph, scaler);
        let adaptive = scaffold.ctx.has_adaptive();
        // w/o macro search: one shared cell, fixed chain topology (§4.2.3).
        let num_cells = if cfg.macro_search { cfg.b } else { 1 };
        let cells = (0..num_cells)
            .map(|i| MicroCell::new(rng, &format!("cell{i}"), cfg, adaptive))
            .collect();
        let topology = cfg
            .macro_search
            .then(|| MacroTopology::new(rng, "topo", cfg.b));
        Self {
            cfg: cfg.clone(),
            scaffold,
            cells,
            topology,
            tau: Cell::new(cfg.tau_init),
        }
    }

    /// Current softmax temperature τ.
    pub fn tau(&self) -> f32 {
        self.tau.get()
    }

    /// Update τ (driven by the search loop's schedule).
    ///
    /// τ ≤ 0 or non-finite would silently poison every α-softmax deep in
    /// the forward pass (NaN mixture weights), so it is rejected here with
    /// the same contract as [`cts_nn::TemperatureSchedule::new`].
    pub fn set_tau(&self, tau: f32) {
        assert!(
            tau.is_finite() && tau > 0.0,
            "SupernetModel::set_tau: temperature must be a positive finite \
             number, got {tau}"
        );
        self.tau.set(tau);
    }

    /// The graph context (shared supports / adaptive adjacency).
    pub fn context(&self) -> &GraphContext {
        &self.scaffold.ctx
    }

    /// Architecture parameters `Θ = ({αᵢ, βᵢ}, γ)`.
    pub fn arch_parameters(&self) -> Vec<Parameter> {
        let mut v: Vec<Parameter> = self
            .cells
            .iter()
            .flat_map(MicroCell::arch_parameters)
            .collect();
        if let Some(t) = &self.topology {
            v.extend(t.parameters());
        }
        v
    }

    /// Network weights `w` (operators, embedding, output, adaptive graph).
    pub fn weight_parameters(&self) -> Vec<Parameter> {
        let mut v: Vec<Parameter> = self
            .cells
            .iter()
            .flat_map(MicroCell::weight_parameters)
            .collect();
        v.extend(self.scaffold.parameters());
        v
    }

    /// Derive the discrete genotype (Eq. 7 + 2-edge rule + argmax γ).
    ///
    /// # Errors
    /// [`crate::DeriveError`] when the architecture snapshot contains
    /// non-finite weights (a diverged search).
    pub fn derive(&self) -> Result<Genotype, crate::DeriveError> {
        crate::derive::derive_genotype(self)
    }

    /// Mean α entropy across cells at the current temperature — the
    /// discretisation-gap diagnostic of §3.2.2.
    pub fn mean_alpha_entropy(&self) -> f32 {
        let tau = if self.cfg.use_temperature { self.tau.get() } else { 1.0 };
        let total: f32 = self.cells.iter().map(|c| c.alpha_entropy(tau)).sum();
        total / self.cells.len() as f32
    }

    /// Differentiable expected operator cost of the whole backbone (sum of
    /// the cells' expected costs), for efficiency-aware search.
    pub fn expected_cost(&self, tape: &Tape) -> Var {
        let tau = if self.cfg.use_temperature { self.tau.get() } else { 1.0 };
        let mut acc: Option<Var> = None;
        for cell in &self.cells {
            let c = cell.expected_cost(tape, tau);
            acc = Some(match acc {
                Some(a) => a.add(&c),
                None => c,
            });
        }
        // invariant: b >= 1, so at least one cell contributed to the sum.
        acc.expect("at least one cell")
    }

    pub(crate) fn cells(&self) -> &[MicroCell] {
        &self.cells
    }

    pub(crate) fn topology(&self) -> Option<&MacroTopology> {
        self.topology.as_ref()
    }

    pub(crate) fn config(&self) -> &SearchConfig {
        &self.cfg
    }
}

impl Forecaster for SupernetModel {
    fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let tau = if self.cfg.use_temperature { self.tau.get() } else { 1.0 };
        let z = self.scaffold.embed(tape, x);
        let mut sources = vec![z.clone()];
        let mut block_outputs: Vec<Var> = Vec::with_capacity(self.cfg.b);
        for j in 1..=self.cfg.b {
            let input = match &self.topology {
                Some(t) => t.mix_input(tape, &sources, j),
                // invariant: `sources` always starts with the embedding output.
                None => sources.last().expect("embedding present").clone(),
            };
            // shared cell when macro search is disabled
            let cell = if self.cfg.macro_search {
                &self.cells[j - 1]
            } else {
                &self.cells[0]
            };
            let out = cell
                .forward(tape, &input, &self.scaffold.ctx, tau)
                .add(&input); // block-level residual
            sources.push(out.clone());
            block_outputs.push(out);
        }
        let mut merged = block_outputs[0].clone();
        for out in &block_outputs[1..] {
            merged = merged.add(out);
        }
        self.scaffold.project(tape, &merged)
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.weight_parameters();
        v.extend(self.arch_parameters());
        v
    }

    fn name(&self) -> &str {
        "AutoCTS-supernet"
    }
}

/// One discrete ST-block instantiated from a [`BlockGenotype`]. Edges are
/// reference-counted so the compiled plan can share the live operators.
struct DerivedBlock {
    m: usize,
    edges: Vec<(usize, usize, Rc<dyn StOperator>)>,
}

impl DerivedBlock {
    fn new(
        rng: &mut impl Rng,
        name: &str,
        genotype: &BlockGenotype,
        d: usize,
        gcn_k: usize,
        adaptive: bool,
    ) -> Self {
        let edges = genotype
            .edges
            .iter()
            .enumerate()
            .map(|(idx, (from, to, kind))| {
                (
                    *from,
                    *to,
                    Rc::from(build_operator(
                        rng,
                        *kind,
                        &format!("{name}.e{idx}.{}", kind.label()),
                        d,
                        gcn_k,
                        adaptive,
                    )),
                )
            })
            .collect();
        Self {
            m: genotype.m,
            edges,
        }
    }

    fn forward(&self, tape: &Tape, x: &Var, ctx: &GraphContext) -> Var {
        let mut nodes: Vec<Option<Var>> = vec![None; self.m];
        nodes[0] = Some(x.clone());
        for j in 1..self.m {
            let mut acc: Option<Var> = None;
            for (from, to, op) in &self.edges {
                if *to != j {
                    continue;
                }
                let h_from = nodes[*from]
                    .as_ref()
                    // invariant: validation guarantees from < to, so the source is already built.
                    .expect("genotype validated: forward edges only")
                    .clone();
                let y = op.forward(tape, &h_from, ctx);
                acc = Some(match acc {
                    Some(a) => a.add(&y),
                    None => y,
                });
            }
            // invariant: validation guarantees every node 1..m has an incoming edge.
            nodes[j] = Some(acc.expect("genotype validated: node has inputs"));
        }
        // invariant: validated genotypes have m >= 2, so the output node exists.
        nodes[self.m - 1].take().expect("m >= 2")
    }

    fn parameters(&self) -> Vec<Parameter> {
        self.edges
            .iter()
            .flat_map(|(_, _, op)| op.parameters())
            .collect()
    }
}

/// The discrete forecasting model retrained from scratch in the
/// architecture-evaluation stage (§3.4).
pub struct DerivedModel {
    scaffold: Scaffold,
    blocks: Vec<DerivedBlock>,
    backbone: Vec<usize>,
    genotype: Genotype,
    /// Lazily compiled tape-free plan; shares the scaffold's layers and the
    /// blocks' operators, so retraining updates flow through without
    /// recompilation.
    plan: RefCell<Option<Rc<ExecPlan>>>,
}

impl DerivedModel {
    /// Instantiate a genotype with fresh weights (full channel width —
    /// partial channels are a search-time memory trick only).
    pub fn new(
        rng: &mut impl Rng,
        cfg: &SearchConfig,
        genotype: &Genotype,
        spec: &DatasetSpec,
        graph: &SensorGraph,
        scaler: &Scaler,
    ) -> Self {
        // invariant: documented panic — the constructor requires a validated genotype.
        genotype.validate().expect("invalid genotype");
        let scaffold = Scaffold::new(rng, cfg, spec, graph, scaler);
        let adaptive = scaffold.ctx.has_adaptive();
        let blocks = genotype
            .blocks
            .iter()
            .enumerate()
            .map(|(i, b)| {
                DerivedBlock::new(rng, &format!("block{i}"), b, cfg.d_model, cfg.gcn_k, adaptive)
            })
            .collect();
        Self {
            scaffold,
            blocks,
            backbone: genotype.backbone.clone(),
            genotype: genotype.clone(),
            plan: RefCell::new(None),
        }
    }

    /// The genotype this model instantiates.
    pub fn genotype(&self) -> &Genotype {
        &self.genotype
    }

    /// Compile (and cache) the tape-free execution plan for this model.
    ///
    /// The plan holds `Rc`s to the live layers and operators and reads
    /// their weights at execution time, so it stays valid across optimizer
    /// steps; its output is bit-identical to the tape forward.
    ///
    /// # Errors
    /// Propagates [`PlanError`] when the genotype defeats compilation
    /// (callers fall back to the tape path).
    pub fn compiled_plan(&self) -> Result<Rc<ExecPlan>, PlanError> {
        if let Some(p) = self.plan.borrow().as_ref() {
            return Ok(Rc::clone(p));
        }
        let spec = PlanSpec {
            embed: Rc::clone(&self.scaffold.embed),
            output: Rc::clone(&self.scaffold.output),
            ctx: Rc::clone(&self.scaffold.ctx),
            blocks: self
                .blocks
                .iter()
                .map(|b| BlockPlan {
                    m: b.m,
                    edges: b
                        .edges
                        .iter()
                        .map(|(from, to, op)| (*from, *to, Rc::clone(op)))
                        .collect(),
                })
                .collect(),
            backbone: self.backbone.clone(),
            out_scale: self.scaffold.out_scale,
            out_shift: self.scaffold.out_shift,
            input_len: self.scaffold.input_len,
            d_model: self.scaffold.d_model,
            nodes: self.scaffold.ctx.n(),
            features: self.scaffold.embed.d_in(),
        };
        let plan = Rc::new(ExecPlan::compile(spec)?);
        *self.plan.borrow_mut() = Some(Rc::clone(&plan));
        Ok(plan)
    }
}

impl Forecaster for DerivedModel {
    fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let z = self.scaffold.embed(tape, x);
        let mut sources = vec![z.clone()];
        let mut block_outputs: Vec<Var> = Vec::with_capacity(self.blocks.len());
        for (i, block) in self.blocks.iter().enumerate() {
            let input = sources[self.backbone[i]].clone();
            let out = block
                .forward(tape, &input, &self.scaffold.ctx)
                .add(&input); // block-level residual
            sources.push(out.clone());
            block_outputs.push(out);
        }
        let mut merged = block_outputs[0].clone();
        for out in &block_outputs[1..] {
            merged = merged.add(out);
        }
        self.scaffold.project(tape, &merged)
    }

    fn forward_inference(&self, x: &Tensor) -> Tensor {
        if let Ok(plan) = self.compiled_plan() {
            if let Ok(y) = plan.try_run(x) {
                return y;
            }
            // A plan run can only fail under an injected fault or a bad
            // shape; either way the tape answers and the degradation is
            // counted, mirroring the serving ladder's last rung.
            cts_obs::serve::record_degraded_tape();
        }
        // A genotype that defeats compilation still forecasts; the tape
        // path is the always-correct fallback.
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        self.forward(&tape, &xv).value()
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.scaffold.parameters();
        for b in &self.blocks {
            v.extend(b.parameters());
        }
        v
    }

    fn name(&self) -> &str {
        "AutoCTS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_data::{build_windows, generate};
    use rand::{rngs::SmallRng, SeedableRng};

    fn fixture() -> (SearchConfig, DatasetSpec, cts_data::CtsData, cts_data::SplitWindows) {
        let spec = DatasetSpec::metr_la().scaled(0.05, 0.015);
        let data = generate(&spec, 0);
        let windows = build_windows(&data, 4, 16);
        let cfg = SearchConfig {
            m: 3,
            b: 2,
            d_model: 8,
            epochs: 1,
            ..Default::default()
        };
        (cfg, spec, data, windows)
    }

    #[test]
    fn supernet_forward_shape() {
        let (cfg, spec, data, windows) = fixture();
        let mut rng = SmallRng::seed_from_u64(0);
        let model = SupernetModel::new(&mut rng, &cfg, &spec, &data.graph, &windows.scaler);
        let batches = cts_data::batches_from_windows(&windows.train[..2], 2);
        let tape = Tape::new();
        let x = tape.constant(batches[0].0.clone());
        let y = model.forward(&tape, &x);
        assert_eq!(y.shape(), vec![2, spec.n, spec.output_len]);
        // predictions come back in raw units (speeds, not z-scores)
        assert!(y.value().mean().abs() > 1.0);
    }

    #[test]
    fn supernet_param_partition_disjoint_and_complete() {
        let (cfg, spec, data, windows) = fixture();
        let mut rng = SmallRng::seed_from_u64(1);
        let model = SupernetModel::new(&mut rng, &cfg, &spec, &data.graph, &windows.scaler);
        let arch = model.arch_parameters();
        let weights = model.weight_parameters();
        // alpha+betas per cell, plus gammas
        assert_eq!(arch.len(), 2 * (1 + 2) + 2);
        for a in &arch {
            assert!(!weights.iter().any(|w| w.ptr_eq(a)), "Θ and w overlap");
        }
    }

    #[test]
    fn derived_model_trains_end_to_end() {
        let (cfg, spec, data, windows) = fixture();
        let mut rng = SmallRng::seed_from_u64(2);
        let supernet = SupernetModel::new(&mut rng, &cfg, &spec, &data.graph, &windows.scaler);
        let genotype = supernet.derive().unwrap();
        genotype.validate().unwrap();
        let model = DerivedModel::new(&mut rng, &cfg, &genotype, &spec, &data.graph, &windows.scaler);
        let batches = cts_data::batches_from_windows(&windows.train, 4);
        let tape = Tape::new();
        let x = tape.constant(batches[0].0.clone());
        let pred = model.forward(&tape, &x);
        let loss = cts_nn::masked_mae_loss(&tape, &pred, &batches[0].1, Some(0.0));
        tape.backward(&loss);
        let live = model
            .parameters()
            .iter()
            .filter(|p| p.grad().norm() > 0.0)
            .count();
        assert!(live > 0, "derived model got no gradients");
    }

    #[test]
    fn without_macro_search_uses_single_shared_cell() {
        let (mut cfg, spec, data, windows) = fixture();
        cfg = cfg.without_macro_search();
        let mut rng = SmallRng::seed_from_u64(3);
        let model = SupernetModel::new(&mut rng, &cfg, &spec, &data.graph, &windows.scaler);
        assert_eq!(model.cells().len(), 1);
        assert!(model.topology().is_none());
        // forward must still produce B-block-deep output
        let batches = cts_data::batches_from_windows(&windows.train[..1], 1);
        let tape = Tape::new();
        let x = tape.constant(batches[0].0.clone());
        assert_eq!(model.forward(&tape, &x).shape()[2], spec.output_len);
    }

    #[test]
    fn tau_toggle_changes_output() {
        let (cfg, spec, data, windows) = fixture();
        let mut rng = SmallRng::seed_from_u64(4);
        let model = SupernetModel::new(&mut rng, &cfg, &spec, &data.graph, &windows.scaler);
        let batches = cts_data::batches_from_windows(&windows.train[..1], 1);
        let tape = Tape::new();
        let x = tape.constant(batches[0].0.clone());
        model.set_tau(5.0);
        let soft = model.forward(&tape, &x).value();
        model.set_tau(0.05);
        let sharp = model.forward(&tape, &x).value();
        assert!(!soft.approx_eq(&sharp, 1e-4), "temperature had no effect");
    }

    #[test]
    fn set_tau_rejects_non_positive_and_non_finite() {
        // τ ≤ 0 / NaN would silently NaN-poison every α-softmax in the
        // forward pass; the setter must refuse it loudly instead.
        let (cfg, spec, data, windows) = fixture();
        let mut rng = SmallRng::seed_from_u64(5);
        let model = SupernetModel::new(&mut rng, &cfg, &spec, &data.graph, &windows.scaler);
        for bad in [0.0f32, -1.0, f32::NAN, f32::NEG_INFINITY, f32::INFINITY] {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                model.set_tau(bad);
            }));
            assert!(r.is_err(), "set_tau({bad}) must panic");
        }
        // The rejected values must not have corrupted the stored τ.
        model.set_tau(1.5);
        assert_eq!(model.tau(), 1.5);
    }
}
