//! Tests for the efficiency-aware search extension (§6 future work).

#![cfg(test)]

use crate::{joint_search, MicroCell, SearchConfig};
use cts_autograd::Tape;
use cts_data::{build_windows, generate, DatasetSpec};
use cts_ops::OpKind;
use rand::{rngs::SmallRng, SeedableRng};

#[test]
fn expected_cost_is_differentiable_and_positive() {
    let cfg = SearchConfig {
        m: 3,
        d_model: 4,
        ..Default::default()
    };
    let cell = MicroCell::new(&mut SmallRng::seed_from_u64(0), "c", &cfg, false);
    let tape = Tape::new();
    let cost = cell.expected_cost(&tape, 1.0);
    assert!(cost.value().item() > 0.0);
    tape.backward(&cost);
    let alpha = &cell.arch_parameters()[0];
    assert!(alpha.grad().norm() > 0.0, "cost gradient did not reach alpha");
}

#[test]
fn cost_penalty_prefers_cheaper_operators() {
    // With a dominating penalty, the search should drive alpha toward the
    // cheapest parametric ops and away from expensive ones (DGCN here).
    let spec = DatasetSpec::metr_la().scaled(0.04, 0.014);
    let data = generate(&spec, 17);
    let windows = build_windows(&data, 6, 20);
    let base = SearchConfig {
        m: 3,
        b: 2,
        d_model: 8,
        epochs: 3,
        batch_size: 4,
        ..Default::default()
    };
    let expensive_ops = |genotype: &crate::Genotype| -> usize {
        genotype
            .op_histogram()
            .iter()
            .filter(|(op, _)| matches!(op, OpKind::Dgcn | OpKind::InformerT | OpKind::InformerS))
            .map(|(_, c)| *c)
            .sum()
    };
    let (g_free, _, _) = joint_search(&base, &spec, &data.graph, &windows).unwrap();
    let penalised = base.clone().with_cost_penalty(50.0);
    let (g_cheap, _, _) = joint_search(&penalised, &spec, &data.graph, &windows).unwrap();
    assert!(
        expensive_ops(&g_cheap) <= expensive_ops(&g_free),
        "penalty did not reduce expensive-op usage: {} vs {}",
        expensive_ops(&g_cheap),
        expensive_ops(&g_free)
    );
    // identity (cheapest non-zero) should appear at least as often
    let identity_count = |g: &crate::Genotype| {
        g.op_histogram()
            .iter()
            .find(|(op, _)| *op == OpKind::Identity)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    };
    assert!(identity_count(&g_cheap) >= identity_count(&g_free));
}

#[test]
fn zero_penalty_matches_paper_configuration() {
    let cfg = SearchConfig::default();
    assert_eq!(cfg.cost_penalty, 0.0);
    assert_eq!(cfg.with_cost_penalty(0.1).cost_penalty, 0.1);
}

#[test]
fn relative_costs_are_ordered_sensibly() {
    // non-parametric < conv < attention <= recurrent
    assert!(OpKind::Zero.relative_cost() < OpKind::Identity.relative_cost());
    assert!(OpKind::Identity.relative_cost() < OpKind::Conv1d.relative_cost());
    assert!(OpKind::Conv1d.relative_cost() < OpKind::InformerT.relative_cost());
    assert!(OpKind::InformerT.relative_cost() < OpKind::TransformerT.relative_cost());
    assert!(OpKind::TransformerT.relative_cost() < OpKind::Lstm.relative_cost());
}
