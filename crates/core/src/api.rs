//! The high-level AutoCTS entry point.
//!
//! ```no_run
//! use autocts::{AutoCts, SearchConfig};
//! use cts_data::{build_windows, generate, DatasetSpec};
//!
//! let spec = DatasetSpec::metr_la().scaled(0.06, 0.02);
//! let data = generate(&spec, 42);
//! let windows = build_windows(&data, 4, 120);
//!
//! let auto = AutoCts::new(SearchConfig::default());
//! let outcome = auto.search(&spec, &data.graph, &windows);
//! println!("{}", outcome.genotype);
//! let report = auto.evaluate(&outcome.genotype, &spec, &data.graph, &windows, 10);
//! println!("test MAE = {:.3}", report.overall.mae);
//! ```

use crate::eval::{evaluate_genotype, EvalReport};
use crate::preflight::preflight;
use crate::{joint_search, EvalError, Genotype, SearchConfig, SearchError, SearchStats};
use cts_data::{DatasetSpec, SplitWindows};
use cts_graph::SensorGraph;

/// Result of one architecture search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The derived discrete architecture.
    pub genotype: Genotype,
    /// Cost accounting of the search.
    pub stats: SearchStats,
}

/// Builder-style facade over search + architecture evaluation.
#[derive(Clone, Debug)]
pub struct AutoCts {
    config: SearchConfig,
}

impl AutoCts {
    /// AutoCTS with the given search configuration.
    ///
    /// Panics on an invalid configuration; use [`AutoCts::try_new`] for a
    /// typed result.
    pub fn new(config: SearchConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// AutoCTS with the given search configuration, rejecting invalid
    /// configurations with [`SearchError::InvalidConfig`].
    pub fn try_new(config: SearchConfig) -> Result<Self, SearchError> {
        config.try_validate().map_err(SearchError::InvalidConfig)?;
        Ok(Self { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Stage 1 (§3.4): architecture search on the training windows.
    ///
    /// Panics on a search failure; use [`AutoCts::try_search`] for a
    /// typed result (resume, watchdog, and checkpoint errors).
    pub fn search(
        &self,
        spec: &DatasetSpec,
        graph: &SensorGraph,
        windows: &SplitWindows,
    ) -> SearchOutcome {
        self.try_search(spec, graph, windows)
            .unwrap_or_else(|e| panic!("search failed: {e}"))
    }

    /// Stage 1 (§3.4) with a typed result: architecture search on the
    /// training windows.
    ///
    /// The derived genotype is statically verified (`cts-verify`) before
    /// it is returned; a derivation bug surfaces here as
    /// [`SearchError::InvalidGenotype`] with named findings instead of a
    /// wasted retraining run later.
    pub fn try_search(
        &self,
        spec: &DatasetSpec,
        graph: &SensorGraph,
        windows: &SplitWindows,
    ) -> Result<SearchOutcome, SearchError> {
        let (genotype, _model, stats) = joint_search(&self.config, spec, graph, windows)?;
        preflight(&self.config, &genotype, spec, graph)
            .map_err(SearchError::InvalidGenotype)?;
        Ok(SearchOutcome { genotype, stats })
    }

    /// Stage 2 (§3.4): retrain the genotype from scratch on train+val for
    /// `epochs` and report test metrics. Also the entry point for
    /// transferability (Table 35): pass a genotype searched on another
    /// dataset.
    ///
    /// Panics on a training failure; use [`AutoCts::try_evaluate`] for a
    /// typed result.
    pub fn evaluate(
        &self,
        genotype: &Genotype,
        spec: &DatasetSpec,
        graph: &SensorGraph,
        windows: &SplitWindows,
        epochs: usize,
    ) -> EvalReport {
        self.try_evaluate(genotype, spec, graph, windows, epochs)
            .unwrap_or_else(|e| panic!("architecture evaluation failed: {e}"))
    }

    /// Stage 2 (§3.4) with a typed result.
    ///
    /// The genotype is statically verified first — important for
    /// hand-written or transferred genotypes that never went through this
    /// config's derivation — and rejected with [`EvalError::Rejected`]
    /// before any model is built.
    pub fn try_evaluate(
        &self,
        genotype: &Genotype,
        spec: &DatasetSpec,
        graph: &SensorGraph,
        windows: &SplitWindows,
        epochs: usize,
    ) -> Result<EvalReport, EvalError> {
        preflight(&self.config, genotype, spec, graph).map_err(EvalError::Rejected)?;
        Ok(evaluate_genotype(&self.config, genotype, spec, graph, windows, epochs)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_data::{build_windows, generate};

    #[test]
    fn end_to_end_search_and_evaluate_beats_trivial_baseline() {
        let spec = DatasetSpec::metr_la().scaled(0.04, 0.015);
        let data = generate(&spec, 3);
        let windows = build_windows(&data, 4, 40);
        let cfg = SearchConfig {
            m: 3,
            b: 2,
            d_model: 8,
            epochs: 2,
            batch_size: 4,
            ..Default::default()
        };
        let auto = AutoCts::new(cfg);
        let outcome = auto.search(&spec, &data.graph, &windows);
        outcome.genotype.validate().unwrap();
        let report = auto.evaluate(&outcome.genotype, &spec, &data.graph, &windows, 15);
        // "Trivial baseline": always predict the training-mean speed. Any
        // trained model must beat its MAE comfortably.
        let train_mean = windows.scaler.target_mean();
        let test_batches = cts_data::batches_from_windows(&windows.test, 4);
        let mut naive_err = 0.0f64;
        let mut count = 0.0f64;
        for (_, y) in &test_batches {
            for &t in y.data() {
                if t != 0.0 {
                    naive_err += (t - train_mean).abs() as f64;
                    count += 1.0;
                }
            }
        }
        let naive_mae = (naive_err / count) as f32;
        assert!(
            report.overall.mae < naive_mae,
            "AutoCTS MAE {} not better than predict-the-mean {}",
            report.overall.mae,
            naive_mae
        );
        assert!(report.parameters > 0);
        assert_eq!(report.horizons.len(), spec.output_len);
    }
}
