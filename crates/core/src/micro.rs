//! The micro search space: a continuous-relaxation supernet ST-block
//! (§3.2, Figure 4).

use crate::SearchConfig;
use cts_autograd::{Parameter, Tape, Var};
use cts_ops::{build_operator, GraphContext, OpKind, StOperator};
use cts_tensor::{init, Tensor};
use rand::Rng;

/// Index of pair `(i, j)` (`i < j`) in the flat pair ordering
/// `(0,1), (0,2), (1,2), (0,3), …` — all predecessors of node 1, then of
/// node 2, and so on.
pub(crate) fn pair_index(i: usize, j: usize) -> usize {
    debug_assert!(i < j);
    j * (j - 1) / 2 + i
}

/// One supernet ST-block: `M` latent nodes, every pair `(h_i, h_j)`
/// carrying a softmax-weighted mixture of all candidate operators
/// (Eqs. 4–6), with per-node input weights `β` and the temperature-annealed
/// `α` softmax (§3.2.2).
///
/// Partial channel connections (§4.1.4): only the first
/// `op_channels` channels flow through the candidate operators; the rest
/// bypass and the concatenation rotates channels so later edges see
/// different subsets.
pub struct MicroCell {
    m: usize,
    op_set: Vec<OpKind>,
    /// `ops[pair][op_idx]`, only parametric + identity entries are applied.
    ops: Vec<Vec<Box<dyn StOperator>>>,
    /// `α ∈ R^{pairs × |O|}`.
    alpha: Parameter,
    /// `β^{(j)} ∈ R^{j}` for `j = 1..M-1`.
    betas: Vec<Parameter>,
    d_model: usize,
    d_op: usize,
}

impl MicroCell {
    /// Build a supernet cell for the given config. `adaptive` states
    /// whether the model's [`GraphContext`] carries an adaptive support
    /// (forwarded to [`build_operator`] so DGCN only allocates adaptive
    /// weights that can actually receive gradients).
    pub fn new(rng: &mut impl Rng, name: &str, cfg: &SearchConfig, adaptive: bool) -> Self {
        let m = cfg.m;
        let d_op = cfg.op_channels();
        let pairs = cfg.num_pairs();
        let mut ops = Vec::with_capacity(pairs);
        for j in 1..m {
            for i in 0..j {
                let pair_ops: Vec<Box<dyn StOperator>> = cfg
                    .op_set
                    .iter()
                    .map(|&kind| {
                        build_operator(
                            rng,
                            kind,
                            &format!("{name}.p{i}_{j}.{}", kind.label()),
                            d_op,
                            cfg.gcn_k,
                            adaptive,
                        )
                    })
                    .collect();
                ops.push(pair_ops);
            }
        }
        let alpha = Parameter::new(
            format!("{name}.alpha"),
            init::normal(rng, [pairs, cfg.op_set.len()], 1e-3),
        );
        let betas = (1..m)
            .map(|j| Parameter::new(format!("{name}.beta{j}"), init::normal(rng, [j], 1e-3)))
            .collect();
        Self {
            m,
            op_set: cfg.op_set.clone(),
            ops,
            alpha,
            betas,
            d_model: cfg.d_model,
            d_op,
        }
    }

    /// Number of latent nodes.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The operator set this cell searches over.
    pub fn op_set(&self) -> &[OpKind] {
        &self.op_set
    }

    /// Forward through the relaxed DAG; returns `h_{M-1}`.
    pub fn forward(&self, tape: &Tape, x: &Var, ctx: &GraphContext, tau: f32) -> Var {
        // invariant: supernet inputs are rank-4 [B, N, T, D].
        debug_assert_eq!(*x.shape().last().unwrap(), self.d_model);
        let alpha = tape.param(&self.alpha);
        let mut nodes: Vec<Var> = vec![x.clone()];
        for j in 1..self.m {
            let beta = tape.param(&self.betas[j - 1]).reshape(&[1, j]).softmax_last();
            let mut acc: Option<Var> = None;
            for (i, h_i) in nodes.iter().enumerate() {
                let f_ij = self.edge_mixture(tape, h_i, ctx, &alpha, pair_index(i, j), tau);
                let w = beta.slice(1, i, i + 1).reshape(&[1]);
                let term = f_ij.mul(&w);
                acc = Some(match acc {
                    Some(a) => a.add(&term),
                    None => term,
                });
            }
            // invariant: every latent node has at least one predecessor edge.
            nodes.push(acc.expect("every node has predecessors"));
        }
        // invariant: m >= 2, so the node list is non-empty.
        nodes.pop().expect("m >= 2")
    }

    /// The mixed transformation `f^{(i,j)}` of Eq. 4 with partial channels.
    fn edge_mixture(
        &self,
        tape: &Tape,
        h_i: &Var,
        ctx: &GraphContext,
        alpha: &Var,
        pair: usize,
        tau: f32,
    ) -> Var {
        let probs = alpha
            .slice(0, pair, pair + 1)
            .softmax_last_with_temperature(tau); // [1, |O|]
        let d = self.d_model;
        let (x_op, x_bypass) = if self.d_op < d {
            (
                Some(h_i.slice(3, 0, self.d_op)),
                Some(h_i.slice(3, self.d_op, d)),
            )
        } else {
            (None, None)
        };
        let op_input = x_op.as_ref().unwrap_or(h_i);
        let mut mix: Option<Var> = None;
        for (o_idx, kind) in self.op_set.iter().enumerate() {
            if *kind == OpKind::Zero {
                continue; // contributes nothing; its softmax mass still
                          // deflates the other operators' weights
            }
            let w = probs.slice(1, o_idx, o_idx + 1).reshape(&[1]);
            let y = self.ops[pair][o_idx].forward(tape, op_input, ctx);
            let term = y.mul(&w);
            mix = Some(match mix {
                Some(m) => m.add(&term),
                None => term,
            });
        }
        // invariant: the mixed-op set contains non-zero operators.
        let mixed = mix.expect("op set contains non-zero operators");
        match x_bypass {
            // rotate channels: bypass first, then the operator mixture
            Some(bypass) => Var::concat(&[bypass, mixed], 3),
            None => mixed,
        }
    }

    /// Differentiable expected operator cost of this cell:
    /// `Σ_{pairs} Σ_o softmax(α/τ)_o · cost(o)`, in units of a 1×1 conv.
    /// Drives the efficiency-aware search extension (§6 future work).
    pub fn expected_cost(&self, tape: &Tape, tau: f32) -> Var {
        let costs: Vec<f32> = self.op_set.iter().map(|k| k.relative_cost()).collect();
        let cost_row = tape.constant(Tensor::from_vec(vec![1, costs.len()], costs));
        let probs = tape
            .param(&self.alpha)
            .softmax_last_with_temperature(tau); // [pairs, |O|]
        probs.mul(&cost_row).sum_all()
    }

    /// Architecture parameters `{α, β}` of this cell.
    pub fn arch_parameters(&self) -> Vec<Parameter> {
        let mut v = vec![self.alpha.clone()];
        v.extend(self.betas.iter().cloned());
        v
    }

    /// Network weights `w` of this cell (operator weights).
    pub fn weight_parameters(&self) -> Vec<Parameter> {
        self.ops
            .iter()
            .flat_map(|pair| pair.iter().flat_map(|op| op.parameters()))
            .collect()
    }

    /// Mean softmax entropy of the α rows at temperature `tau` (nats).
    ///
    /// Quantifies §3.2.2's "gap" between the relaxed micro-DAG and the
    /// derived ST-block: entropy → 0 means each edge's operator choice is
    /// effectively discrete, so discretisation loses nothing.
    pub fn alpha_entropy(&self, tau: f32) -> f32 {
        let alpha = self.alpha.value();
        let (pairs, o) = (alpha.shape()[0], alpha.shape()[1]);
        let mut total = 0.0f32;
        for pair in 0..pairs {
            let row: Vec<f32> = (0..o).map(|i| alpha.at(&[pair, i]) / tau).collect();
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let z: f32 = row.iter().map(|x| (x - m).exp()).sum();
            for x in &row {
                let p = (x - m).exp() / z;
                if p > 1e-12 {
                    total -= p * p.ln();
                }
            }
        }
        total / pairs as f32
    }

    /// Snapshot of the current architecture parameters for derivation:
    /// (`α` `[pairs, |O|]`, per-node `β` vectors).
    pub fn arch_snapshot(&self) -> (Tensor, Vec<Tensor>) {
        (
            self.alpha.value().clone(),
            self.betas.iter().map(|b| b.value().clone()).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_graph::{random_geometric_graph, GraphGenConfig};
    use rand::{rngs::SmallRng, SeedableRng};

    fn setup(m: usize, d: usize, pc: f32) -> (MicroCell, GraphContext) {
        let mut rng = SmallRng::seed_from_u64(0);
        let cfg = SearchConfig {
            m,
            d_model: d,
            partial_channels: pc,
            ..Default::default()
        };
        let cell = MicroCell::new(&mut rng, "cell", &cfg, false);
        let g = random_geometric_graph(&mut rng, &GraphGenConfig { n: 4, ..Default::default() });
        (cell, GraphContext::from_graph(&g, 2))
    }

    #[test]
    fn pair_index_ordering() {
        assert_eq!(pair_index(0, 1), 0);
        assert_eq!(pair_index(0, 2), 1);
        assert_eq!(pair_index(1, 2), 2);
        assert_eq!(pair_index(0, 3), 3);
        assert_eq!(pair_index(2, 3), 5);
    }

    #[test]
    fn forward_preserves_shape_full_channels() {
        let (cell, ctx) = setup(4, 8, 1.0);
        let tape = Tape::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let x = tape.constant(init::uniform(&mut rng, [2, 4, 6, 8], -1.0, 1.0));
        let y = cell.forward(&tape, &x, &ctx, 1.0);
        assert_eq!(y.shape(), vec![2, 4, 6, 8]);
    }

    #[test]
    fn forward_preserves_shape_partial_channels() {
        let (cell, ctx) = setup(3, 8, 0.25);
        let tape = Tape::new();
        let mut rng = SmallRng::seed_from_u64(2);
        let x = tape.constant(init::uniform(&mut rng, [1, 4, 5, 8], -1.0, 1.0));
        let y = cell.forward(&tape, &x, &ctx, 0.5);
        assert_eq!(y.shape(), vec![1, 4, 5, 8]);
    }

    #[test]
    fn alpha_and_beta_receive_gradients() {
        let (cell, ctx) = setup(3, 4, 1.0);
        let tape = Tape::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let x = tape.constant(init::uniform(&mut rng, [1, 4, 5, 4], -1.0, 1.0));
        let loss = cell.forward(&tape, &x, &ctx, 1.0).square().sum_all();
        tape.backward(&loss);
        for p in cell.arch_parameters() {
            // beta vectors of length 1 are constant under softmax: no grad
            if p.len() == 1 {
                continue;
            }
            assert!(p.grad().norm() > 0.0, "no grad for {}", p.name());
        }
        let weight_grads = cell
            .weight_parameters()
            .iter()
            .filter(|p| p.grad().norm() > 0.0)
            .count();
        assert!(weight_grads > 0, "no operator weight gradients at all");
    }

    #[test]
    fn low_temperature_concentrates_on_argmax_op() {
        // Bias alpha hard toward identity on every edge; with tau→0 the cell
        // output must approach the pure-identity computation.
        let (cell, ctx) = setup(3, 4, 1.0);
        let id_idx = cell
            .op_set()
            .iter()
            .position(|k| *k == OpKind::Identity)
            .unwrap();
        {
            let mut a = cell.alpha.value_mut();
            a.fill(0.0);
            for pair in 0..3 {
                *a.at_mut(&[pair, id_idx]) = 3.0;
            }
        }
        let tape = Tape::new();
        let mut rng = SmallRng::seed_from_u64(4);
        let x = tape.constant(init::uniform(&mut rng, [1, 4, 3, 4], -1.0, 1.0));
        let sharp = cell.forward(&tape, &x, &ctx, 0.01).value();
        // pure identity path: h1 = x, h2 = β-weighted sum of identities = x
        let diff = cts_tensor::ops::sub(&sharp, &x.value()).norm() / x.value().norm();
        assert!(diff < 0.05, "relative diff {diff}");
        let soft = cell.forward(&tape, &x, &ctx, 5.0).value();
        let diff_soft = cts_tensor::ops::sub(&soft, &x.value()).norm() / x.value().norm();
        assert!(diff_soft > diff, "temperature had no effect");
    }

    #[test]
    fn parameter_partition_is_disjoint() {
        let (cell, _) = setup(3, 4, 1.0);
        let arch = cell.arch_parameters();
        let weights = cell.weight_parameters();
        for a in &arch {
            assert!(!weights.iter().any(|w| w.ptr_eq(a)));
        }
        assert_eq!(arch.len(), 1 + 2); // alpha + beta1 + beta2
    }
}
