//! Typed errors of the search and evaluation stages.

use cts_nn::checkpoint::CheckpointError;
use cts_nn::{DivergenceReason, TrainError};
use cts_verify::VerifyError;
use std::fmt;

/// Typed failure of [`crate::joint_search`] (previously panics or
/// silently-propagated NaNs).
#[derive(Debug)]
pub enum SearchError {
    /// The [`crate::SearchConfig`] violates an invariant.
    InvalidConfig(String),
    /// The training split is too small for the bi-level pseudo-split.
    EmptySplit {
        /// Pseudo-training windows available.
        train: usize,
        /// Pseudo-validation windows available.
        val: usize,
    },
    /// The divergence watchdog exhausted its rollback budget.
    Diverged {
        /// Epoch the final divergence occurred in.
        epoch: usize,
        /// Rollbacks performed before giving up.
        retries: usize,
        /// The final divergence.
        reason: DivergenceReason,
    },
    /// The search was killed mid-epoch (fault injection or external
    /// stop). State up to the last checkpoint is on disk; rerun with
    /// `resume` to continue.
    Interrupted {
        /// Epoch the interruption occurred in.
        epoch: usize,
        /// Global step at interruption.
        step: u64,
    },
    /// Persisting or restoring run state failed (I/O, corruption, or a
    /// checkpoint that does not match this run's config/data).
    Checkpoint(CheckpointError),
    /// The derived genotype failed the static pre-flight analysis
    /// (`cts-verify`): shape, wiring, or gradient-reachability errors.
    InvalidGenotype(VerifyError),
    /// Discretisation refused the architecture snapshot (non-finite α/β —
    /// the search diverged without tripping the watchdog).
    Derive(crate::DeriveError),
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::InvalidConfig(m) => write!(f, "invalid search config: {m}"),
            SearchError::EmptySplit { train, val } => write!(
                f,
                "not enough training windows for the bi-level split \
                 (pseudo-train {train}, pseudo-val {val})"
            ),
            SearchError::Diverged { epoch, retries, reason } => write!(
                f,
                "search diverged at epoch {epoch} after {retries} rollback(s): {reason}"
            ),
            SearchError::Interrupted { epoch, step } => {
                write!(f, "search interrupted at epoch {epoch}, step {step}")
            }
            SearchError::Checkpoint(e) => write!(f, "{e}"),
            SearchError::InvalidGenotype(e) => {
                write!(f, "derived genotype failed static verification: {e}")
            }
            SearchError::Derive(e) => write!(f, "architecture derivation failed: {e}"),
        }
    }
}

impl std::error::Error for SearchError {}

impl From<crate::DeriveError> for SearchError {
    fn from(e: crate::DeriveError) -> Self {
        SearchError::Derive(e)
    }
}

impl From<CheckpointError> for SearchError {
    fn from(e: CheckpointError) -> Self {
        SearchError::Checkpoint(e)
    }
}

/// Typed failure of [`crate::AutoCts::try_evaluate`] (architecture
/// evaluation, §3.4).
#[derive(Debug)]
pub enum EvalError {
    /// The genotype failed the static pre-flight analysis before any
    /// model was built (malformed wiring, shape errors, starved
    /// parameters — common with hand-written or transferred genotypes).
    Rejected(VerifyError),
    /// Retraining failed (divergence, interruption, checkpoint I/O).
    Train(TrainError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Rejected(e) => write!(f, "genotype rejected before retraining: {e}"),
            EvalError::Train(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<TrainError> for EvalError {
    fn from(e: TrainError) -> Self {
        EvalError::Train(e)
    }
}
