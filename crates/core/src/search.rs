//! The joint bi-level search strategy (Algorithm 1), with crash-safe
//! checkpointing and a divergence watchdog.
//!
//! Fault tolerance mirrors `cts_nn::train_full`: the loop optionally
//! persists complete run state ([`RunState`]) at epoch boundaries —
//! parameters, both Adam optimizers, the temperature schedule, the
//! shuffle RNG, and the per-epoch trace — and a killed search resumes
//! *bit-identically*. Epoch orderings are tracked as index permutations
//! (shuffled with exactly the RNG consumption of
//! [`cts_data::shuffle_windows`]), so resume replays the completed
//! epochs' shuffles and then verifies the RNG landed on the
//! checkpointed state, rejecting checkpoints from a different seed,
//! config, or dataset.

use crate::error::SearchError;
use crate::{Genotype, SearchConfig, SupernetModel};
use cts_autograd::{Parameter, Tape};
use cts_data::{batches_from_windows, shuffle_in_place, DatasetSpec, SplitWindows, Window};
use cts_graph::SensorGraph;
use cts_nn::checkpoint::{
    apply_parameters, load_run_state, save_run_state, CheckpointError, OptimizerState,
    RunCounters, RunState, ScheduleState,
};
use cts_nn::{
    clip_grad_norm, fault, global_grad_norm, Adam, DivergenceReason, Forecaster, LossKind,
    Optimizer, TemperatureSchedule,
};
use cts_tensor::Tensor;
use rand::{rngs::SmallRng, SeedableRng};

/// Per-epoch trace of the search (observability for Figure 5's
/// temperature/gap discussion).
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Temperature the epoch ran at.
    pub tau: f32,
    /// Mean pseudo-validation loss over the epoch.
    pub val_loss: f32,
    /// Mean α softmax entropy (at the epoch's τ) after the epoch — the
    /// discretisation gap; annealing should drive it toward 0.
    pub alpha_entropy: f32,
}

/// Cost accounting of one search run (Table 7 and the "GPU hours" columns
/// of the ablation tables; wall-clock seconds substitute for GPU hours on
/// this substrate).
#[derive(Clone, Debug)]
pub struct SearchStats {
    /// Wall-clock duration of the whole search (across resumes).
    pub secs: f64,
    /// Number of (Θ, w) step pairs executed.
    pub steps: usize,
    /// Estimated peak memory of the search in MB: the liveness-based
    /// arena-residency bound of [`crate::stats::search_memory_estimate`]
    /// (parameters + optimiser state + peak live activations, slot-padded,
    /// floored at the derived plan's static peak).
    pub memory_mb: f64,
    /// The pre-cost-model flat heuristic for the same quantity, kept so
    /// historical run reports stay comparable.
    #[deprecated(note = "flat heuristic that ignores arena slot padding; use memory_mb")]
    pub memory_mb_heuristic: f64,
    /// Final temperature at derivation time.
    pub final_tau: f32,
    /// Mean pseudo-validation loss of the last epoch.
    pub final_val_loss: f32,
    /// Watchdog rollbacks performed during the run.
    pub rollbacks: usize,
    /// Per-epoch trace (τ, val loss, α entropy).
    pub epochs: Vec<EpochStats>,
}

/// Why an epoch could not complete.
enum EpochAbort {
    Interrupted,
    Diverged(DivergenceReason),
}

/// One health-checked pass of alternating (Θ, w) updates: consults the
/// fault-injection plan and the watchdog at every step pair, refusing to
/// apply a poisoned update. Returns the mean pseudo-validation loss.
#[allow(clippy::too_many_arguments)]
fn run_search_epoch(
    model: &SupernetModel,
    arch_opt: &mut Adam,
    weight_opt: &mut Adam,
    train_batches: &[(Tensor, Tensor)],
    val_batches: &[(Tensor, Tensor)],
    cfg: &SearchConfig,
    loss_kind: LossKind,
    steps: &mut usize,
    memory_scalars: &mut usize,
) -> Result<f32, EpochAbort> {
    let watchdog_on = cfg.watchdog.enabled;
    let mut val_loss_acc = 0.0f64;
    let mut val_count = 0usize;
    for (step_in_epoch, (x_tr, y_tr)) in train_batches.iter().enumerate() {
        let gstep = *steps as u64;
        if fault::take_abort(gstep) {
            return Err(EpochAbort::Interrupted);
        }
        // line 3-4: update Θ on a pseudo-validation mini-batch
        let (x_va, y_va) = &val_batches[step_in_epoch % val_batches.len()];
        let step_val = {
            let tape = Tape::new();
            let fwd = cts_obs::span(cts_obs::Phase::Forward);
            let xv = tape.constant(x_va.clone());
            let pred = model.forward(&tape, &xv);
            let mut loss = loss_kind.compute(&tape, &pred, y_va);
            let lv = loss.value().item();
            if watchdog_on && !lv.is_finite() {
                return Err(EpochAbort::Diverged(DivergenceReason::NonFiniteLoss {
                    step: gstep,
                }));
            }
            val_loss_acc += lv as f64;
            val_count += 1;
            if cfg.cost_penalty > 0.0 {
                // efficiency-aware objective (§6 future work):
                // L_val + λ · E[operator cost]
                loss = loss.add(&model.expected_cost(&tape).scale(cfg.cost_penalty));
            }
            drop(fwd);
            {
                let _span = cts_obs::span(cts_obs::Phase::Backward);
                tape.backward(&loss);
            }
            // w gradients from this pass are discarded (first-order
            // approximation): only Θ steps here.
            for p in weight_opt.params() {
                p.zero_grad();
            }
            if watchdog_on && !global_grad_norm(arch_opt.params()).is_finite() {
                return Err(EpochAbort::Diverged(DivergenceReason::NonFiniteGradient {
                    step: gstep,
                }));
            }
            {
                let _span = cts_obs::span(cts_obs::Phase::ArchStep);
                arch_opt.step();
            }
            lv
        };
        // line 5-6: update w on a pseudo-training mini-batch
        {
            let tape = Tape::new();
            let fwd = cts_obs::span(cts_obs::Phase::Forward);
            let xv = tape.constant(x_tr.clone());
            let pred = model.forward(&tape, &xv);
            let loss = loss_kind.compute(&tape, &pred, y_tr);
            if watchdog_on && !loss.value().item().is_finite() {
                return Err(EpochAbort::Diverged(DivergenceReason::NonFiniteLoss {
                    step: gstep,
                }));
            }
            drop(fwd);
            {
                let _span = cts_obs::span(cts_obs::Phase::Backward);
                tape.backward(&loss);
            }
            for p in arch_opt.params() {
                p.zero_grad();
            }
            if fault::take_nan_grad(gstep) {
                fault::poison_gradients(weight_opt.params());
            }
            if watchdog_on && !global_grad_norm(weight_opt.params()).is_finite() {
                return Err(EpochAbort::Diverged(DivergenceReason::NonFiniteGradient {
                    step: gstep,
                }));
            }
            *memory_scalars = (*memory_scalars).max(tape.activation_scalars());
            {
                let _span = cts_obs::span(cts_obs::Phase::WeightStep);
                if cfg.clip > 0.0 {
                    clip_grad_norm(weight_opt.params(), cfg.clip);
                }
                weight_opt.step();
            }
        }
        *steps += 1;
        if cts_obs::trace_enabled() {
            use cts_obs::runlog::Value;
            cts_obs::runlog::emit(
                "step",
                &[
                    ("kind", Value::Str("joint_search")),
                    ("step", Value::U64(gstep)),
                    ("val_loss", Value::F64(step_val as f64)),
                ],
            );
        }
    }
    Ok(if val_count > 0 {
        (val_loss_acc / val_count as f64) as f32
    } else {
        0.0
    })
}

/// Last-good in-memory snapshot for watchdog rollback. Includes the
/// shuffle permutations and RNG so a retried epoch replays the same
/// batch order and checkpoint resume stays replayable.
struct Snapshot {
    values: Vec<Tensor>,
    arch: OptimizerState,
    weight: OptimizerState,
    steps: usize,
    memory_scalars: usize,
    perm_train: Vec<usize>,
    perm_val: Vec<usize>,
    rng: [u64; 4],
}

impl Snapshot {
    #[allow(clippy::too_many_arguments)]
    fn capture(
        params: &[Parameter],
        arch_opt: &Adam,
        weight_opt: &Adam,
        steps: usize,
        memory_scalars: usize,
        perm_train: &[usize],
        perm_val: &[usize],
        rng: &SmallRng,
    ) -> Self {
        Self {
            values: params.iter().map(|p| p.value().clone()).collect(),
            arch: arch_opt.export_state("arch"),
            weight: weight_opt.export_state("weight"),
            steps,
            memory_scalars,
            perm_train: perm_train.to_vec(),
            perm_val: perm_val.to_vec(),
            rng: rng.state(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn restore(
        &self,
        params: &[Parameter],
        arch_opt: &mut Adam,
        weight_opt: &mut Adam,
        steps: &mut usize,
        memory_scalars: &mut usize,
        perm_train: &mut Vec<usize>,
        perm_val: &mut Vec<usize>,
        rng: &mut SmallRng,
    ) {
        for (p, t) in params.iter().zip(&self.values) {
            p.set_value(t.clone());
            p.zero_grad();
        }
        arch_opt
            .import_state(&self.arch)
            // invariant: the snapshot was exported from this same optimizer.
            .expect("snapshot taken from this optimizer");
        weight_opt
            .import_state(&self.weight)
            // invariant: the snapshot was exported from this same optimizer.
            .expect("snapshot taken from this optimizer");
        *steps = self.steps;
        *memory_scalars = self.memory_scalars;
        perm_train.clone_from(&self.perm_train);
        perm_val.clone_from(&self.perm_val);
        *rng = SmallRng::from_state(self.rng);
    }
}

/// Run Algorithm 1 and return the derived genotype, the trained supernet,
/// and the cost statistics.
///
/// The training split of `windows` is halved into pseudo-train /
/// pseudo-validation (§3.4); `Θ` steps use pseudo-validation batches and
/// `w` steps pseudo-training batches, strictly alternating (lines 3–6).
///
/// With `cfg.checkpoint` set, run state is persisted atomically at epoch
/// boundaries, and a search killed mid-epoch resumes from the last
/// checkpoint producing the *bit-identical* genotype and per-epoch trace
/// an uninterrupted run would have produced. The divergence watchdog
/// (`cfg.watchdog`) rolls both optimizers back to the last good epoch on
/// NaN losses/gradients or loss spikes, cuts both learning rates, and
/// retries within a bounded budget before returning
/// [`SearchError::Diverged`].
pub fn joint_search(
    cfg: &SearchConfig,
    spec: &DatasetSpec,
    graph: &SensorGraph,
    windows: &SplitWindows,
) -> Result<(Genotype, SupernetModel, SearchStats), SearchError> {
    cfg.try_validate().map_err(SearchError::InvalidConfig)?;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let model = SupernetModel::new(&mut rng, cfg, spec, graph, &windows.scaler);

    let (pseudo_train, pseudo_val) = windows.pseudo_split();
    if pseudo_train.is_empty() || pseudo_val.is_empty() {
        return Err(SearchError::EmptySplit {
            train: pseudo_train.len(),
            val: pseudo_val.len(),
        });
    }

    let mut arch_opt = Adam::for_architecture(model.arch_parameters(), cfg.arch_lr, cfg.arch_wd);
    let mut weight_opt = Adam::new(model.weight_parameters(), cfg.weight_lr, cfg.weight_wd);
    let mut schedule = TemperatureSchedule::new(cfg.tau_init, cfg.tau_factor, cfg.tau_min);
    let loss_kind = LossKind::MaskedMae {
        null_value: spec.null_value,
    };
    let all_params: Vec<Parameter> = model
        .arch_parameters()
        .into_iter()
        .chain(model.weight_parameters())
        .collect();

    // Epoch orderings are cumulative in-place shuffles, tracked as index
    // permutations so resume can replay them without the window data.
    let mut perm_train: Vec<usize> = (0..pseudo_train.len()).collect();
    let mut perm_val: Vec<usize> = (0..pseudo_val.len()).collect();

    let mut steps = 0usize;
    let mut memory_scalars = 0usize;
    let mut final_val_loss = 0.0f32;
    let mut epoch_trace: Vec<EpochStats> = Vec::with_capacity(cfg.epochs);
    let mut loss_history: Vec<f32> = Vec::with_capacity(cfg.epochs);
    let mut epoch = 0usize;
    let mut secs_before = 0.0f64;

    // Resume from a previous run's checkpoint when configured. A corrupt
    // file is a hard error — it is never loaded, and never silently
    // replaced by a fresh start.
    if let Some(ck) = &cfg.checkpoint {
        if ck.resume && ck.path.exists() {
            let rs = load_run_state(&ck.path)?;
            apply_parameters(&rs.params, &all_params)?;
            for os in &rs.optimizers {
                match os.name.as_str() {
                    "arch" => arch_opt.import_state(os)?,
                    "weight" => weight_opt.import_state(os)?,
                    other => {
                        return Err(SearchError::Checkpoint(CheckpointError::Incompatible(
                            format!("unknown optimizer {other:?} in search checkpoint"),
                        )))
                    }
                }
            }
            if let Some(s) = &rs.schedule {
                if s.factor != schedule.factor() || s.min != schedule.min_tau() {
                    return Err(SearchError::Checkpoint(CheckpointError::Incompatible(
                        format!(
                            "checkpoint temperature schedule (factor {}, min {}) does not \
                             match the config (factor {}, min {})",
                            s.factor,
                            s.min,
                            schedule.factor(),
                            schedule.min_tau()
                        ),
                    )));
                }
                schedule.restore(s.tau);
            }
            epoch = rs.counters.epoch as usize;
            steps = rs.counters.step as usize;
            memory_scalars = rs.counters.memory_scalars as usize;
            final_val_loss = rs.counters.last_val;
            secs_before = rs.counters.secs;
            epoch_trace = rs
                .trace
                .iter()
                .map(|t| EpochStats {
                    tau: t[0],
                    val_loss: t[1],
                    alpha_entropy: t[2],
                })
                .collect();
            loss_history = rs.val_losses.clone();
            if let Some(last) = epoch_trace.last() {
                model.set_tau(last.tau);
            }
            // Replay the completed epochs' shuffles, then verify the RNG
            // landed exactly where the checkpoint recorded it — this both
            // reconstructs the cumulative permutations and proves the
            // checkpoint belongs to this (seed, config, dataset).
            for _ in 0..epoch {
                shuffle_in_place(&mut rng, &mut perm_train);
                shuffle_in_place(&mut rng, &mut perm_val);
            }
            if let Some(state) = rs.rng {
                if rng.state() != state {
                    return Err(SearchError::Checkpoint(CheckpointError::Incompatible(
                        "checkpoint RNG state does not match a deterministic replay — \
                         the checkpoint was produced with a different seed, config, or \
                         dataset"
                            .into(),
                    )));
                }
            }
        }
    }

    let started = cts_obs::Stopwatch::start();
    if cts_obs::metrics_enabled() {
        use cts_obs::runlog::Value;
        cts_obs::runlog::emit(
            "run_start",
            &[
                ("kind", Value::Str("joint_search")),
                ("seed", Value::U64(cfg.seed)),
                ("epochs", Value::U64(cfg.epochs as u64)),
                ("start_epoch", Value::U64(epoch as u64)),
                ("tau", Value::F64(schedule.tau() as f64)),
            ],
        );
    }
    let mut snapshot = Snapshot::capture(
        &all_params,
        &arch_opt,
        &weight_opt,
        steps,
        memory_scalars,
        &perm_train,
        &perm_val,
        &rng,
    );
    let mut rollbacks = 0usize;

    while epoch < cfg.epochs {
        model.set_tau(schedule.tau());
        shuffle_in_place(&mut rng, &mut perm_train);
        shuffle_in_place(&mut rng, &mut perm_val);
        let shuffled_train: Vec<Window> =
            perm_train.iter().map(|&i| pseudo_train[i].clone()).collect();
        let shuffled_val: Vec<Window> =
            perm_val.iter().map(|&i| pseudo_val[i].clone()).collect();
        let train_batches = batches_from_windows(&shuffled_train, cfg.batch_size);
        let val_batches = batches_from_windows(&shuffled_val, cfg.batch_size);

        let outcome = run_search_epoch(
            &model,
            &mut arch_opt,
            &mut weight_opt,
            &train_batches,
            &val_batches,
            cfg,
            loss_kind,
            &mut steps,
            &mut memory_scalars,
        );
        let diverged = match outcome {
            Err(EpochAbort::Interrupted) => {
                return Err(SearchError::Interrupted {
                    epoch,
                    step: steps as u64,
                });
            }
            Err(EpochAbort::Diverged(reason)) => Some(reason),
            Ok(vl) if cfg.watchdog.enabled && cfg.watchdog.is_spike(vl, &loss_history) => {
                Some(DivergenceReason::LossSpike {
                    loss: vl,
                    median: cfg.watchdog.running_median(&loss_history).unwrap_or(0.0),
                })
            }
            Ok(vl) => {
                final_val_loss = vl;
                None
            }
        };
        if let Some(reason) = diverged {
            if rollbacks >= cfg.watchdog.max_retries {
                return Err(SearchError::Diverged {
                    epoch,
                    retries: rollbacks,
                    reason,
                });
            }
            rollbacks += 1;
            if cts_obs::metrics_enabled() {
                use cts_obs::runlog::Value;
                let reason_text = reason.to_string();
                cts_obs::runlog::emit(
                    "watchdog",
                    &[
                        ("kind", Value::Str("joint_search")),
                        ("epoch", Value::U64(epoch as u64)),
                        ("step", Value::U64(steps as u64)),
                        ("reason", Value::Str(&reason_text)),
                        ("rollbacks", Value::U64(rollbacks as u64)),
                    ],
                );
            }
            snapshot.restore(
                &all_params,
                &mut arch_opt,
                &mut weight_opt,
                &mut steps,
                &mut memory_scalars,
                &mut perm_train,
                &mut perm_val,
                &mut rng,
            );
            arch_opt.set_lr(arch_opt.lr() * cfg.watchdog.lr_cut);
            weight_opt.set_lr(weight_opt.lr() * cfg.watchdog.lr_cut);
            continue; // retry the same epoch at the reduced LRs
        }

        loss_history.push(final_val_loss);
        let epoch_stats = EpochStats {
            tau: model.tau(),
            val_loss: final_val_loss,
            alpha_entropy: model.mean_alpha_entropy(),
        };
        epoch_trace.push(epoch_stats);
        if cfg.use_temperature {
            schedule.step();
        }
        epoch += 1;
        snapshot = Snapshot::capture(
            &all_params,
            &arch_opt,
            &weight_opt,
            steps,
            memory_scalars,
            &perm_train,
            &perm_val,
            &rng,
        );

        if let Some(ck) = &cfg.checkpoint {
            if ck.due(epoch) || epoch == cfg.epochs {
                let rs = RunState {
                    params: RunState::capture_params(&all_params)?,
                    optimizers: vec![
                        arch_opt.export_state("arch"),
                        weight_opt.export_state("weight"),
                    ],
                    schedule: Some(ScheduleState {
                        tau: schedule.tau(),
                        factor: schedule.factor(),
                        min: schedule.min_tau(),
                    }),
                    counters: RunCounters {
                        epoch: epoch as u64,
                        step: steps as u64,
                        memory_scalars: memory_scalars as u64,
                        last_val: final_val_loss,
                        secs: secs_before + started.elapsed_secs(),
                        ..RunCounters::default()
                    },
                    rng: Some(rng.state()),
                    trace: epoch_trace
                        .iter()
                        .map(|e| [e.tau, e.val_loss, e.alpha_entropy])
                        .collect(),
                    train_losses: Vec::new(),
                    val_losses: loss_history.clone(),
                    mid_epoch: None,
                };
                {
                    let _span = cts_obs::span(cts_obs::Phase::CheckpointWrite);
                    save_run_state(&ck.path, &rs)?;
                }
            }
        }

        if cts_obs::metrics_enabled() {
            use cts_obs::runlog::Value;
            // `epoch` was already advanced past the epoch that just ran.
            let done = epoch as u64 - 1;
            cts_obs::runlog::emit(
                "epoch",
                &[
                    ("kind", Value::Str("joint_search")),
                    ("epoch", Value::U64(done)),
                    ("tau", Value::F64(epoch_stats.tau as f64)),
                    ("val_loss", Value::F64(epoch_stats.val_loss as f64)),
                    ("alpha_entropy", Value::F64(epoch_stats.alpha_entropy as f64)),
                    ("steps", Value::U64(steps as u64)),
                    ("rollbacks", Value::U64(rollbacks as u64)),
                    ("secs", Value::F64(secs_before + started.elapsed_secs())),
                ],
            );
            cts_obs::emit_epoch_rows(done);
            cts_tensor::metrics::emit_epoch_rows(done);
        }
    }

    let genotype = {
        let _span = cts_obs::span(cts_obs::Phase::Derive);
        model.derive()?
    };
    // Static plan peak of the derived architecture (liveness analysis in
    // cts-verify) floors the activation term of the memory estimate. A
    // derived genotype always passes validation, but fall back to 0 rather
    // than fail the whole search over a cost-model refusal.
    let plan_peak = cts_verify::analyze_cost(
        &crate::preflight::arch_spec(cfg, &genotype, spec, graph),
        cfg.batch_size,
    )
    .map_or(0, |c| c.peak_bytes);
    let mem = crate::stats::search_memory_estimate(&model, memory_scalars, plan_peak);
    #[allow(deprecated)]
    let stats = SearchStats {
        secs: secs_before + started.elapsed_secs(),
        steps,
        memory_mb: mem.peak_mb,
        memory_mb_heuristic: mem.heuristic_mb,
        final_tau: model.tau(),
        final_val_loss,
        rollbacks,
        epochs: epoch_trace,
    };
    if cts_obs::metrics_enabled() {
        use cts_obs::runlog::Value;
        // Final roll-up past the last epoch boundary so the derivation
        // phase (and any kernel work it did) reaches the log.
        cts_obs::emit_epoch_rows(epoch as u64);
        cts_tensor::metrics::emit_epoch_rows(epoch as u64);
        cts_obs::runlog::emit(
            "run_end",
            &[
                ("kind", Value::Str("joint_search")),
                ("epochs", Value::U64(epoch as u64)),
                ("steps", Value::U64(stats.steps as u64)),
                ("rollbacks", Value::U64(stats.rollbacks as u64)),
                ("final_tau", Value::F64(stats.final_tau as f64)),
                ("final_val_loss", Value::F64(stats.final_val_loss as f64)),
                ("memory_mb", Value::F64(stats.memory_mb)),
                ("secs", Value::F64(stats.secs)),
            ],
        );
        cts_obs::runlog::flush();
    }
    Ok((genotype, model, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_data::{build_windows, generate};

    fn fixture(cfg: &SearchConfig) -> (DatasetSpec, cts_data::CtsData, SplitWindows) {
        let spec = DatasetSpec::metr_la().scaled(0.04, 0.015);
        let data = generate(&spec, 9);
        let windows = build_windows(&data, 6, 24);
        let _ = cfg;
        (spec, data, windows)
    }

    fn small_cfg() -> SearchConfig {
        SearchConfig {
            m: 3,
            b: 2,
            d_model: 8,
            epochs: 2,
            batch_size: 4,
            ..Default::default()
        }
    }

    #[test]
    fn search_produces_valid_genotype_and_stats() {
        let cfg = small_cfg();
        let (spec, data, windows) = fixture(&cfg);
        let (genotype, model, stats) = joint_search(&cfg, &spec, &data.graph, &windows).unwrap();
        genotype.validate().unwrap();
        assert_eq!(genotype.b(), cfg.b);
        assert!(stats.steps > 0);
        assert!(stats.secs > 0.0);
        assert!(stats.memory_mb > 0.0);
        assert_eq!(stats.rollbacks, 0);
        // the last epoch ran at tau = 5.0 * 0.9 (annealed once before it)
        assert!((stats.final_tau - 5.0 * 0.9).abs() < 1e-5);
        assert!(model.tau() < 5.0);
    }

    #[test]
    fn search_moves_architecture_parameters() {
        let cfg = small_cfg();
        let (spec, data, windows) = fixture(&cfg);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let fresh = SupernetModel::new(&mut rng, &cfg, &spec, &data.graph, &windows.scaler);
        let before: Vec<f32> = fresh
            .arch_parameters()
            .iter()
            .map(|p| p.value().norm())
            .collect();
        let (_, model, _) = joint_search(&cfg, &spec, &data.graph, &windows).unwrap();
        let after: Vec<f32> = model
            .arch_parameters()
            .iter()
            .map(|p| p.value().norm())
            .collect();
        assert_ne!(before, after, "Θ never moved");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = small_cfg();
        let (spec, data, windows) = fixture(&cfg);
        let (g1, _, _) = joint_search(&cfg, &spec, &data.graph, &windows).unwrap();
        let (g2, _, _) = joint_search(&cfg, &spec, &data.graph, &windows).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn without_temperature_keeps_tau_constant() {
        let cfg = small_cfg().without_temperature();
        let (spec, data, windows) = fixture(&cfg);
        let (_, model, stats) = joint_search(&cfg, &spec, &data.graph, &windows).unwrap();
        let _ = model;
        assert_eq!(stats.final_tau, cfg.tau_init);
    }

    #[test]
    fn invalid_config_is_typed_error() {
        let cfg = SearchConfig { m: 1, ..small_cfg() };
        let (spec, data, windows) = fixture(&cfg);
        match joint_search(&cfg, &spec, &data.graph, &windows) {
            Err(SearchError::InvalidConfig(msg)) => {
                assert!(msg.contains("input + output"), "{msg}");
            }
            Err(other) => panic!("expected InvalidConfig, got {other:?}"),
            Ok(_) => panic!("expected InvalidConfig, got Ok"),
        }
    }

    #[test]
    fn empty_split_is_typed_error() {
        let cfg = small_cfg();
        let (spec, data, mut windows) = fixture(&cfg);
        windows.train.truncate(1); // pseudo-split halves this into (0, 1)
        match joint_search(&cfg, &spec, &data.graph, &windows) {
            Err(SearchError::EmptySplit { train: 0, val: 1 }) => {}
            Err(other) => panic!("expected EmptySplit, got {other:?}"),
            Ok(_) => panic!("expected EmptySplit, got Ok"),
        }
    }
}
