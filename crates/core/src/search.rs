//! The joint bi-level search strategy (Algorithm 1).

use crate::{Genotype, SearchConfig, SupernetModel};
use cts_data::{batches_from_windows, shuffle_windows, DatasetSpec, SplitWindows};
use cts_graph::SensorGraph;
use cts_nn::{clip_grad_norm, Adam, Forecaster, LossKind, Optimizer, TemperatureSchedule};
use cts_autograd::Tape;
use rand::{rngs::SmallRng, SeedableRng};

/// Per-epoch trace of the search (observability for Figure 5's
/// temperature/gap discussion).
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Temperature the epoch ran at.
    pub tau: f32,
    /// Mean pseudo-validation loss over the epoch.
    pub val_loss: f32,
    /// Mean α softmax entropy (at the epoch's τ) after the epoch — the
    /// discretisation gap; annealing should drive it toward 0.
    pub alpha_entropy: f32,
}

/// Cost accounting of one search run (Table 7 and the "GPU hours" columns
/// of the ablation tables; wall-clock seconds substitute for GPU hours on
/// this substrate).
#[derive(Clone, Debug)]
pub struct SearchStats {
    /// Wall-clock duration of the whole search.
    pub secs: f64,
    /// Number of (Θ, w) step pairs executed.
    pub steps: usize,
    /// Estimated peak memory of the search in MB (parameters + optimiser
    /// state + activations of one forward/backward).
    pub memory_mb: f64,
    /// Final temperature at derivation time.
    pub final_tau: f32,
    /// Mean pseudo-validation loss of the last epoch.
    pub final_val_loss: f32,
    /// Per-epoch trace (τ, val loss, α entropy).
    pub epochs: Vec<EpochStats>,
}

/// Run Algorithm 1 and return the derived genotype, the trained supernet,
/// and the cost statistics.
///
/// The training split of `windows` is halved into pseudo-train /
/// pseudo-validation (§3.4); `Θ` steps use pseudo-validation batches and
/// `w` steps pseudo-training batches, strictly alternating (lines 3–6).
pub fn joint_search(
    cfg: &SearchConfig,
    spec: &DatasetSpec,
    graph: &SensorGraph,
    windows: &SplitWindows,
) -> (Genotype, SupernetModel, SearchStats) {
    cfg.validate();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let model = SupernetModel::new(&mut rng, cfg, spec, graph, &windows.scaler);

    let (mut pseudo_train, mut pseudo_val) = windows.pseudo_split();
    assert!(
        !pseudo_train.is_empty() && !pseudo_val.is_empty(),
        "not enough training windows for the bi-level split"
    );

    let mut arch_opt = Adam::for_architecture(model.arch_parameters(), cfg.arch_lr, cfg.arch_wd);
    let mut weight_opt = Adam::new(model.weight_parameters(), cfg.weight_lr, cfg.weight_wd);
    let mut schedule = TemperatureSchedule::new(cfg.tau_init, cfg.tau_factor, cfg.tau_min);
    let loss_kind = LossKind::MaskedMae {
        null_value: spec.null_value,
    };

    let started = std::time::Instant::now();
    let mut steps = 0usize;
    let mut memory_scalars = 0usize;
    let mut final_val_loss = 0.0f32;
    let mut epoch_trace = Vec::with_capacity(cfg.epochs);

    for _epoch in 0..cfg.epochs {
        model.set_tau(schedule.tau());
        shuffle_windows(&mut rng, &mut pseudo_train);
        shuffle_windows(&mut rng, &mut pseudo_val);
        let train_batches = batches_from_windows(&pseudo_train, cfg.batch_size);
        let val_batches = batches_from_windows(&pseudo_val, cfg.batch_size);

        let mut val_loss_acc = 0.0f64;
        let mut val_count = 0usize;
        for (step, (x_tr, y_tr)) in train_batches.iter().enumerate() {
            // line 3-4: update Θ on a pseudo-validation mini-batch
            let (x_va, y_va) = &val_batches[step % val_batches.len()];
            {
                let tape = Tape::new();
                let xv = tape.constant(x_va.clone());
                let pred = model.forward(&tape, &xv);
                let mut loss = loss_kind.compute(&tape, &pred, y_va);
                val_loss_acc += loss.value().item() as f64;
                val_count += 1;
                if cfg.cost_penalty > 0.0 {
                    // efficiency-aware objective (§6 future work):
                    // L_val + λ · E[operator cost]
                    loss = loss.add(&model.expected_cost(&tape).scale(cfg.cost_penalty));
                }
                tape.backward(&loss);
                // w gradients from this pass are discarded (first-order
                // approximation): only Θ steps here.
                for p in weight_opt.params() {
                    p.zero_grad();
                }
                arch_opt.step();
            }
            // line 5-6: update w on a pseudo-training mini-batch
            {
                let tape = Tape::new();
                let xv = tape.constant(x_tr.clone());
                let pred = model.forward(&tape, &xv);
                let loss = loss_kind.compute(&tape, &pred, y_tr);
                tape.backward(&loss);
                for p in arch_opt.params() {
                    p.zero_grad();
                }
                if cfg.clip > 0.0 {
                    clip_grad_norm(weight_opt.params(), cfg.clip);
                }
                memory_scalars = memory_scalars.max(tape.activation_scalars());
                weight_opt.step();
            }
            steps += 1;
        }
        if val_count > 0 {
            final_val_loss = (val_loss_acc / val_count as f64) as f32;
        }
        epoch_trace.push(EpochStats {
            tau: model.tau(),
            val_loss: final_val_loss,
            alpha_entropy: model.mean_alpha_entropy(),
        });
        if cfg.use_temperature {
            schedule.step();
        }
    }

    let genotype = model.derive();
    let stats = SearchStats {
        secs: started.elapsed().as_secs_f64(),
        steps,
        memory_mb: crate::stats::search_memory_mb(&model, memory_scalars),
        final_tau: model.tau(),
        final_val_loss,
        epochs: epoch_trace,
    };
    (genotype, model, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_data::{build_windows, generate};

    fn fixture(cfg: &SearchConfig) -> (DatasetSpec, cts_data::CtsData, SplitWindows) {
        let spec = DatasetSpec::metr_la().scaled(0.04, 0.015);
        let data = generate(&spec, 9);
        let windows = build_windows(&data, 6, 24);
        let _ = cfg;
        (spec, data, windows)
    }

    fn small_cfg() -> SearchConfig {
        SearchConfig {
            m: 3,
            b: 2,
            d_model: 8,
            epochs: 2,
            batch_size: 4,
            ..Default::default()
        }
    }

    #[test]
    fn search_produces_valid_genotype_and_stats() {
        let cfg = small_cfg();
        let (spec, data, windows) = fixture(&cfg);
        let (genotype, model, stats) = joint_search(&cfg, &spec, &data.graph, &windows);
        genotype.validate().unwrap();
        assert_eq!(genotype.b(), cfg.b);
        assert!(stats.steps > 0);
        assert!(stats.secs > 0.0);
        assert!(stats.memory_mb > 0.0);
        // the last epoch ran at tau = 5.0 * 0.9 (annealed once before it)
        assert!((stats.final_tau - 5.0 * 0.9).abs() < 1e-5);
        assert!(model.tau() < 5.0);
    }

    #[test]
    fn search_moves_architecture_parameters() {
        let cfg = small_cfg();
        let (spec, data, windows) = fixture(&cfg);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let fresh = SupernetModel::new(&mut rng, &cfg, &spec, &data.graph, &windows.scaler);
        let before: Vec<f32> = fresh
            .arch_parameters()
            .iter()
            .map(|p| p.value().norm())
            .collect();
        let (_, model, _) = joint_search(&cfg, &spec, &data.graph, &windows);
        let after: Vec<f32> = model
            .arch_parameters()
            .iter()
            .map(|p| p.value().norm())
            .collect();
        assert_ne!(before, after, "Θ never moved");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = small_cfg();
        let (spec, data, windows) = fixture(&cfg);
        let (g1, _, _) = joint_search(&cfg, &spec, &data.graph, &windows);
        let (g2, _, _) = joint_search(&cfg, &spec, &data.graph, &windows);
        assert_eq!(g1, g2);
    }

    #[test]
    fn without_temperature_keeps_tau_constant() {
        let cfg = small_cfg().without_temperature();
        let (spec, data, windows) = fixture(&cfg);
        let (_, model, stats) = joint_search(&cfg, &spec, &data.graph, &windows);
        let _ = model;
        assert_eq!(stats.final_tau, cfg.tau_init);
    }
}
