//! The macro search space: learnable information flows `γ` among ST-blocks
//! (§3.3, Figure 7).

use cts_autograd::{Parameter, Tape, Var};
use cts_tensor::{init, Tensor};
use rand::Rng;

/// Relaxed backbone topology over `B` blocks.
///
/// Block `j` (1-based) draws its input from a softmax(γ⁽ʲ⁾)-weighted sum of
/// the embedding output (index 0) and the outputs of blocks `1..j-1`
/// (Eq. 18). Deriving keeps the argmax predecessor per block.
pub struct MacroTopology {
    gammas: Vec<Parameter>,
}

impl MacroTopology {
    /// Topology parameters for a backbone of `b` blocks.
    pub fn new(rng: &mut impl Rng, name: &str, b: usize) -> Self {
        let gammas = (1..=b)
            .map(|j| Parameter::new(format!("{name}.gamma{j}"), init::normal(rng, [j], 1e-3)))
            .collect();
        Self { gammas }
    }

    /// Number of blocks.
    pub fn b(&self) -> usize {
        self.gammas.len()
    }

    /// Mixed input of block `j` (1-based): Eq. 18 over `sources`
    /// (`sources[0]` is the embedding output, `sources[i]` block `i`'s
    /// output; `sources.len() == j`).
    pub fn mix_input(&self, tape: &Tape, sources: &[Var], j: usize) -> Var {
        assert!(j >= 1 && j <= self.gammas.len());
        assert_eq!(sources.len(), j, "block {j} expects {j} sources");
        if j == 1 {
            return sources[0].clone();
        }
        let weights = tape
            .param(&self.gammas[j - 1])
            .reshape(&[1, j])
            .softmax_last();
        let mut acc: Option<Var> = None;
        for (i, src) in sources.iter().enumerate() {
            let w = weights.slice(1, i, i + 1).reshape(&[1]);
            let term = src.mul(&w);
            acc = Some(match acc {
                Some(a) => a.add(&term),
                None => term,
            });
        }
        // invariant: j >= 1, so the sum has at least one term.
        acc.expect("j >= 1")
    }

    /// The γ parameters.
    pub fn parameters(&self) -> Vec<Parameter> {
        self.gammas.clone()
    }

    /// Snapshot of γ values for derivation.
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.gammas.iter().map(|g| g.value().clone()).collect()
    }

    /// Derive the discrete backbone: `backbone[j-1]` is the argmax-γ
    /// predecessor of block `j` (0 = embedding).
    pub fn derive(&self) -> Vec<usize> {
        self.gammas
            .iter()
            .map(|g| {
                let v = g.value();
                let mut best = 0;
                for i in 1..v.len() {
                    if v.data()[i] > v.data()[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn first_block_reads_embedding_directly() {
        let mut rng = SmallRng::seed_from_u64(0);
        let topo = MacroTopology::new(&mut rng, "t", 3);
        let tape = Tape::new();
        let z = tape.constant(Tensor::from_vec([2], vec![1.0, 2.0]));
        let y = topo.mix_input(&tape, std::slice::from_ref(&z), 1);
        assert!(y.value().approx_eq(&z.value(), 0.0));
    }

    #[test]
    fn mixing_is_convex_combination() {
        let mut rng = SmallRng::seed_from_u64(1);
        let topo = MacroTopology::new(&mut rng, "t", 2);
        let tape = Tape::new();
        let a = tape.constant(Tensor::from_vec([1], vec![0.0]));
        let b = tape.constant(Tensor::from_vec([1], vec![10.0]));
        let y = topo.mix_input(&tape, &[a, b], 2).value().item();
        assert!((0.0..=10.0).contains(&y));
    }

    #[test]
    fn gamma_gets_gradients() {
        let mut rng = SmallRng::seed_from_u64(2);
        let topo = MacroTopology::new(&mut rng, "t", 2);
        let tape = Tape::new();
        let a = tape.constant(Tensor::from_vec([1], vec![1.0]));
        let b = tape.constant(Tensor::from_vec([1], vec![2.0]));
        let loss = topo.mix_input(&tape, &[a, b], 2).square().sum_all();
        tape.backward(&loss);
        assert!(topo.parameters()[1].grad().norm() > 0.0);
        // block 1's gamma is unused (trivial input), so no grad
        assert_eq!(topo.parameters()[0].grad().norm(), 0.0);
    }

    #[test]
    fn derive_picks_argmax() {
        let mut rng = SmallRng::seed_from_u64(3);
        let topo = MacroTopology::new(&mut rng, "t", 3);
        topo.gammas[2].set_value(Tensor::from_vec([3], vec![0.1, 5.0, -2.0]));
        let backbone = topo.derive();
        assert_eq!(backbone.len(), 3);
        assert_eq!(backbone[0], 0); // single choice
        assert_eq!(backbone[2], 1); // argmax of the set values
    }
}
