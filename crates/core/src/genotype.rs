//! Discrete architecture descriptions (the output of derivation and the
//! input to architecture evaluation). Serialisable to a compact text format
//! so genotypes can be logged, diffed, and transferred across datasets
//! (Table 35).

use cts_ops::OpKind;
use std::fmt;

/// One derived ST-block: a DAG over `m` latent nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockGenotype {
    /// Number of latent nodes `M` (node 0 is the block input).
    pub m: usize,
    /// Kept edges `(from, to, operator)` with `from < to`; node `to`
    /// aggregates its incoming edges by summation.
    pub edges: Vec<(usize, usize, OpKind)>,
}

impl BlockGenotype {
    /// Incoming edges of node `j`.
    pub fn incoming(&self, j: usize) -> Vec<(usize, OpKind)> {
        self.edges
            .iter()
            .filter(|(_, to, _)| *to == j)
            .map(|(from, _, op)| (*from, *op))
            .collect()
    }

    /// Histogram of operator usage (Figure 8's "5 GDCC, 2 INF-T, …").
    pub fn op_histogram(&self) -> Vec<(OpKind, usize)> {
        let mut counts: Vec<(OpKind, usize)> = Vec::new();
        for (_, _, op) in &self.edges {
            match counts.iter_mut().find(|(k, _)| k == op) {
                Some((_, c)) => *c += 1,
                None => counts.push((*op, 1)),
            }
        }
        counts
    }

    /// Structural validity: edges are forward, nodes in range, and every
    /// non-input node is reachable.
    pub fn validate(&self) -> Result<(), String> {
        if self.m < 2 {
            return Err(format!(
                "block needs at least input + output nodes, got m={}",
                self.m
            ));
        }
        for &(from, to, _) in &self.edges {
            if from >= to {
                return Err(format!("edge {from}->{to} is not forward"));
            }
            if to >= self.m {
                return Err(format!("edge {from}->{to} out of range (m={})", self.m));
            }
        }
        for j in 1..self.m {
            if self.incoming(j).is_empty() {
                return Err(format!("node {j} has no incoming edges"));
            }
        }
        Ok(())
    }
}

/// A complete derived architecture: `B` heterogeneous ST-blocks plus the
/// backbone topology.
#[derive(Clone, Debug, PartialEq)]
pub struct Genotype {
    /// Per-block micro architectures.
    pub blocks: Vec<BlockGenotype>,
    /// `backbone[j]` is the input source of block `j`: `0` is the
    /// embedding layer, `i >= 1` is block `i`'s output. Always
    /// `backbone[j] <= j` (block numbering is 1-based in the paper,
    /// matching Figure 7).
    pub backbone: Vec<usize>,
}

impl Genotype {
    /// Number of ST-blocks.
    pub fn b(&self) -> usize {
        self.blocks.len()
    }

    /// Aggregate operator histogram over all blocks.
    pub fn op_histogram(&self) -> Vec<(OpKind, usize)> {
        let mut counts: Vec<(OpKind, usize)> = Vec::new();
        for b in &self.blocks {
            for (op, c) in b.op_histogram() {
                match counts.iter_mut().find(|(k, _)| *k == op) {
                    Some((_, acc)) => *acc += c,
                    None => counts.push((op, c)),
                }
            }
        }
        counts
    }

    /// Structural validity of blocks and backbone.
    pub fn validate(&self) -> Result<(), String> {
        if self.backbone.len() != self.blocks.len() {
            return Err("backbone length != block count".into());
        }
        for (j, &src) in self.backbone.iter().enumerate() {
            if src > j {
                return Err(format!("block {} fed by later block {}", j + 1, src));
            }
        }
        for (i, b) in self.blocks.iter().enumerate() {
            b.validate().map_err(|e| format!("block {}: {e}", i + 1))?;
        }
        Ok(())
    }

    /// Serialise to a single-line text format:
    /// `block: 0-1:gdcc 1-2:dgcn … | block: … @ backbone: 0,1,1,3`.
    pub fn to_text(&self) -> String {
        let blocks: Vec<String> = self
            .blocks
            .iter()
            .map(|b| {
                let edges: Vec<String> = b
                    .edges
                    .iter()
                    .map(|(f, t, o)| format!("{f}-{t}:{}", o.label()))
                    .collect();
                format!("m={} {}", b.m, edges.join(" "))
            })
            .collect();
        let backbone: Vec<String> = self.backbone.iter().map(|s| s.to_string()).collect();
        format!("{} @ {}", blocks.join(" | "), backbone.join(","))
    }

    /// Parse the [`Genotype::to_text`] format.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let (blocks_part, backbone_part) = text
            .rsplit_once(" @ ")
            .ok_or_else(|| "missing ' @ ' separator".to_string())?;
        let mut blocks = Vec::new();
        for chunk in blocks_part.split(" | ") {
            let mut tokens = chunk.split_whitespace();
            let m_tok = tokens.next().ok_or("empty block")?;
            let m: usize = m_tok
                .strip_prefix("m=")
                .ok_or("block must start with m=")?
                .parse()
                .map_err(|e| format!("bad m: {e}"))?;
            let mut edges = Vec::new();
            for tok in tokens {
                let (pair, op) = tok.rsplit_once(':').ok_or("edge missing ':'")?;
                let (f, t) = pair.split_once('-').ok_or("edge missing '-'")?;
                let op = OpKind::from_label(op).ok_or_else(|| format!("unknown op {op}"))?;
                edges.push((
                    f.parse().map_err(|e| format!("bad from: {e}"))?,
                    t.parse().map_err(|e| format!("bad to: {e}"))?,
                    op,
                ));
            }
            blocks.push(BlockGenotype { m, edges });
        }
        let backbone = backbone_part
            .split(',')
            .map(|s| s.trim().parse().map_err(|e| format!("bad backbone: {e}")))
            .collect::<Result<Vec<usize>, String>>()?;
        let g = Genotype { blocks, backbone };
        g.validate()?;
        Ok(g)
    }
}

impl fmt::Display for Genotype {
    /// Multi-line, human-readable rendering (the Figure 8 case study).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.blocks.iter().enumerate() {
            let src = self.backbone[i];
            let src_name = if src == 0 {
                "embedding".to_string()
            } else {
                format!("block {src}")
            };
            writeln!(f, "ST-block {} (input from {}):", i + 1, src_name)?;
            for j in 1..b.m {
                let inc: Vec<String> = b
                    .incoming(j)
                    .iter()
                    .map(|(from, op)| format!("{op}(h{from})"))
                    .collect();
                writeln!(f, "  h{j} = {}", inc.join(" + "))?;
            }
        }
        writeln!(f, "output layer <- sum of all block outputs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Genotype {
        let block = |ops: [OpKind; 4]| BlockGenotype {
            m: 3,
            edges: vec![
                (0, 1, ops[0]),
                (0, 2, ops[1]),
                (1, 2, ops[2]),
                (0, 1, ops[3]),
            ],
        };
        Genotype {
            blocks: vec![
                block([OpKind::Gdcc, OpKind::Dgcn, OpKind::InformerT, OpKind::Identity]),
                block([OpKind::InformerS, OpKind::Gdcc, OpKind::Dgcn, OpKind::Gdcc]),
            ],
            backbone: vec![0, 1],
        }
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let text = g.to_text();
        let back = Genotype::from_text(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn histogram_counts_all_blocks() {
        let g = sample();
        let hist = g.op_histogram();
        let count = |k: OpKind| hist.iter().find(|(o, _)| *o == k).map(|(_, c)| *c).unwrap_or(0);
        assert_eq!(count(OpKind::Gdcc), 3);
        assert_eq!(count(OpKind::Dgcn), 2);
        assert_eq!(count(OpKind::Identity), 1);
    }

    #[test]
    fn validation_catches_backward_edges() {
        let bad = BlockGenotype {
            m: 3,
            edges: vec![(2, 1, OpKind::Gdcc), (0, 1, OpKind::Identity), (0, 2, OpKind::Identity)],
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validation_catches_unreachable_nodes() {
        let bad = BlockGenotype {
            m: 4,
            edges: vec![(0, 1, OpKind::Gdcc), (1, 3, OpKind::Dgcn)],
        };
        assert!(bad.validate().unwrap_err().contains("node 2"));
    }

    #[test]
    fn validation_catches_degenerate_m() {
        // Regression: a block with m < 2 used to pass validation (both
        // range loops are empty), then blow up during model construction.
        for m in [0, 1] {
            let bad = BlockGenotype { m, edges: vec![] };
            assert!(bad.validate().unwrap_err().contains("input + output"));
        }
        // ...and through from_text, which validates on parse.
        assert!(Genotype::from_text("m=1 @ 0").is_err());
    }

    #[test]
    fn validation_catches_bad_backbone() {
        let mut g = sample();
        g.backbone = vec![0, 9];
        assert!(g.validate().is_err());
    }

    #[test]
    fn display_mentions_blocks_and_ops() {
        let s = format!("{}", sample());
        assert!(s.contains("ST-block 1"));
        assert!(s.contains("gdcc"));
        assert!(s.contains("output layer"));
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(Genotype::from_text("nonsense").is_err());
        assert!(Genotype::from_text("m=3 0-1:gdcc @ x").is_err());
        assert!(Genotype::from_text("m=3 0-1:bogus @ 0").is_err());
    }
}
