//! Search-space and optimisation configuration (§4.1.4 defaults).

use cts_nn::{CheckpointConfig, WatchdogConfig};
use cts_ops::OpKind;

/// Everything that defines one AutoCTS search run.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Latent nodes per ST-block, `M` (paper default 5; varied in
    /// Tables 17/19/21–26).
    pub m: usize,
    /// ST-blocks in the backbone, `B` (paper default 4; varied in
    /// Tables 18/20/21–26).
    pub b: usize,
    /// Hidden channel width `D` of every latent representation.
    pub d_model: usize,
    /// Incoming edges kept per node at derivation (paper default 2;
    /// Tables 36–37 vary it to 3).
    pub edges_per_node: usize,
    /// The operator set `O` (compact set by default; the full Table 1 set
    /// reproduces the *w/o design principles* ablation).
    pub op_set: Vec<OpKind>,
    /// Fraction of channels routed through candidate operators during the
    /// search (partial channel connections, Xu et al. 2019; the paper uses
    /// 1/4). The derived model always uses full channels.
    pub partial_channels: f32,
    /// Search epochs over the pseudo-training set.
    pub epochs: usize,
    /// Mini-batch size during search.
    pub batch_size: usize,
    /// Learning rate for the architecture parameters `Θ` (paper: 3e-4).
    pub arch_lr: f32,
    /// Weight decay for `Θ` (paper: 1e-3).
    pub arch_wd: f32,
    /// Learning rate for the network weights `w` (paper: 1e-3).
    pub weight_lr: f32,
    /// Weight decay for `w` (paper: 1e-4).
    pub weight_wd: f32,
    /// Gradient-norm clip for `w` updates (0 disables).
    pub clip: f32,
    /// Initial softmax temperature τ (paper: 5.0).
    pub tau_init: f32,
    /// Per-epoch exponential annealing factor (paper: 0.9).
    pub tau_factor: f32,
    /// Temperature floor (paper: 1e-3).
    pub tau_min: f32,
    /// `false` reproduces the *w/o temperature* ablation (τ ≡ 1).
    pub use_temperature: bool,
    /// `false` reproduces the *w/o macro search* ablation: a single shared
    /// ST-block searched with a fixed sequential topology, then stacked
    /// with residual connections.
    pub macro_search: bool,
    /// Diffusion steps / Chebyshev order for the GCN-family operators.
    pub gcn_k: usize,
    /// Node-embedding width of the adaptive adjacency (used when the
    /// dataset has no predefined graph).
    pub adaptive_emb: usize,
    /// Efficiency-aware search (the paper's §6 future-work item): weight of
    /// the differentiable operator-cost penalty added to the architecture
    /// objective. 0 disables (the paper's setting); positive values steer
    /// `α` toward cheaper operators.
    pub cost_penalty: f32,
    /// Static-cost budget: reject any genotype whose most expensive single
    /// analyzer step exceeds this many FLOPs at `batch_size` (None
    /// disables). Enforced at pre-flight, before any tensor is allocated.
    pub max_flops_per_step: Option<u64>,
    /// Static-cost budget: reject any genotype whose predicted peak
    /// resident arena bytes at `batch_size` exceed this (None disables).
    pub max_peak_bytes: Option<u64>,
    /// Static-cost budget: reject any genotype whose predicted forward
    /// latency (default calibration) exceeds this many milliseconds at
    /// `batch_size` (None disables).
    pub max_latency_ms: Option<f32>,
    /// RNG seed controlling initialisation and batch order.
    pub seed: u64,
    /// Epoch-boundary run-state persistence for the search (None
    /// disables). A killed search resumes bit-identically from the last
    /// checkpoint.
    pub checkpoint: Option<CheckpointConfig>,
    /// Divergence watchdog for the bi-level loop (enabled by default).
    pub watchdog: WatchdogConfig,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            m: 5,
            b: 4,
            d_model: 16,
            edges_per_node: 2,
            op_set: cts_ops::compact_set(),
            partial_channels: 0.5,
            epochs: 4,
            batch_size: 8,
            arch_lr: 3e-4,
            arch_wd: 1e-3,
            weight_lr: 1e-3,
            weight_wd: 1e-4,
            clip: 5.0,
            tau_init: 5.0,
            tau_factor: 0.9,
            tau_min: 1e-3,
            use_temperature: true,
            macro_search: true,
            gcn_k: 2,
            adaptive_emb: 8,
            cost_penalty: 0.0,
            max_flops_per_step: None,
            max_peak_bytes: None,
            max_latency_ms: None,
            seed: 1,
            checkpoint: None,
            watchdog: WatchdogConfig::default(),
        }
    }
}

impl SearchConfig {
    /// Paper-default micro/macro sizes with a custom seed.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// The *w/o design principles* ablation: search over all of Table 1.
    pub fn without_design_principles(mut self) -> Self {
        self.op_set = cts_ops::full_set();
        self
    }

    /// The *w/o temperature* ablation.
    pub fn without_temperature(mut self) -> Self {
        self.use_temperature = false;
        self
    }

    /// The *w/o macro search* ablation.
    pub fn without_macro_search(mut self) -> Self {
        self.macro_search = false;
        self
    }

    /// Enable efficiency-aware search with penalty weight `lambda`.
    pub fn with_cost_penalty(mut self, lambda: f32) -> Self {
        self.cost_penalty = lambda;
        self
    }

    /// Cap the statically priced per-step FLOPs of every candidate; a
    /// genotype whose priciest analyzer step exceeds `flops` is rejected
    /// at pre-flight with a typed finding naming that step.
    pub fn with_max_flops_per_step(mut self, flops: u64) -> Self {
        self.max_flops_per_step = Some(flops);
        self
    }

    /// Cap the statically predicted peak resident arena bytes of every
    /// candidate at `batch_size`.
    pub fn with_max_peak_bytes(mut self, bytes: u64) -> Self {
        self.max_peak_bytes = Some(bytes);
        self
    }

    /// Cap the statically predicted forward latency (default calibration)
    /// of every candidate at `batch_size`.
    pub fn with_max_latency_ms(mut self, ms: f32) -> Self {
        self.max_latency_ms = Some(ms);
        self
    }

    /// Persist search run state to `ck.path` at epoch boundaries and
    /// resume from it when present (see [`CheckpointConfig`]).
    pub fn with_checkpoint(mut self, ck: CheckpointConfig) -> Self {
        self.checkpoint = Some(ck);
        self
    }

    /// Channel width routed through candidate operators.
    pub fn op_channels(&self) -> usize {
        ((self.d_model as f32 * self.partial_channels).round() as usize)
            .clamp(1, self.d_model)
    }

    /// Number of node pairs `(h_i, h_j), i < j` in one micro-DAG.
    pub fn num_pairs(&self) -> usize {
        self.m * (self.m - 1) / 2
    }

    /// Size of the micro search space, `|O|^(M(M-1)/2)` (§3.2.1), as an f64
    /// because it overflows integers fast.
    pub fn micro_space_size(&self) -> f64 {
        (self.op_set.len() as f64).powi(self.num_pairs() as i32)
    }

    /// Validate invariants, returning a descriptive message on misuse.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.m < 2 {
            return Err("micro-DAG needs at least input + output nodes".into());
        }
        if self.b < 1 {
            return Err("backbone needs at least one ST-block".into());
        }
        if self.edges_per_node < 1 {
            return Err("derivation keeps at least one incoming edge per node".into());
        }
        if self.op_set.is_empty() {
            return Err("operator set must not be empty".into());
        }
        if self.d_model < 2 {
            return Err("d_model must be at least 2".into());
        }
        if !(self.partial_channels > 0.0 && self.partial_channels <= 1.0) {
            return Err("partial_channels must be in (0, 1]".into());
        }
        if self.gcn_k < 1 {
            return Err("gcn_k must be at least 1 (GCN operators need one diffusion step)".into());
        }
        Ok(())
    }

    /// Validate invariants; panics with a descriptive message on misuse.
    /// Use [`SearchConfig::try_validate`] for a typed result.
    pub fn validate(&self) {
        if let Err(msg) = self.try_validate() {
            panic!("{msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SearchConfig::default();
        assert_eq!((c.m, c.b, c.edges_per_node), (5, 4, 2));
        assert_eq!(c.op_set.len(), 6);
        assert_eq!(c.arch_lr, 3e-4);
        assert_eq!(c.arch_wd, 1e-3);
        assert_eq!(c.weight_lr, 1e-3);
        assert_eq!(c.weight_wd, 1e-4);
        assert_eq!((c.tau_init, c.tau_factor, c.tau_min), (5.0, 0.9, 1e-3));
        c.validate();
    }

    #[test]
    fn ablation_builders() {
        assert_eq!(SearchConfig::default().without_design_principles().op_set.len(), 12);
        assert!(!SearchConfig::default().without_temperature().use_temperature);
        assert!(!SearchConfig::default().without_macro_search().macro_search);
    }

    #[test]
    fn search_space_size_formula() {
        let c = SearchConfig::default();
        assert_eq!(c.num_pairs(), 10);
        assert_eq!(c.micro_space_size(), 6f64.powi(10));
    }

    #[test]
    fn op_channels_clamped() {
        let mut c = SearchConfig {
            d_model: 8,
            partial_channels: 0.25,
            ..Default::default()
        };
        assert_eq!(c.op_channels(), 2);
        c.partial_channels = 1.0;
        assert_eq!(c.op_channels(), 8);
    }

    #[test]
    #[should_panic]
    fn invalid_m_rejected() {
        let c = SearchConfig { m: 1, ..Default::default() };
        c.validate();
    }

    #[test]
    fn zero_gcn_k_rejected() {
        // Regression: gcn_k = 0 used to pass validation, then build GCN
        // operators with empty weight stacks (zero diffusion supports).
        let c = SearchConfig { gcn_k: 0, ..Default::default() };
        assert!(c.try_validate().unwrap_err().contains("gcn_k"));
    }
}
