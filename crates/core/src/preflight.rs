//! Pre-flight static verification: bridge from `autocts` types to the
//! `cts-verify` analyzer.
//!
//! Both [`AutoCts::try_search`](crate::AutoCts::try_search) (on the freshly
//! derived genotype) and [`AutoCts::try_evaluate`](crate::AutoCts::try_evaluate)
//! (on whatever genotype the caller hands in, e.g. a transferred one) run
//! the analyzer before any tensor is allocated, so a malformed or
//! degenerate architecture is rejected with named findings instead of a
//! panic deep inside model construction — or worse, a silently wasted
//! retraining run.

use crate::{Genotype, SearchConfig};
use cts_data::DatasetSpec;
use cts_graph::SensorGraph;
use cts_verify::{
    ArchSpec, BlockSpec, CostBudgets, LatencyModel, ModelDims, VerifyError, VerifyReport,
};

/// Describe a candidate architecture to the analyzer: genotype topology
/// plus the concrete dims the model would be instantiated with.
pub fn arch_spec(
    cfg: &SearchConfig,
    genotype: &Genotype,
    spec: &DatasetSpec,
    graph: &SensorGraph,
) -> ArchSpec {
    ArchSpec {
        dims: ModelDims {
            features: spec.features,
            input_len: spec.input_len,
            horizon: spec.output_len,
            d_model: cfg.d_model,
            num_nodes: Some(graph.n()),
            gcn_k: cfg.gcn_k,
            // Mirrors `make_context` in model.rs: a graph with no usable
            // adjacency (all-zero weights) gets a learned adaptive one.
            adaptive: graph.adjacency().sum() <= 0.0,
            adaptive_emb: cfg.adaptive_emb,
        },
        blocks: genotype
            .blocks
            .iter()
            .map(|b| BlockSpec { m: b.m, edges: b.edges.clone() })
            .collect(),
        backbone: genotype.backbone.clone(),
    }
}

/// The static-cost budgets configured on `cfg`, in analyzer form.
pub fn cost_budgets(cfg: &SearchConfig) -> CostBudgets {
    CostBudgets {
        max_flops_per_step: cfg.max_flops_per_step,
        max_peak_bytes: cfg.max_peak_bytes,
        max_latency_ms: cfg.max_latency_ms,
    }
}

/// Statically verify a genotype against the config/dataset it would be
/// instantiated with. `Ok` carries the full report (inferred merged shape,
/// edge liveness, warnings); `Err` means at least one error-severity
/// finding.
///
/// When any cost budget is set on `cfg`, the genotype is additionally
/// priced by [`cts_verify::analyze_cost`] at `cfg.batch_size` and
/// over-budget candidates are rejected with `OverBudget` findings naming
/// the offending step — all before a single tensor is allocated.
pub fn preflight(
    cfg: &SearchConfig,
    genotype: &Genotype,
    spec: &DatasetSpec,
    graph: &SensorGraph,
) -> Result<VerifyReport, VerifyError> {
    let arch = arch_spec(cfg, genotype, spec, graph);
    let mut report = cts_verify::check_genotype(&arch)?;
    let budgets = cost_budgets(cfg);
    if !budgets.is_unbounded() {
        let cost = cts_verify::analyze_cost(&arch, cfg.batch_size)?;
        cts_verify::check_budgets(&mut report, &cost, &budgets, &LatencyModel::default());
        if !report.is_ok() {
            return Err(VerifyError { report });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockGenotype;
    use cts_data::generate;
    use cts_ops::OpKind;
    use cts_tensor::sym::format_shape;

    fn fixture() -> (SearchConfig, DatasetSpec, SensorGraph) {
        let spec = DatasetSpec::metr_la().scaled(0.05, 0.02);
        let data = generate(&spec, 7);
        let cfg = SearchConfig { m: 3, b: 2, d_model: 8, ..Default::default() };
        (cfg, spec, data.graph)
    }

    fn genotype() -> Genotype {
        let block = BlockGenotype {
            m: 3,
            edges: vec![
                (0, 1, OpKind::Gdcc),
                (0, 2, OpKind::InformerT),
                (1, 2, OpKind::Identity),
            ],
        };
        Genotype { blocks: vec![block.clone(), block], backbone: vec![0, 1] }
    }

    #[test]
    fn healthy_genotype_preflights_clean() {
        let (cfg, spec, graph) = fixture();
        let report = preflight(&cfg, &genotype(), &spec, &graph).expect("clean genotype");
        let merged = report.merged_shape.expect("shape pass ran to completion");
        assert_eq!(
            format_shape(&merged),
            format!("[B, {}, {}, {}]", graph.n(), spec.input_len, cfg.d_model)
        );
    }

    #[test]
    fn over_budget_genotype_is_rejected_with_named_step() {
        let (mut cfg, spec, graph) = fixture();
        // 1 FLOP per step: everything blows the budget; the finding must
        // name a concrete analyzer step.
        cfg.max_flops_per_step = Some(1);
        let err = preflight(&cfg, &genotype(), &spec, &graph).unwrap_err();
        let over: Vec<_> = err
            .report
            .errors()
            .filter(|f| f.kind == cts_verify::FindingKind::OverBudget)
            .collect();
        assert!(!over.is_empty(), "{err}");
        assert!(
            over.iter().any(|f| f.site.contains("block0")),
            "no finding names a block step: {err}"
        );

        // Generous budgets pass the same genotype untouched.
        cfg.max_flops_per_step = Some(u64::MAX);
        cfg.max_peak_bytes = Some(u64::MAX);
        cfg.max_latency_ms = Some(f32::MAX);
        preflight(&cfg, &genotype(), &spec, &graph).expect("generous budgets accept");
    }

    #[test]
    fn starved_genotype_is_rejected_with_named_edge() {
        let (cfg, spec, graph) = fixture();
        let mut g = genotype();
        // Cut node 1's only path to the output: the gdcc on e0 is starved.
        g.blocks[0].edges[2] = (1, 2, OpKind::Zero);
        let err = preflight(&cfg, &g, &spec, &graph).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("block0.e0"), "{msg}");
        assert!(msg.contains("gdcc"), "{msg}");
    }
}
