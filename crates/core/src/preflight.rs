//! Pre-flight static verification: bridge from `autocts` types to the
//! `cts-verify` analyzer.
//!
//! Both [`AutoCts::try_search`](crate::AutoCts::try_search) (on the freshly
//! derived genotype) and [`AutoCts::try_evaluate`](crate::AutoCts::try_evaluate)
//! (on whatever genotype the caller hands in, e.g. a transferred one) run
//! the analyzer before any tensor is allocated, so a malformed or
//! degenerate architecture is rejected with named findings instead of a
//! panic deep inside model construction — or worse, a silently wasted
//! retraining run.

use crate::{Genotype, SearchConfig};
use cts_data::DatasetSpec;
use cts_graph::SensorGraph;
use cts_verify::{ArchSpec, BlockSpec, ModelDims, VerifyError, VerifyReport};

/// Describe a candidate architecture to the analyzer: genotype topology
/// plus the concrete dims the model would be instantiated with.
pub fn arch_spec(
    cfg: &SearchConfig,
    genotype: &Genotype,
    spec: &DatasetSpec,
    graph: &SensorGraph,
) -> ArchSpec {
    ArchSpec {
        dims: ModelDims {
            features: spec.features,
            input_len: spec.input_len,
            horizon: spec.output_len,
            d_model: cfg.d_model,
            num_nodes: Some(graph.n()),
        },
        blocks: genotype
            .blocks
            .iter()
            .map(|b| BlockSpec { m: b.m, edges: b.edges.clone() })
            .collect(),
        backbone: genotype.backbone.clone(),
    }
}

/// Statically verify a genotype against the config/dataset it would be
/// instantiated with. `Ok` carries the full report (inferred merged shape,
/// edge liveness, warnings); `Err` means at least one error-severity
/// finding.
pub fn preflight(
    cfg: &SearchConfig,
    genotype: &Genotype,
    spec: &DatasetSpec,
    graph: &SensorGraph,
) -> Result<VerifyReport, VerifyError> {
    cts_verify::check_genotype(&arch_spec(cfg, genotype, spec, graph))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockGenotype;
    use cts_data::generate;
    use cts_ops::OpKind;
    use cts_tensor::sym::format_shape;

    fn fixture() -> (SearchConfig, DatasetSpec, SensorGraph) {
        let spec = DatasetSpec::metr_la().scaled(0.05, 0.02);
        let data = generate(&spec, 7);
        let cfg = SearchConfig { m: 3, b: 2, d_model: 8, ..Default::default() };
        (cfg, spec, data.graph)
    }

    fn genotype() -> Genotype {
        let block = BlockGenotype {
            m: 3,
            edges: vec![
                (0, 1, OpKind::Gdcc),
                (0, 2, OpKind::InformerT),
                (1, 2, OpKind::Identity),
            ],
        };
        Genotype { blocks: vec![block.clone(), block], backbone: vec![0, 1] }
    }

    #[test]
    fn healthy_genotype_preflights_clean() {
        let (cfg, spec, graph) = fixture();
        let report = preflight(&cfg, &genotype(), &spec, &graph).expect("clean genotype");
        let merged = report.merged_shape.expect("shape pass ran to completion");
        assert_eq!(
            format_shape(&merged),
            format!("[B, {}, {}, {}]", graph.n(), spec.input_len, cfg.d_model)
        );
    }

    #[test]
    fn starved_genotype_is_rejected_with_named_edge() {
        let (cfg, spec, graph) = fixture();
        let mut g = genotype();
        // Cut node 1's only path to the output: the gdcc on e0 is starved.
        g.blocks[0].edges[2] = (1, 2, OpKind::Zero);
        let err = preflight(&cfg, &g, &spec, &graph).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("block0.e0"), "{msg}");
        assert!(msg.contains("gdcc"), "{msg}");
    }
}
