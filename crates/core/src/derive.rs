//! Discretisation: from trained architecture parameters to a [`Genotype`]
//! (§3.2.2, Eq. 7 and the incoming-edge rule; §3.3 argmax-γ backbone).

use crate::micro::pair_index;
use crate::{BlockGenotype, Genotype, MicroCell, SupernetModel};
use cts_ops::OpKind;
use cts_tensor::{ops, Tensor};
use std::fmt;

/// Why discretisation refused an architecture snapshot.
///
/// A NaN or infinite architecture weight would make every Eq. 7 score for
/// its pair NaN; the old code silently sorted NaNs as "equal" and derived
/// an arbitrary genotype. A poisoned snapshot is now a typed error so the
/// caller can surface the diverged search instead of evaluating garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeriveError {
    /// The α (operator-mixture) snapshot contains a non-finite value.
    NonFiniteAlpha,
    /// The β (edge-mixture) snapshot feeding node `node` contains a
    /// non-finite value.
    NonFiniteBeta {
        /// DAG node whose β vector is poisoned (`1 ≤ node < m`).
        node: usize,
    },
}

impl fmt::Display for DeriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeriveError::NonFiniteAlpha => {
                write!(f, "α snapshot contains non-finite architecture weights")
            }
            DeriveError::NonFiniteBeta { node } => {
                write!(f, "β snapshot for node {node} contains non-finite weights")
            }
        }
    }
}

impl std::error::Error for DeriveError {}

/// Derive the discrete architecture from a (partially) trained supernet.
///
/// # Errors
/// [`DeriveError`] when any cell's α/β snapshot contains non-finite values
/// (a diverged search) — deriving from it would pick arbitrary operators.
pub fn derive_genotype(supernet: &SupernetModel) -> Result<Genotype, DeriveError> {
    let cfg = supernet.config();
    let blocks: Vec<BlockGenotype> = supernet
        .cells()
        .iter()
        .map(|cell| derive_block(cell, cfg.edges_per_node))
        .collect::<Result<_, _>>()?;
    let (blocks, backbone) = match supernet.topology() {
        Some(t) => {
            let mut backbone = t.derive();
            // paper convention: block 1 always reads the embedding
            backbone[0] = 0;
            (blocks, backbone)
        }
        None => {
            // w/o macro search: stack the single searched block B times in
            // a chain (block j reads block j-1).
            let block = blocks[0].clone();
            let blocks = vec![block; cfg.b];
            let backbone = (0..cfg.b).collect();
            (blocks, backbone)
        }
    };
    let genotype = Genotype { blocks, backbone };
    // invariant: internal consistency check — derivation must emit valid genotypes.
    genotype.validate().expect("derivation produced invalid genotype");
    Ok(genotype)
}

/// Derive one ST-block from a cell's `α`/`β` snapshot.
///
/// Per node `h_j` (Eq. 7 weights `w_o^{(i,j)} = softmax(β)ᵢ · softmax(α)ₒ`):
/// 1. always keep the edge from the immediate predecessor `h_{j-1}` with
///    its best non-zero operator;
/// 2. keep the `edges_per_node − 1` best remaining `(h_i, o)` pairs with
///    distinct `i ≤ j−2`.
///
/// Each pair's α-softmax row is computed exactly once (the old code
/// re-softmaxed per `(i, o)` probe — `O(m²·|O|²)` redundant softmaxes).
///
/// # Errors
/// [`DeriveError`] when the snapshot contains non-finite weights.
pub fn derive_block(cell: &MicroCell, edges_per_node: usize) -> Result<BlockGenotype, DeriveError> {
    let (alpha, betas) = cell.arch_snapshot();
    if !alpha.data().iter().all(|v| v.is_finite()) {
        return Err(DeriveError::NonFiniteAlpha);
    }
    for (idx, beta) in betas.iter().enumerate() {
        if !beta.data().iter().all(|v| v.is_finite()) {
            return Err(DeriveError::NonFiniteBeta { node: idx + 1 });
        }
    }
    let op_set = cell.op_set();
    let m = cell.m();
    let mut edges = Vec::new();
    for j in 1..m {
        let beta_probs = ops::softmax_last(&betas[j - 1].clone().reshaped(vec![1, j]));
        // One α-softmax row per incoming pair (i, j), hoisted out of the
        // per-operator probes below.
        let alpha_rows: Vec<Vec<f32>> = (0..j)
            .map(|i| alpha_row_softmax(&alpha, pair_index(i, j)))
            .collect();
        // Eq. 7 weight for every (i, o)
        let weight = |i: usize, o: usize| -> f32 { beta_probs.at(&[0, i]) * alpha_rows[i][o] };
        // 1. mandatory immediate-predecessor edge
        let best_op = argmax_op(op_set, |o| weight(j - 1, o));
        edges.push((j - 1, j, best_op));
        // 2. extra edges from distinct earlier predecessors
        let mut candidates: Vec<(f32, usize, OpKind)> = (0..j.saturating_sub(1))
            .map(|i| {
                let op = argmax_op(op_set, |o| weight(i, o));
                // invariant: supernet edges draw their ops from this same op set.
                let o_idx = op_set.iter().position(|k| *k == op).expect("op in set");
                (weight(i, o_idx), i, op)
            })
            .collect();
        // Finiteness is established above, so total_cmp is a plain
        // descending order (and deterministic, unlike the old NaN≍Equal).
        candidates.sort_by(|a, b| b.0.total_cmp(&a.0));
        for (_, i, op) in candidates.into_iter().take(edges_per_node - 1) {
            edges.push((i, j, op));
        }
    }
    Ok(BlockGenotype { m, edges })
}

fn alpha_row_softmax(alpha: &Tensor, pair: usize) -> Vec<f32> {
    let o = alpha.shape()[1];
    let row = ops::slice(alpha, 0, pair, pair + 1);
    ops::softmax_last(&row).data()[..o].to_vec()
}

/// Argmax over non-zero operators (the zero op prunes edges and is never
/// instantiated in a derived block, following DARTS).
fn argmax_op(op_set: &[OpKind], weight: impl Fn(usize) -> f32) -> OpKind {
    let mut best: Option<(f32, OpKind)> = None;
    for (o_idx, kind) in op_set.iter().enumerate() {
        if *kind == OpKind::Zero {
            continue;
        }
        let w = weight(o_idx);
        if best.map(|(bw, _)| w > bw).unwrap_or(true) {
            best = Some((w, *kind));
        }
    }
    // invariant: the compact op set contains non-zero operators.
    best.expect("op set has non-zero operators").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchConfig;
    use rand::{rngs::SmallRng, SeedableRng};

    fn cell(m: usize) -> MicroCell {
        let cfg = SearchConfig { m, d_model: 4, ..Default::default() };
        MicroCell::new(&mut SmallRng::seed_from_u64(0), "c", &cfg, false)
    }

    #[test]
    fn block_has_expected_edge_count() {
        let c = cell(5);
        let b = derive_block(&c, 2).unwrap();
        assert_eq!(b.m, 5);
        // node 1: 1 edge; node 2: 2; nodes 3,4: 2 each (cap)
        assert_eq!(b.edges.len(), 1 + 2 + 2 + 2);
        b.validate().unwrap();
        // every node keeps the immediate-predecessor edge
        for j in 1..5 {
            assert!(b.incoming(j).iter().any(|(i, _)| *i == j - 1));
        }
    }

    #[test]
    fn edge3_keeps_more_edges() {
        let c = cell(5);
        let b = derive_block(&c, 3).unwrap();
        // node 1: 1; node 2: 2; node 3: 3; node 4: 3
        assert_eq!(b.edges.len(), 1 + 2 + 3 + 3);
    }

    #[test]
    fn derived_ops_never_zero() {
        let c = cell(4);
        for _ in 0..3 {
            let b = derive_block(&c, 2).unwrap();
            assert!(b.edges.iter().all(|(_, _, op)| *op != OpKind::Zero));
        }
    }

    #[test]
    fn biased_alpha_is_respected() {
        let c = cell(3);
        // bias pair (0,1) hard toward gdcc
        let gdcc = c.op_set().iter().position(|k| *k == OpKind::Gdcc).unwrap();
        {
            let arch = c.arch_parameters();
            let mut a = arch[0].value_mut();
            a.fill(0.0);
            *a.at_mut(&[pair_index(0, 1), gdcc]) = 10.0;
        }
        let b = derive_block(&c, 2).unwrap();
        let (_, op) = b.incoming(1)[0];
        assert_eq!(op, OpKind::Gdcc);
    }

    /// A diverged search leaves NaN/∞ in the architecture weights; the old
    /// sort treated NaN comparisons as Equal and silently derived an
    /// arbitrary genotype. Now it's a typed refusal.
    #[test]
    fn non_finite_snapshot_is_rejected() {
        let c = cell(4);
        {
            let arch = c.arch_parameters();
            let mut a = arch[0].value_mut();
            *a.at_mut(&[0, 0]) = f32::NAN;
        }
        assert_eq!(derive_block(&c, 2), Err(DeriveError::NonFiniteAlpha));

        let c = cell(4);
        {
            let arch = c.arch_parameters();
            // arch = [alpha, beta_1, beta_2, ...]; poison the second beta.
            let mut b = arch[2].value_mut();
            *b.at_mut(&[0]) = f32::INFINITY;
        }
        assert_eq!(
            derive_block(&c, 2),
            Err(DeriveError::NonFiniteBeta { node: 2 })
        );

        // A clean snapshot still derives.
        assert!(derive_block(&cell(4), 2).is_ok());
    }
}
