//! Parameter and memory accounting (Tables 7, 27–34).

use cts_nn::{count_parameters, Forecaster};

/// Size statistics of a model.
#[derive(Clone, Copy, Debug)]
pub struct ModelStats {
    /// Total trainable scalars.
    pub parameters: usize,
    /// Approximate parameter memory in MB (f32).
    pub param_mb: f64,
}

impl ModelStats {
    /// Compute from any forecaster.
    pub fn of(model: &dyn Forecaster) -> Self {
        let parameters = count_parameters(&model.parameters());
        Self {
            parameters,
            param_mb: parameters as f64 * 4.0 / 1e6,
        }
    }
}

/// Estimated peak memory of a search step in MB: parameters ×4 (weights +
/// gradients + the two Adam moments m and v) plus activations ×2 (forward
/// values + backward gradients). This is the historical flat heuristic —
/// it ignores the arena's power-of-two slot padding, so it can *undercut*
/// what the allocator actually holds resident. Prefer
/// [`search_memory_estimate`].
pub fn search_memory_mb(model: &dyn Forecaster, peak_activation_scalars: usize) -> f64 {
    let params = count_parameters(&model.parameters());
    let param_bytes = params as f64 * 4.0 * 4.0; // value + grad + adam m + v
    let act_bytes = peak_activation_scalars as f64 * 4.0 * 2.0;
    (param_bytes + act_bytes) / 1e6
}

/// Public alias kept for harness ergonomics.
pub fn estimate_search_memory_mb(model: &dyn Forecaster, peak_activation_scalars: usize) -> f64 {
    search_memory_mb(model, peak_activation_scalars)
}

/// Peak-memory estimate of one search step, in MB.
#[derive(Clone, Copy, Debug)]
pub struct MemoryEstimate {
    /// Liveness-based estimate (see [`search_memory_estimate`]): an upper
    /// bound on the arena bytes the step holds resident at its peak.
    pub peak_mb: f64,
    /// The historical flat heuristic ([`search_memory_mb`]), kept so run
    /// reports stay comparable across versions.
    #[deprecated(note = "flat heuristic that ignores arena slot padding; use peak_mb")]
    pub heuristic_mb: f64,
}

/// Liveness-based peak-bytes estimate of a search step.
///
/// Models the arena at the peak of one forward/backward:
///
/// * every trainable parameter keeps four resident buffers — value,
///   gradient, and the two Adam moments — each padded to the arena's
///   power-of-two slot capacity, which is at most 2× the payload;
/// * the tape's peak live activation set keeps a forward value plus at
///   most one backward gradient per scalar, padded the same way;
/// * `plan_peak_bytes` — the statically priced peak of the derived
///   architecture's compiled forward (`cts_verify::analyze_cost`) —
///   floors the activation term, so the estimate never undercuts what
///   the inference plan alone is known to need. Pass 0 when no derived
///   plan exists yet.
///
/// Because every term is an upper bound on the matching arena residency,
/// the estimate is pinned `≥` the measured arena high-water mark (see the
/// regression test below and `tests/cost_oracle.rs`).
pub fn search_memory_estimate(
    model: &dyn Forecaster,
    peak_activation_scalars: usize,
    plan_peak_bytes: u64,
) -> MemoryEstimate {
    let params = count_parameters(&model.parameters()) as u64;
    // 4 buffers per scalar × 4 bytes × ≤2 slot padding.
    let param_bytes = params.saturating_mul(4 * 4 * 2);
    // value + gradient per live scalar × 4 bytes × ≤2 slot padding.
    let act_payload = (peak_activation_scalars as u64).saturating_mul(2 * 4 * 2);
    let act_bytes = act_payload.max(plan_peak_bytes);
    #[allow(deprecated)]
    MemoryEstimate {
        peak_mb: param_bytes.saturating_add(act_bytes) as f64 / 1e6,
        heuristic_mb: search_memory_mb(model, peak_activation_scalars),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_autograd::{Parameter, Tape, Var};
    use cts_tensor::Tensor;

    struct Dummy {
        p: Parameter,
    }

    impl Forecaster for Dummy {
        fn forward(&self, tape: &Tape, x: &Var) -> Var {
            let _ = tape;
            x.clone()
        }
        fn parameters(&self) -> Vec<Parameter> {
            vec![self.p.clone()]
        }
    }

    #[test]
    fn stats_count_scalars() {
        let m = Dummy {
            p: Parameter::new("p", Tensor::zeros([100, 10])),
        };
        let s = ModelStats::of(&m);
        assert_eq!(s.parameters, 1000);
        assert!((s.param_mb - 0.004).abs() < 1e-9);
    }

    #[test]
    fn memory_estimate_scales_with_activations() {
        let m = Dummy {
            p: Parameter::new("p", Tensor::zeros([10])),
        };
        let small = search_memory_mb(&m, 1_000);
        let large = search_memory_mb(&m, 1_000_000);
        assert!(large > small * 100.0);
    }

    #[test]
    fn estimate_floors_at_plan_peak_and_dominates_heuristic() {
        let m = Dummy {
            p: Parameter::new("p", Tensor::zeros([10])),
        };
        let est = search_memory_estimate(&m, 1_000, 0);
        #[allow(deprecated)]
        let heuristic = est.heuristic_mb;
        assert!(est.peak_mb >= heuristic, "{est:?}");
        // A large static plan peak floors the activation term.
        let floored = search_memory_estimate(&m, 1_000, 50_000_000);
        assert!(floored.peak_mb >= 50.0, "{floored:?}");
    }

    // Regression gate (satellite of the static-cost-analysis PR): the
    // liveness-based estimator must never undercut the arena residency a
    // real search step is measured to add on a smoke supernet.
    #[test]
    fn liveness_estimator_covers_measured_arena_residency() {
        use crate::{SearchConfig, SupernetModel};
        use cts_data::{batches_from_windows, build_windows, generate, DatasetSpec};
        use cts_nn::LossKind;
        use cts_tensor::arena;
        use rand::{rngs::SmallRng, SeedableRng};

        let spec = DatasetSpec::metr_la().scaled(0.05, 0.015);
        let data = generate(&spec, 0);
        let windows = build_windows(&data, 4, 16);
        let cfg = SearchConfig { m: 3, b: 2, d_model: 8, ..Default::default() };
        let mut rng = SmallRng::seed_from_u64(0);
        let model = SupernetModel::new(&mut rng, &cfg, &spec, &data.graph, &windows.scaler);
        let batches = batches_from_windows(&windows.train[..2], 2);

        let (live_before, _) = arena::live_stats();
        arena::reset_live_peak();
        let tape = Tape::new();
        let x = tape.constant(batches[0].0.clone());
        let pred = model.forward(&tape, &x);
        let loss = LossKind::MaskedMae { null_value: spec.null_value }
            .compute(&tape, &pred, &batches[0].1);
        tape.backward(&loss);
        let scalars = tape.activation_scalars();
        let (_, peak) = arena::live_stats();
        // Arena residency this step added, in bytes (live_stats counts
        // rounded capacity floats).
        let measured = peak.saturating_sub(live_before) as f64 * 4.0;

        let est = search_memory_estimate(&model, scalars, 0);
        assert!(
            est.peak_mb * 1e6 >= measured,
            "liveness estimate {:.3} MB undercuts measured residency {:.3} MB",
            est.peak_mb,
            measured / 1e6
        );
    }
}
