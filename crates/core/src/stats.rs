//! Parameter and memory accounting (Tables 7, 27–34).

use cts_nn::{count_parameters, Forecaster};

/// Size statistics of a model.
#[derive(Clone, Copy, Debug)]
pub struct ModelStats {
    /// Total trainable scalars.
    pub parameters: usize,
    /// Approximate parameter memory in MB (f32).
    pub param_mb: f64,
}

impl ModelStats {
    /// Compute from any forecaster.
    pub fn of(model: &dyn Forecaster) -> Self {
        let parameters = count_parameters(&model.parameters());
        Self {
            parameters,
            param_mb: parameters as f64 * 4.0 / 1e6,
        }
    }
}

/// Estimated peak memory of a search step in MB: parameters ×4 (weights +
/// gradients + the two Adam moments m and v) plus activations ×2 (forward
/// values + backward gradients).
pub fn search_memory_mb(model: &dyn Forecaster, peak_activation_scalars: usize) -> f64 {
    let params = count_parameters(&model.parameters());
    let param_bytes = params as f64 * 4.0 * 4.0; // value + grad + adam m + v
    let act_bytes = peak_activation_scalars as f64 * 4.0 * 2.0;
    (param_bytes + act_bytes) / 1e6
}

/// Public alias kept for harness ergonomics.
pub fn estimate_search_memory_mb(model: &dyn Forecaster, peak_activation_scalars: usize) -> f64 {
    search_memory_mb(model, peak_activation_scalars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_autograd::{Parameter, Tape, Var};
    use cts_tensor::Tensor;

    struct Dummy {
        p: Parameter,
    }

    impl Forecaster for Dummy {
        fn forward(&self, tape: &Tape, x: &Var) -> Var {
            let _ = tape;
            x.clone()
        }
        fn parameters(&self) -> Vec<Parameter> {
            vec![self.p.clone()]
        }
    }

    #[test]
    fn stats_count_scalars() {
        let m = Dummy {
            p: Parameter::new("p", Tensor::zeros([100, 10])),
        };
        let s = ModelStats::of(&m);
        assert_eq!(s.parameters, 1000);
        assert!((s.param_mb - 0.004).abs() < 1e-9);
    }

    #[test]
    fn memory_estimate_scales_with_activations() {
        let m = Dummy {
            p: Parameter::new("p", Tensor::zeros([10])),
        };
        let small = search_memory_mb(&m, 1_000);
        let large = search_memory_mb(&m, 1_000_000);
        assert!(large > small * 100.0);
    }
}
