//! `autocts`: the paper's contribution — joint micro/macro neural
//! architecture search for correlated time series forecasting.
//!
//! The pipeline mirrors §3 of the paper:
//!
//! 1. [`SearchConfig`] fixes the search space: `M` latent nodes per
//!    ST-block (micro), `B` ST-blocks (macro), the operator set `O`
//!    ([`cts_ops::compact_set`] by default), and the temperature schedule.
//! 2. [`search`](search::joint_search) trains a [`SupernetModel`] with the
//!    bi-level first-order strategy of Algorithm 1, alternating updates of
//!    the architecture parameters `Θ = ({αᵢ, βᵢ}, γ)` on pseudo-validation
//!    batches and the network weights `w` on pseudo-training batches.
//! 3. [`derive`](derive::derive_genotype) extracts a discrete [`Genotype`]
//!    (Eq. 7 + the two-incoming-edges rule + argmax-γ backbone).
//! 4. [`ArchitectureEvaluation`](evaluate) retrains the derived
//!    [`DerivedModel`] from scratch on train+validation and reports test
//!    metrics.
//!
//! The high-level entry point is [`AutoCts`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
#[cfg(test)]
mod cost_tests;
mod config;
mod derive;
mod error;
mod genotype;
mod macro_space;
mod micro;
mod model;
mod search;
mod stats;

pub mod eval;
pub mod preflight;

pub use api::{AutoCts, SearchOutcome};
pub use config::SearchConfig;
pub use derive::{derive_genotype, DeriveError};
pub use error::{EvalError, SearchError};
pub use genotype::{BlockGenotype, Genotype};
pub use macro_space::MacroTopology;
pub use micro::MicroCell;
pub use model::DerivedModel;
pub use search::{joint_search, EpochStats, SearchStats};
pub use stats::{estimate_search_memory_mb, search_memory_estimate, MemoryEstimate, ModelStats};

pub use model::SupernetModel;
