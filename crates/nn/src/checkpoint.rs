//! Run-state checkpointing: save/load model weights *and* full training
//! state to a small self-describing binary format (no external
//! dependencies).
//!
//! Combined with [`autocts::Genotype::to_text`] a searched-and-trained
//! model is fully persistable: the genotype captures the architecture,
//! the checkpoint the weights — and, since the `CTSCKPT2` format, the
//! complete run state (optimizer moments, schedules, counters, RNG), so
//! an interrupted run resumes bit-identically.
//!
//! # Formats
//!
//! **v1** (legacy, still readable): magic `CTSCKPT1`, `u32` parameter
//! count, then per parameter: `u32` name length + UTF-8 name, `u32` rank,
//! `u64` dims, `f32` data. No integrity footer.
//!
//! **v2**: magic `CTSCKPT2`, a sequence of chunks (`[u8; 4]` tag +
//! `u64` payload length + payload), and a trailing CRC32 (IEEE) over
//! everything before it. Torn or corrupted writes are therefore
//! *detected and rejected*, never loaded. Unknown chunk tags are skipped,
//! so the format is forward-extensible. All integers little-endian.
//!
//! Writes via [`save_run_state`]/[`save_parameters`] are atomic: the
//! bytes go to a `<path>.tmp` sibling, are fsynced, then renamed over the
//! destination, so a crash mid-write leaves the previous checkpoint
//! intact.

// This file parses attacker-controllable bytes: every length cast must be
// checked and every slice access bounds-proven, so the pedantic subset is
// promoted to warnings (check.sh runs clippy with -D warnings).
#![warn(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use cts_autograd::Parameter;
use cts_tensor::Tensor;
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC_V1: &[u8; 8] = b"CTSCKPT1";
const MAGIC_V2: &[u8; 8] = b"CTSCKPT2";

/// Hard caps on attacker-controlled header fields. A hostile checkpoint
/// can still claim large tensors, but every allocation is additionally
/// bounded by the bytes actually present in the stream.
const MAX_NAME_LEN: usize = 1 << 16;
const MAX_RANK: usize = 16;

const TAG_PARAMS: &[u8; 4] = b"PRMS";
const TAG_OPTIMIZERS: &[u8; 4] = b"OPTS";
const TAG_SCHEDULE: &[u8; 4] = b"SCHD";
const TAG_COUNTERS: &[u8; 4] = b"CNTR";
const TAG_RNG: &[u8; 4] = b"RNGS";
const TAG_TRACE: &[u8; 4] = b"TRCE";
const TAG_LOSSES: &[u8; 4] = b"LOSS";
const TAG_MIDEPOCH: &[u8; 4] = b"MIDE";

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed failure of a checkpoint read or write.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem / stream error.
    Io(io::Error),
    /// The bytes are not a valid checkpoint (bad magic, truncation, CRC
    /// mismatch, malformed chunk). A corrupt file is never partially
    /// loaded.
    Corrupt(String),
    /// The checkpoint is well-formed but does not match the run it is
    /// being restored into (missing/mismatched parameters, wrong
    /// optimizer layout, RNG state divergence).
    Incompatible(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::Incompatible(m) => write!(f, "incompatible checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<CheckpointError> for io::Error {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

fn corrupt(msg: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt(msg.into())
}

// ---------------------------------------------------------------------------
// Run state
// ---------------------------------------------------------------------------

/// Serialised state of one Adam optimizer: step count, learning rate, and
/// the first/second moment buffers aligned with the optimizer's parameter
/// order.
#[derive(Clone, Debug, PartialEq)]
pub struct OptimizerState {
    /// Which optimizer this is (e.g. `"weight"`, `"arch"`).
    pub name: String,
    /// Adam step counter `t`.
    pub t: u64,
    /// Learning rate at checkpoint time (watchdog LR cuts persist).
    pub lr: f32,
    /// First-moment buffers, one per parameter.
    pub m: Vec<Tensor>,
    /// Second-moment buffers, one per parameter.
    pub v: Vec<Tensor>,
}

/// Serialised position of a [`crate::TemperatureSchedule`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleState {
    /// Current temperature τ.
    pub tau: f32,
    /// Per-epoch annealing factor.
    pub factor: f32,
    /// Temperature floor.
    pub min: f32,
}

/// Position inside a partially-completed epoch, written by mid-epoch
/// checkpoints ([`crate::runstate::CheckpointConfig::every_steps`]).
///
/// A resumed run skips the first `batch` batches of the epoch and seeds
/// its loss accumulator with `loss_sum`, so the epoch's mean loss — and
/// therefore every downstream decision (watchdog, early stopping) — is
/// bit-identical to an uninterrupted run. `loss_sum` is `f64` because the
/// accumulator itself is `f64`; rounding it through `f32` would fork the
/// resumed trajectory.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MidEpochState {
    /// Batches of the current epoch already consumed.
    pub batch: u64,
    /// Running sum of per-batch training losses within the epoch.
    pub loss_sum: f64,
}

/// Scalar bookkeeping of a training / search run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunCounters {
    /// Completed epochs (the next epoch to run on resume).
    pub epoch: u64,
    /// Global step counter.
    pub step: u64,
    /// Epoch index with the best validation loss so far.
    pub best_epoch: u64,
    /// Early-stopping stall counter.
    pub stall: u64,
    /// Peak activation-scalar count observed (search memory accounting).
    pub memory_scalars: u64,
    /// Best validation loss so far.
    pub best_val: f32,
    /// Mean validation loss of the last completed epoch.
    pub last_val: f32,
    /// Wall-clock seconds accumulated before this checkpoint.
    pub secs: f64,
}

impl Default for RunCounters {
    fn default() -> Self {
        Self {
            epoch: 0,
            step: 0,
            best_epoch: 0,
            stall: 0,
            memory_scalars: 0,
            best_val: f32::INFINITY,
            last_val: 0.0,
            secs: 0.0,
        }
    }
}

/// Complete state of a training or search run at an epoch boundary.
///
/// Everything a resumed run needs to continue *bit-identically*: named
/// parameter tensors, per-optimizer Adam moments, the temperature
/// schedule position, counters, the shuffle RNG, and the per-epoch trace
/// accumulated so far.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunState {
    /// Named parameter tensors (weights and architecture parameters).
    pub params: Vec<(String, Tensor)>,
    /// One entry per optimizer driving the run.
    pub optimizers: Vec<OptimizerState>,
    /// Temperature-schedule position (search runs only).
    pub schedule: Option<ScheduleState>,
    /// Scalar bookkeeping.
    pub counters: RunCounters,
    /// Raw xoshiro256++ state of the shuffle RNG (search runs only).
    pub rng: Option<[u64; 4]>,
    /// Per-epoch `[τ, val_loss, α_entropy]` trace (search runs only).
    pub trace: Vec<[f32; 3]>,
    /// Mean training loss per completed epoch.
    pub train_losses: Vec<f32>,
    /// Mean validation loss per completed epoch.
    pub val_losses: Vec<f32>,
    /// Mid-epoch position when the checkpoint was taken between epoch
    /// boundaries; `None` for epoch-boundary checkpoints. Decoders that
    /// predate this field skip the chunk (unknown tags are ignored), so
    /// mid-epoch checkpoints stay readable as epoch checkpoints.
    pub mid_epoch: Option<MidEpochState>,
}

impl RunState {
    /// Snapshot a parameter list into named `(name, tensor)` pairs.
    ///
    /// # Errors
    /// Fails when two parameters share a name — the checkpoint could not
    /// be restored unambiguously.
    pub fn capture_params(params: &[Parameter]) -> Result<Vec<(String, Tensor)>, CheckpointError> {
        let mut seen = HashMap::with_capacity(params.len());
        let mut out = Vec::with_capacity(params.len());
        for p in params {
            let name = p.name();
            if seen.insert(name.clone(), ()).is_some() {
                return Err(CheckpointError::Incompatible(format!(
                    "duplicate parameter name {name:?} — cannot checkpoint unambiguously"
                )));
            }
            out.push((name, p.value().clone()));
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, the zlib polynomial)
// ---------------------------------------------------------------------------

#[allow(clippy::cast_possible_truncation, clippy::indexing_slicing)] // i < 256 throughout
const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32; // invariant: i < 256 (loop bound).
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC32 (IEEE) of `bytes`.
#[allow(clippy::cast_possible_truncation, clippy::indexing_slicing)] // index masked to 8 bits
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        // invariant: the index is masked to 8 bits, in table range.
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// v2 encoding
// ---------------------------------------------------------------------------

/// Encode a collection length / rank as `u32`.
fn len_u32(n: usize) -> u32 {
    // invariant: checkpoint collections (params, moments, trace rows, name
    // bytes) stay far below u32::MAX entries by construction; a violation
    // is a programming error, not a data error.
    u32::try_from(n).expect("collection length exceeds u32")
}

/// Reassemble an `f32` from a 4-byte `chunks_exact(4)` window.
fn le_f32(b: &[u8]) -> f32 {
    let mut w = [0u8; 4];
    w.copy_from_slice(b);
    f32::from_le_bytes(w)
}

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::with_capacity(4096) }
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(len_u32(s.len()));
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn tensor(&mut self, t: &Tensor) {
        self.u32(len_u32(t.rank()));
        for &d in t.shape() {
            self.u64(d as u64);
        }
        for &x in t.data() {
            self.f32(x);
        }
    }
    fn chunk(&mut self, tag: &[u8; 4], body: impl FnOnce(&mut Enc)) {
        self.buf.extend_from_slice(tag);
        let len_at = self.buf.len();
        self.u64(0); // patched below
        let start = self.buf.len();
        body(self);
        let len = (self.buf.len() - start) as u64;
        // invariant: `len_at..len_at + 8` is the placeholder written above.
        self.buf
            .get_mut(len_at..len_at + 8)
            .expect("length placeholder in bounds")
            .copy_from_slice(&len.to_le_bytes());
    }
}

/// Serialise a [`RunState`] into the `CTSCKPT2` byte layout.
pub fn encode_run_state(rs: &RunState) -> Vec<u8> {
    let mut e = Enc::new();
    e.buf.extend_from_slice(MAGIC_V2);
    e.chunk(TAG_PARAMS, |e| {
        e.u32(len_u32(rs.params.len()));
        for (name, t) in &rs.params {
            e.str(name);
            e.tensor(t);
        }
    });
    if !rs.optimizers.is_empty() {
        e.chunk(TAG_OPTIMIZERS, |e| {
            e.u32(len_u32(rs.optimizers.len()));
            for o in &rs.optimizers {
                e.str(&o.name);
                e.u64(o.t);
                e.f32(o.lr);
                e.u32(len_u32(o.m.len()));
                for t in &o.m {
                    e.tensor(t);
                }
                for t in &o.v {
                    e.tensor(t);
                }
            }
        });
    }
    if let Some(s) = &rs.schedule {
        e.chunk(TAG_SCHEDULE, |e| {
            e.f32(s.tau);
            e.f32(s.factor);
            e.f32(s.min);
        });
    }
    e.chunk(TAG_COUNTERS, |e| {
        let c = &rs.counters;
        e.u64(c.epoch);
        e.u64(c.step);
        e.u64(c.best_epoch);
        e.u64(c.stall);
        e.u64(c.memory_scalars);
        e.f32(c.best_val);
        e.f32(c.last_val);
        e.f64(c.secs);
    });
    if let Some(s) = &rs.rng {
        e.chunk(TAG_RNG, |e| {
            for &w in s {
                e.u64(w);
            }
        });
    }
    if !rs.trace.is_empty() {
        e.chunk(TAG_TRACE, |e| {
            e.u32(len_u32(rs.trace.len()));
            for row in &rs.trace {
                for &x in row {
                    e.f32(x);
                }
            }
        });
    }
    e.chunk(TAG_LOSSES, |e| {
        e.u32(len_u32(rs.train_losses.len()));
        for &x in &rs.train_losses {
            e.f32(x);
        }
        e.u32(len_u32(rs.val_losses.len()));
        for &x in &rs.val_losses {
            e.f32(x);
        }
    });
    if let Some(me) = &rs.mid_epoch {
        e.chunk(TAG_MIDEPOCH, |e| {
            e.u64(me.batch);
            e.f64(me.loss_sum);
        });
    }
    let crc = crc32(&e.buf);
    e.u32(crc);
    e.buf
}

// ---------------------------------------------------------------------------
// v2 decoding (hardened: every allocation bounded by remaining bytes)
// ---------------------------------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if n > self.remaining() {
            return Err(corrupt(format!(
                "need {n} bytes at offset {}, only {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let s = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(|| corrupt("decoder overrun"))?;
        self.pos += n;
        Ok(s)
    }
    /// Fixed-size read: `bytes(N)` copied into an array, so callers never
    /// need a slice-to-array `unwrap`.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], CheckpointError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.bytes(N)?);
        Ok(out)
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.array()?))
    }
    fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_le_bytes(self.array()?))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.array()?))
    }
    /// Decode a `u32` count/length field as `usize`, rejecting values the
    /// platform cannot index.
    fn count(&mut self) -> Result<usize, CheckpointError> {
        let v = self.u32()?;
        usize::try_from(v).map_err(|_| corrupt(format!("count {v} overflows usize")))
    }
    fn str(&mut self) -> Result<String, CheckpointError> {
        let len = self.count()?;
        if len > MAX_NAME_LEN {
            return Err(corrupt(format!("name length {len} exceeds cap {MAX_NAME_LEN}")));
        }
        String::from_utf8(self.bytes(len)?.to_vec())
            .map_err(|e| corrupt(format!("non-UTF-8 name: {e}")))
    }
    fn tensor(&mut self) -> Result<Tensor, CheckpointError> {
        let rank = self.count()?;
        if rank > MAX_RANK {
            return Err(corrupt(format!("tensor rank {rank} exceeds cap {MAX_RANK}")));
        }
        let mut shape = Vec::with_capacity(rank);
        let mut numel = 1usize;
        for _ in 0..rank {
            let d = self.u64()?;
            let d = usize::try_from(d).map_err(|_| corrupt(format!("dimension {d} overflows")))?;
            numel = numel
                .checked_mul(d)
                .ok_or_else(|| corrupt("tensor element count overflows"))?;
            shape.push(d);
        }
        let nbytes = numel
            .checked_mul(4)
            .ok_or_else(|| corrupt("tensor byte count overflows"))?;
        // Bounds-check against the actual stream before allocating: a
        // hostile header cannot force an allocation larger than the file.
        let raw = self.bytes(nbytes)?;
        let mut data = Vec::with_capacity(numel);
        for b in raw.chunks_exact(4) {
            data.push(le_f32(b));
        }
        Ok(Tensor::from_vec(shape, data))
    }
    /// Bounded `with_capacity` for a count field: each entry needs at
    /// least `min_entry_bytes`, so the claimed count cannot pre-allocate
    /// more than the remaining stream could possibly hold.
    fn bounded_count(&self, claimed: usize, min_entry_bytes: usize) -> usize {
        claimed.min(self.remaining() / min_entry_bytes.max(1) + 1)
    }
}

fn parse_v2(bytes: &[u8]) -> Result<RunState, CheckpointError> {
    if bytes.len() < MAGIC_V2.len() + 4 {
        return Err(corrupt("shorter than magic + CRC footer"));
    }
    let (body, footer) = bytes.split_at(bytes.len() - 4);
    let mut fb = [0u8; 4];
    fb.copy_from_slice(footer);
    let expect = u32::from_le_bytes(fb);
    let got = crc32(body);
    if expect != got {
        return Err(corrupt(format!("CRC mismatch: footer {expect:#010x}, computed {got:#010x}")));
    }
    if body.get(..MAGIC_V2.len()) != Some(MAGIC_V2.as_slice()) {
        return Err(corrupt("bad v2 magic"));
    }
    let mut rs = RunState::default();
    let mut d = Dec { buf: body, pos: MAGIC_V2.len() };
    while d.remaining() > 0 {
        let tag: [u8; 4] = d.array()?;
        let len = d.u64()?;
        let len = usize::try_from(len)
            .map_err(|_| corrupt(format!("chunk length {len} overflows usize")))?;
        let payload = d.bytes(len)?;
        let mut c = Dec { buf: payload, pos: 0 };
        match &tag {
            t if t == TAG_PARAMS => {
                let count = c.count()?;
                let mut params = Vec::with_capacity(c.bounded_count(count, 12));
                for _ in 0..count {
                    let name = c.str()?;
                    let tensor = c.tensor()?;
                    params.push((name, tensor));
                }
                rs.params = params;
            }
            t if t == TAG_OPTIMIZERS => {
                let count = c.count()?;
                let mut opts = Vec::with_capacity(c.bounded_count(count, 20));
                for _ in 0..count {
                    let name = c.str()?;
                    let t = c.u64()?;
                    let lr = c.f32()?;
                    let n = c.count()?;
                    let mut m = Vec::with_capacity(c.bounded_count(n, 4));
                    for _ in 0..n {
                        m.push(c.tensor()?);
                    }
                    let mut v = Vec::with_capacity(m.len());
                    for _ in 0..n {
                        v.push(c.tensor()?);
                    }
                    opts.push(OptimizerState { name, t, lr, m, v });
                }
                rs.optimizers = opts;
            }
            t if t == TAG_SCHEDULE => {
                rs.schedule = Some(ScheduleState {
                    tau: c.f32()?,
                    factor: c.f32()?,
                    min: c.f32()?,
                });
            }
            t if t == TAG_COUNTERS => {
                rs.counters = RunCounters {
                    epoch: c.u64()?,
                    step: c.u64()?,
                    best_epoch: c.u64()?,
                    stall: c.u64()?,
                    memory_scalars: c.u64()?,
                    best_val: c.f32()?,
                    last_val: c.f32()?,
                    secs: c.f64()?,
                };
            }
            t if t == TAG_RNG => {
                let s = [c.u64()?, c.u64()?, c.u64()?, c.u64()?];
                if s.iter().all(|&w| w == 0) {
                    return Err(corrupt("all-zero RNG state"));
                }
                rs.rng = Some(s);
            }
            t if t == TAG_TRACE => {
                let rows = c.count()?;
                let mut trace = Vec::with_capacity(c.bounded_count(rows, 12));
                for _ in 0..rows {
                    trace.push([c.f32()?, c.f32()?, c.f32()?]);
                }
                rs.trace = trace;
            }
            t if t == TAG_LOSSES => {
                let nt = c.count()?;
                let mut tl = Vec::with_capacity(c.bounded_count(nt, 4));
                for _ in 0..nt {
                    tl.push(c.f32()?);
                }
                let nv = c.count()?;
                let mut vl = Vec::with_capacity(c.bounded_count(nv, 4));
                for _ in 0..nv {
                    vl.push(c.f32()?);
                }
                rs.train_losses = tl;
                rs.val_losses = vl;
            }
            t if t == TAG_MIDEPOCH => {
                rs.mid_epoch = Some(MidEpochState {
                    batch: c.u64()?,
                    loss_sum: c.f64()?,
                });
            }
            _ => {} // unknown chunk: skip (forward compatibility)
        }
    }
    Ok(rs)
}

// ---------------------------------------------------------------------------
// v1 (legacy) stream parsing, hardened
// ---------------------------------------------------------------------------

/// Serialise parameters in the legacy v1 layout (kept for compatibility
/// tests and old tooling; new code writes v2 via [`save_parameters`] /
/// [`save_run_state`]).
pub fn write_checkpoint(mut w: impl Write, params: &[Parameter]) -> io::Result<()> {
    w.write_all(MAGIC_V1)?;
    w.write_all(&len_u32(params.len()).to_le_bytes())?;
    for p in params {
        let name = p.name();
        let value = p.value();
        w.write_all(&len_u32(name.len()).to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        w.write_all(&len_u32(value.rank()).to_le_bytes())?;
        for &d in value.shape() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &x in value.data() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Read `numel` little-endian `f32`s without trusting `numel` for the
/// allocation: the buffer grows as data actually arrives, so a hostile
/// header on a truncated stream fails with `UnexpectedEof` instead of
/// triggering a giant allocation.
fn read_f32s(r: &mut impl Read, numel: usize) -> io::Result<Vec<f32>> {
    let mut data = Vec::with_capacity(numel.min(1 << 16));
    let mut chunk = [0u8; 4096];
    let mut left = numel;
    while left > 0 {
        let take = left.min(chunk.len() / 4);
        let (head, _) = chunk.split_at_mut(take * 4);
        r.read_exact(head)?;
        for b in head.chunks_exact(4) {
            data.push(le_f32(b));
        }
        left -= take;
    }
    Ok(data)
}

fn read_v1_entries(mut r: impl Read) -> io::Result<Vec<(String, Tensor)>> {
    let count = read_len(&mut r)?;
    let mut out = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let name_len = read_len(&mut r)?;
        if name_len > MAX_NAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("name length {name_len} exceeds cap {MAX_NAME_LEN}"),
            ));
        }
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let rank = read_len(&mut r)?;
        if rank > MAX_RANK {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("tensor rank {rank} exceeds cap {MAX_RANK}"),
            ));
        }
        let mut shape = Vec::with_capacity(rank);
        let mut numel = 1usize;
        for _ in 0..rank {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            let d = u64::from_le_bytes(b);
            let d = usize::try_from(d).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, format!("dimension {d} overflows"))
            })?;
            numel = numel.checked_mul(d).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "tensor element count overflows")
            })?;
            shape.push(d);
        }
        let data = read_f32s(&mut r, numel)?;
        out.push((name, Tensor::from_vec(shape, data)));
    }
    Ok(out)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Read a `u32` count/length field as `usize`, rejecting values the
/// platform cannot index.
fn read_len(r: &mut impl Read) -> io::Result<usize> {
    usize::try_from(read_u32(r)?).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

// ---------------------------------------------------------------------------
// Public read/write API
// ---------------------------------------------------------------------------

/// Parse a checkpoint (v1 or v2) into `(name, tensor)` pairs.
pub fn read_checkpoint(mut r: impl Read) -> io::Result<Vec<(String, Tensor)>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic == MAGIC_V1 {
        read_v1_entries(r)
    } else if &magic == MAGIC_V2 {
        let mut rest = Vec::new();
        r.read_to_end(&mut rest)?;
        let mut bytes = magic.to_vec();
        bytes.extend_from_slice(&rest);
        Ok(parse_v2(&bytes).map_err(io::Error::from)?.params)
    } else {
        Err(io::Error::new(io::ErrorKind::InvalidData, "bad checkpoint magic"))
    }
}

/// Parse a full [`RunState`] from a reader.
///
/// v1 checkpoints load backward-compatibly as a params-only state (no
/// optimizer moments / counters / RNG).
pub fn read_run_state(mut r: impl Read) -> Result<RunState, CheckpointError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic == MAGIC_V1 {
        Ok(RunState {
            params: read_v1_entries(r)?,
            ..RunState::default()
        })
    } else if &magic == MAGIC_V2 {
        let mut rest = Vec::new();
        r.read_to_end(&mut rest)?;
        let mut bytes = magic.to_vec();
        bytes.extend_from_slice(&rest);
        parse_v2(&bytes)
    } else {
        Err(corrupt("bad checkpoint magic"))
    }
}

/// Serialise a [`RunState`] (v2 layout) into a writer.
pub fn write_run_state(mut w: impl Write, rs: &RunState) -> io::Result<()> {
    w.write_all(&encode_run_state(rs))
}

/// Atomically persist a [`RunState`] to `path`: write `<path>.tmp`,
/// fsync, rename. A crash at any point leaves either the old checkpoint
/// or the new one — never a torn file (and a torn `.tmp` is rejected by
/// the CRC footer anyway).
pub fn save_run_state(path: impl AsRef<Path>, rs: &RunState) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    let bytes = encode_run_state(rs);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Best-effort directory fsync so the rename itself is durable.
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Load a [`RunState`] from a file, rejecting corrupt/truncated data.
pub fn load_run_state(path: impl AsRef<Path>) -> Result<RunState, CheckpointError> {
    let file = std::fs::File::open(path)?;
    read_run_state(io::BufReader::new(file))
}

/// Save parameters to a file (v2 params-only checkpoint, atomic write).
pub fn save_parameters(path: impl AsRef<Path>, params: &[Parameter]) -> io::Result<()> {
    let rs = RunState {
        params: RunState::capture_params(params).map_err(io::Error::from)?,
        ..RunState::default()
    };
    save_run_state(path, &rs).map_err(io::Error::from)
}

/// Restore `params` from checkpoint `entries`, matching by name.
///
/// All problems (missing entries, shape mismatches) are collected and
/// reported in a single error rather than failing on the first; returns
/// the number of parameters restored.
pub fn apply_parameters(
    entries: &[(String, Tensor)],
    params: &[Parameter],
) -> Result<usize, CheckpointError> {
    let by_name: HashMap<&str, &Tensor> =
        entries.iter().map(|(n, t)| (n.as_str(), t)).collect();
    let mut problems = Vec::new();
    let mut restored = 0usize;
    for p in params {
        let name = p.name();
        match by_name.get(name.as_str()) {
            None => problems.push(format!("missing parameter {name}")),
            Some(t) if t.shape() != p.value().shape() => problems.push(format!(
                "shape mismatch for {name}: checkpoint {:?} vs model {:?}",
                t.shape(),
                p.value().shape()
            )),
            Some(t) => {
                p.set_value((*t).clone());
                restored += 1;
            }
        }
    }
    if problems.is_empty() {
        Ok(restored)
    } else {
        Err(CheckpointError::Incompatible(problems.join("; ")))
    }
}

/// Load a checkpoint file into an existing parameter set, matching by
/// name (O(P) via a hash map). Every parameter must find a name- and
/// shape-matching entry; all failures are reported in one error. Returns
/// the number restored.
pub fn load_parameters(path: impl AsRef<Path>, params: &[Parameter]) -> io::Result<usize> {
    let file = std::fs::File::open(path)?;
    let entries = read_checkpoint(io::BufReader::new(file))?;
    apply_parameters(&entries, params).map_err(|e| match e {
        CheckpointError::Incompatible(m) if m.starts_with("missing parameter") => {
            io::Error::new(io::ErrorKind::NotFound, m)
        }
        other => io::Error::from(other),
    })
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)] // tests index fixture buffers deliberately
mod tests {
    use super::*;
    use cts_tensor::init;
    use rand::{rngs::SmallRng, SeedableRng};

    fn params(seed: u64) -> Vec<Parameter> {
        let mut rng = SmallRng::seed_from_u64(seed);
        vec![
            Parameter::new("layer.weight", init::uniform(&mut rng, [3, 4], -1.0, 1.0)),
            Parameter::new("layer.bias", init::uniform(&mut rng, [4], -1.0, 1.0)),
        ]
    }

    #[test]
    fn roundtrip_through_memory() {
        let ps = params(1);
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &ps).unwrap();
        let entries = read_checkpoint(&buf[..]).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "layer.weight");
        assert!(entries[0].1.approx_eq(&ps[0].value(), 0.0));
    }

    #[test]
    fn file_roundtrip_restores_values() {
        let dir = std::env::temp_dir().join("cts_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let original = params(2);
        save_parameters(&path, &original).unwrap();
        let fresh = params(3); // different values, same names/shapes
        assert!(!fresh[0].value().approx_eq(&original[0].value(), 1e-6));
        let restored = load_parameters(&path, &fresh).unwrap();
        assert_eq!(restored, 2);
        assert!(fresh[0].value().approx_eq(&original[0].value(), 0.0));
        assert!(fresh[1].value().approx_eq(&original[1].value(), 0.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_checkpoint(&b"NOTACKPT\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_shape_mismatch() {
        let dir = std::env::temp_dir().join("cts_ckpt_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        save_parameters(&path, &params(4)).unwrap();
        let wrong = vec![Parameter::new("layer.weight", Tensor::zeros([2, 2]))];
        assert!(load_parameters(&path, &wrong).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_missing_parameter() {
        let dir = std::env::temp_dir().join("cts_ckpt_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        save_parameters(&path, &params(5)).unwrap();
        let extra = vec![Parameter::new("unknown", Tensor::zeros([1]))];
        let err = load_parameters(&path, &extra).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn missing_and_mismatched_reported_together() {
        let dir = std::env::temp_dir().join("cts_ckpt_test4");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        save_parameters(&path, &params(6)).unwrap();
        let wrong = vec![
            Parameter::new("layer.weight", Tensor::zeros([9, 9])), // mismatched
            Parameter::new("nope.a", Tensor::zeros([1])),          // missing
            Parameter::new("nope.b", Tensor::zeros([1])),          // missing
        ];
        let msg = load_parameters(&path, &wrong).unwrap_err().to_string();
        assert!(msg.contains("layer.weight"), "{msg}");
        assert!(msg.contains("nope.a"), "{msg}");
        assert!(msg.contains("nope.b"), "{msg}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hostile_v1_header_fails_without_huge_allocation() {
        // Claims 2^31 parameters / giant tensors on a tiny stream: must
        // error out (EOF / InvalidData), not OOM.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC_V1);
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // count
        buf.extend_from_slice(&8u32.to_le_bytes()); // name_len
        buf.extend_from_slice(b"evilname");
        buf.extend_from_slice(&1u32.to_le_bytes()); // rank
        buf.extend_from_slice(&(u64::MAX / 8).to_le_bytes()); // dim
        assert!(read_checkpoint(&buf[..]).is_err());

        // Oversized name length.
        let mut buf2 = Vec::new();
        buf2.extend_from_slice(MAGIC_V1);
        buf2.extend_from_slice(&1u32.to_le_bytes());
        buf2.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_checkpoint(&buf2[..]).is_err());

        // Rank beyond the cap.
        let mut buf3 = Vec::new();
        buf3.extend_from_slice(MAGIC_V1);
        buf3.extend_from_slice(&1u32.to_le_bytes());
        buf3.extend_from_slice(&1u32.to_le_bytes());
        buf3.push(b'x');
        buf3.extend_from_slice(&1000u32.to_le_bytes());
        assert!(read_checkpoint(&buf3[..]).is_err());
    }

    #[test]
    fn run_state_roundtrip() {
        let ps = params(7);
        let rs = RunState {
            params: RunState::capture_params(&ps).unwrap(),
            optimizers: vec![OptimizerState {
                name: "weight".into(),
                t: 42,
                lr: 5e-4,
                m: vec![Tensor::full([3, 4], 0.5), Tensor::full([4], -0.25)],
                v: vec![Tensor::full([3, 4], 0.125), Tensor::full([4], 2.0)],
            }],
            schedule: Some(ScheduleState { tau: 3.3, factor: 0.9, min: 1e-3 }),
            counters: RunCounters {
                epoch: 7,
                step: 133,
                best_epoch: 5,
                stall: 2,
                memory_scalars: 10_000,
                best_val: 0.75,
                last_val: 0.8,
                secs: 12.5,
            },
            rng: Some([1, 2, 3, 4]),
            trace: vec![[5.0, 1.0, 1.5], [4.5, 0.9, 1.2]],
            train_losses: vec![1.0, 0.9],
            val_losses: vec![1.1, 1.0],
            mid_epoch: Some(MidEpochState { batch: 3, loss_sum: 2.755 }),
        };
        let bytes = encode_run_state(&rs);
        let back = read_run_state(&bytes[..]).unwrap();
        assert_eq!(rs, back);
        // And the epoch-boundary form (no MIDE chunk) roundtrips to None.
        let boundary = RunState { mid_epoch: None, ..rs };
        let bytes2 = encode_run_state(&boundary);
        let back2 = read_run_state(&bytes2[..]).unwrap();
        assert_eq!(back2.mid_epoch, None);
        assert_eq!(boundary, back2);
    }

    #[test]
    fn any_truncation_rejected() {
        let rs = RunState {
            params: RunState::capture_params(&params(8)).unwrap(),
            rng: Some([9, 9, 9, 9]),
            ..RunState::default()
        };
        let bytes = encode_run_state(&rs);
        for cut in 0..bytes.len() {
            assert!(
                read_run_state(&bytes[..cut]).is_err(),
                "truncation at byte {cut}/{} was accepted",
                bytes.len()
            );
        }
    }

    #[test]
    fn bit_flip_rejected_by_crc() {
        let rs = RunState {
            params: RunState::capture_params(&params(9)).unwrap(),
            ..RunState::default()
        };
        let bytes = encode_run_state(&rs);
        for &at in &[8usize, 20, bytes.len() / 2, bytes.len() - 6] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            assert!(read_run_state(&bad[..]).is_err(), "bit flip at {at} accepted");
        }
    }

    #[test]
    fn duplicate_param_names_rejected_at_capture() {
        let ps = vec![
            Parameter::new("same", Tensor::zeros([1])),
            Parameter::new("same", Tensor::zeros([2])),
        ];
        assert!(RunState::capture_params(&ps).is_err());
    }
}
