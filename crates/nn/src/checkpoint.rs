//! Parameter checkpointing: save/load model weights to a small
//! self-describing binary format (no external dependencies).
//!
//! Combined with [`autocts::Genotype::to_text`] a searched-and-trained
//! model is fully persistable: the genotype captures the architecture,
//! the checkpoint the weights.
//!
//! Format (little endian): magic `CTSCKPT1`, `u32` parameter count, then
//! per parameter: `u32` name length + UTF-8 name, `u32` rank, `u64` dims,
//! `f32` data.

use cts_autograd::Parameter;
use cts_tensor::Tensor;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"CTSCKPT1";

/// Serialise parameters into a writer.
pub fn write_checkpoint(mut w: impl Write, params: &[Parameter]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        let name = p.name();
        let value = p.value();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        w.write_all(&(value.rank() as u32).to_le_bytes())?;
        for &d in value.shape() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &x in value.data() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Parse a checkpoint into `(name, tensor)` pairs.
pub fn read_checkpoint(mut r: impl Read) -> io::Result<Vec<(String, Tensor)>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad checkpoint magic"));
    }
    let count = read_u32(&mut r)? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let rank = read_u32(&mut r)? as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            shape.push(u64::from_le_bytes(b) as usize);
        }
        let numel: usize = shape.iter().product();
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            data.push(f32::from_le_bytes(b));
        }
        out.push((name, Tensor::from_vec(shape, data)));
    }
    Ok(out)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Save parameters to a file.
pub fn save_parameters(path: impl AsRef<Path>, params: &[Parameter]) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_checkpoint(io::BufWriter::new(file), params)
}

/// Load a checkpoint into an existing parameter set, matching by name.
///
/// Every parameter must find a name- and shape-matching entry; returns the
/// number restored.
pub fn load_parameters(path: impl AsRef<Path>, params: &[Parameter]) -> io::Result<usize> {
    let file = std::fs::File::open(path)?;
    let entries = read_checkpoint(io::BufReader::new(file))?;
    let mut restored = 0;
    for p in params {
        let name = p.name();
        let entry = entries.iter().find(|(n, _)| *n == name).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("parameter {name} missing"))
        })?;
        if entry.1.shape() != p.value().shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shape mismatch for {name}"),
            ));
        }
        p.set_value(entry.1.clone());
        restored += 1;
    }
    Ok(restored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_tensor::init;
    use rand::{rngs::SmallRng, SeedableRng};

    fn params(seed: u64) -> Vec<Parameter> {
        let mut rng = SmallRng::seed_from_u64(seed);
        vec![
            Parameter::new("layer.weight", init::uniform(&mut rng, [3, 4], -1.0, 1.0)),
            Parameter::new("layer.bias", init::uniform(&mut rng, [4], -1.0, 1.0)),
        ]
    }

    #[test]
    fn roundtrip_through_memory() {
        let ps = params(1);
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &ps).unwrap();
        let entries = read_checkpoint(&buf[..]).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "layer.weight");
        assert!(entries[0].1.approx_eq(&ps[0].value(), 0.0));
    }

    #[test]
    fn file_roundtrip_restores_values() {
        let dir = std::env::temp_dir().join("cts_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let original = params(2);
        save_parameters(&path, &original).unwrap();
        let fresh = params(3); // different values, same names/shapes
        assert!(!fresh[0].value().approx_eq(&original[0].value(), 1e-6));
        let restored = load_parameters(&path, &fresh).unwrap();
        assert_eq!(restored, 2);
        assert!(fresh[0].value().approx_eq(&original[0].value(), 0.0));
        assert!(fresh[1].value().approx_eq(&original[1].value(), 0.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_checkpoint(&b"NOTACKPT\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_shape_mismatch() {
        let dir = std::env::temp_dir().join("cts_ckpt_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        save_parameters(&path, &params(4)).unwrap();
        let wrong = vec![Parameter::new("layer.weight", Tensor::zeros([2, 2]))];
        assert!(load_parameters(&path, &wrong).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_missing_parameter() {
        let dir = std::env::temp_dir().join("cts_ckpt_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        save_parameters(&path, &params(5)).unwrap();
        let extra = vec![Parameter::new("unknown", Tensor::zeros([1]))];
        let err = load_parameters(&path, &extra).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
