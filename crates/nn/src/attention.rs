//! Full (Transformer) and ProbSparse (Informer) attention.
//!
//! Both operate on `[B', L, D]` — callers reshape `[B,N,T,D]` activations to
//! `[B·N, T, D]` for temporal attention or `[B·T, N, D]` for spatial
//! attention (Table 1, Eqs. 12–13 and 16–17).

use cts_autograd::{Parameter, Tape, Var};
use cts_tensor::{ops, Tensor};
use rand::Rng;
use std::cell::RefCell;

/// Which attention mechanism a layer uses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AttentionKind {
    /// Full scaled-dot-product attention (Transformer, Eqs. 12/16).
    Full,
    /// ProbSparse attention (Informer, Eqs. 13/17); `factor` is the `c` in
    /// `u = ⌈c·ln L⌉` selected queries.
    ProbSparse {
        /// Sampling factor `c`.
        factor: f32,
    },
}

/// Plain scaled-dot-product attention `softmax(QKᵀ/√D)·V`.
///
/// `mask`, when given, is added to the raw scores before the softmax
/// (use large negative values to forbid positions); shape `[L, L]`,
/// broadcast over the batch.
pub fn scaled_dot_attention(tape: &Tape, q: &Var, k: &Var, v: &Var, mask: Option<&Tensor>) -> Var {
    // invariant: attention inputs are at least rank 1.
    let d = *q.shape().last().expect("attention on rank-0") as f32;
    let mut scores = q.matmul(&k.permute(&[0, 2, 1])).scale(1.0 / d.sqrt());
    if let Some(m) = mask {
        scores = scores.add(&tape.constant(m.clone()));
    }
    scores.softmax_last().matmul(v)
}

/// ProbSparse attention: only the top-`u` queries (by the max-mean sparsity
/// measurement, computed on detached scores) attend; the remaining queries
/// output the mean of `V`.
///
/// Deviation from the original Informer, noted in DESIGN.md: the
/// measurement is averaged over the batch so one index set serves the whole
/// batch (keeps the op expressible with differentiable gathers).
pub fn prob_sparse_attention(tape: &Tape, q: &Var, k: &Var, v: &Var, factor: f32) -> Var {
    let shape = q.shape();
    let (l, d) = (shape[1], shape[2]);
    let u = ((factor * (l as f32).ln()).ceil() as usize).clamp(1, l);
    if u >= l {
        return scaled_dot_attention(tape, q, k, v, None);
    }

    // Sparsity measurement on detached values: M(q_i) = max_j s_ij − mean_j s_ij.
    let sel = top_queries(&q.value(), &k.value(), u);
    let nonsel: Vec<usize> = (0..l).filter(|i| !sel.contains(i)).collect();

    let q_sel = q.index_select(1, &sel);
    let scores = q_sel
        .matmul(&k.permute(&[0, 2, 1]))
        .scale(1.0 / (d as f32).sqrt());
    let attn_sel = scores.softmax_last().matmul(v); // [B', u, D]

    // Lazy queries output mean(V) (the Informer "self-attention distilling"
    // default for the non-causal case).
    let v_mean = v.mean_axis(1, true); // [B', 1, D]
    let expand = tape.constant(Tensor::ones([1, l - u, 1]));
    let v_rep = v_mean.mul(&expand); // [B', L-u, D]

    // Reassemble rows in original order via an inverse gather.
    let stacked = Var::concat(&[attn_sel, v_rep], 1); // rows: sel ++ nonsel
    let mut inv = vec![0usize; l];
    for (pos, &orig) in sel.iter().chain(nonsel.iter()).enumerate() {
        inv[orig] = pos;
    }
    stacked.index_select(1, &inv)
}

/// Pick the `u` query indices with the largest batch-averaged max-mean
/// sparsity measurement, writing into caller-provided scratch.
///
/// Shared by the tape and tape-free paths so their selections are
/// identical by construction (the sort's tie-breaking included).
fn top_queries_into(q: &Tensor, k: &Tensor, u: usize, idx: &mut Vec<usize>, sel: &mut Vec<usize>) {
    let scores = ops::matmul(q, &ops::transpose_last2(k)); // [B', L, L]
    let max = ops::max_axis(&scores, 2, false); // [B', L]
    let mean = ops::mean_axis(&scores, 2, false); // [B', L]
    let m = ops::sub(&max, &mean);
    let batch_avg = ops::mean_axis(&m, 0, false); // [L]
    idx.clear();
    idx.extend(0..batch_avg.len());
    idx.sort_by(|&a, &b| {
        batch_avg.data()[b]
            .partial_cmp(&batch_avg.data()[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    sel.clear();
    sel.extend_from_slice(&idx[..u]);
    sel.sort_unstable();
}

/// Pick the `u` query indices with the largest batch-averaged max-mean
/// sparsity measurement.
fn top_queries(q: &Tensor, k: &Tensor, u: usize) -> Vec<usize> {
    let mut idx = Vec::new();
    let mut sel = Vec::new();
    top_queries_into(q, k, u, &mut idx, &mut sel);
    sel
}

/// Index scratch (idx, sel, nonsel, inv) for the tape-free ProbSparse path.
type SparseScratch = (Vec<usize>, Vec<usize>, Vec<usize>, Vec<usize>);

thread_local! {
    /// Reused across tape-free ProbSparse forwards so a steady-state
    /// compiled plan performs no per-forward `Vec` allocation.
    static SPARSE_SCRATCH: RefCell<SparseScratch> =
        const { RefCell::new((Vec::new(), Vec::new(), Vec::new(), Vec::new())) };
}

/// Tape-free [`scaled_dot_attention`]: the same kernels in the same order,
/// bit-identical output.
pub fn scaled_dot_attention_eval(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    mask: Option<&Tensor>,
) -> Tensor {
    // invariant: attention inputs are at least rank 1.
    let d = *q.shape().last().expect("attention on rank-0") as f32;
    let mut scores = ops::scale(&ops::matmul(q, &ops::permute(k, &[0, 2, 1])), 1.0 / d.sqrt());
    if let Some(m) = mask {
        scores = ops::add(&scores, m);
    }
    ops::matmul(&ops::softmax_last(&scores), v)
}

/// Tape-free [`prob_sparse_attention`]: the same kernels and the same
/// query selection (via the shared measurement), bit-identical output.
pub fn prob_sparse_attention_eval(q: &Tensor, k: &Tensor, v: &Tensor, factor: f32) -> Tensor {
    let shape = q.shape();
    let (l, d) = (shape[1], shape[2]);
    let u = ((factor * (l as f32).ln()).ceil() as usize).clamp(1, l);
    if u >= l {
        return scaled_dot_attention_eval(q, k, v, None);
    }
    SPARSE_SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let (idx, sel, nonsel, inv) = &mut *scratch;
        top_queries_into(q, k, u, idx, sel);
        nonsel.clear();
        nonsel.extend((0..l).filter(|i| !sel.contains(i)));

        let q_sel = ops::index_select(q, 1, sel);
        let scores = ops::scale(
            &ops::matmul(&q_sel, &ops::permute(k, &[0, 2, 1])),
            1.0 / (d as f32).sqrt(),
        );
        let attn_sel = ops::matmul(&ops::softmax_last(&scores), v); // [B', u, D]

        let v_mean = ops::mean_axis(v, 1, true); // [B', 1, D]
        let expand = Tensor::ones([1, l - u, 1]);
        let v_rep = ops::mul(&v_mean, &expand); // [B', L-u, D]

        let stacked = ops::concat(&[&attn_sel, &v_rep], 1); // rows: sel ++ nonsel
        inv.clear();
        inv.resize(l, 0);
        for (pos, &orig) in sel.iter().chain(nonsel.iter()).enumerate() {
            inv[orig] = pos;
        }
        ops::index_select(&stacked, 1, inv)
    })
}

/// A self-attention layer with learned Q/K/V projections.
pub struct AttentionLayer {
    wq: crate::Linear,
    wk: crate::Linear,
    wv: crate::Linear,
    kind: AttentionKind,
}

impl AttentionLayer {
    /// Build projections of width `d` and the chosen mechanism.
    pub fn new(rng: &mut impl Rng, name: &str, d: usize, kind: AttentionKind) -> Self {
        Self {
            wq: crate::Linear::new(rng, &format!("{name}.wq"), d, d, false),
            wk: crate::Linear::new(rng, &format!("{name}.wk"), d, d, false),
            wv: crate::Linear::new(rng, &format!("{name}.wv"), d, d, false),
            kind,
        }
    }

    /// Self-attention over `[B', L, D]`.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let q = self.wq.forward(tape, x);
        let k = self.wk.forward(tape, x);
        let v = self.wv.forward(tape, x);
        match self.kind {
            AttentionKind::Full => scaled_dot_attention(tape, &q, &k, &v, None),
            AttentionKind::ProbSparse { factor } => {
                prob_sparse_attention(tape, &q, &k, &v, factor)
            }
        }
    }

    /// Tape-free self-attention mirroring [`Self::forward`].
    pub fn forward_eval(&self, x: &Tensor) -> Tensor {
        let q = self.wq.forward_eval(x);
        let k = self.wk.forward_eval(x);
        let v = self.wv.forward_eval(x);
        match self.kind {
            AttentionKind::Full => scaled_dot_attention_eval(&q, &k, &v, None),
            AttentionKind::ProbSparse { factor } => {
                prob_sparse_attention_eval(&q, &k, &v, factor)
            }
        }
    }

    /// Projection parameters.
    pub fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.wq.parameters();
        v.extend(self.wk.parameters());
        v.extend(self.wv.parameters());
        v
    }

    /// Which mechanism this layer applies.
    pub fn kind(&self) -> AttentionKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_tensor::init;
    use rand::{rngs::SmallRng, SeedableRng};

    fn rand_x(rng: &mut impl Rng, b: usize, l: usize, d: usize) -> Tensor {
        init::uniform(rng, [b, l, d], -1.0, 1.0)
    }

    #[test]
    fn full_attention_shape_preserved() {
        let mut rng = SmallRng::seed_from_u64(0);
        let layer = AttentionLayer::new(&mut rng, "att", 8, AttentionKind::Full);
        let tape = Tape::new();
        let x = tape.constant(rand_x(&mut rng, 3, 6, 8));
        let y = layer.forward(&tape, &x);
        assert_eq!(y.shape(), vec![3, 6, 8]);
    }

    #[test]
    fn uniform_keys_average_values() {
        // With q=0, scores are all equal, so attention = mean of V rows.
        let tape = Tape::new();
        let q = tape.constant(Tensor::zeros([1, 3, 2]));
        let k = tape.constant(Tensor::ones([1, 3, 2]));
        let v = tape.constant(Tensor::from_vec([1, 3, 2], vec![0.0, 0.0, 3.0, 3.0, 6.0, 6.0]));
        let y = scaled_dot_attention(&tape, &q, &k, &v, None).value();
        for row in 0..3 {
            assert!((y.data()[row * 2] - 3.0).abs() < 1e-5);
        }
    }

    #[test]
    fn mask_forbids_positions() {
        let tape = Tape::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let q = tape.constant(rand_x(&mut rng, 1, 3, 2));
        let k = tape.constant(rand_x(&mut rng, 1, 3, 2));
        let v = tape.constant(Tensor::from_vec([1, 3, 2], vec![1.0, 1.0, 2.0, 2.0, 99.0, 99.0]));
        // forbid everyone from attending to position 2
        let mut mask = Tensor::zeros([3, 3]);
        for i in 0..3 {
            *mask.at_mut(&[i, 2]) = -1e9;
        }
        let y = scaled_dot_attention(&tape, &q, &k, &v, Some(&mask)).value();
        assert!(y.max() < 3.0, "row 2's value leaked: {:?}", y);
    }

    #[test]
    fn prob_sparse_selects_subset_and_keeps_shape() {
        let mut rng = SmallRng::seed_from_u64(2);
        let layer = AttentionLayer::new(&mut rng, "inf", 4, AttentionKind::ProbSparse { factor: 1.0 });
        let tape = Tape::new();
        let x = tape.constant(rand_x(&mut rng, 2, 12, 4));
        let y = layer.forward(&tape, &x);
        assert_eq!(y.shape(), vec![2, 12, 4]);
        // u = ceil(ln 12) = 3 < 12, so the sparse path ran.
    }

    #[test]
    fn prob_sparse_falls_back_to_full_for_tiny_l() {
        let mut rng = SmallRng::seed_from_u64(3);
        let tape = Tape::new();
        let q = tape.constant(rand_x(&mut rng, 1, 2, 4));
        let k = tape.constant(rand_x(&mut rng, 1, 2, 4));
        let v = tape.constant(rand_x(&mut rng, 1, 2, 4));
        // factor large enough that u >= L
        let sparse = prob_sparse_attention(&tape, &q, &k, &v, 10.0).value();
        let full = scaled_dot_attention(&tape, &q, &k, &v, None).value();
        assert!(sparse.approx_eq(&full, 1e-6));
    }

    #[test]
    fn prob_sparse_lazy_rows_are_value_mean() {
        let mut rng = SmallRng::seed_from_u64(4);
        let tape = Tape::new();
        // Craft q so row 0 is clearly the most "active" query.
        let mut qv = Tensor::zeros([1, 8, 2]);
        qv.data_mut()[0] = 5.0;
        let q = tape.constant(qv);
        let k = tape.constant(rand_x(&mut rng, 1, 8, 2));
        let v = tape.constant(rand_x(&mut rng, 1, 8, 2));
        let y = prob_sparse_attention(&tape, &q, &k, &v, 0.4).value(); // u=1
        let vmean = ops::mean_axis(&v.value(), 1, false); // [1,2]
        // all rows except the selected one equal mean(V)
        let mut lazy = 0;
        for row in 0..8 {
            let a = y.data()[row * 2];
            let b = y.data()[row * 2 + 1];
            if (a - vmean.data()[0]).abs() < 1e-5 && (b - vmean.data()[1]).abs() < 1e-5 {
                lazy += 1;
            }
        }
        assert_eq!(lazy, 7, "exactly one active query expected");
    }

    #[test]
    fn attention_gradients_flow_through_projections() {
        let mut rng = SmallRng::seed_from_u64(5);
        for kind in [AttentionKind::Full, AttentionKind::ProbSparse { factor: 1.0 }] {
            let layer = AttentionLayer::new(&mut rng, "att", 4, kind);
            let tape = Tape::new();
            let x = tape.constant(rand_x(&mut rng, 2, 10, 4));
            let loss = layer.forward(&tape, &x).square().sum_all();
            tape.backward(&loss);
            for p in layer.parameters() {
                assert!(p.grad().norm() > 0.0, "{:?}: no grad for {}", kind, p.name());
            }
        }
    }
}
