//! Dense (fully connected) layer applied to the last axis.

use cts_autograd::{Parameter, Tape, Var};
use cts_tensor::{init, ops, Tensor};
use rand::Rng;

/// `y = x · W (+ b)` over the last axis; leading axes are batch.
///
/// Equivalent to the 1×1 convolutions used as embedding/output layers in the
/// CTS literature.
pub struct Linear {
    weight: Parameter,
    bias: Option<Parameter>,
    d_in: usize,
    d_out: usize,
}

impl Linear {
    /// Xavier-initialised linear layer.
    pub fn new(rng: &mut impl Rng, name: &str, d_in: usize, d_out: usize, bias: bool) -> Self {
        let weight = Parameter::new(
            format!("{name}.weight"),
            init::xavier_uniform(rng, [d_in, d_out], d_in, d_out),
        );
        let bias = bias.then(|| {
            Parameter::new(
                format!("{name}.bias"),
                cts_tensor::Tensor::zeros([d_out]),
            )
        });
        Self {
            weight,
            bias,
            d_in,
            d_out,
        }
    }

    /// Input feature dimension.
    pub fn d_in(&self) -> usize {
        self.d_in
    }

    /// Output feature dimension.
    pub fn d_out(&self) -> usize {
        self.d_out
    }

    /// Apply to `[..., d_in]`, producing `[..., d_out]`.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let w = tape.param(&self.weight);
        let y = x.matmul(&w);
        match &self.bias {
            Some(b) => y.add(&tape.param(b)),
            None => y,
        }
    }

    /// Tape-free forward: the same kernels as [`Self::forward`] in the same
    /// order (bit-identical output), reading the weights in place instead of
    /// copying them onto a tape.
    pub fn forward_eval(&self, x: &Tensor) -> Tensor {
        let y = ops::matmul(x, &self.weight.value());
        match &self.bias {
            Some(b) => ops::add(&y, &b.value()),
            None => y,
        }
    }

    /// Parameters of this layer.
    pub fn parameters(&self) -> Vec<Parameter> {
        let mut v = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            v.push(b.clone());
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_tensor::Tensor;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = SmallRng::seed_from_u64(0);
        let lin = Linear::new(&mut rng, "l", 3, 5, true);
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones([2, 4, 3]));
        let y = lin.forward(&tape, &x);
        assert_eq!(y.shape(), vec![2, 4, 5]);
        assert_eq!(lin.parameters().len(), 2);
        assert_eq!(lin.d_in(), 3);
        assert_eq!(lin.d_out(), 5);
    }

    #[test]
    fn no_bias_variant() {
        let mut rng = SmallRng::seed_from_u64(0);
        let lin = Linear::new(&mut rng, "l", 2, 2, false);
        assert_eq!(lin.parameters().len(), 1);
    }

    #[test]
    fn gradient_reaches_weight_and_bias() {
        let mut rng = SmallRng::seed_from_u64(1);
        let lin = Linear::new(&mut rng, "l", 2, 2, true);
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones([1, 2]));
        let loss = lin.forward(&tape, &x).sum_all();
        tape.backward(&loss);
        for p in lin.parameters() {
            assert!(p.grad().norm() > 0.0, "no grad for {}", p.name());
        }
    }
}
