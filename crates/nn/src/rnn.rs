//! Recurrent cells (LSTM / GRU), unrolled over the time axis.
//!
//! The RNN family is excluded from the AutoCTS compact operator set
//! (§3.2.3) but is required for the *w/o design principles* ablation
//! (Table 1's full operator set) and for the DCRNN / AGCRN / LSTNet /
//! TPA-LSTM baselines.

use crate::Linear;
use cts_autograd::{Parameter, Tape, Var};
use cts_tensor::{ops, Tensor};
use rand::Rng;

/// A long short-term memory layer over `[B', T, D]`.
pub struct Lstm {
    wx: Linear, // D -> 4H (i, f, g, o)
    wh: Linear, // H -> 4H
    hidden: usize,
}

impl Lstm {
    /// LSTM mapping input width `d_in` to hidden width `hidden`.
    pub fn new(rng: &mut impl Rng, name: &str, d_in: usize, hidden: usize) -> Self {
        Self {
            wx: Linear::new(rng, &format!("{name}.wx"), d_in, 4 * hidden, true),
            wh: Linear::new(rng, &format!("{name}.wh"), hidden, 4 * hidden, false),
            hidden,
        }
    }

    /// Hidden width `H`.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// One step: `(h, c) = cell(x_t, h, c)`, all `[B', H]`-shaped.
    pub fn step(&self, tape: &Tape, x_t: &Var, h: &Var, c: &Var) -> (Var, Var) {
        let gates = self.wx.forward(tape, x_t).add(&self.wh.forward(tape, h));
        let hsz = self.hidden;
        let i = gates.slice(1, 0, hsz).sigmoid();
        let f = gates.slice(1, hsz, 2 * hsz).sigmoid();
        let g = gates.slice(1, 2 * hsz, 3 * hsz).tanh();
        let o = gates.slice(1, 3 * hsz, 4 * hsz).sigmoid();
        let c_new = f.mul(c).add(&i.mul(&g));
        let h_new = o.mul(&c_new.tanh());
        (h_new, c_new)
    }

    /// Unroll over `[B', T, D]`; returns all hidden states `[B', T, H]`.
    pub fn forward_sequence(&self, tape: &Tape, x: &Var) -> Var {
        let shape = x.shape();
        let (b, t) = (shape[0], shape[1]);
        let mut h = tape.constant(cts_tensor::Tensor::zeros([b, self.hidden]));
        let mut c = h.clone();
        let mut outputs = Vec::with_capacity(t);
        for ti in 0..t {
            let x_t = x.slice(1, ti, ti + 1).reshape(&[b, shape[2]]);
            let (h2, c2) = self.step(tape, &x_t, &h, &c);
            h = h2;
            c = c2;
            outputs.push(h.reshape(&[b, 1, self.hidden]));
        }
        Var::concat(&outputs, 1)
    }

    /// Only the final hidden state `[B', H]`.
    pub fn forward_last(&self, tape: &Tape, x: &Var) -> Var {
        let t = x.shape()[1];
        let all = self.forward_sequence(tape, x);
        let b = x.shape()[0];
        all.slice(1, t - 1, t).reshape(&[b, self.hidden])
    }

    /// Tape-free step mirroring [`Self::step`] kernel for kernel.
    fn step_eval(&self, x_t: &Tensor, h: &Tensor, c: &Tensor) -> (Tensor, Tensor) {
        let gates = ops::add(&self.wx.forward_eval(x_t), &self.wh.forward_eval(h));
        let hsz = self.hidden;
        let i = ops::sigmoid(&ops::slice(&gates, 1, 0, hsz));
        let f = ops::sigmoid(&ops::slice(&gates, 1, hsz, 2 * hsz));
        let g = ops::tanh(&ops::slice(&gates, 1, 2 * hsz, 3 * hsz));
        let o = ops::sigmoid(&ops::slice(&gates, 1, 3 * hsz, 4 * hsz));
        let c_new = ops::add(&ops::mul(&f, c), &ops::mul(&i, &g));
        let h_new = ops::mul(&o, &ops::tanh(&c_new));
        (h_new, c_new)
    }

    /// Tape-free unroll mirroring [`Self::forward_sequence`], bit-identical.
    pub fn forward_sequence_eval(&self, x: &Tensor) -> Tensor {
        let shape = x.shape();
        let (b, t, d) = (shape[0], shape[1], shape[2]);
        let mut h = Tensor::zeros([b, self.hidden]);
        let mut c = h.clone();
        let mut outputs = Vec::with_capacity(t);
        for ti in 0..t {
            let x_t = ops::slice(x, 1, ti, ti + 1).reshaped([b, d]);
            let (h2, c2) = self.step_eval(&x_t, &h, &c);
            h = h2;
            c = c2;
            outputs.push(h.clone().reshaped([b, 1, self.hidden]));
        }
        let refs: Vec<&Tensor> = outputs.iter().collect();
        ops::concat(&refs, 1)
    }

    /// Parameters of the cell.
    pub fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.wx.parameters();
        v.extend(self.wh.parameters());
        v
    }
}

/// A gated recurrent unit layer over `[B', T, D]`.
pub struct Gru {
    wx_zr: Linear, // D -> 2H (z, r)
    wh_zr: Linear, // H -> 2H
    wx_n: Linear,  // D -> H
    wh_n: Linear,  // H -> H (applied to r ⊙ h)
    hidden: usize,
}

impl Gru {
    /// GRU mapping input width `d_in` to hidden width `hidden`.
    pub fn new(rng: &mut impl Rng, name: &str, d_in: usize, hidden: usize) -> Self {
        Self {
            wx_zr: Linear::new(rng, &format!("{name}.wx_zr"), d_in, 2 * hidden, true),
            wh_zr: Linear::new(rng, &format!("{name}.wh_zr"), hidden, 2 * hidden, false),
            wx_n: Linear::new(rng, &format!("{name}.wx_n"), d_in, hidden, true),
            wh_n: Linear::new(rng, &format!("{name}.wh_n"), hidden, hidden, false),
            hidden,
        }
    }

    /// Hidden width `H`.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// One step: `h' = (1-z)⊙n + z⊙h`.
    pub fn step(&self, tape: &Tape, x_t: &Var, h: &Var) -> Var {
        let hsz = self.hidden;
        let zr = self
            .wx_zr
            .forward(tape, x_t)
            .add(&self.wh_zr.forward(tape, h));
        let z = zr.slice(1, 0, hsz).sigmoid();
        let r = zr.slice(1, hsz, 2 * hsz).sigmoid();
        let n = self
            .wx_n
            .forward(tape, x_t)
            .add(&self.wh_n.forward(tape, &r.mul(h)))
            .tanh();
        let one_minus_z = z.neg().add_scalar(1.0);
        one_minus_z.mul(&n).add(&z.mul(h))
    }

    /// Unroll over `[B', T, D]`; returns all hidden states `[B', T, H]`.
    pub fn forward_sequence(&self, tape: &Tape, x: &Var) -> Var {
        let shape = x.shape();
        let (b, t) = (shape[0], shape[1]);
        let mut h = tape.constant(cts_tensor::Tensor::zeros([b, self.hidden]));
        let mut outputs = Vec::with_capacity(t);
        for ti in 0..t {
            let x_t = x.slice(1, ti, ti + 1).reshape(&[b, shape[2]]);
            h = self.step(tape, &x_t, &h);
            outputs.push(h.reshape(&[b, 1, self.hidden]));
        }
        Var::concat(&outputs, 1)
    }

    /// Only the final hidden state `[B', H]`.
    pub fn forward_last(&self, tape: &Tape, x: &Var) -> Var {
        let t = x.shape()[1];
        let b = x.shape()[0];
        self.forward_sequence(tape, x)
            .slice(1, t - 1, t)
            .reshape(&[b, self.hidden])
    }

    /// Tape-free step mirroring [`Self::step`] kernel for kernel.
    fn step_eval(&self, x_t: &Tensor, h: &Tensor) -> Tensor {
        let hsz = self.hidden;
        let zr = ops::add(&self.wx_zr.forward_eval(x_t), &self.wh_zr.forward_eval(h));
        let z = ops::sigmoid(&ops::slice(&zr, 1, 0, hsz));
        let r = ops::sigmoid(&ops::slice(&zr, 1, hsz, 2 * hsz));
        let n = ops::tanh(&ops::add(
            &self.wx_n.forward_eval(x_t),
            &self.wh_n.forward_eval(&ops::mul(&r, h)),
        ));
        let one_minus_z = ops::add_scalar(&ops::neg(&z), 1.0);
        ops::add(&ops::mul(&one_minus_z, &n), &ops::mul(&z, h))
    }

    /// Tape-free unroll mirroring [`Self::forward_sequence`], bit-identical.
    pub fn forward_sequence_eval(&self, x: &Tensor) -> Tensor {
        let shape = x.shape();
        let (b, t, d) = (shape[0], shape[1], shape[2]);
        let mut h = Tensor::zeros([b, self.hidden]);
        let mut outputs = Vec::with_capacity(t);
        for ti in 0..t {
            let x_t = ops::slice(x, 1, ti, ti + 1).reshaped([b, d]);
            h = self.step_eval(&x_t, &h);
            outputs.push(h.clone().reshaped([b, 1, self.hidden]));
        }
        let refs: Vec<&Tensor> = outputs.iter().collect();
        ops::concat(&refs, 1)
    }

    /// Parameters of the cell.
    pub fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.wx_zr.parameters();
        v.extend(self.wh_zr.parameters());
        v.extend(self.wx_n.parameters());
        v.extend(self.wh_n.parameters());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_tensor::{init, Tensor};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn lstm_shapes() {
        let mut rng = SmallRng::seed_from_u64(0);
        let lstm = Lstm::new(&mut rng, "lstm", 3, 5);
        let tape = Tape::new();
        let x = tape.constant(init::uniform(&mut rng, [2, 4, 3], -1.0, 1.0));
        let seq = lstm.forward_sequence(&tape, &x);
        assert_eq!(seq.shape(), vec![2, 4, 5]);
        assert_eq!(lstm.forward_last(&tape, &x).shape(), vec![2, 5]);
    }

    #[test]
    fn gru_shapes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let gru = Gru::new(&mut rng, "gru", 3, 6);
        let tape = Tape::new();
        let x = tape.constant(init::uniform(&mut rng, [2, 4, 3], -1.0, 1.0));
        assert_eq!(gru.forward_sequence(&tape, &x).shape(), vec![2, 4, 6]);
        assert_eq!(gru.hidden(), 6);
    }

    #[test]
    fn zero_input_zero_state_stays_bounded() {
        let mut rng = SmallRng::seed_from_u64(2);
        let lstm = Lstm::new(&mut rng, "lstm", 2, 4);
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros([1, 10, 2]));
        let y = lstm.forward_sequence(&tape, &x).value();
        assert!(y.max().abs() < 1.0);
    }

    #[test]
    fn rnn_gradients_flow_through_time() {
        let mut rng = SmallRng::seed_from_u64(3);
        let gru = Gru::new(&mut rng, "gru", 2, 3);
        let tape = Tape::new();
        let x = tape.constant(init::uniform(&mut rng, [2, 5, 2], -1.0, 1.0));
        let loss = gru.forward_last(&tape, &x).square().sum_all();
        tape.backward(&loss);
        for p in gru.parameters() {
            assert!(p.grad().norm() > 0.0, "no grad for {}", p.name());
        }
    }

    #[test]
    fn lstm_gradcheck_tiny() {
        use cts_autograd::gradcheck::assert_gradients;
        let mut rng = SmallRng::seed_from_u64(4);
        let lstm = Lstm::new(&mut rng, "lstm", 2, 2);
        let x = init::uniform(&mut rng, [1, 3, 2], -1.0, 1.0);
        let params = lstm.parameters();
        assert_gradients(&params, 1e-2, 5e-2, |tape| {
            let xv = tape.constant(x.clone());
            lstm.forward_last(tape, &xv).square().sum_all()
        });
    }
}
