//! `cts-nn`: neural-network building blocks on top of `cts-autograd`.
//!
//! Provides the layers every model in the workspace is assembled from
//! (linear, temporal convolutions, normalisation, recurrent cells, full and
//! ProbSparse attention), the optimisers of the paper (Adam with weight
//! decay, plus SGD), the temperature/learning-rate schedules, masked losses,
//! and a small generic training engine shared by baselines and AutoCTS.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attention;
pub mod checkpoint;
pub mod fault;
mod mha;
mod conv;
mod linear;
mod loss;
mod module;
mod norm;
mod optim;
mod rnn;
mod runstate;
mod schedule;
mod trainer;

pub use attention::{
    prob_sparse_attention, prob_sparse_attention_eval, scaled_dot_attention,
    scaled_dot_attention_eval, AttentionKind, AttentionLayer,
};
pub use conv::{GatedTemporalConv, TemporalConvLayer};
pub use linear::Linear;
pub use loss::{l1_loss, masked_mae_loss, masked_mse_loss, mse_loss, LossKind};
pub use mha::MultiHeadAttention;
pub use module::{count_parameters, Forecaster, ParamBundle};
pub use norm::{BatchNorm, LayerNorm};
pub use optim::{clip_grad_norm, global_grad_norm, Adam, Optimizer, Sgd};
pub use rnn::{Gru, Lstm};
pub use runstate::{CheckpointConfig, DivergenceReason, TrainError, WatchdogConfig};
pub use schedule::TemperatureSchedule;
pub use trainer::{evaluate_loss, train_full, train_one_epoch, TrainConfig, TrainReport};
