//! Model-level traits and parameter bookkeeping.

use cts_autograd::{Parameter, Tape, Var};
use cts_tensor::Tensor;

/// A collection of parameters gathered from a module tree.
#[derive(Default, Clone)]
pub struct ParamBundle {
    params: Vec<Parameter>,
}

impl ParamBundle {
    /// Empty bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register one parameter.
    pub fn push(&mut self, p: Parameter) {
        self.params.push(p);
    }

    /// Register many parameters.
    pub fn extend(&mut self, ps: impl IntoIterator<Item = Parameter>) {
        self.params.extend(ps);
    }

    /// The registered parameters.
    pub fn params(&self) -> &[Parameter] {
        &self.params
    }

    /// Consume into the underlying vector.
    pub fn into_vec(self) -> Vec<Parameter> {
        self.params
    }

    /// Total scalar weight count.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(Parameter::len).sum()
    }
}

/// Total scalar count of a parameter list (the paper's "Parameters" columns,
/// Tables 27–34).
pub fn count_parameters(params: &[Parameter]) -> usize {
    params.iter().map(Parameter::len).sum()
}

/// A complete CTS forecasting model.
///
/// Input `x` is `[B, N, P, F]` (batch, series, history steps, features);
/// output is `[B, N, Q]` — the forecast for the next `Q` steps (or the
/// single step `Q` for single-step tasks, with the last axis of length 1).
pub trait Forecaster {
    /// Build the forward graph for one batch.
    fn forward(&self, tape: &Tape, x: &Var) -> Var;

    /// Every trainable parameter of the model.
    fn parameters(&self) -> Vec<Parameter>;

    /// Toggle train/eval behaviour (batch-norm statistics, dropout).
    fn set_training(&self, _training: bool) {}

    /// Current train/eval mode. Models without mode-dependent behaviour may
    /// keep the default (`true`); stateful models should report the mode
    /// their last `set_training` call installed so eval guards can restore
    /// it.
    fn is_training(&self) -> bool {
        true
    }

    /// Gradient-free forward for inference: `x` is `[B, N, P, F]`, the
    /// result `[B, N, Q]`. The default builds a throwaway tape; models with
    /// a compiled execution plan override this with a tape-free path that
    /// must stay bit-identical to [`Self::forward`].
    fn forward_inference(&self, x: &Tensor) -> Tensor {
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        self.forward(&tape, &xv).value()
    }

    /// A short human-readable model name for reports.
    fn name(&self) -> &str {
        "model"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_tensor::Tensor;

    #[test]
    fn bundle_counts_scalars() {
        let mut b = ParamBundle::new();
        b.push(Parameter::new("a", Tensor::zeros([2, 3])));
        b.extend([Parameter::new("b", Tensor::zeros([4]))]);
        assert_eq!(b.num_scalars(), 10);
        assert_eq!(count_parameters(b.params()), 10);
        assert_eq!(b.into_vec().len(), 2);
    }
}
