//! Forecasting losses, including the masked variants used throughout the
//! traffic-forecasting literature (missing sensor readings are encoded as a
//! `null_value`, usually 0, and excluded from both loss and metrics).

use cts_autograd::{Tape, Var};
use cts_tensor::Tensor;

/// Which loss a training run optimises.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossKind {
    /// Mean absolute error, masking out entries equal to `null_value`.
    MaskedMae {
        /// Sentinel for missing readings (`None` disables masking).
        null_value: Option<f32>,
    },
    /// Mean absolute error.
    Mae,
    /// Mean squared error.
    Mse,
}

impl LossKind {
    /// Build the loss graph for `pred` against a constant `target`.
    pub fn compute(&self, tape: &Tape, pred: &Var, target: &Tensor) -> Var {
        match self {
            LossKind::MaskedMae { null_value } => masked_mae_loss(tape, pred, target, *null_value),
            LossKind::Mae => l1_loss(tape, pred, target),
            LossKind::Mse => mse_loss(tape, pred, target),
        }
    }
}

/// Binary mask tensor: 1 where `target` differs from `null_value`.
fn null_mask(target: &Tensor, null_value: f32) -> (Tensor, f32) {
    let data: Vec<f32> = target
        .data()
        .iter()
        .map(|&t| if (t - null_value).abs() > 1e-4 { 1.0 } else { 0.0 })
        .collect();
    let count: f32 = data.iter().sum();
    (Tensor::from_vec(target.shape().to_vec(), data), count)
}

/// Masked MAE: `Σ |p − t| ⊙ m / Σ m` (falls back to plain MAE when
/// `null_value` is `None` or nothing is masked).
pub fn masked_mae_loss(tape: &Tape, pred: &Var, target: &Tensor, null_value: Option<f32>) -> Var {
    let Some(null) = null_value else {
        return l1_loss(tape, pred, target);
    };
    let (mask, count) = null_mask(target, null);
    if count == 0.0 {
        // Fully masked batch: zero loss with a live graph (keeps training
        // loops simple).
        return pred.mul(&tape.constant(mask)).sum_all();
    }
    let t = tape.constant(target.clone());
    let m = tape.constant(mask);
    pred.sub(&t).abs().mul(&m).sum_all().scale(1.0 / count)
}

/// Masked MSE with the same conventions as [`masked_mae_loss`].
pub fn masked_mse_loss(tape: &Tape, pred: &Var, target: &Tensor, null_value: Option<f32>) -> Var {
    let Some(null) = null_value else {
        return mse_loss(tape, pred, target);
    };
    let (mask, count) = null_mask(target, null);
    if count == 0.0 {
        return pred.mul(&tape.constant(mask)).sum_all();
    }
    let t = tape.constant(target.clone());
    let m = tape.constant(mask);
    pred.sub(&t).square().mul(&m).sum_all().scale(1.0 / count)
}

/// Plain mean absolute error.
pub fn l1_loss(tape: &Tape, pred: &Var, target: &Tensor) -> Var {
    let t = tape.constant(target.clone());
    pred.sub(&t).abs().mean_all()
}

/// Plain mean squared error.
pub fn mse_loss(tape: &Tape, pred: &Var, target: &Tensor) -> Var {
    let t = tape.constant(target.clone());
    pred.sub(&t).square().mean_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_autograd::Parameter;

    #[test]
    fn mae_and_mse_values() {
        let tape = Tape::new();
        let pred = tape.constant(Tensor::from_vec([4], vec![1.0, 2.0, 3.0, 4.0]));
        let target = Tensor::from_vec([4], vec![0.0, 2.0, 5.0, 4.0]);
        assert!((l1_loss(&tape, &pred, &target).value().item() - 0.75).abs() < 1e-6);
        assert!((mse_loss(&tape, &pred, &target).value().item() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn masked_mae_ignores_null_entries() {
        let tape = Tape::new();
        let pred = tape.constant(Tensor::from_vec([4], vec![10.0, 2.0, 3.0, 4.0]));
        // first entry is "missing" (0): the huge error there must not count
        let target = Tensor::from_vec([4], vec![0.0, 2.0, 5.0, 4.0]);
        let loss = masked_mae_loss(&tape, &pred, &target, Some(0.0)).value().item();
        assert!((loss - 2.0 / 3.0).abs() < 1e-5, "{loss}");
    }

    #[test]
    fn unmasked_when_null_is_none() {
        let tape = Tape::new();
        let pred = tape.constant(Tensor::from_vec([2], vec![1.0, 1.0]));
        let target = Tensor::from_vec([2], vec![0.0, 0.0]);
        let loss = masked_mae_loss(&tape, &pred, &target, None).value().item();
        assert!((loss - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fully_masked_batch_gives_zero_loss() {
        let tape = Tape::new();
        let pred = tape.constant(Tensor::from_vec([2], vec![5.0, -3.0]));
        let target = Tensor::zeros([2]);
        let loss = masked_mae_loss(&tape, &pred, &target, Some(0.0)).value().item();
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn masked_loss_gradient_respects_mask() {
        let p = Parameter::new("pred", Tensor::from_vec([3], vec![1.0, 1.0, 1.0]));
        let tape = Tape::new();
        let pred = tape.param(&p);
        let target = Tensor::from_vec([3], vec![0.0, 5.0, 5.0]); // entry 0 masked
        let loss = masked_mae_loss(&tape, &pred, &target, Some(0.0));
        tape.backward(&loss);
        let g = p.grad();
        assert_eq!(g.data()[0], 0.0);
        assert!(g.data()[1] < 0.0 && g.data()[2] < 0.0);
    }

    #[test]
    fn loss_kind_dispatch() {
        let tape = Tape::new();
        let pred = tape.constant(Tensor::from_vec([2], vec![1.0, 3.0]));
        let target = Tensor::from_vec([2], vec![2.0, 1.0]);
        let mae = LossKind::Mae.compute(&tape, &pred, &target).value().item();
        let mse = LossKind::Mse.compute(&tape, &pred, &target).value().item();
        assert!((mae - 1.5).abs() < 1e-6);
        assert!((mse - 2.5).abs() < 1e-6);
    }
}
