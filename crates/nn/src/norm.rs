//! Normalisation layers.
//!
//! The AutoCTS supernet follows DARTS's ReLU-operator-norm ordering (§4.1.4).
//! [`LayerNorm`] (running-stat free, identical in train and eval mode) is the
//! workspace default for that role; [`BatchNorm`] with running statistics is
//! provided as well and is exercised by tests and by baselines that call for
//! it. The substitution is noted in DESIGN.md.

use cts_autograd::{Parameter, Tape, Var};
use cts_tensor::{ops, Tensor};
use std::cell::{Cell, RefCell};

/// Layer normalisation over the last (channel) axis with learnable affine.
pub struct LayerNorm {
    gamma: Parameter,
    beta: Parameter,
    eps: f32,
}

impl LayerNorm {
    /// LayerNorm over a channel dimension of width `d`.
    pub fn new(name: &str, d: usize) -> Self {
        Self {
            gamma: Parameter::new(format!("{name}.gamma"), Tensor::ones([d])),
            beta: Parameter::new(format!("{name}.beta"), Tensor::zeros([d])),
            eps: 1e-5,
        }
    }

    /// Normalise `[..., d]` per position over the channel axis.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let rank = x.shape().len();
        let axis = rank - 1;
        let mean = x.mean_axis(axis, true);
        let centered = x.sub(&mean);
        let var = centered.square().mean_axis(axis, true);
        let std = var.add_scalar(self.eps).sqrt();
        let normed = centered.div(&std);
        normed
            .mul(&tape.param(&self.gamma))
            .add(&tape.param(&self.beta))
    }

    /// Tape-free forward mirroring [`Self::forward`] kernel for kernel
    /// (bit-identical output). LayerNorm is stateless, so eval and train
    /// behaviour coincide.
    pub fn forward_eval(&self, x: &Tensor) -> Tensor {
        let axis = x.rank() - 1;
        let mean = ops::mean_axis(x, axis, true);
        let centered = ops::sub(x, &mean);
        let var = ops::mean_axis(&ops::square(&centered), axis, true);
        let std = ops::sqrt(&ops::add_scalar(&var, self.eps));
        let normed = ops::div(&centered, &std);
        ops::add(&ops::mul(&normed, &self.gamma.value()), &self.beta.value())
    }

    /// Learnable affine parameters.
    pub fn parameters(&self) -> Vec<Parameter> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

/// Batch normalisation over the channel (last) axis, with running statistics
/// for evaluation mode.
pub struct BatchNorm {
    gamma: Parameter,
    beta: Parameter,
    running_mean: RefCell<Tensor>,
    running_var: RefCell<Tensor>,
    momentum: f32,
    eps: f32,
    training: Cell<bool>,
}

impl BatchNorm {
    /// BatchNorm over a channel dimension of width `d`.
    pub fn new(name: &str, d: usize) -> Self {
        Self {
            gamma: Parameter::new(format!("{name}.gamma"), Tensor::ones([d])),
            beta: Parameter::new(format!("{name}.beta"), Tensor::zeros([d])),
            running_mean: RefCell::new(Tensor::zeros([d])),
            running_var: RefCell::new(Tensor::ones([d])),
            momentum: 0.1,
            eps: 1e-5,
            training: Cell::new(true),
        }
    }

    /// Switch between batch statistics (train) and running statistics (eval).
    pub fn set_training(&self, training: bool) {
        self.training.set(training);
    }

    /// Normalise `[..., d]` over all leading axes.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let shape = x.shape();
        // invariant: batchnorm inputs are at least rank 1.
        let d = *shape.last().expect("batchnorm on rank-0");
        let rows: usize = shape[..shape.len() - 1].iter().product();
        let flat = x.reshape(&[rows, d]);
        let (normed, batch_mean, batch_var) = if self.training.get() {
            let mean = flat.mean_axis(0, true);
            let centered = flat.sub(&mean);
            let var = centered.square().mean_axis(0, true);
            let std = var.add_scalar(self.eps).sqrt();
            let normed = centered.div(&std);
            (normed, Some(mean.value()), Some(var.value()))
        } else {
            let mean = tape.constant(self.running_mean.borrow().clone().reshaped(vec![1, d]));
            let var = tape.constant(self.running_var.borrow().clone().reshaped(vec![1, d]));
            let std = var.add_scalar(self.eps).sqrt();
            (flat.sub(&mean).div(&std), None, None)
        };
        if let (Some(m), Some(v)) = (batch_mean, batch_var) {
            let mut rm = self.running_mean.borrow_mut();
            let mut rv = self.running_var.borrow_mut();
            rm.scale_inplace(1.0 - self.momentum);
            rm.axpy(self.momentum, &m.reshaped(vec![d]));
            rv.scale_inplace(1.0 - self.momentum);
            rv.axpy(self.momentum, &v.reshaped(vec![d]));
        }
        normed
            .mul(&tape.param(&self.gamma))
            .add(&tape.param(&self.beta))
            .reshape(&shape)
    }

    /// Learnable affine parameters.
    pub fn parameters(&self) -> Vec<Parameter> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_tensor::init;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let mut rng = SmallRng::seed_from_u64(0);
        let ln = LayerNorm::new("ln", 8);
        let tape = Tape::new();
        let x = tape.constant(init::uniform(&mut rng, [4, 8], -5.0, 5.0));
        let y = ln.forward(&tape, &x).value();
        for row in 0..4 {
            let vals = &y.data()[row * 8..(row + 1) * 8];
            let mean: f32 = vals.iter().sum::<f32>() / 8.0;
            let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn layernorm_gradcheck() {
        use cts_autograd::gradcheck::assert_gradients;
        let mut rng = SmallRng::seed_from_u64(1);
        let ln = LayerNorm::new("ln", 4);
        let x = cts_autograd::Parameter::new("x", init::uniform(&mut rng, [2, 4], -1.0, 1.0));
        let mut params = ln.parameters();
        params.push(x.clone());
        assert_gradients(&params, 1e-2, 5e-2, |tape| {
            ln.forward(tape, &tape.param(&x)).square().sum_all()
        });
    }

    #[test]
    fn batchnorm_train_normalizes_per_channel() {
        let mut rng = SmallRng::seed_from_u64(2);
        let bn = BatchNorm::new("bn", 3);
        let tape = Tape::new();
        let x = tape.constant(init::uniform(&mut rng, [50, 3], 2.0, 6.0));
        let y = bn.forward(&tape, &x).value();
        for c in 0..3 {
            let vals: Vec<f32> = (0..50).map(|r| y.data()[r * 3 + c]).collect();
            let mean: f32 = vals.iter().sum::<f32>() / 50.0;
            assert!(mean.abs() < 1e-3, "channel {c} mean {mean}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut rng = SmallRng::seed_from_u64(3);
        let bn = BatchNorm::new("bn", 2);
        // Run several training batches to build running stats near (3, 1).
        for _ in 0..60 {
            let tape = Tape::new();
            let x = tape.constant(init::normal(&mut rng, [64, 2], 1.0).map(|v| v + 3.0));
            let _ = bn.forward(&tape, &x);
        }
        bn.set_training(false);
        let tape = Tape::new();
        // Input exactly at the running mean must map to ~beta (0).
        let x = tape.constant(Tensor::full([1, 2], 3.0));
        let y = bn.forward(&tape, &x).value();
        assert!(y.data().iter().all(|v| v.abs() < 0.2), "{:?}", y);
    }
}
