//! Training schedules: the exponentially annealed softmax temperature of
//! §3.2.2/§4.1.4.

/// Exponential temperature annealing: τ ← max(τ·factor, min), starting from
/// `init` (paper defaults: 5.0 → 0.001 with factor 0.9 per epoch).
#[derive(Clone, Debug)]
pub struct TemperatureSchedule {
    tau: f32,
    factor: f32,
    min: f32,
}

impl TemperatureSchedule {
    /// The paper's default schedule.
    pub fn paper_default() -> Self {
        Self::new(5.0, 0.9, 1e-3)
    }

    /// A constant τ = 1 schedule — the *w/o temperature* ablation.
    pub fn constant_one() -> Self {
        Self::new(1.0, 1.0, 1.0)
    }

    /// Custom schedule.
    pub fn new(init: f32, factor: f32, min: f32) -> Self {
        assert!(init > 0.0 && factor > 0.0 && min > 0.0);
        Self {
            tau: init,
            factor,
            min,
        }
    }

    /// Current temperature.
    pub fn tau(&self) -> f32 {
        self.tau
    }

    /// Per-epoch annealing factor.
    pub fn factor(&self) -> f32 {
        self.factor
    }

    /// Temperature floor.
    pub fn min_tau(&self) -> f32 {
        self.min
    }

    /// Restore the schedule position from a checkpoint.
    ///
    /// `tau` must be a positive finite number. A value below the
    /// schedule's floor (possible only in a legacy or hand-edited
    /// checkpoint — [`TemperatureSchedule::step`] never goes below `min`)
    /// is clamped up to `min` with a warning, so a resumed run can never
    /// anneal from below the floor and diverge from a fresh run's trace.
    pub fn restore(&mut self, tau: f32) {
        assert!(
            tau.is_finite() && tau > 0.0,
            "TemperatureSchedule::restore: temperature must be a positive \
             finite number, got {tau}"
        );
        if tau < self.min {
            cts_obs::runlog::warn(&format!(
                "TemperatureSchedule::restore: checkpoint tau {tau} is below \
                 the schedule floor {}; clamping to the floor",
                self.min
            ));
            self.tau = self.min;
        } else {
            self.tau = tau;
        }
    }

    /// Advance one epoch.
    pub fn step(&mut self) {
        self.tau = (self.tau * self.factor).max(self.min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anneals_toward_minimum() {
        let mut s = TemperatureSchedule::paper_default();
        assert_eq!(s.tau(), 5.0);
        for _ in 0..200 {
            s.step();
        }
        assert_eq!(s.tau(), 1e-3);
    }

    #[test]
    fn monotone_decreasing() {
        let mut s = TemperatureSchedule::new(2.0, 0.5, 0.1);
        let mut last = s.tau();
        for _ in 0..10 {
            s.step();
            assert!(s.tau() <= last);
            last = s.tau();
        }
    }

    #[test]
    fn restore_clamps_below_floor_and_rejects_non_finite() {
        let mut s = TemperatureSchedule::new(5.0, 0.9, 1e-3);
        s.restore(2.5);
        assert_eq!(s.tau(), 2.5);
        // Below the floor: clamped up, never resumed as-is.
        s.restore(1e-6);
        assert_eq!(s.tau(), 1e-3);
        for bad in [0.0, -1.0, f32::NAN, f32::INFINITY] {
            let mut s = TemperatureSchedule::paper_default();
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                s.restore(bad);
            }));
            assert!(r.is_err(), "restore({bad}) must panic");
        }
    }

    #[test]
    fn constant_schedule_never_moves() {
        let mut s = TemperatureSchedule::constant_one();
        for _ in 0..5 {
            s.step();
        }
        assert_eq!(s.tau(), 1.0);
    }
}
