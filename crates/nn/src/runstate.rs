//! Fault-tolerant run configuration: checkpoint cadence and the
//! divergence watchdog shared by [`crate::train_full`] and the search
//! loop in `autocts`.

use crate::checkpoint::CheckpointError;
use std::fmt;
use std::path::PathBuf;

/// Where and how often to persist run state.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Checkpoint file path (written atomically; see
    /// [`crate::checkpoint::save_run_state`]).
    pub path: PathBuf,
    /// Write a checkpoint every this many completed epochs (≥ 1).
    pub every_epochs: usize,
    /// Additionally write a checkpoint every this many optimizer steps
    /// *within* an epoch (0 disables mid-epoch checkpoints, the default).
    /// Mid-epoch state rides in the same file as epoch checkpoints via a
    /// dedicated chunk, so a kill between epoch boundaries loses at most
    /// `steps_per_checkpoint` steps instead of the whole epoch.
    pub steps_per_checkpoint: usize,
    /// When `true` and `path` holds a valid checkpoint, continue the run
    /// from it instead of starting fresh. A corrupt or truncated file is
    /// a hard error, never silently ignored.
    pub resume: bool,
}

impl CheckpointConfig {
    /// Checkpoint to `path` after every epoch, resuming when possible.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            every_epochs: 1,
            steps_per_checkpoint: 0,
            resume: true,
        }
    }

    /// Override the checkpoint cadence.
    pub fn every(mut self, epochs: usize) -> Self {
        assert!(epochs >= 1, "checkpoint cadence must be >= 1 epoch");
        self.every_epochs = epochs;
        self
    }

    /// Enable mid-epoch checkpoints every `steps` optimizer steps (0
    /// disables them again).
    pub fn every_steps(mut self, steps: usize) -> Self {
        self.steps_per_checkpoint = steps;
        self
    }

    /// Disable resuming (always start fresh, overwriting checkpoints).
    pub fn fresh(mut self) -> Self {
        self.resume = false;
        self
    }

    /// True when epoch `completed` (1-based count of finished epochs)
    /// falls on the cadence.
    pub fn due(&self, completed: usize) -> bool {
        completed.is_multiple_of(self.every_epochs.max(1))
    }

    /// True when a mid-epoch checkpoint is due after the `step`-th global
    /// optimizer step (1-based count of completed steps).
    pub fn steps_due(&self, step: u64) -> bool {
        self.steps_per_checkpoint > 0
            && step > 0
            && step.is_multiple_of(self.steps_per_checkpoint as u64)
    }

    /// Derive a stage-scoped config writing to the sibling file
    /// `<stem>.<name>[.<ext>]`, keeping cadence and resume policy. Lets
    /// one run config checkpoint its search and retraining stages
    /// independently without the two stages clobbering each other's file.
    pub fn stage(&self, name: &str) -> Self {
        let mut path = self.path.clone();
        let file = match (path.file_stem(), path.extension()) {
            (Some(stem), Some(ext)) => {
                format!("{}.{name}.{}", stem.to_string_lossy(), ext.to_string_lossy())
            }
            (Some(stem), None) => format!("{}.{name}", stem.to_string_lossy()),
            (None, _) => name.to_string(),
        };
        path.set_file_name(file);
        Self { path, ..self.clone() }
    }
}

/// Numerical-health monitoring of a training loop.
///
/// DARTS-style searches are divergence-prone (loss spikes under the
/// annealed softmax, NaN blow-ups); the watchdog detects non-finite
/// losses/gradients and epoch-loss spikes, rolls the run back to the
/// last good epoch boundary, cuts the learning rate, and retries within
/// a bounded budget before surfacing a typed error.
#[derive(Clone, Debug)]
pub struct WatchdogConfig {
    /// Master switch. When off, non-finite values propagate as they did
    /// historically.
    pub enabled: bool,
    /// An epoch whose mean loss exceeds `spike_factor ×` the running
    /// median of previous epoch losses counts as divergence.
    pub spike_factor: f32,
    /// Epochs of loss history required before spike detection engages.
    pub min_history: usize,
    /// Total rollback budget for one run; exhausting it surfaces an
    /// error.
    pub max_retries: usize,
    /// Multiplier applied to the learning rate on every rollback.
    pub lr_cut: f32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            spike_factor: 10.0,
            min_history: 5,
            max_retries: 3,
            lr_cut: 0.5,
        }
    }
}

impl WatchdogConfig {
    /// Disabled watchdog (legacy propagate-NaN behaviour).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// Median of `history`; `None` while shorter than
    /// [`WatchdogConfig::min_history`].
    pub fn running_median(&self, history: &[f32]) -> Option<f32> {
        if history.len() < self.min_history {
            return None;
        }
        let mut sorted: Vec<f32> = history.iter().copied().filter(|x| x.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(f32::total_cmp);
        Some(sorted[sorted.len() / 2])
    }

    /// Spike test for an epoch's mean loss against the loss history.
    pub fn is_spike(&self, loss: f32, history: &[f32]) -> bool {
        match self.running_median(history) {
            Some(median) if median > 0.0 => loss > self.spike_factor * median,
            _ => false,
        }
    }
}

/// Why the watchdog flagged an epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DivergenceReason {
    /// The loss itself went NaN/±∞.
    NonFiniteLoss {
        /// Global step where it was observed.
        step: u64,
    },
    /// A gradient buffer went NaN/±∞ after backward.
    NonFiniteGradient {
        /// Global step where it was observed.
        step: u64,
    },
    /// The epoch's mean loss spiked beyond the configured factor of the
    /// running median.
    LossSpike {
        /// Observed mean epoch loss.
        loss: f32,
        /// Running median it was compared against.
        median: f32,
    },
}

impl fmt::Display for DivergenceReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceReason::NonFiniteLoss { step } => {
                write!(f, "non-finite loss at step {step}")
            }
            DivergenceReason::NonFiniteGradient { step } => {
                write!(f, "non-finite gradient at step {step}")
            }
            DivergenceReason::LossSpike { loss, median } => {
                write!(f, "loss spike: {loss} vs running median {median}")
            }
        }
    }
}

/// Typed failure of a training run.
#[derive(Debug)]
pub enum TrainError {
    /// The watchdog's retry budget is exhausted.
    Diverged {
        /// Epoch the final divergence occurred in.
        epoch: usize,
        /// Rollbacks performed before giving up.
        retries: usize,
        /// The final divergence.
        reason: DivergenceReason,
    },
    /// The run was killed mid-epoch (fault injection or external stop).
    /// State up to the last checkpoint is on disk; resume to continue.
    Interrupted {
        /// Epoch the interruption occurred in.
        epoch: usize,
        /// Global step at interruption.
        step: u64,
    },
    /// Persisting or restoring run state failed.
    Checkpoint(CheckpointError),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Diverged { epoch, retries, reason } => write!(
                f,
                "training diverged at epoch {epoch} after {retries} rollback(s): {reason}"
            ),
            TrainError::Interrupted { epoch, step } => {
                write!(f, "training interrupted at epoch {epoch}, step {step}")
            }
            TrainError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence() {
        let ck = CheckpointConfig::new("/tmp/x.ckpt").every(3);
        assert!(!ck.due(1));
        assert!(!ck.due(2));
        assert!(ck.due(3));
        assert!(ck.due(6));
        assert!(CheckpointConfig::new("/tmp/x.ckpt").due(1));
    }

    #[test]
    fn step_cadence() {
        let off = CheckpointConfig::new("/tmp/x.ckpt");
        assert!(!off.steps_due(4), "mid-epoch checkpoints default off");
        let ck = CheckpointConfig::new("/tmp/x.ckpt").every_steps(4);
        assert!(!ck.steps_due(0));
        assert!(!ck.steps_due(3));
        assert!(ck.steps_due(4));
        assert!(!ck.steps_due(5));
        assert!(ck.steps_due(8));
        let disabled_again = ck.every_steps(0);
        assert!(!disabled_again.steps_due(4));
    }

    #[test]
    fn stage_derives_sibling_path_and_keeps_policy() {
        let ck = CheckpointConfig::new("/tmp/run.ckpt").every(3).fresh();
        let retrain = ck.stage("retrain");
        assert_eq!(retrain.path, std::path::PathBuf::from("/tmp/run.retrain.ckpt"));
        assert_eq!(retrain.every_epochs, 3);
        assert!(!retrain.resume);
        // extension-less paths get the stage suffix appended
        let bare = CheckpointConfig::new("/tmp/run").stage("retrain");
        assert_eq!(bare.path, std::path::PathBuf::from("/tmp/run.retrain"));
        // stages must not collide with each other or the base file
        assert_ne!(ck.stage("search").path, retrain.path);
        assert_ne!(ck.stage("search").path, ck.path);
    }

    #[test]
    fn spike_needs_history() {
        let wd = WatchdogConfig { min_history: 3, spike_factor: 10.0, ..Default::default() };
        assert!(!wd.is_spike(100.0, &[1.0, 1.0]));
        assert!(wd.is_spike(100.0, &[1.0, 1.2, 0.9]));
        assert!(!wd.is_spike(5.0, &[1.0, 1.2, 0.9]));
    }

    #[test]
    fn median_ignores_non_finite() {
        let wd = WatchdogConfig { min_history: 3, ..Default::default() };
        let m = wd.running_median(&[1.0, f32::NAN, 3.0]).unwrap();
        assert!((1.0..=3.0).contains(&m));
    }
}
