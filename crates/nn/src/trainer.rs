//! A small generic training engine shared by the baselines and by AutoCTS's
//! architecture-evaluation stage.

use crate::{clip_grad_norm, Adam, Forecaster, LossKind, Optimizer};
use cts_autograd::Tape;
use cts_tensor::Tensor;

/// Hyper-parameters of a plain supervised training run.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training batches.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Global gradient-norm clip (0 disables).
    pub clip: f32,
    /// Loss to optimise.
    pub loss: LossKind,
    /// Stop early when validation loss hasn't improved for this many epochs
    /// (0 disables early stopping).
    pub patience: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            lr: 1e-3,
            weight_decay: 1e-4,
            clip: 5.0,
            loss: LossKind::MaskedMae { null_value: Some(0.0) },
            patience: 0,
        }
    }
}

/// Outcome of [`train_full`].
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub train_losses: Vec<f32>,
    /// Mean validation loss per epoch (empty when no validation set given).
    pub val_losses: Vec<f32>,
    /// Epoch index with the best validation loss.
    pub best_epoch: usize,
    /// Wall-clock seconds spent per epoch, averaged.
    pub secs_per_epoch: f64,
}

/// One optimisation pass over `batches`; returns the mean loss.
pub fn train_one_epoch(
    model: &dyn Forecaster,
    opt: &mut dyn Optimizer,
    batches: &[(Tensor, Tensor)],
    loss_kind: LossKind,
    clip: f32,
) -> f32 {
    model.set_training(true);
    let mut total = 0.0f64;
    for (x, y) in batches {
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let pred = model.forward(&tape, &xv);
        let loss = loss_kind.compute(&tape, &pred, y);
        total += loss.value().item() as f64;
        tape.backward(&loss);
        if clip > 0.0 {
            clip_grad_norm(opt.params(), clip);
        }
        opt.step();
    }
    (total / batches.len().max(1) as f64) as f32
}

/// Mean loss of `model` over `batches` without updating weights.
pub fn evaluate_loss(model: &dyn Forecaster, batches: &[(Tensor, Tensor)], loss_kind: LossKind) -> f32 {
    model.set_training(false);
    let mut total = 0.0f64;
    for (x, y) in batches {
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let pred = model.forward(&tape, &xv);
        total += loss_kind.compute(&tape, &pred, y).value().item() as f64;
    }
    (total / batches.len().max(1) as f64) as f32
}

/// Full training loop with optional validation-based early stopping.
pub fn train_full(
    model: &dyn Forecaster,
    train_batches: &[(Tensor, Tensor)],
    val_batches: Option<&[(Tensor, Tensor)]>,
    cfg: &TrainConfig,
) -> TrainReport {
    let mut opt = Adam::new(model.parameters(), cfg.lr, cfg.weight_decay);
    let mut train_losses = Vec::with_capacity(cfg.epochs);
    let mut val_losses = Vec::new();
    let mut best = f32::INFINITY;
    let mut best_epoch = 0;
    let mut stall = 0usize;
    let started = std::time::Instant::now();
    let mut epochs_run = 0usize;
    for epoch in 0..cfg.epochs {
        epochs_run += 1;
        let tl = train_one_epoch(model, &mut opt, train_batches, cfg.loss, cfg.clip);
        train_losses.push(tl);
        if let Some(vb) = val_batches {
            let vl = evaluate_loss(model, vb, cfg.loss);
            val_losses.push(vl);
            if vl < best {
                best = vl;
                best_epoch = epoch;
                stall = 0;
            } else {
                stall += 1;
                if cfg.patience > 0 && stall >= cfg.patience {
                    break;
                }
            }
        } else if tl < best {
            best = tl;
            best_epoch = epoch;
        }
    }
    let secs_per_epoch = started.elapsed().as_secs_f64() / epochs_run.max(1) as f64;
    TrainReport {
        train_losses,
        val_losses,
        best_epoch,
        secs_per_epoch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Linear;
    use cts_autograd::{Parameter, Var};
    use cts_tensor::init;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    /// A one-layer model: mean over history, then a linear map per node.
    struct TinyModel {
        lin: Linear,
        q: usize,
    }

    impl Forecaster for TinyModel {
        fn forward(&self, tape: &Tape, x: &Var) -> Var {
            // x: [B,N,P,F] -> mean over P -> [B,N,F] -> linear -> [B,N,Q]
            let pooled = x.mean_axis(2, false);
            self.lin.forward(tape, &pooled)
        }
        fn parameters(&self) -> Vec<Parameter> {
            self.lin.parameters()
        }
        fn name(&self) -> &str {
            "tiny"
        }
        fn set_training(&self, _t: bool) {}
    }

    fn toy_batches(rng: &mut impl Rng, n_batches: usize) -> Vec<(Tensor, Tensor)> {
        // target = 2 * mean(history) + 1, one-step horizon
        (0..n_batches)
            .map(|_| {
                let x = init::uniform(rng, [4, 3, 5, 1], 0.0, 1.0);
                let mut y = Tensor::zeros([4, 3, 1]);
                for b in 0..4 {
                    for n in 0..3 {
                        let mean: f32 =
                            (0..5).map(|t| x.at(&[b, n, t, 0])).sum::<f32>() / 5.0;
                        *y.at_mut(&[b, n, 0]) = 2.0 * mean + 1.0;
                    }
                }
                (x, y)
            })
            .collect()
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = SmallRng::seed_from_u64(0);
        let model = TinyModel {
            lin: Linear::new(&mut rng, "lin", 1, 1, true),
            q: 1,
        };
        let _ = model.q;
        let batches = toy_batches(&mut rng, 16);
        let cfg = TrainConfig {
            epochs: 40,
            lr: 0.05,
            weight_decay: 0.0,
            loss: LossKind::Mse,
            ..Default::default()
        };
        let report = train_full(&model, &batches, None, &cfg);
        let first = report.train_losses[0];
        let last = *report.train_losses.last().unwrap();
        assert!(last < first * 0.05, "loss {first} -> {last}");
    }

    #[test]
    fn early_stopping_halts() {
        let mut rng = SmallRng::seed_from_u64(1);
        let model = TinyModel {
            lin: Linear::new(&mut rng, "lin", 1, 1, true),
            q: 1,
        };
        let batches = toy_batches(&mut rng, 4);
        // Validation on unrelated random targets: no improvement possible
        // after initial epochs, so patience must kick in.
        let val: Vec<(Tensor, Tensor)> = batches
            .iter()
            .map(|(x, y)| (x.clone(), y.map(|v| -v)))
            .collect();
        let cfg = TrainConfig {
            epochs: 100,
            lr: 0.05,
            weight_decay: 0.0,
            loss: LossKind::Mse,
            patience: 3,
            ..Default::default()
        };
        let report = train_full(&model, &batches, Some(&val), &cfg);
        assert!(report.train_losses.len() < 100, "never stopped early");
    }
}
