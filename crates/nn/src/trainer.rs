//! A small generic training engine shared by the baselines and by AutoCTS's
//! architecture-evaluation stage.
//!
//! Fault tolerance: the loop optionally persists full run state
//! ([`crate::checkpoint::RunState`]) at epoch boundaries and resumes
//! bit-identically, and a divergence watchdog rolls back to the last
//! good epoch on NaN losses/gradients or loss spikes, cuts the learning
//! rate, and retries within a bounded budget before returning a typed
//! [`TrainError`].

use crate::checkpoint::{
    apply_parameters, load_run_state, save_run_state, MidEpochState, OptimizerState, RunCounters,
    RunState,
};
use crate::runstate::{CheckpointConfig, DivergenceReason, TrainError, WatchdogConfig};
use crate::{clip_grad_norm, fault, global_grad_norm, Adam, Forecaster, LossKind, Optimizer};
use cts_autograd::Tape;
use cts_tensor::Tensor;

/// Hyper-parameters of a plain supervised training run.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training batches.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Global gradient-norm clip (0 disables).
    pub clip: f32,
    /// Loss to optimise.
    pub loss: LossKind,
    /// Stop early when validation loss hasn't improved for this many epochs
    /// (0 disables early stopping).
    pub patience: usize,
    /// Epoch-boundary run-state persistence (None disables).
    pub checkpoint: Option<CheckpointConfig>,
    /// Divergence watchdog (enabled by default).
    pub watchdog: WatchdogConfig,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            lr: 1e-3,
            weight_decay: 1e-4,
            clip: 5.0,
            loss: LossKind::MaskedMae { null_value: Some(0.0) },
            patience: 0,
            checkpoint: None,
            watchdog: WatchdogConfig::default(),
        }
    }
}

/// Outcome of [`train_full`].
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub train_losses: Vec<f32>,
    /// Mean validation loss per epoch (empty when no validation set given).
    pub val_losses: Vec<f32>,
    /// Epoch index with the best validation loss.
    pub best_epoch: usize,
    /// Wall-clock seconds spent per epoch, averaged.
    pub secs_per_epoch: f64,
    /// Watchdog rollbacks performed during the run.
    pub rollbacks: usize,
}

/// One optimisation pass over `batches`; returns the mean loss.
pub fn train_one_epoch(
    model: &dyn Forecaster,
    opt: &mut dyn Optimizer,
    batches: &[(Tensor, Tensor)],
    loss_kind: LossKind,
    clip: f32,
) -> f32 {
    model.set_training(true);
    let mut total = 0.0f64;
    for (x, y) in batches {
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let pred = model.forward(&tape, &xv);
        let loss = loss_kind.compute(&tape, &pred, y);
        total += loss.value().item() as f64;
        tape.backward(&loss);
        if clip > 0.0 {
            clip_grad_norm(opt.params(), clip);
        }
        opt.step();
    }
    (total / batches.len().max(1) as f64) as f32
}

/// Mean loss of `model` over `batches` without updating weights.
///
/// Uses the model's gradient-free [`Forecaster::forward_inference`] (the
/// compiled plan for derived models — no gradient is needed here); only the
/// loss itself is computed on a throwaway tape.
pub fn evaluate_loss(model: &dyn Forecaster, batches: &[(Tensor, Tensor)], loss_kind: LossKind) -> f32 {
    model.set_training(false);
    let mut total = 0.0f64;
    for (x, y) in batches {
        let tape = Tape::new();
        let pred = tape.constant(model.forward_inference(x));
        total += loss_kind.compute(&tape, &pred, y).value().item() as f64;
    }
    (total / batches.len().max(1) as f64) as f32
}

/// Why an epoch could not complete.
enum EpochAbort {
    Interrupted,
    Diverged(DivergenceReason),
    /// A per-step side effect (mid-epoch checkpoint write) failed.
    Failed(TrainError),
}

/// One health-checked optimisation pass: consults the fault-injection
/// plan and the watchdog at every step, refusing to apply a poisoned
/// update.
///
/// `start_batch`/`carry` resume a partially-completed epoch: the first
/// `start_batch` batches are skipped and the loss accumulator starts at
/// `carry` (an `f64` so the resumed epoch mean is bit-identical to the
/// uninterrupted one). `on_step` runs after every applied optimizer step
/// with `(opt, global_step, batches_done, loss_sum)` — the hook mid-epoch
/// checkpointing hangs off.
/// Post-step hook for [`run_epoch_checked`]: receives
/// `(opt, global_step, batches_done, loss_sum)`; an `Err` aborts the epoch.
type StepHook<'a> = dyn FnMut(&Adam, u64, u64, f64) -> Result<(), TrainError> + 'a;

#[allow(clippy::too_many_arguments)] // one call site; a params struct would just rename the noise
fn run_epoch_checked(
    model: &dyn Forecaster,
    opt: &mut Adam,
    batches: &[(Tensor, Tensor)],
    loss_kind: LossKind,
    clip: f32,
    watchdog_on: bool,
    step: &mut u64,
    start_batch: usize,
    carry: f64,
    on_step: &mut StepHook<'_>,
) -> Result<f32, EpochAbort> {
    model.set_training(true);
    let mut total = carry;
    for (bi, (x, y)) in batches.iter().enumerate().skip(start_batch) {
        if fault::take_abort(*step) {
            return Err(EpochAbort::Interrupted);
        }
        let tape = Tape::new();
        let fwd = cts_obs::span(cts_obs::Phase::Forward);
        let xv = tape.constant(x.clone());
        let pred = model.forward(&tape, &xv);
        let loss = loss_kind.compute(&tape, &pred, y);
        let lv = loss.value().item();
        drop(fwd);
        if watchdog_on && !lv.is_finite() {
            return Err(EpochAbort::Diverged(DivergenceReason::NonFiniteLoss { step: *step }));
        }
        total += lv as f64;
        {
            let _span = cts_obs::span(cts_obs::Phase::Backward);
            tape.backward(&loss);
        }
        if fault::take_nan_grad(*step) {
            fault::poison_gradients(opt.params());
        }
        if watchdog_on && !global_grad_norm(opt.params()).is_finite() {
            return Err(EpochAbort::Diverged(DivergenceReason::NonFiniteGradient {
                step: *step,
            }));
        }
        {
            let _span = cts_obs::span(cts_obs::Phase::WeightStep);
            if clip > 0.0 {
                clip_grad_norm(opt.params(), clip);
            }
            opt.step();
        }
        *step += 1;
        on_step(opt, *step, (bi + 1) as u64, total).map_err(EpochAbort::Failed)?;
    }
    Ok((total / batches.len().max(1) as f64) as f32)
}

/// Last-good in-memory snapshot for watchdog rollback. Carries the
/// in-epoch position `(batch, carry)` so a rollback from a run resumed
/// mid-epoch retries from the resume point, not from an epoch boundary it
/// never visited.
struct GoodState {
    values: Vec<Tensor>,
    opt: OptimizerState,
    step: u64,
    batch: usize,
    carry: f64,
}

impl GoodState {
    fn capture(opt: &Adam, step: u64, batch: usize, carry: f64) -> Self {
        Self {
            values: opt.params().iter().map(|p| p.value().clone()).collect(),
            opt: opt.export_state("main"),
            step,
            batch,
            carry,
        }
    }

    fn restore(&self, opt: &mut Adam) -> u64 {
        for (p, t) in opt.params().iter().zip(&self.values) {
            p.set_value(t.clone());
        }
        opt.zero_grad();
        // invariant: the snapshot was exported from this same optimizer.
        opt.import_state(&self.opt).expect("snapshot taken from this optimizer");
        self.step
    }
}

/// Full training loop with optional validation-based early stopping,
/// epoch-boundary checkpointing/resume, and a divergence watchdog.
///
/// With `cfg.checkpoint` set, a run killed mid-epoch resumes from the
/// last completed epoch — or, with
/// [`CheckpointConfig::every_steps`] enabled, from the last mid-epoch
/// step checkpoint — and produces the *bit-identical* loss trace an
/// uninterrupted run would have produced.
pub fn train_full(
    model: &dyn Forecaster,
    train_batches: &[(Tensor, Tensor)],
    val_batches: Option<&[(Tensor, Tensor)]>,
    cfg: &TrainConfig,
) -> Result<TrainReport, TrainError> {
    let mut opt = Adam::new(model.parameters(), cfg.lr, cfg.weight_decay);
    let mut train_losses = Vec::with_capacity(cfg.epochs);
    let mut val_losses = Vec::new();
    let mut best = f32::INFINITY;
    let mut best_epoch = 0usize;
    let mut stall = 0usize;
    let mut step = 0u64;
    let mut epoch = 0usize;
    let mut secs_before = 0.0f64;
    // In-epoch resume position: batches already applied this epoch and the
    // f64 loss sum they contributed (non-zero only right after a mid-epoch
    // resume or a rollback to a mid-epoch snapshot).
    let mut start_batch = 0usize;
    let mut carry = 0.0f64;

    // Resume from a previous run's checkpoint when configured. A corrupt
    // file is a hard error — it is never loaded, and never silently
    // replaced by a fresh start.
    if let Some(ck) = &cfg.checkpoint {
        if ck.resume && ck.path.exists() {
            let rs = load_run_state(&ck.path)?;
            apply_parameters(&rs.params, opt.params())?;
            // v1 / params-only checkpoints resume with fresh moments.
            if let Some(os) = rs.optimizers.iter().find(|o| o.name == "main") {
                opt.import_state(os)?;
            }
            train_losses = rs.train_losses;
            val_losses = rs.val_losses;
            best = rs.counters.best_val;
            best_epoch = rs.counters.best_epoch as usize;
            stall = rs.counters.stall as usize;
            step = rs.counters.step;
            epoch = rs.counters.epoch as usize;
            secs_before = rs.counters.secs;
            if let Some(me) = rs.mid_epoch {
                start_batch = me.batch as usize;
                carry = me.loss_sum;
            }
        }
    }

    let started = cts_obs::Stopwatch::start();
    let mut snapshot = GoodState::capture(&opt, step, start_batch, carry);
    let mut rollbacks = 0usize;

    while epoch < cfg.epochs {
        // Mid-epoch persistence hook: every `steps_per_checkpoint` applied
        // steps, write the full run state plus the in-epoch position. The
        // final batch of an epoch is skipped — the boundary checkpoint
        // below records that state without the mid-epoch chunk.
        let mut on_step = |opt: &Adam, step_now: u64, batches_done: u64, loss_sum: f64| {
            let Some(ck) = &cfg.checkpoint else { return Ok(()) };
            if !ck.steps_due(step_now) || batches_done as usize >= train_batches.len() {
                return Ok(());
            }
            let rs = RunState {
                params: RunState::capture_params(opt.params())?,
                optimizers: vec![opt.export_state("main")],
                schedule: None,
                counters: RunCounters {
                    epoch: epoch as u64,
                    step: step_now,
                    best_epoch: best_epoch as u64,
                    stall: stall as u64,
                    memory_scalars: 0,
                    best_val: best,
                    last_val: val_losses.last().copied().unwrap_or(0.0),
                    secs: secs_before + started.elapsed_secs(),
                },
                rng: None,
                trace: Vec::new(),
                train_losses: train_losses.clone(),
                val_losses: val_losses.clone(),
                mid_epoch: Some(MidEpochState { batch: batches_done, loss_sum }),
            };
            let _span = cts_obs::span(cts_obs::Phase::CheckpointWrite);
            save_run_state(&ck.path, &rs)?;
            Ok(())
        };
        let outcome = run_epoch_checked(
            model,
            &mut opt,
            train_batches,
            cfg.loss,
            cfg.clip,
            cfg.watchdog.enabled,
            &mut step,
            start_batch,
            carry,
            &mut on_step,
        );
        let diverged = match outcome {
            Err(EpochAbort::Interrupted) => {
                return Err(TrainError::Interrupted { epoch, step });
            }
            Err(EpochAbort::Failed(e)) => return Err(e),
            Err(EpochAbort::Diverged(reason)) => Some(reason),
            Ok(tl) if cfg.watchdog.enabled && cfg.watchdog.is_spike(tl, &train_losses) => {
                Some(DivergenceReason::LossSpike {
                    loss: tl,
                    median: cfg.watchdog.running_median(&train_losses).unwrap_or(0.0),
                })
            }
            Ok(tl) => {
                train_losses.push(tl);
                None
            }
        };
        if let Some(reason) = diverged {
            if cts_obs::metrics_enabled() {
                cts_obs::runlog::emit(
                    "watchdog",
                    &[
                        ("kind", cts_obs::runlog::Value::Str("train")),
                        ("epoch", cts_obs::runlog::Value::U64(epoch as u64)),
                        ("step", cts_obs::runlog::Value::U64(step)),
                        ("reason", cts_obs::runlog::Value::Str(&reason.to_string())),
                        ("rollbacks", cts_obs::runlog::Value::U64(rollbacks as u64 + 1)),
                    ],
                );
            }
            if rollbacks >= cfg.watchdog.max_retries {
                return Err(TrainError::Diverged { epoch, retries: rollbacks, reason });
            }
            rollbacks += 1;
            step = snapshot.restore(&mut opt);
            start_batch = snapshot.batch;
            carry = snapshot.carry;
            opt.set_lr(opt.lr() * cfg.watchdog.lr_cut);
            continue; // retry the same epoch at the reduced LR
        }
        // The epoch completed: later epochs start from batch zero.
        start_batch = 0;
        carry = 0.0;
        // invariant: the epoch loop pushed a loss just above.
        let tl = *train_losses.last().expect("pushed above");

        let mut stop = false;
        if let Some(vb) = val_batches {
            let vl = evaluate_loss(model, vb, cfg.loss);
            val_losses.push(vl);
            if vl < best {
                best = vl;
                best_epoch = epoch;
                stall = 0;
            } else {
                stall += 1;
                if cfg.patience > 0 && stall >= cfg.patience {
                    stop = true;
                }
            }
        } else if tl < best {
            best = tl;
            best_epoch = epoch;
        }

        epoch += 1;
        snapshot = GoodState::capture(&opt, step, 0, 0.0);

        if let Some(ck) = &cfg.checkpoint {
            if ck.due(epoch) || stop || epoch == cfg.epochs {
                let rs = RunState {
                    params: RunState::capture_params(opt.params())?,
                    optimizers: vec![opt.export_state("main")],
                    schedule: None,
                    counters: RunCounters {
                        epoch: epoch as u64,
                        step,
                        best_epoch: best_epoch as u64,
                        stall: stall as u64,
                        memory_scalars: 0,
                        best_val: best,
                        last_val: val_losses.last().copied().unwrap_or(0.0),
                        secs: secs_before + started.elapsed_secs(),
                    },
                    rng: None,
                    trace: Vec::new(),
                    train_losses: train_losses.clone(),
                    val_losses: val_losses.clone(),
                    mid_epoch: None,
                };
                let _span = cts_obs::span(cts_obs::Phase::CheckpointWrite);
                save_run_state(&ck.path, &rs)?;
            }
        }
        if cts_obs::metrics_enabled() {
            use cts_obs::runlog::Value;
            let done = epoch as u64 - 1;
            cts_obs::runlog::emit(
                "epoch",
                &[
                    ("kind", Value::Str("train")),
                    ("epoch", Value::U64(done)),
                    ("train_loss", Value::F64(tl as f64)),
                    (
                        // A missing validation set serializes as null
                        // (non-finite F64s are written as JSON null).
                        "val_loss",
                        val_losses
                            .last()
                            .map_or(Value::F64(f64::NAN), |&v| Value::F64(v as f64)),
                    ),
                    ("rollbacks", Value::U64(rollbacks as u64)),
                    ("secs", Value::F64(secs_before + started.elapsed_secs())),
                ],
            );
            cts_obs::emit_epoch_rows(done);
            cts_tensor::metrics::emit_epoch_rows(done);
        }
        if stop {
            break;
        }
    }

    let completed = train_losses.len().max(1) as f64;
    Ok(TrainReport {
        train_losses,
        val_losses,
        best_epoch,
        secs_per_epoch: (secs_before + started.elapsed_secs()) / completed,
        rollbacks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Linear;
    use cts_autograd::{Parameter, Var};
    use cts_tensor::init;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    /// A one-layer model: mean over history, then a linear map per node.
    struct TinyModel {
        lin: Linear,
        q: usize,
    }

    impl Forecaster for TinyModel {
        fn forward(&self, tape: &Tape, x: &Var) -> Var {
            // x: [B,N,P,F] -> mean over P -> [B,N,F] -> linear -> [B,N,Q]
            let pooled = x.mean_axis(2, false);
            self.lin.forward(tape, &pooled)
        }
        fn parameters(&self) -> Vec<Parameter> {
            self.lin.parameters()
        }
        fn name(&self) -> &str {
            "tiny"
        }
        fn set_training(&self, _t: bool) {}
    }

    fn toy_batches(rng: &mut impl Rng, n_batches: usize) -> Vec<(Tensor, Tensor)> {
        // target = 2 * mean(history) + 1, one-step horizon
        (0..n_batches)
            .map(|_| {
                let x = init::uniform(rng, [4, 3, 5, 1], 0.0, 1.0);
                let mut y = Tensor::zeros([4, 3, 1]);
                for b in 0..4 {
                    for n in 0..3 {
                        let mean: f32 =
                            (0..5).map(|t| x.at(&[b, n, t, 0])).sum::<f32>() / 5.0;
                        *y.at_mut(&[b, n, 0]) = 2.0 * mean + 1.0;
                    }
                }
                (x, y)
            })
            .collect()
    }

    fn tiny_model(seed: u64) -> TinyModel {
        let mut rng = SmallRng::seed_from_u64(seed);
        TinyModel {
            lin: Linear::new(&mut rng, "lin", 1, 1, true),
            q: 1,
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = SmallRng::seed_from_u64(0);
        let model = TinyModel {
            lin: Linear::new(&mut rng, "lin", 1, 1, true),
            q: 1,
        };
        let _ = model.q;
        let batches = toy_batches(&mut rng, 16);
        let cfg = TrainConfig {
            epochs: 40,
            lr: 0.05,
            weight_decay: 0.0,
            loss: LossKind::Mse,
            ..Default::default()
        };
        let report = train_full(&model, &batches, None, &cfg).unwrap();
        let first = report.train_losses[0];
        let last = *report.train_losses.last().unwrap();
        assert!(last < first * 0.05, "loss {first} -> {last}");
    }

    #[test]
    fn early_stopping_halts() {
        let mut rng = SmallRng::seed_from_u64(1);
        let model = TinyModel {
            lin: Linear::new(&mut rng, "lin", 1, 1, true),
            q: 1,
        };
        let batches = toy_batches(&mut rng, 4);
        // Validation on unrelated random targets: no improvement possible
        // after initial epochs, so patience must kick in.
        let val: Vec<(Tensor, Tensor)> = batches
            .iter()
            .map(|(x, y)| (x.clone(), y.map(|v| -v)))
            .collect();
        let cfg = TrainConfig {
            epochs: 100,
            lr: 0.05,
            weight_decay: 0.0,
            loss: LossKind::Mse,
            patience: 3,
            ..Default::default()
        };
        let report = train_full(&model, &batches, Some(&val), &cfg).unwrap();
        assert!(report.train_losses.len() < 100, "never stopped early");
    }

    #[test]
    fn kill_and_resume_matches_uninterrupted_run() {
        let dir = std::env::temp_dir().join("cts_train_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("run.ckpt");
        std::fs::remove_file(&ckpt).ok();

        let mut rng = SmallRng::seed_from_u64(7);
        let batches = toy_batches(&mut rng, 6);
        let cfg = TrainConfig {
            epochs: 10,
            lr: 0.05,
            weight_decay: 0.0,
            loss: LossKind::Mse,
            checkpoint: Some(CheckpointConfig::new(&ckpt)),
            ..Default::default()
        };

        // Reference: uninterrupted run.
        let reference = train_full(&tiny_model(3), &batches, None, &TrainConfig {
            checkpoint: None,
            ..cfg.clone()
        })
        .unwrap();

        // Kill mid-epoch 4 (6 batches/epoch -> step 27 is inside epoch 4).
        fault::arm(fault::FaultPlan { abort_at_step: Some(27), ..fault::FaultPlan::default() });
        let err = train_full(&tiny_model(3), &batches, None, &cfg).unwrap_err();
        fault::disarm();
        assert!(matches!(err, TrainError::Interrupted { .. }), "{err}");

        // Resume into a *fresh* model: must complete and match bit-for-bit.
        let resumed = train_full(&tiny_model(99), &batches, None, &cfg).unwrap();
        assert_eq!(resumed.train_losses.len(), reference.train_losses.len());
        for (a, b) in resumed.train_losses.iter().zip(&reference.train_losses) {
            assert_eq!(a.to_bits(), b.to_bits(), "loss traces diverge");
        }
        std::fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn mid_epoch_kill_and_resume_matches_uninterrupted_run() {
        let dir = std::env::temp_dir().join("cts_train_midepoch_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("run.ckpt");
        std::fs::remove_file(&ckpt).ok();

        let mut rng = SmallRng::seed_from_u64(11);
        let batches = toy_batches(&mut rng, 6);
        let cfg = TrainConfig {
            epochs: 4,
            lr: 0.05,
            weight_decay: 0.0,
            loss: LossKind::Mse,
            checkpoint: Some(CheckpointConfig::new(&ckpt).every_steps(4)),
            ..Default::default()
        };

        // Reference: uninterrupted run.
        let reference = train_full(&tiny_model(3), &batches, None, &TrainConfig {
            checkpoint: None,
            ..cfg.clone()
        })
        .unwrap();

        // Kill at step 9: the last mid-epoch checkpoint landed at step 8,
        // two batches into epoch 1, so the resume loses exactly one step.
        fault::arm(fault::FaultPlan { abort_at_step: Some(9), ..fault::FaultPlan::default() });
        let err = train_full(&tiny_model(3), &batches, None, &cfg).unwrap_err();
        fault::disarm();
        assert!(matches!(err, TrainError::Interrupted { .. }), "{err}");

        // The on-disk state really is mid-epoch, not an epoch boundary.
        let rs = load_run_state(&ckpt).unwrap();
        let me = rs.mid_epoch.expect("mid-epoch chunk present");
        assert_eq!((rs.counters.epoch, rs.counters.step, me.batch), (1, 8, 2));

        // Resume into a *fresh* model: finishes epoch 1 from batch 2 and
        // must reproduce the uninterrupted loss trace bit-for-bit.
        let resumed = train_full(&tiny_model(99), &batches, None, &cfg).unwrap();
        assert_eq!(resumed.train_losses.len(), reference.train_losses.len());
        for (a, b) in resumed.train_losses.iter().zip(&reference.train_losses) {
            assert_eq!(a.to_bits(), b.to_bits(), "loss traces diverge");
        }
        std::fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn watchdog_recovers_from_nan_gradients() {
        let mut rng = SmallRng::seed_from_u64(21);
        let batches = toy_batches(&mut rng, 4);
        let cfg = TrainConfig {
            epochs: 8,
            lr: 0.05,
            weight_decay: 0.0,
            loss: LossKind::Mse,
            ..Default::default()
        };
        fault::arm(fault::FaultPlan { nan_grad_at_step: Some(9), ..fault::FaultPlan::default() });
        let report = train_full(&tiny_model(5), &batches, None, &cfg).unwrap();
        fault::disarm();
        assert_eq!(report.rollbacks, 1);
        assert_eq!(report.train_losses.len(), 8);
        assert!(report.train_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn watchdog_budget_exhaustion_is_typed_error() {
        let mut rng = SmallRng::seed_from_u64(22);
        let batches = toy_batches(&mut rng, 2);
        // NaN every retry: the built-in one-shot trigger only fires once,
        // so force divergence with an absurd LR instead (loss overflows to
        // infinity almost immediately).
        let cfg = TrainConfig {
            epochs: 50,
            lr: 1e30,
            weight_decay: 0.0,
            loss: LossKind::Mse,
            watchdog: WatchdogConfig { max_retries: 2, ..Default::default() },
            ..Default::default()
        };
        match train_full(&tiny_model(6), &batches, None, &cfg) {
            Err(TrainError::Diverged { retries, .. }) => assert_eq!(retries, 2),
            other => panic!("expected Diverged, got {other:?}"),
        }
    }
}
