//! Optimisers: Adam (with L2 weight decay, as used for both the architecture
//! parameters Θ and the network weights w in §4.1.4) and SGD.

use crate::checkpoint::{CheckpointError, OptimizerState};
use cts_autograd::Parameter;
use cts_tensor::Tensor;

/// Common optimiser interface.
pub trait Optimizer {
    /// Apply one update from the accumulated gradients, then zero them.
    fn step(&mut self);
    /// Zero all gradients without updating.
    fn zero_grad(&self);
    /// The parameters this optimiser owns.
    fn params(&self) -> &[Parameter];
    /// Current learning rate.
    fn lr(&self) -> f32;
    /// Override the learning rate (schedules).
    fn set_lr(&mut self, lr: f32);
}

/// Adam with decoupled-from-nothing classic L2 weight decay added to the
/// gradient (as in the paper's PyTorch `Adam(weight_decay=…)`).
pub struct Adam {
    params: Vec<Parameter>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the paper's default momentum `(0.9, 0.999)`.
    pub fn new(params: Vec<Parameter>, lr: f32, weight_decay: f32) -> Self {
        Self::with_betas(params, lr, weight_decay, 0.9, 0.999)
    }

    /// Adam for the architecture parameters Θ (momentum `(0.5, 0.999)`,
    /// §4.1.4).
    pub fn for_architecture(params: Vec<Parameter>, lr: f32, weight_decay: f32) -> Self {
        Self::with_betas(params, lr, weight_decay, 0.5, 0.999)
    }

    /// Fully customised Adam.
    pub fn with_betas(
        params: Vec<Parameter>,
        lr: f32,
        weight_decay: f32,
        beta1: f32,
        beta2: f32,
    ) -> Self {
        let m = params.iter().map(|p| Tensor::zeros(p.shape())).collect();
        let v = params.iter().map(|p| Tensor::zeros(p.shape())).collect();
        Self {
            params,
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m,
            v,
        }
    }

    /// Snapshot the full optimizer state (step count, learning rate, and
    /// both moment buffers) for checkpointing, under `name`.
    pub fn export_state(&self, name: &str) -> OptimizerState {
        OptimizerState {
            name: name.to_string(),
            t: self.t,
            lr: self.lr,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restore a state captured by [`Adam::export_state`].
    ///
    /// # Errors
    /// Fails when the moment buffers do not match this optimizer's
    /// parameter count or shapes.
    pub fn import_state(&mut self, state: &OptimizerState) -> Result<(), CheckpointError> {
        if state.m.len() != self.params.len() || state.v.len() != self.params.len() {
            return Err(CheckpointError::Incompatible(format!(
                "optimizer {:?}: checkpoint has {}/{} moment buffers, model needs {}",
                state.name,
                state.m.len(),
                state.v.len(),
                self.params.len()
            )));
        }
        for (i, p) in self.params.iter().enumerate() {
            let shape = p.shape();
            if state.m[i].shape() != shape || state.v[i].shape() != shape {
                return Err(CheckpointError::Incompatible(format!(
                    "optimizer {:?}: moment shape mismatch at parameter {} ({})",
                    state.name,
                    i,
                    p.name()
                )));
            }
        }
        self.t = state.t;
        self.lr = state.lr;
        self.m = state.m.clone();
        self.v = state.v.clone();
        Ok(())
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            let grad = p.grad().clone();
            let mut value = p.value_mut();
            let m = self.m[i].data_mut();
            let v = self.v[i].data_mut();
            for (((w, &g0), mi), vi) in value
                .data_mut()
                .iter_mut()
                .zip(grad.data().iter())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                let g = g0 + self.weight_decay * *w;
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            drop(grad);
            drop(value);
            p.zero_grad();
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn params(&self) -> &[Parameter] {
        &self.params
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Plain stochastic gradient descent with optional L2 weight decay.
pub struct Sgd {
    params: Vec<Parameter>,
    lr: f32,
    weight_decay: f32,
}

impl Sgd {
    /// SGD over `params`.
    pub fn new(params: Vec<Parameter>, lr: f32, weight_decay: f32) -> Self {
        Self {
            params,
            lr,
            weight_decay,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for p in &self.params {
            let grad = p.grad().clone();
            let mut value = p.value_mut();
            for (w, &g) in value.data_mut().iter_mut().zip(grad.data().iter()) {
                *w -= self.lr * (g + self.weight_decay * *w);
            }
            drop(grad);
            drop(value);
            p.zero_grad();
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn params(&self) -> &[Parameter] {
        &self.params
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Global L2 norm of all gradients.
pub fn global_grad_norm(params: &[Parameter]) -> f32 {
    params
        .iter()
        .map(|p| {
            let g = p.grad();
            g.data().iter().map(|x| x * x).sum::<f32>()
        })
        .sum::<f32>()
        .sqrt()
}

/// Clip gradients to a maximum global norm; returns the pre-clip norm.
pub fn clip_grad_norm(params: &[Parameter], max_norm: f32) -> f32 {
    let norm = global_grad_norm(params);
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            p.grad_mut().scale_inplace(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_autograd::Tape;

    fn quadratic_step(p: &Parameter) {
        // loss = (x - 3)^2 summed
        let tape = Tape::new();
        let x = tape.param(p);
        let loss = x.add_scalar(-3.0).square().sum_all();
        tape.backward(&loss);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = Parameter::new("x", Tensor::zeros([4]));
        let mut opt = Sgd::new(vec![p.clone()], 0.1, 0.0);
        for _ in 0..100 {
            quadratic_step(&p);
            opt.step();
        }
        for v in p.value().data() {
            assert!((v - 3.0).abs() < 1e-3, "got {v}");
        }
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = Parameter::new("x", Tensor::zeros([4]));
        let mut opt = Adam::new(vec![p.clone()], 0.2, 0.0);
        for _ in 0..200 {
            quadratic_step(&p);
            opt.step();
        }
        for v in p.value().data() {
            assert!((v - 3.0).abs() < 1e-2, "got {v}");
        }
    }

    #[test]
    fn weight_decay_shrinks_solution() {
        let free = Parameter::new("a", Tensor::zeros([1]));
        let decayed = Parameter::new("b", Tensor::zeros([1]));
        let mut o1 = Adam::new(vec![free.clone()], 0.1, 0.0);
        let mut o2 = Adam::new(vec![decayed.clone()], 0.1, 0.5);
        for _ in 0..300 {
            quadratic_step(&free);
            o1.step();
            quadratic_step(&decayed);
            o2.step();
        }
        assert!(decayed.value().item() < free.value().item() - 0.1);
    }

    #[test]
    fn step_resets_gradients() {
        let p = Parameter::new("x", Tensor::zeros([2]));
        let mut opt = Adam::new(vec![p.clone()], 0.01, 0.0);
        quadratic_step(&p);
        assert!(p.grad().norm() > 0.0);
        opt.step();
        assert_eq!(p.grad().norm(), 0.0);
    }

    #[test]
    fn clip_caps_global_norm() {
        let p = Parameter::new("x", Tensor::zeros([3]));
        p.grad_mut().fill(10.0);
        let pre = clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert!(pre > 17.0);
        assert!((global_grad_norm(&[p]) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn adam_state_roundtrip_resumes_identically() {
        // Two optimizers over identical parameters; export/import after k
        // steps must make further trajectories bit-identical.
        let p1 = Parameter::new("x", Tensor::zeros([4]));
        let p2 = Parameter::new("x", Tensor::zeros([4]));
        let mut o1 = Adam::new(vec![p1.clone()], 0.2, 0.01);
        // Same decay (config, not state) but different starting LR: the
        // imported state carries the LR.
        let mut o2 = Adam::new(vec![p2.clone()], 0.05, 0.01);
        for _ in 0..7 {
            quadratic_step(&p1);
            o1.step();
        }
        p2.set_value(p1.value().clone());
        o2.import_state(&o1.export_state("main")).unwrap();
        assert_eq!(o2.lr(), 0.2);
        for _ in 0..5 {
            quadratic_step(&p1);
            o1.step();
            quadratic_step(&p2);
            o2.step();
        }
        assert_eq!(p1.value().data(), p2.value().data());
    }

    #[test]
    fn adam_import_rejects_wrong_shapes() {
        let p = Parameter::new("x", Tensor::zeros([4]));
        let mut opt = Adam::new(vec![p], 0.1, 0.0);
        let bad = OptimizerState {
            name: "main".into(),
            t: 1,
            lr: 0.1,
            m: vec![Tensor::zeros([5])],
            v: vec![Tensor::zeros([5])],
        };
        assert!(opt.import_state(&bad).is_err());
    }

    #[test]
    fn architecture_adam_uses_beta_half() {
        let p = Parameter::new("x", Tensor::zeros([1]));
        let opt = Adam::for_architecture(vec![p], 3e-4, 1e-3);
        assert_eq!(opt.beta1, 0.5);
    }
}
