//! Temporal convolution layers over `[B, N, T, D]` activations.

use cts_autograd::{Parameter, Tape, Var};
use cts_tensor::{init, ops, Tensor};
use rand::Rng;

/// Dilated causal temporal convolution with optional bias.
pub struct TemporalConvLayer {
    kernel: Parameter,
    bias: Option<Parameter>,
    dilation: usize,
}

impl TemporalConvLayer {
    /// Create a layer with kernel `[k, d_in, d_out]` and the given dilation.
    pub fn new(
        rng: &mut impl Rng,
        name: &str,
        k: usize,
        d_in: usize,
        d_out: usize,
        dilation: usize,
        bias: bool,
    ) -> Self {
        let kernel = Parameter::new(
            format!("{name}.kernel"),
            init::xavier_uniform(rng, [k, d_in, d_out], k * d_in, d_out),
        );
        let bias = bias.then(|| Parameter::new(format!("{name}.bias"), Tensor::zeros([d_out])));
        Self {
            kernel,
            bias,
            dilation,
        }
    }

    /// Apply to `[B, N, T, d_in]`, producing `[B, N, T, d_out]`.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let w = tape.param(&self.kernel);
        let y = x.temporal_conv(&w, self.dilation);
        match &self.bias {
            Some(b) => y.add(&tape.param(b)),
            None => y,
        }
    }

    /// Tape-free forward: same kernels as [`Self::forward`], bit-identical.
    pub fn forward_eval(&self, x: &Tensor) -> Tensor {
        let y = ops::temporal_conv(x, &self.kernel.value(), self.dilation);
        match &self.bias {
            Some(b) => ops::add(&y, &b.value()),
            None => y,
        }
    }

    /// Parameters of this layer.
    pub fn parameters(&self) -> Vec<Parameter> {
        let mut v = vec![self.kernel.clone()];
        if let Some(b) = &self.bias {
            v.push(b.clone());
        }
        v
    }
}

/// The gated dilated causal convolution (GDCC) of Table 1, Eq. 9:
/// `H = tanh(Z * W1) ⊙ σ(Z * W2)`.
pub struct GatedTemporalConv {
    filter: TemporalConvLayer,
    gate: TemporalConvLayer,
}

impl GatedTemporalConv {
    /// GDCC with kernel size `k` and the given dilation.
    pub fn new(
        rng: &mut impl Rng,
        name: &str,
        k: usize,
        d_in: usize,
        d_out: usize,
        dilation: usize,
    ) -> Self {
        Self {
            filter: TemporalConvLayer::new(rng, &format!("{name}.filter"), k, d_in, d_out, dilation, true),
            gate: TemporalConvLayer::new(rng, &format!("{name}.gate"), k, d_in, d_out, dilation, true),
        }
    }

    /// Apply the gated convolution.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let f = self.filter.forward(tape, x).tanh();
        let g = self.gate.forward(tape, x).sigmoid();
        f.mul(&g)
    }

    /// Tape-free forward mirroring [`Self::forward`] kernel for kernel.
    pub fn forward_eval(&self, x: &Tensor) -> Tensor {
        let f = ops::tanh(&self.filter.forward_eval(x));
        let g = ops::sigmoid(&self.gate.forward_eval(x));
        ops::mul(&f, &g)
    }

    /// Parameters of both branches.
    pub fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.filter.parameters();
        v.extend(self.gate.parameters());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn conv_layer_shapes() {
        let mut rng = SmallRng::seed_from_u64(0);
        let layer = TemporalConvLayer::new(&mut rng, "c", 2, 3, 8, 2, true);
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones([2, 4, 6, 3]));
        let y = layer.forward(&tape, &x);
        assert_eq!(y.shape(), vec![2, 4, 6, 8]);
        assert_eq!(layer.parameters().len(), 2);
    }

    #[test]
    fn gdcc_bounded_by_gate() {
        // tanh ∈ (-1,1) and sigmoid ∈ (0,1), so |output| < 1 elementwise.
        let mut rng = SmallRng::seed_from_u64(1);
        let g = GatedTemporalConv::new(&mut rng, "g", 2, 2, 4, 1);
        let tape = Tape::new();
        let x = tape.constant(init::uniform(&mut rng, [1, 3, 5, 2], -3.0, 3.0));
        let y = g.forward(&tape, &x).value();
        assert!(y.max() < 1.0 && y.min() > -1.0);
    }

    #[test]
    fn gdcc_gradients_flow() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = GatedTemporalConv::new(&mut rng, "g", 2, 2, 2, 1);
        let tape = Tape::new();
        let x = tape.constant(init::uniform(&mut rng, [1, 2, 4, 2], -1.0, 1.0));
        let loss = g.forward(&tape, &x).square().sum_all();
        tape.backward(&loss);
        for p in g.parameters() {
            assert!(p.grad().norm() > 0.0, "no grad for {}", p.name());
        }
    }
}
