//! Multi-head attention: splits the channel dimension into `h` heads that
//! attend independently (Vaswani et al. 2017). The AutoCTS operator set
//! uses single-head attention (Eqs. 12–17 are written single-head), but
//! ST-GRAT-style models and user-defined operators want heads.

use crate::{prob_sparse_attention, scaled_dot_attention, AttentionKind, Linear};
use cts_autograd::{Parameter, Tape, Var};
use rand::Rng;

/// Multi-head self-attention over `[B', L, D]` with `D % heads == 0`.
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    d_head: usize,
    kind: AttentionKind,
}

impl MultiHeadAttention {
    /// Build with model width `d` split across `heads` heads.
    pub fn new(rng: &mut impl Rng, name: &str, d: usize, heads: usize, kind: AttentionKind) -> Self {
        assert!(heads >= 1 && d.is_multiple_of(heads), "d={d} not divisible by heads={heads}");
        Self {
            wq: Linear::new(rng, &format!("{name}.wq"), d, d, false),
            wk: Linear::new(rng, &format!("{name}.wk"), d, d, false),
            wv: Linear::new(rng, &format!("{name}.wv"), d, d, false),
            wo: Linear::new(rng, &format!("{name}.wo"), d, d, false),
            heads,
            d_head: d / heads,
            kind,
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// `[B', L, D] → [B'·h, L, D/h]`.
    fn split_heads(&self, x: &Var) -> Var {
        let s = x.shape(); // [B, L, D]
        x.reshape(&[s[0], s[1], self.heads, self.d_head])
            .permute(&[0, 2, 1, 3]) // [B, h, L, dh]
            .reshape(&[s[0] * self.heads, s[1], self.d_head])
    }

    /// Inverse of [`Self::split_heads`].
    fn merge_heads(&self, x: &Var, b: usize, l: usize) -> Var {
        x.reshape(&[b, self.heads, l, self.d_head])
            .permute(&[0, 2, 1, 3])
            .reshape(&[b, l, self.heads * self.d_head])
    }

    /// Self-attention with independent heads.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let s = x.shape();
        let (b, l) = (s[0], s[1]);
        let q = self.split_heads(&self.wq.forward(tape, x));
        let k = self.split_heads(&self.wk.forward(tape, x));
        let v = self.split_heads(&self.wv.forward(tape, x));
        let attended = match self.kind {
            AttentionKind::Full => scaled_dot_attention(tape, &q, &k, &v, None),
            AttentionKind::ProbSparse { factor } => prob_sparse_attention(tape, &q, &k, &v, factor),
        };
        let merged = self.merge_heads(&attended, b, l);
        self.wo.forward(tape, &merged)
    }

    /// All projection parameters.
    pub fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.wq.parameters();
        v.extend(self.wk.parameters());
        v.extend(self.wv.parameters());
        v.extend(self.wo.parameters());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_tensor::init;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn shape_preserved_for_various_head_counts() {
        let mut rng = SmallRng::seed_from_u64(0);
        for heads in [1usize, 2, 4] {
            let mha = MultiHeadAttention::new(&mut rng, "mha", 8, heads, AttentionKind::Full);
            let tape = Tape::new();
            let x = tape.constant(init::uniform(&mut rng, [2, 6, 8], -1.0, 1.0));
            let y = mha.forward(&tape, &x);
            assert_eq!(y.shape(), vec![2, 6, 8], "heads={heads}");
            assert_eq!(mha.heads(), heads);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_non_divisible_heads() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = MultiHeadAttention::new(&mut rng, "mha", 10, 3, AttentionKind::Full);
    }

    #[test]
    fn split_merge_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mha = MultiHeadAttention::new(&mut rng, "mha", 8, 2, AttentionKind::Full);
        let tape = Tape::new();
        let x = tape.constant(init::uniform(&mut rng, [3, 5, 8], -1.0, 1.0));
        let back = mha.merge_heads(&mha.split_heads(&x), 3, 5);
        assert!(back.value().approx_eq(&x.value(), 1e-6));
    }

    #[test]
    fn gradients_reach_all_projections() {
        let mut rng = SmallRng::seed_from_u64(3);
        for kind in [AttentionKind::Full, AttentionKind::ProbSparse { factor: 1.0 }] {
            let mha = MultiHeadAttention::new(&mut rng, "mha", 8, 2, kind);
            let tape = Tape::new();
            let x = tape.constant(init::uniform(&mut rng, [2, 10, 8], -1.0, 1.0));
            let loss = mha.forward(&tape, &x).square().sum_all();
            tape.backward(&loss);
            for p in mha.parameters() {
                assert!(p.grad().norm() > 0.0, "{kind:?}: no grad for {}", p.name());
            }
        }
    }

    #[test]
    fn heads_attend_independently() {
        // With 2 heads, zeroing the second half of channels must leave the
        // first head's value stream information intact (distinct behaviour
        // from single-head, where Q/K mixing spans all channels).
        let mut rng = SmallRng::seed_from_u64(4);
        let mha = MultiHeadAttention::new(&mut rng, "mha", 4, 2, AttentionKind::Full);
        let tape = Tape::new();
        let x = tape.constant(init::uniform(&mut rng, [1, 4, 4], -1.0, 1.0));
        let y1 = mha.forward(&tape, &x).value();
        assert!(!y1.has_non_finite());
    }
}
