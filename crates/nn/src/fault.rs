//! Fault-injection hooks for testing the fault-tolerant runtime.
//!
//! Production code never arms a plan, so the default is fully inert —
//! each check is one thread-local read. Tests arm a [`FaultPlan`] on
//! their own thread, run a training/search loop, and observe the
//! recovery path: a simulated crash ([`FaultPlan::abort_at_step`]), or a
//! NaN blast into the gradients ([`FaultPlan::nan_grad_at_step`]).
//!
//! Triggers are one-shot: once fired they clear themselves, so a
//! watchdog rollback that replays the same global step does not re-fire
//! the fault (mirroring a transient hardware/numerical event).

use cts_autograd::Parameter;
use std::cell::RefCell;

/// Scheduled faults for the current thread's next training run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Simulate a crash (kill -9) when the loop reaches this global
    /// step: the loop returns `Interrupted` without stepping further.
    pub abort_at_step: Option<u64>,
    /// Overwrite gradients with NaN right after backward at this global
    /// step, before the watchdog's health check.
    pub nan_grad_at_step: Option<u64>,
}

thread_local! {
    static PLAN: RefCell<FaultPlan> = RefCell::new(FaultPlan::default());
}

/// Arm a fault plan for this thread. Replaces any previous plan.
pub fn arm(plan: FaultPlan) {
    PLAN.with(|p| *p.borrow_mut() = plan);
}

/// Clear all pending faults on this thread.
pub fn disarm() {
    arm(FaultPlan::default());
}

/// One-shot check: should the loop simulate a crash at `step`?
pub fn take_abort(step: u64) -> bool {
    PLAN.with(|p| {
        let mut plan = p.borrow_mut();
        if plan.abort_at_step == Some(step) {
            plan.abort_at_step = None;
            true
        } else {
            false
        }
    })
}

/// One-shot check: should gradients be poisoned at `step`?
pub fn take_nan_grad(step: u64) -> bool {
    PLAN.with(|p| {
        let mut plan = p.borrow_mut();
        if plan.nan_grad_at_step == Some(step) {
            plan.nan_grad_at_step = None;
            true
        } else {
            false
        }
    })
}

/// Overwrite the first gradient buffer's leading element with NaN —
/// exactly the kind of single poisoned value a watchdog must catch
/// before it reaches the optimizer.
pub fn poison_gradients(params: &[Parameter]) {
    if let Some(p) = params.first() {
        if let Some(g0) = p.grad_mut().data_mut().first_mut() {
            *g0 = f32::NAN;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_tensor::Tensor;

    #[test]
    fn triggers_are_one_shot() {
        arm(FaultPlan { abort_at_step: Some(3), nan_grad_at_step: Some(5) });
        assert!(!take_abort(2));
        assert!(take_abort(3));
        assert!(!take_abort(3), "abort re-fired");
        assert!(take_nan_grad(5));
        assert!(!take_nan_grad(5), "nan re-fired");
        disarm();
    }

    #[test]
    fn poison_writes_nan() {
        let p = Parameter::new("w", Tensor::zeros([3]));
        poison_gradients(std::slice::from_ref(&p));
        assert!(p.grad().data()[0].is_nan());
    }
}
