//! Fault-injection hooks for testing the fault-tolerant runtime.
//!
//! Production code never arms a plan, so the default is fully inert —
//! each check is one thread-local read. Tests arm a [`FaultPlan`] on
//! their own thread, run a training/search loop, and observe the
//! recovery path: a simulated crash ([`FaultPlan::abort_at_step`]), or a
//! NaN blast into the gradients ([`FaultPlan::nan_grad_at_step`]).
//!
//! Triggers are one-shot: once fired they clear themselves, so a
//! watchdog rollback that replays the same global step does not re-fire
//! the fault (mirroring a transient hardware/numerical event).

use cts_autograd::Parameter;
use std::cell::RefCell;

/// Scheduled faults for the current thread's next training run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Simulate a crash (kill -9) when the loop reaches this global
    /// step: the loop returns `Interrupted` without stepping further.
    pub abort_at_step: Option<u64>,
    /// Overwrite gradients with NaN right after backward at this global
    /// step, before the watchdog's health check.
    pub nan_grad_at_step: Option<u64>,
    /// Serving path: make compiled-plan execution fail (as if a kernel
    /// aborted) at this 0-indexed plan run on the current thread.
    /// One-shot, like the training triggers.
    pub fail_plan_run_at: Option<u64>,
    /// Serving path: fail the next N plan runs unconditionally — used to
    /// exhaust the solo-retry budget and force deeper ladder rungs.
    pub fail_next_plan_runs: u64,
    /// Serving path: poison the output of this 0-indexed plan run with a
    /// NaN (a numerically-broken batch that execution itself survives).
    pub nan_output_at_run: Option<u64>,
    /// Serving path: sleep `(millis)` inside this 0-indexed plan run —
    /// models a slow kernel so deadline re-checks mid-flush can be tested
    /// deterministically. One-shot, like the other triggers.
    pub slow_plan_run_at: Option<(u64, u64)>,
}

thread_local! {
    static PLAN: RefCell<FaultPlan> = RefCell::new(FaultPlan::default());
    /// Plan runs observed on this thread since the last [`arm`].
    static PLAN_RUNS: RefCell<u64> = const { RefCell::new(0) };
    /// Largest row count any single plan run received since [`arm`] —
    /// lets tests prove no coalesced batch ever exceeded the cap.
    static MAX_BATCH_ROWS: RefCell<usize> = const { RefCell::new(0) };
}

/// Arm a fault plan for this thread. Replaces any previous plan and
/// zeroes the plan-run counter/stats so run indices are relative to the
/// arming point.
pub fn arm(plan: FaultPlan) {
    PLAN.with(|p| *p.borrow_mut() = plan);
    PLAN_RUNS.with(|r| *r.borrow_mut() = 0);
    MAX_BATCH_ROWS.with(|m| *m.borrow_mut() = 0);
}

/// Clear all pending faults on this thread.
pub fn disarm() {
    arm(FaultPlan::default());
}

/// One-shot check: should the loop simulate a crash at `step`?
pub fn take_abort(step: u64) -> bool {
    PLAN.with(|p| {
        let mut plan = p.borrow_mut();
        if plan.abort_at_step == Some(step) {
            plan.abort_at_step = None;
            true
        } else {
            false
        }
    })
}

/// One-shot check: should gradients be poisoned at `step`?
pub fn take_nan_grad(step: u64) -> bool {
    PLAN.with(|p| {
        let mut plan = p.borrow_mut();
        if plan.nan_grad_at_step == Some(step) {
            plan.nan_grad_at_step = None;
            true
        } else {
            false
        }
    })
}

/// Verdict for one compiled-plan execution, from [`next_plan_run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeFault {
    /// Run normally.
    None,
    /// Fail this run as if a kernel aborted mid-execution.
    FailRun,
    /// Run normally but poison the output with a NaN afterwards.
    NanOutput,
}

/// Serving-path hook, called once at the top of every compiled-plan
/// execution with the number of request rows in the batch. Advances the
/// per-thread run counter, records the largest batch seen, and returns
/// the fault (if any) scheduled for this run index. Inert in production:
/// two thread-local bumps and a read.
pub fn next_plan_run(rows: usize) -> ServeFault {
    let run = PLAN_RUNS.with(|r| {
        let mut r = r.borrow_mut();
        let cur = *r;
        *r += 1;
        cur
    });
    MAX_BATCH_ROWS.with(|m| {
        let mut m = m.borrow_mut();
        if rows > *m {
            *m = rows;
        }
    });
    let slow_ms = PLAN.with(|p| {
        let mut plan = p.borrow_mut();
        match plan.slow_plan_run_at {
            Some((at, ms)) if at == run => {
                plan.slow_plan_run_at = None;
                Some(ms)
            }
            _ => None,
        }
    });
    if let Some(ms) = slow_ms {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
    PLAN.with(|p| {
        let mut plan = p.borrow_mut();
        if plan.fail_plan_run_at == Some(run) {
            plan.fail_plan_run_at = None;
            return ServeFault::FailRun;
        }
        if plan.fail_next_plan_runs > 0 {
            plan.fail_next_plan_runs -= 1;
            return ServeFault::FailRun;
        }
        if plan.nan_output_at_run == Some(run) {
            plan.nan_output_at_run = None;
            return ServeFault::NanOutput;
        }
        ServeFault::None
    })
}

/// Plan runs observed on this thread since the last [`arm`].
pub fn plan_runs() -> u64 {
    PLAN_RUNS.with(|r| *r.borrow())
}

/// Largest per-run row count observed on this thread since the last
/// [`arm`] — the proptest witness that batching respects `max_batch`.
pub fn max_batch_rows() -> usize {
    MAX_BATCH_ROWS.with(|m| *m.borrow())
}

/// Overwrite the first gradient buffer's leading element with NaN —
/// exactly the kind of single poisoned value a watchdog must catch
/// before it reaches the optimizer.
pub fn poison_gradients(params: &[Parameter]) {
    if let Some(p) = params.first() {
        if let Some(g0) = p.grad_mut().data_mut().first_mut() {
            *g0 = f32::NAN;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_tensor::Tensor;

    #[test]
    fn triggers_are_one_shot() {
        arm(FaultPlan {
            abort_at_step: Some(3),
            nan_grad_at_step: Some(5),
            ..FaultPlan::default()
        });
        assert!(!take_abort(2));
        assert!(take_abort(3));
        assert!(!take_abort(3), "abort re-fired");
        assert!(take_nan_grad(5));
        assert!(!take_nan_grad(5), "nan re-fired");
        disarm();
    }

    #[test]
    fn plan_run_faults_fire_by_index_and_once() {
        arm(FaultPlan {
            fail_plan_run_at: Some(1),
            nan_output_at_run: Some(2),
            ..FaultPlan::default()
        });
        assert_eq!(next_plan_run(4), ServeFault::None);
        assert_eq!(next_plan_run(2), ServeFault::FailRun);
        assert_eq!(next_plan_run(8), ServeFault::NanOutput);
        assert_eq!(next_plan_run(1), ServeFault::None);
        assert_eq!(plan_runs(), 4);
        assert_eq!(max_batch_rows(), 8);
        // Re-arming zeroes the counter and stats.
        arm(FaultPlan::default());
        assert_eq!(plan_runs(), 0);
        assert_eq!(max_batch_rows(), 0);
        disarm();
    }

    #[test]
    fn slow_run_fires_once_at_its_index() {
        arm(FaultPlan {
            slow_plan_run_at: Some((1, 30)),
            ..FaultPlan::default()
        });
        let t0 = std::time::Instant::now();
        assert_eq!(next_plan_run(1), ServeFault::None);
        assert!(t0.elapsed().as_millis() < 25, "run 0 slowed early");
        let t1 = std::time::Instant::now();
        assert_eq!(next_plan_run(1), ServeFault::None);
        assert!(t1.elapsed().as_millis() >= 25, "run 1 was not slowed");
        let t2 = std::time::Instant::now();
        assert_eq!(next_plan_run(1), ServeFault::None);
        assert!(t2.elapsed().as_millis() < 25, "slow trigger re-fired");
        disarm();
    }

    #[test]
    fn fail_next_runs_exhausts_then_clears() {
        arm(FaultPlan {
            fail_next_plan_runs: 2,
            ..FaultPlan::default()
        });
        assert_eq!(next_plan_run(1), ServeFault::FailRun);
        assert_eq!(next_plan_run(1), ServeFault::FailRun);
        assert_eq!(next_plan_run(1), ServeFault::None);
        disarm();
    }

    #[test]
    fn poison_writes_nan() {
        let p = Parameter::new("w", Tensor::zeros([3]));
        poison_gradients(std::slice::from_ref(&p));
        assert!(p.grad().data()[0].is_nan());
    }
}
