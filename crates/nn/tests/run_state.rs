//! Property tests of the `CTSCKPT2` run-state format: random run states
//! round-trip bit-exactly, v1 checkpoints load as params-only run states,
//! and every strict prefix of a valid file is rejected as corrupt.

use cts_nn::checkpoint::{
    read_run_state, write_checkpoint, write_run_state, MidEpochState, OptimizerState, RunCounters,
    RunState, ScheduleState,
};
use cts_autograd::Parameter;
use cts_tensor::Tensor;
use proptest::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::io::Cursor;

fn arb_tensor(rng: &mut SmallRng) -> Tensor {
    let rank = rng.gen_range(0usize..=3);
    let shape: Vec<usize> = (0..rank).map(|_| rng.gen_range(1usize..=4)).collect();
    let numel = shape.iter().product::<usize>().max(1);
    let data: Vec<f32> = (0..numel).map(|_| rng.gen_range(-10.0f32..10.0)).collect();
    Tensor::from_vec(shape, data)
}

fn arb_optimizer(rng: &mut SmallRng, name: &str) -> OptimizerState {
    let buffers = rng.gen_range(0usize..=3);
    OptimizerState {
        name: name.to_string(),
        t: rng.gen_range(0u64..1_000_000),
        lr: rng.gen_range(1e-6f32..1.0),
        m: (0..buffers).map(|_| arb_tensor(rng)).collect(),
        v: (0..buffers).map(|_| arb_tensor(rng)).collect(),
    }
}

/// A random but fully-valid run state, deterministic in `seed`.
fn arb_run_state(seed: u64) -> RunState {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_params = rng.gen_range(0usize..=4);
    let params: Vec<(String, Tensor)> = (0..n_params)
        .map(|i| (format!("layer{i}.weight"), arb_tensor(&mut rng)))
        .collect();
    let n_opts = rng.gen_range(0usize..=2);
    let optimizers = (0..n_opts)
        .map(|i| arb_optimizer(&mut rng, if i == 0 { "arch" } else { "weight" }))
        .collect();
    let schedule = if rng.gen_range(0u32..2) == 1 {
        Some(ScheduleState {
            tau: rng.gen_range(1e-3f32..10.0),
            factor: rng.gen_range(0.1f32..1.0),
            min: rng.gen_range(1e-4f32..1e-2),
        })
    } else {
        None
    };
    let rng_state = if rng.gen_range(0u32..2) == 1 {
        let word = |rng: &mut SmallRng| rng.gen_range(0u64..u64::MAX);
        Some([word(&mut rng), word(&mut rng), word(&mut rng), 1u64]) // never all-zero
    } else {
        None
    };
    let n_trace = rng.gen_range(0usize..=3);
    let trace = (0..n_trace)
        .map(|_| {
            [
                rng.gen_range(0.0f32..5.0),
                rng.gen_range(0.0f32..5.0),
                rng.gen_range(0.0f32..5.0),
            ]
        })
        .collect();
    let losses = |rng: &mut SmallRng| {
        let n = rng.gen_range(0usize..=4);
        (0..n).map(|_| rng.gen_range(0.0f32..100.0)).collect::<Vec<f32>>()
    };
    RunState {
        params,
        optimizers,
        schedule,
        counters: RunCounters {
            epoch: rng.gen_range(0u64..100),
            step: rng.gen_range(0u64..10_000),
            best_epoch: rng.gen_range(0u64..100),
            stall: rng.gen_range(0u64..10),
            memory_scalars: rng.gen_range(0u64..1_000_000),
            best_val: rng.gen_range(0.0f32..100.0),
            last_val: rng.gen_range(0.0f32..100.0),
            secs: rng.gen_range(0.0f64..1e6),
        },
        rng: rng_state,
        trace,
        train_losses: losses(&mut rng),
        val_losses: losses(&mut rng),
        mid_epoch: if rng.gen_range(0u32..2) == 1 {
            Some(MidEpochState {
                batch: rng.gen_range(0u64..1_000),
                loss_sum: rng.gen_range(0.0f64..1e4),
            })
        } else {
            None
        },
    }
}

fn encode(rs: &RunState) -> Vec<u8> {
    let mut buf = Vec::new();
    write_run_state(&mut buf, rs).unwrap();
    buf
}

/// A legacy/hand-edited checkpoint carrying a τ below the schedule floor
/// must resume clamped to the floor, not below it — resuming below would
/// diverge from the trace a fresh run produces ([`cts_nn::TemperatureSchedule::step`]
/// never yields τ < min, so no legitimate checkpoint goes under).
#[test]
fn restoring_schedule_below_floor_clamps_to_floor() {
    let below_floor = ScheduleState {
        tau: 1e-6,
        factor: 0.9,
        min: 1e-3,
    };
    let mut sched = cts_nn::TemperatureSchedule::new(5.0, below_floor.factor, below_floor.min);
    sched.restore(below_floor.tau);
    assert_eq!(sched.tau(), below_floor.min, "resume must clamp up to the floor");
    // Annealing from the clamped state stays at the floor, exactly like a
    // fresh schedule that reached it.
    sched.step();
    assert_eq!(sched.tau(), below_floor.min);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    fn v2_round_trips_bit_exactly(seed in 0u64..1_000_000) {
        let rs = arb_run_state(seed);
        let bytes = encode(&rs);
        let back = read_run_state(Cursor::new(&bytes)).unwrap();
        prop_assert_eq!(back, rs);
    }

    fn v1_checkpoints_load_as_params_only_run_state(seed in 0u64..1_000_000) {
        let rs = arb_run_state(seed);
        let params: Vec<Parameter> = rs
            .params
            .iter()
            .map(|(name, t)| Parameter::new(name, t.clone()))
            .collect();
        let mut v1 = Vec::new();
        write_checkpoint(&mut v1, &params).unwrap();
        let back = read_run_state(Cursor::new(&v1)).unwrap();
        prop_assert_eq!(&back.params, &rs.params);
        prop_assert!(back.optimizers.is_empty());
        prop_assert!(back.schedule.is_none());
        prop_assert!(back.rng.is_none());
        prop_assert_eq!(back.counters, RunCounters::default());
    }

    fn every_truncation_is_rejected(seed in 0u64..1_000_000) {
        let rs = arb_run_state(seed);
        let bytes = encode(&rs);
        // Every strict prefix must fail typed — never load, never panic,
        // never allocate absurdly. Chunk boundaries are included since
        // every byte offset is.
        for len in 0..bytes.len() {
            prop_assert!(
                read_run_state(Cursor::new(&bytes[..len])).is_err(),
                "prefix of {len}/{} bytes was accepted",
                bytes.len()
            );
        }
    }

    fn trailing_garbage_is_rejected(seed in 0u64..1_000_000, extra in 1usize..16) {
        let rs = arb_run_state(seed);
        let mut bytes = encode(&rs);
        bytes.extend(std::iter::repeat_n(0xABu8, extra));
        prop_assert!(read_run_state(Cursor::new(&bytes)).is_err());
    }
}
