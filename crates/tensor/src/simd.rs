//! Explicit SIMD microkernels with bit-exact scalar fallbacks.
//!
//! Every hot kernel in [`crate::ops`] dispatches its innermost loops
//! through this module: AVX2 when the host has it, SSE2 otherwise (part
//! of the x86_64 baseline), and a plain scalar path everywhere else or
//! when `CTS_SIMD=off` is set. Dispatch is per kernel call, so the branch
//! is amortized over the whole inner loop, and the selected level is
//! process-wide ([`level`] / [`set_level`]).
//!
//! # Determinism contract
//!
//! Every vector kernel here vectorizes **across independent output
//! elements** (vertical lanes): lane `t` computes output element `j + t`
//! with the same strictly ascending scalar addition chain the scalar
//! kernel uses. Multiplies and adds stay separate instructions — never
//! FMA, which rounds once where mul+add rounds twice — division is IEEE
//! correctly rounded, and neg/abs are sign-bit operations. No single
//! element's chain is ever reassociated, so AVX2, SSE2, and scalar
//! results are bit-identical by construction, not merely close. SSE2
//! runs the same [`LANES`]-wide layout as two 4-wide halves; because the
//! lanes are independent elements, the grouping cannot change any bits.
//!
//! Where x86 min/max semantics leak (`maxps(a, b)` returns `b` when
//! either operand is NaN or both compare equal), the scalar forms in
//! [`UnOp::apply`] and the max kernels are pinned to the *same*
//! operand order (`if x > acc { x } else { acc }`), so NaN handling and
//! ±0 ties agree at every level.
//!
//! The one cross-lane combine, [`row_max`], reduces per-lane running
//! maxima through a fixed pairwise tree. Max is order-insensitive except
//! for the sign of equal zeros (and NaNs are ignored identically at
//! every level), and its only consumer — the softmax max-shift — feeds
//! the result into `exp(x - m)`, which cannot observe the sign of a zero
//! `m`. Sequential sums whose order a vector unit would have to change
//! (softmax's `z`, dot products, `logsumexp`) stay scalar in the ops
//! layer; they are not offered here.
//!
//! # Why `unsafe` lives here (and why only here)
//!
//! `core::arch` loads/stores take raw pointers, and calling a
//! `#[target_feature]` function requires asserting the feature is
//! present. Both obligations are discharged locally: every kernel
//! asserts its slice bounds before touching a pointer, and the AVX2/SSE2
//! entry points are only reachable through [`level`], which has verified
//! the host feature. The crate is `deny(unsafe_code)`; this module and
//! [`crate::pool`] are the only opt-outs, enforced by
//! `scripts/lint_forbidden.sh` rule 8.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};

/// Canonical vector width (f32 lanes) declared by vectorized kernels.
pub const LANES: usize = 8;

/// Max reduced-axes rank [`reduce_lanes8`] can walk with its fixed-size
/// odometer (callers fall back to their scalar loop above this).
pub const MAX_RDIMS: usize = 8;

/// Instruction-set level the kernels dispatch on. Ordered: `Scalar <
/// Sse2 < Avx2`, so requested levels clamp to the host with `min`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Pure scalar loops (always available; the reference behaviour).
    Scalar,
    /// 128-bit SSE2 (x86_64 baseline).
    Sse2,
    /// 256-bit AVX2 (runtime-detected).
    Avx2,
}

impl SimdLevel {
    /// Stable lowercase name used in bench/report columns.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// Atomic encoding: 0 = unset, else `enc(level)`.
const UNSET: u8 = 0;

fn enc(l: SimdLevel) -> u8 {
    match l {
        SimdLevel::Scalar => 1,
        SimdLevel::Sse2 => 2,
        SimdLevel::Avx2 => 3,
    }
}

fn dec(v: u8) -> Option<SimdLevel> {
    match v {
        1 => Some(SimdLevel::Scalar),
        2 => Some(SimdLevel::Sse2),
        3 => Some(SimdLevel::Avx2),
        _ => None,
    }
}

/// Best level the host supports, independent of `CTS_SIMD` and overrides.
pub fn detected() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            SimdLevel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdLevel::Scalar
    }
}

fn env_level() -> SimdLevel {
    let host = detected();
    match std::env::var("CTS_SIMD").as_deref().map(str::trim) {
        Ok("off") | Ok("scalar") | Ok("0") => SimdLevel::Scalar,
        Ok("sse2") => SimdLevel::Sse2.min(host),
        Ok("avx2") => SimdLevel::Avx2.min(host),
        _ => host,
    }
}

static DEFAULT_LEVEL: AtomicU8 = AtomicU8::new(UNSET);
static OVERRIDE_LEVEL: AtomicU8 = AtomicU8::new(UNSET);

/// The level kernels currently dispatch on: [`set_level`] override if
/// set, else the `CTS_SIMD` env knob (`off`/`scalar`, `sse2`, `avx2`;
/// read once), else the detected host maximum.
#[inline]
pub fn level() -> SimdLevel {
    if let Some(l) = dec(OVERRIDE_LEVEL.load(Ordering::Relaxed)) {
        return l;
    }
    match dec(DEFAULT_LEVEL.load(Ordering::Relaxed)) {
        Some(l) => l,
        None => {
            let l = env_level();
            DEFAULT_LEVEL.store(enc(l), Ordering::Relaxed);
            l
        }
    }
}

/// Force a dispatch level process-wide, clamped to what the host
/// supports; `None` restores the `CTS_SIMD`/auto default. For tests and
/// benches that compare levels in one process — results are bit-identical
/// across levels, so flipping this mid-run is always safe.
pub fn set_level(l: Option<SimdLevel>) {
    OVERRIDE_LEVEL.store(l.map_or(UNSET, |l| enc(l.min(detected()))), Ordering::Relaxed);
}

/// True when a vector (non-scalar) path is active.
#[inline]
pub fn active() -> bool {
    level() != SimdLevel::Scalar
}

/// Name of the active dispatch level (`"avx2"` / `"sse2"` / `"scalar"`).
pub fn level_name() -> &'static str {
    level().name()
}

/// Name of the detected host maximum, ignoring knobs and overrides.
pub fn detected_name() -> &'static str {
    detected().name()
}

// ---------------------------------------------------------------------------
// Op descriptors
// ---------------------------------------------------------------------------

/// Elementwise binary ops with a vector path.
#[derive(Clone, Copy, Debug)]
pub enum BinOp {
    /// `x + y`
    Add,
    /// `x - y`
    Sub,
    /// `x * y`
    Mul,
    /// `x / y` (IEEE correctly rounded in both scalar and vector form)
    Div,
}

impl BinOp {
    /// The pinned scalar form (identical to the vector lanes).
    #[inline(always)]
    pub fn apply(self, x: f32, y: f32) -> f32 {
        match self {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
        }
    }
}

/// Elementwise unary ops with a vector path.
#[derive(Clone, Copy, Debug)]
pub enum UnOp {
    /// `-x` (sign-bit flip; bitwise identical in scalar and vector form)
    Neg,
    /// `|x|` (sign-bit clear)
    Abs,
    /// `x * x`
    Square,
    /// `maxps(x, 0)`: NaN and −0 both map to +0
    Relu,
    /// `x * c`
    Scale(f32),
    /// `x + c`
    AddScalar(f32),
    /// `minps(hi, maxps(lo, x))`; equal to `f32::clamp` for `lo <= hi`
    /// non-NaN bounds, NaN `x` passes through
    Clamp(f32, f32),
}

impl UnOp {
    /// The pinned scalar form, written in the exact operand order the
    /// x86 `maxps`/`minps` instructions evaluate (both return the
    /// *second* operand on NaN or equality).
    #[inline(always)]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            UnOp::Neg => -x,
            UnOp::Abs => x.abs(),
            UnOp::Square => x * x,
            UnOp::Relu => {
                if x > 0.0 {
                    x
                } else {
                    0.0
                }
            }
            UnOp::Scale(c) => x * c,
            UnOp::AddScalar(c) => x + c,
            UnOp::Clamp(lo, hi) => {
                let t = if lo > x { lo } else { x };
                if hi < t {
                    hi
                } else {
                    t
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shared loop scaffolding
// ---------------------------------------------------------------------------

/// Row-major odometer over reduced axes `(len, stride)`: runs `$body`
/// once per preimage step with `$roff` bound to the current flat offset,
/// visiting offsets in ascending order — the exact per-element walk of
/// `ops::reduce_to_shape`'s scalar loop.
macro_rules! preimage_walk {
    ($dims:expr, $total:expr, $roff:ident, $body:block) => {{
        let mut r = [0usize; MAX_RDIMS];
        let mut $roff = 0usize;
        for _ in 0..$total {
            $body
            for j in (0..$dims.len()).rev() {
                let (len, stride) = $dims[j];
                r[j] += 1;
                $roff += stride;
                if r[j] < len {
                    break;
                }
                r[j] = 0;
                $roff -= len * stride;
            }
        }
    }};
}

// ---------------------------------------------------------------------------
// GEMM row-block microkernel
// ---------------------------------------------------------------------------

/// `out[j] += Σ_kk a_row[kk] · b[kk·ldb + j]` for every `j`.
///
/// The accumulators are loaded from `out` (never zeroed), so each output
/// element keeps one strictly ascending-`kk` addition chain across calls
/// — the bit-exactness invariant `ops::matmul` relies on. Requires
/// `out.len() <= ldb` and `b` to cover `a_row.len()` rows of `ldb`.
#[inline]
pub fn gemm_rowblock(a_row: &[f32], b: &[f32], ldb: usize, out: &mut [f32]) {
    match level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level() == Avx2 only after is_x86_feature_detected!("avx2").
        SimdLevel::Avx2 => unsafe { x86::gemm_avx2(a_row, b, ldb, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally part of the x86_64 baseline.
        SimdLevel::Sse2 => unsafe { x86::gemm_sse2(a_row, b, ldb, out) },
        _ => gemm_scalar(a_row, b, ldb, out),
    }
}

/// Scalar microkernel: [`LANES`] output columns accumulated per pass in a
/// fixed-width array (independent lanes for the autovectorizer), then a
/// per-column tail — per-element chains identical to the vector paths.
fn gemm_scalar(a_row: &[f32], b: &[f32], ldb: usize, out: &mut [f32]) {
    let nc = out.len();
    let mut j = 0;
    while j + LANES <= nc {
        let mut acc = [0.0f32; LANES];
        acc.copy_from_slice(&out[j..j + LANES]);
        for (kk, &av) in a_row.iter().enumerate() {
            let b_row = &b[kk * ldb + j..kk * ldb + j + LANES];
            for (t, &bv) in b_row.iter().enumerate() {
                acc[t] += av * bv;
            }
        }
        out[j..j + LANES].copy_from_slice(&acc);
        j += LANES;
    }
    while j < nc {
        let mut acc = out[j];
        for (kk, &av) in a_row.iter().enumerate() {
            acc += av * b[kk * ldb + j];
        }
        out[j] = acc;
        j += 1;
    }
}

// ---------------------------------------------------------------------------
// Elementwise maps
// ---------------------------------------------------------------------------

/// `out[i] = op(a[i], b[i])` over equal-length slices.
#[inline]
pub fn binary_map(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert!(a.len() == out.len() && b.len() == out.len());
    match level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level() == Avx2 only after is_x86_feature_detected!("avx2").
        SimdLevel::Avx2 => unsafe { x86::binary_map_avx2(op, a, b, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally part of the x86_64 baseline.
        SimdLevel::Sse2 => unsafe { x86::binary_map_sse2(op, a, b, out) },
        _ => {
            for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
                *o = op.apply(x, y);
            }
        }
    }
}

/// `out[i] = op(a[i])` over equal-length slices.
#[inline]
pub fn unary_map(op: UnOp, a: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    match level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level() == Avx2 only after is_x86_feature_detected!("avx2").
        SimdLevel::Avx2 => unsafe { x86::unary_map_avx2(op, a, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally part of the x86_64 baseline.
        SimdLevel::Sse2 => unsafe { x86::unary_map_sse2(op, a, out) },
        _ => {
            for (o, &x) in out.iter_mut().zip(a.iter()) {
                *o = op.apply(x);
            }
        }
    }
}

/// `data[i] *= c` in place (softmax normalization, `scale_inplace`).
#[inline]
pub fn scale_in_place(data: &mut [f32], c: f32) {
    match level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level() == Avx2 only after is_x86_feature_detected!("avx2").
        SimdLevel::Avx2 => unsafe { x86::scale_in_place_avx2(data, c) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally part of the x86_64 baseline.
        SimdLevel::Sse2 => unsafe { x86::scale_in_place_sse2(data, c) },
        _ => {
            for x in data.iter_mut() {
                *x *= c;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Accumulating updates
// ---------------------------------------------------------------------------

/// `dst[i] += s * x[i]` (separate mul + add; never fused).
#[inline]
pub fn axpy(dst: &mut [f32], s: f32, x: &[f32]) {
    debug_assert_eq!(dst.len(), x.len());
    match level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level() == Avx2 only after is_x86_feature_detected!("avx2").
        SimdLevel::Avx2 => unsafe { x86::axpy_avx2(dst, s, x) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally part of the x86_64 baseline.
        SimdLevel::Sse2 => unsafe { x86::axpy_sse2(dst, s, x) },
        _ => {
            for (d, &v) in dst.iter_mut().zip(x.iter()) {
                *d += s * v;
            }
        }
    }
}

/// `dst[i] += x[i]`.
#[inline]
pub fn accum(dst: &mut [f32], x: &[f32]) {
    debug_assert_eq!(dst.len(), x.len());
    match level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level() == Avx2 only after is_x86_feature_detected!("avx2").
        SimdLevel::Avx2 => unsafe { x86::accum_avx2(dst, x) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally part of the x86_64 baseline.
        SimdLevel::Sse2 => unsafe { x86::accum_sse2(dst, x) },
        _ => {
            for (d, &v) in dst.iter_mut().zip(x.iter()) {
                *d += v;
            }
        }
    }
}

/// `dst[i] = maxps(x[i], dst[i])` — i.e. `if x > dst { x } else { dst }`,
/// so a NaN in `x` is ignored and `dst` can never become NaN from one.
#[inline]
pub fn max_accum(dst: &mut [f32], x: &[f32]) {
    debug_assert_eq!(dst.len(), x.len());
    match level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level() == Avx2 only after is_x86_feature_detected!("avx2").
        SimdLevel::Avx2 => unsafe { x86::max_accum_avx2(dst, x) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally part of the x86_64 baseline.
        SimdLevel::Sse2 => unsafe { x86::max_accum_sse2(dst, x) },
        _ => {
            for (d, &v) in dst.iter_mut().zip(x.iter()) {
                if v > *d {
                    *d = v;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Row kernels (softmax)
// ---------------------------------------------------------------------------

/// Maximum of a row, ignoring NaN, starting from `-∞`.
///
/// The vector paths keep [`LANES`] running maxima and combine them
/// through a fixed low/high pairwise tree; the scalar path folds
/// sequentially. Max is order-insensitive up to the sign of equal zeros,
/// which the sole consumer (`exp(x - m)` in softmax) cannot observe — so
/// all levels are interchangeable bit-for-bit *downstream*.
#[inline]
pub fn row_max(x: &[f32]) -> f32 {
    match level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level() == Avx2 only after is_x86_feature_detected!("avx2").
        SimdLevel::Avx2 => unsafe { x86::row_max_avx2(x) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally part of the x86_64 baseline.
        SimdLevel::Sse2 => unsafe { x86::row_max_sse2(x) },
        _ => fold_max(f32::NEG_INFINITY, x),
    }
}

/// Pinned sequential max fold: `if v > m { v } else { m }` per element.
#[inline]
fn fold_max(init: f32, x: &[f32]) -> f32 {
    let mut m = init;
    for &v in x {
        if v > m {
            m = v;
        }
    }
    m
}

/// `out[i] = y[i] * (g[i] - dot)` — the elementwise half of the softmax
/// backward (the dot product itself stays scalar in the ops layer).
#[inline]
pub fn softmax_grad_row(out: &mut [f32], y: &[f32], g: &[f32], dot: f32) {
    debug_assert!(y.len() == out.len() && g.len() == out.len());
    match level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level() == Avx2 only after is_x86_feature_detected!("avx2").
        SimdLevel::Avx2 => unsafe { x86::softmax_grad_row_avx2(out, y, g, dot) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally part of the x86_64 baseline.
        SimdLevel::Sse2 => unsafe { x86::softmax_grad_row_sse2(out, y, g, dot) },
        _ => {
            for ((o, &yv), &gv) in out.iter_mut().zip(y.iter()).zip(g.iter()) {
                *o = yv * (gv - dot);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Broadcast-reduce groups
// ---------------------------------------------------------------------------

/// Sum the broadcast preimages of [`LANES`] *consecutive* target elements
/// at once: lane `t` accumulates `gd[base + t + roff]` over every reduced
/// offset `roff`, in the same ascending order as the scalar loop in
/// `ops::reduce_to_shape` — valid when the grad's last axis is preserved
/// (stride 1 across the lanes) and all lanes share one preimage walk.
///
/// Returns `false` (computing nothing) when the reduced rank exceeds the
/// fixed odometer capacity; the caller falls back to its scalar loop.
pub fn reduce_lanes8(gd: &[f32], base: usize, dims: &[(usize, usize)], total: usize, out: &mut [f32]) -> bool {
    if dims.len() > MAX_RDIMS {
        return false;
    }
    assert_eq!(out.len(), LANES);
    // Bound every load: the largest preimage offset plus the lane width
    // must stay inside the grad buffer.
    let span: usize = dims.iter().map(|&(len, stride)| (len - 1) * stride).sum();
    assert!(base + span + LANES <= gd.len(), "reduce_lanes8 out of bounds");
    match level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level() == Avx2 only after is_x86_feature_detected!("avx2");
        // bounds for every load were asserted above.
        SimdLevel::Avx2 => unsafe { x86::reduce8_avx2(gd, base, dims, total, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; bounds asserted above.
        SimdLevel::Sse2 => unsafe { x86::reduce8_sse2(gd, base, dims, total, out) },
        _ => {
            let mut acc = [0.0f32; LANES];
            preimage_walk!(dims, total, roff, {
                let src = &gd[base + roff..base + roff + LANES];
                for (a, &v) in acc.iter_mut().zip(src.iter()) {
                    *a += v;
                }
            });
            out.copy_from_slice(&acc);
        }
    }
    true
}

// ---------------------------------------------------------------------------
// x86_64 vector implementations
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! AVX2 / SSE2 bodies. Callers (the dispatchers above) guarantee the
    //! target feature is present; each body asserts its slice bounds
    //! before the pointer loop, so every load/store below is in bounds.
    use super::{fold_max, BinOp, UnOp, LANES, MAX_RDIMS};
    use std::arch::x86_64::*;

    // -- gemm ---------------------------------------------------------------

    // SAFETY: to call, AVX2 must be available on the host.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_avx2(a_row: &[f32], b: &[f32], ldb: usize, out: &mut [f32]) {
        let (k, n) = (a_row.len(), out.len());
        assert!(n <= ldb && (k == 0 || b.len() >= (k - 1) * ldb + n));
        let (bp, op) = (b.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 16 <= n {
            let mut acc0 = _mm256_loadu_ps(op.add(j));
            let mut acc1 = _mm256_loadu_ps(op.add(j + 8));
            for (kk, &av) in a_row.iter().enumerate() {
                let va = _mm256_set1_ps(av);
                let row = bp.add(kk * ldb + j);
                acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(va, _mm256_loadu_ps(row)));
                acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(va, _mm256_loadu_ps(row.add(8))));
            }
            _mm256_storeu_ps(op.add(j), acc0);
            _mm256_storeu_ps(op.add(j + 8), acc1);
            j += 16;
        }
        if j + 8 <= n {
            let mut acc = _mm256_loadu_ps(op.add(j));
            for (kk, &av) in a_row.iter().enumerate() {
                let vb = _mm256_loadu_ps(bp.add(kk * ldb + j));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(av), vb));
            }
            _mm256_storeu_ps(op.add(j), acc);
            j += 8;
        }
        gemm_tail(a_row, b, ldb, out, j);
    }

    // SAFETY: to call, SSE2 is part of the x86_64 baseline.
    pub unsafe fn gemm_sse2(a_row: &[f32], b: &[f32], ldb: usize, out: &mut [f32]) {
        let (k, n) = (a_row.len(), out.len());
        assert!(n <= ldb && (k == 0 || b.len() >= (k - 1) * ldb + n));
        let (bp, op) = (b.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 8 <= n {
            let mut acc0 = _mm_loadu_ps(op.add(j));
            let mut acc1 = _mm_loadu_ps(op.add(j + 4));
            for (kk, &av) in a_row.iter().enumerate() {
                let va = _mm_set1_ps(av);
                let row = bp.add(kk * ldb + j);
                acc0 = _mm_add_ps(acc0, _mm_mul_ps(va, _mm_loadu_ps(row)));
                acc1 = _mm_add_ps(acc1, _mm_mul_ps(va, _mm_loadu_ps(row.add(4))));
            }
            _mm_storeu_ps(op.add(j), acc0);
            _mm_storeu_ps(op.add(j + 4), acc1);
            j += 8;
        }
        if j + 4 <= n {
            let mut acc = _mm_loadu_ps(op.add(j));
            for (kk, &av) in a_row.iter().enumerate() {
                let vb = _mm_loadu_ps(bp.add(kk * ldb + j));
                acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(av), vb));
            }
            _mm_storeu_ps(op.add(j), acc);
            j += 4;
        }
        gemm_tail(a_row, b, ldb, out, j);
    }

    /// Scalar tail columns `j0..` — same per-element chain as the lanes.
    fn gemm_tail(a_row: &[f32], b: &[f32], ldb: usize, out: &mut [f32], j0: usize) {
        for j in j0..out.len() {
            let mut acc = out[j];
            for (kk, &av) in a_row.iter().enumerate() {
                acc += av * b[kk * ldb + j];
            }
            out[j] = acc;
        }
    }

    // -- elementwise maps ---------------------------------------------------

    // SAFETY: to call, AVX2 must be available on the host.
    #[target_feature(enable = "avx2")]
    pub unsafe fn binary_map_avx2(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
        let n = out.len();
        assert!(a.len() >= n && b.len() >= n);
        let (ap, bp, op_) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        macro_rules! lanes8 {
            ($vop:ident) => {{
                let mut j = 0;
                while j + 8 <= n {
                    let v = $vop(_mm256_loadu_ps(ap.add(j)), _mm256_loadu_ps(bp.add(j)));
                    _mm256_storeu_ps(op_.add(j), v);
                    j += 8;
                }
                while j < n {
                    out[j] = op.apply(a[j], b[j]);
                    j += 1;
                }
            }};
        }
        match op {
            BinOp::Add => lanes8!(_mm256_add_ps),
            BinOp::Sub => lanes8!(_mm256_sub_ps),
            BinOp::Mul => lanes8!(_mm256_mul_ps),
            BinOp::Div => lanes8!(_mm256_div_ps),
        }
    }

    // SAFETY: to call, SSE2 is part of the x86_64 baseline.
    pub unsafe fn binary_map_sse2(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
        let n = out.len();
        assert!(a.len() >= n && b.len() >= n);
        let (ap, bp, op_) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        macro_rules! lanes4 {
            ($vop:ident) => {{
                let mut j = 0;
                while j + 4 <= n {
                    let v = $vop(_mm_loadu_ps(ap.add(j)), _mm_loadu_ps(bp.add(j)));
                    _mm_storeu_ps(op_.add(j), v);
                    j += 4;
                }
                while j < n {
                    out[j] = op.apply(a[j], b[j]);
                    j += 1;
                }
            }};
        }
        match op {
            BinOp::Add => lanes4!(_mm_add_ps),
            BinOp::Sub => lanes4!(_mm_sub_ps),
            BinOp::Mul => lanes4!(_mm_mul_ps),
            BinOp::Div => lanes4!(_mm_div_ps),
        }
    }

    // SAFETY: to call, AVX2 must be available on the host.
    #[target_feature(enable = "avx2")]
    pub unsafe fn unary_map_avx2(op: UnOp, a: &[f32], out: &mut [f32]) {
        let n = out.len();
        assert!(a.len() >= n);
        let (ap, op_) = (a.as_ptr(), out.as_mut_ptr());
        macro_rules! lanes8 {
            ($f:expr) => {{
                let mut j = 0;
                while j + 8 <= n {
                    _mm256_storeu_ps(op_.add(j), $f(_mm256_loadu_ps(ap.add(j))));
                    j += 8;
                }
                while j < n {
                    out[j] = op.apply(a[j]);
                    j += 1;
                }
            }};
        }
        match op {
            UnOp::Neg => {
                let sign = _mm256_set1_ps(-0.0);
                lanes8!(|v| _mm256_xor_ps(v, sign))
            }
            UnOp::Abs => {
                let sign = _mm256_set1_ps(-0.0);
                lanes8!(|v| _mm256_andnot_ps(sign, v))
            }
            UnOp::Square => lanes8!(|v| _mm256_mul_ps(v, v)),
            UnOp::Relu => {
                let zero = _mm256_setzero_ps();
                lanes8!(|v| _mm256_max_ps(v, zero))
            }
            UnOp::Scale(c) => {
                let vc = _mm256_set1_ps(c);
                lanes8!(|v| _mm256_mul_ps(v, vc))
            }
            UnOp::AddScalar(c) => {
                let vc = _mm256_set1_ps(c);
                lanes8!(|v| _mm256_add_ps(v, vc))
            }
            UnOp::Clamp(lo, hi) => {
                let (vl, vh) = (_mm256_set1_ps(lo), _mm256_set1_ps(hi));
                lanes8!(|v| _mm256_min_ps(vh, _mm256_max_ps(vl, v)))
            }
        }
    }

    // SAFETY: to call, SSE2 is part of the x86_64 baseline.
    pub unsafe fn unary_map_sse2(op: UnOp, a: &[f32], out: &mut [f32]) {
        let n = out.len();
        assert!(a.len() >= n);
        let (ap, op_) = (a.as_ptr(), out.as_mut_ptr());
        macro_rules! lanes4 {
            ($f:expr) => {{
                let mut j = 0;
                while j + 4 <= n {
                    _mm_storeu_ps(op_.add(j), $f(_mm_loadu_ps(ap.add(j))));
                    j += 4;
                }
                while j < n {
                    out[j] = op.apply(a[j]);
                    j += 1;
                }
            }};
        }
        match op {
            UnOp::Neg => {
                let sign = _mm_set1_ps(-0.0);
                lanes4!(|v| _mm_xor_ps(v, sign))
            }
            UnOp::Abs => {
                let sign = _mm_set1_ps(-0.0);
                lanes4!(|v| _mm_andnot_ps(sign, v))
            }
            UnOp::Square => lanes4!(|v| _mm_mul_ps(v, v)),
            UnOp::Relu => {
                let zero = _mm_setzero_ps();
                lanes4!(|v| _mm_max_ps(v, zero))
            }
            UnOp::Scale(c) => {
                let vc = _mm_set1_ps(c);
                lanes4!(|v| _mm_mul_ps(v, vc))
            }
            UnOp::AddScalar(c) => {
                let vc = _mm_set1_ps(c);
                lanes4!(|v| _mm_add_ps(v, vc))
            }
            UnOp::Clamp(lo, hi) => {
                let (vl, vh) = (_mm_set1_ps(lo), _mm_set1_ps(hi));
                lanes4!(|v| _mm_min_ps(vh, _mm_max_ps(vl, v)))
            }
        }
    }

    // SAFETY: to call, AVX2 must be available on the host.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_in_place_avx2(data: &mut [f32], c: f32) {
        let n = data.len();
        let dp = data.as_mut_ptr();
        let vc = _mm256_set1_ps(c);
        let mut j = 0;
        while j + 8 <= n {
            _mm256_storeu_ps(dp.add(j), _mm256_mul_ps(_mm256_loadu_ps(dp.add(j)), vc));
            j += 8;
        }
        while j < n {
            data[j] *= c;
            j += 1;
        }
    }

    // SAFETY: to call, SSE2 is part of the x86_64 baseline.
    pub unsafe fn scale_in_place_sse2(data: &mut [f32], c: f32) {
        let n = data.len();
        let dp = data.as_mut_ptr();
        let vc = _mm_set1_ps(c);
        let mut j = 0;
        while j + 4 <= n {
            _mm_storeu_ps(dp.add(j), _mm_mul_ps(_mm_loadu_ps(dp.add(j)), vc));
            j += 4;
        }
        while j < n {
            data[j] *= c;
            j += 1;
        }
    }

    // -- accumulating updates -----------------------------------------------

    // SAFETY: to call, AVX2 must be available on the host.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_avx2(dst: &mut [f32], s: f32, x: &[f32]) {
        let n = dst.len();
        assert!(x.len() >= n);
        let (dp, xp) = (dst.as_mut_ptr(), x.as_ptr());
        let vs = _mm256_set1_ps(s);
        let mut j = 0;
        while j + 8 <= n {
            let d = _mm256_loadu_ps(dp.add(j));
            let v = _mm256_mul_ps(vs, _mm256_loadu_ps(xp.add(j)));
            _mm256_storeu_ps(dp.add(j), _mm256_add_ps(d, v));
            j += 8;
        }
        while j < n {
            dst[j] += s * x[j];
            j += 1;
        }
    }

    // SAFETY: to call, SSE2 is part of the x86_64 baseline.
    pub unsafe fn axpy_sse2(dst: &mut [f32], s: f32, x: &[f32]) {
        let n = dst.len();
        assert!(x.len() >= n);
        let (dp, xp) = (dst.as_mut_ptr(), x.as_ptr());
        let vs = _mm_set1_ps(s);
        let mut j = 0;
        while j + 4 <= n {
            let d = _mm_loadu_ps(dp.add(j));
            let v = _mm_mul_ps(vs, _mm_loadu_ps(xp.add(j)));
            _mm_storeu_ps(dp.add(j), _mm_add_ps(d, v));
            j += 4;
        }
        while j < n {
            dst[j] += s * x[j];
            j += 1;
        }
    }

    // SAFETY: to call, AVX2 must be available on the host.
    #[target_feature(enable = "avx2")]
    pub unsafe fn accum_avx2(dst: &mut [f32], x: &[f32]) {
        let n = dst.len();
        assert!(x.len() >= n);
        let (dp, xp) = (dst.as_mut_ptr(), x.as_ptr());
        let mut j = 0;
        while j + 8 <= n {
            let v = _mm256_add_ps(_mm256_loadu_ps(dp.add(j)), _mm256_loadu_ps(xp.add(j)));
            _mm256_storeu_ps(dp.add(j), v);
            j += 8;
        }
        while j < n {
            dst[j] += x[j];
            j += 1;
        }
    }

    // SAFETY: to call, SSE2 is part of the x86_64 baseline.
    pub unsafe fn accum_sse2(dst: &mut [f32], x: &[f32]) {
        let n = dst.len();
        assert!(x.len() >= n);
        let (dp, xp) = (dst.as_mut_ptr(), x.as_ptr());
        let mut j = 0;
        while j + 4 <= n {
            let v = _mm_add_ps(_mm_loadu_ps(dp.add(j)), _mm_loadu_ps(xp.add(j)));
            _mm_storeu_ps(dp.add(j), v);
            j += 4;
        }
        while j < n {
            dst[j] += x[j];
            j += 1;
        }
    }

    // SAFETY: to call, AVX2 must be available on the host.
    #[target_feature(enable = "avx2")]
    pub unsafe fn max_accum_avx2(dst: &mut [f32], x: &[f32]) {
        let n = dst.len();
        assert!(x.len() >= n);
        let (dp, xp) = (dst.as_mut_ptr(), x.as_ptr());
        let mut j = 0;
        while j + 8 <= n {
            // maxps(x, dst): x > dst ? x : dst (dst on NaN/equal).
            let v = _mm256_max_ps(_mm256_loadu_ps(xp.add(j)), _mm256_loadu_ps(dp.add(j)));
            _mm256_storeu_ps(dp.add(j), v);
            j += 8;
        }
        while j < n {
            if x[j] > dst[j] {
                dst[j] = x[j];
            }
            j += 1;
        }
    }

    // SAFETY: to call, SSE2 is part of the x86_64 baseline.
    pub unsafe fn max_accum_sse2(dst: &mut [f32], x: &[f32]) {
        let n = dst.len();
        assert!(x.len() >= n);
        let (dp, xp) = (dst.as_mut_ptr(), x.as_ptr());
        let mut j = 0;
        while j + 4 <= n {
            let v = _mm_max_ps(_mm_loadu_ps(xp.add(j)), _mm_loadu_ps(dp.add(j)));
            _mm_storeu_ps(dp.add(j), v);
            j += 4;
        }
        while j < n {
            if x[j] > dst[j] {
                dst[j] = x[j];
            }
            j += 1;
        }
    }

    // -- row max ------------------------------------------------------------

    /// Fixed 4-lane horizontal max tree: pairs `(0,2)/(1,3)`, then the
    /// winners — identical structure for the AVX2 and SSE2 paths.
    fn hmax4(v: __m128) -> f32 {
        // SAFETY: SSE shuffles/max on values only; no memory access.
        unsafe {
            let hi = _mm_movehl_ps(v, v);
            let p = _mm_max_ps(v, hi);
            let q = _mm_max_ss(p, _mm_shuffle_ps::<0x55>(p, p));
            _mm_cvtss_f32(q)
        }
    }

    // SAFETY: to call, AVX2 must be available on the host.
    #[target_feature(enable = "avx2")]
    pub unsafe fn row_max_avx2(x: &[f32]) -> f32 {
        let n = x.len();
        let xp = x.as_ptr();
        // Lanes start at -inf so NaN never enters an accumulator
        // (maxps(x, acc) keeps acc when x is NaN).
        let mut acc = _mm256_set1_ps(f32::NEG_INFINITY);
        let mut j = 0;
        while j + 8 <= n {
            acc = _mm256_max_ps(_mm256_loadu_ps(xp.add(j)), acc);
            j += 8;
        }
        // Low/high halves pair lanes (i, i+4), then the 4-lane tree.
        let m4 = _mm_max_ps(_mm256_castps256_ps128(acc), _mm256_extractf128_ps::<1>(acc));
        fold_max(hmax4(m4), &x[j..])
    }

    // SAFETY: to call, SSE2 is part of the x86_64 baseline.
    pub unsafe fn row_max_sse2(x: &[f32]) -> f32 {
        let n = x.len();
        let xp = x.as_ptr();
        // Same 8-lane layout as AVX2: acc0 = lanes 0..4, acc1 = lanes 4..8.
        let mut acc0 = _mm_set1_ps(f32::NEG_INFINITY);
        let mut acc1 = acc0;
        let mut j = 0;
        while j + 8 <= n {
            acc0 = _mm_max_ps(_mm_loadu_ps(xp.add(j)), acc0);
            acc1 = _mm_max_ps(_mm_loadu_ps(xp.add(j + 4)), acc1);
            j += 8;
        }
        let m4 = _mm_max_ps(acc0, acc1);
        fold_max(hmax4(m4), &x[j..])
    }

    // -- softmax backward row ----------------------------------------------

    // SAFETY: to call, AVX2 must be available on the host.
    #[target_feature(enable = "avx2")]
    pub unsafe fn softmax_grad_row_avx2(out: &mut [f32], y: &[f32], g: &[f32], dot: f32) {
        let n = out.len();
        assert!(y.len() >= n && g.len() >= n);
        let (op, yp, gp) = (out.as_mut_ptr(), y.as_ptr(), g.as_ptr());
        let vd = _mm256_set1_ps(dot);
        let mut j = 0;
        while j + 8 <= n {
            let gv = _mm256_sub_ps(_mm256_loadu_ps(gp.add(j)), vd);
            _mm256_storeu_ps(op.add(j), _mm256_mul_ps(_mm256_loadu_ps(yp.add(j)), gv));
            j += 8;
        }
        while j < n {
            out[j] = y[j] * (g[j] - dot);
            j += 1;
        }
    }

    // SAFETY: to call, SSE2 is part of the x86_64 baseline.
    pub unsafe fn softmax_grad_row_sse2(out: &mut [f32], y: &[f32], g: &[f32], dot: f32) {
        let n = out.len();
        assert!(y.len() >= n && g.len() >= n);
        let (op, yp, gp) = (out.as_mut_ptr(), y.as_ptr(), g.as_ptr());
        let vd = _mm_set1_ps(dot);
        let mut j = 0;
        while j + 4 <= n {
            let gv = _mm_sub_ps(_mm_loadu_ps(gp.add(j)), vd);
            _mm_storeu_ps(op.add(j), _mm_mul_ps(_mm_loadu_ps(yp.add(j)), gv));
            j += 4;
        }
        while j < n {
            out[j] = y[j] * (g[j] - dot);
            j += 1;
        }
    }

    // -- broadcast-reduce groups ---------------------------------------------

    // SAFETY: to call, AVX2 must be available, and every reachable
    // `base + roff + LANES` must be `<= gd.len()` (dispatcher asserts).
    #[target_feature(enable = "avx2")]
    pub unsafe fn reduce8_avx2(gd: &[f32], base: usize, dims: &[(usize, usize)], total: usize, out: &mut [f32]) {
        assert_eq!(out.len(), LANES);
        let gp = gd.as_ptr();
        let mut acc = _mm256_setzero_ps();
        preimage_walk!(dims, total, roff, {
            acc = _mm256_add_ps(acc, _mm256_loadu_ps(gp.add(base + roff)));
        });
        _mm256_storeu_ps(out.as_mut_ptr(), acc);
    }

    // SAFETY: to call, SSE2 is baseline on x86_64; same bounds contract
    // as `reduce8_avx2` (asserted by the dispatcher).
    pub unsafe fn reduce8_sse2(gd: &[f32], base: usize, dims: &[(usize, usize)], total: usize, out: &mut [f32]) {
        assert_eq!(out.len(), LANES);
        let gp = gd.as_ptr();
        let mut acc0 = _mm_setzero_ps();
        let mut acc1 = acc0;
        preimage_walk!(dims, total, roff, {
            acc0 = _mm_add_ps(acc0, _mm_loadu_ps(gp.add(base + roff)));
            acc1 = _mm_add_ps(acc1, _mm_loadu_ps(gp.add(base + roff + 4)));
        });
        _mm_storeu_ps(out.as_mut_ptr(), acc0);
        _mm_storeu_ps(out.as_mut_ptr().add(4), acc1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run `f` once per level the host supports and assert all results
    /// are bit-identical; returns the scalar result.
    fn across_levels(f: impl Fn() -> Vec<f32>) -> Vec<f32> {
        set_level(Some(SimdLevel::Scalar));
        let base = f();
        for l in [SimdLevel::Sse2, SimdLevel::Avx2] {
            if l <= detected() {
                set_level(Some(l));
                let got = f();
                let eq = base.len() == got.len()
                    && base.iter().zip(got.iter()).all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(eq, "{l:?} diverged from scalar: {base:?} vs {got:?}");
            }
        }
        set_level(None);
        base
    }

    fn pattern(n: usize, seed: u32) -> Vec<f32> {
        (0..n).map(|i| ((i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f32 * 0.013 - 6.5).collect()
    }

    #[test]
    fn level_override_clamps_to_host() {
        set_level(Some(SimdLevel::Avx2));
        assert!(level() <= detected());
        set_level(Some(SimdLevel::Scalar));
        assert_eq!(level(), SimdLevel::Scalar);
        set_level(None);
    }

    #[test]
    fn gemm_rowblock_levels_agree_all_widths() {
        for n in 1..=19 {
            for k in [0usize, 1, 3, 8] {
                let a = pattern(k, 7);
                let b = pattern(k * (n + 2), 11);
                let res = across_levels(|| {
                    let mut out = pattern(n, 13);
                    gemm_rowblock(&a, &b, n + 2, &mut out);
                    out
                });
                // spot-check one element against the naive dot
                if n > 0 && k > 0 {
                    let mut want = pattern(n, 13)[0];
                    for (kk, &av) in a.iter().enumerate() {
                        want += av * b[kk * (n + 2)];
                    }
                    assert_eq!(res[0].to_bits(), want.to_bits());
                }
            }
        }
    }

    #[test]
    fn binary_maps_levels_agree_all_widths_and_specials() {
        for n in 0..=18 {
            let mut a = pattern(n, 3);
            let b = pattern(n, 5);
            if n > 2 {
                a[1] = f32::NAN;
                a[2] = -0.0;
            }
            for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div] {
                across_levels(|| {
                    let mut out = vec![0.0; n];
                    binary_map(op, &a, &b, &mut out);
                    out
                });
            }
        }
    }

    #[test]
    fn unary_maps_levels_agree_all_widths_and_specials() {
        for n in [0usize, 1, 7, 8, 9, 16, 23] {
            let mut a = pattern(n, 9);
            if n > 4 {
                a[0] = f32::NAN;
                a[1] = -0.0;
                a[2] = 0.0;
                a[3] = f32::INFINITY;
                a[4] = f32::NEG_INFINITY;
            }
            for op in [
                UnOp::Neg,
                UnOp::Abs,
                UnOp::Square,
                UnOp::Relu,
                UnOp::Scale(0.37),
                UnOp::AddScalar(-1.25),
                UnOp::Clamp(-2.0, 3.0),
            ] {
                across_levels(|| {
                    let mut out = vec![0.0; n];
                    unary_map(op, &a, &mut out);
                    out
                });
            }
        }
    }

    #[test]
    fn relu_and_clamp_pin_nan_and_zero_sign() {
        // The documented maxps/minps semantics, checked at every level.
        let a = [f32::NAN, -0.0, 0.0, -5.0, 5.0];
        across_levels(|| {
            let mut out = vec![0.0; a.len()];
            unary_map(UnOp::Relu, &a, &mut out);
            assert_eq!(out[0].to_bits(), 0.0f32.to_bits(), "relu(NaN) must be +0");
            assert_eq!(out[1].to_bits(), 0.0f32.to_bits(), "relu(-0) must be +0");
            out
        });
        across_levels(|| {
            let mut out = vec![0.0; a.len()];
            unary_map(UnOp::Clamp(-1.0, 1.0), &a, &mut out);
            assert!(out[0].is_nan(), "clamp must propagate NaN");
            assert_eq!(out[3], -1.0);
            assert_eq!(out[4], 1.0);
            out
        });
    }

    #[test]
    fn accum_axpy_scale_levels_agree() {
        for n in 0..=18 {
            let x = pattern(n, 21);
            across_levels(|| {
                let mut d = pattern(n, 23);
                accum(&mut d, &x);
                d
            });
            across_levels(|| {
                let mut d = pattern(n, 25);
                axpy(&mut d, -0.731, &x);
                d
            });
            across_levels(|| {
                let mut d = pattern(n, 27);
                scale_in_place(&mut d, 1.0 / 3.0);
                d
            });
            across_levels(|| {
                let mut d = vec![f32::NEG_INFINITY; n];
                max_accum(&mut d, &x);
                d
            });
        }
    }

    #[test]
    fn max_accum_ignores_nan_in_source() {
        let x = [f32::NAN, 2.0, f32::NAN, -1.0];
        across_levels(|| {
            let mut d = vec![f32::NEG_INFINITY; 4];
            max_accum(&mut d, &x);
            assert_eq!(d[0], f32::NEG_INFINITY, "NaN must not enter the accumulator");
            assert_eq!(d[1], 2.0);
            d
        });
    }

    #[test]
    fn row_max_matches_fold_for_all_lengths() {
        for n in 0..=25 {
            let mut x = pattern(n, 31);
            if n > 3 {
                x[3] = f32::NAN; // ignored at every level
            }
            let want = x.iter().fold(f32::NEG_INFINITY, |m, &v| if v > m { v } else { m });
            across_levels(|| vec![row_max(&x)]);
            set_level(Some(SimdLevel::Scalar));
            assert_eq!(row_max(&x).to_bits(), want.to_bits());
            set_level(None);
        }
    }

    #[test]
    fn softmax_grad_row_levels_agree() {
        for n in 0..=18 {
            let y = pattern(n, 41);
            let g = pattern(n, 43);
            across_levels(|| {
                let mut out = vec![0.0; n];
                softmax_grad_row(&mut out, &y, &g, 0.173);
                out
            });
        }
    }

    #[test]
    fn reduce_lanes8_matches_scalar_walk() {
        // grad laid out as [4, 3, 16]: reduce the two leading axes, keep
        // the last; lanes are 8 consecutive last-axis elements.
        let gd = pattern(4 * 3 * 16, 51);
        let dims = [(4usize, 48usize), (3usize, 16usize)];
        let total = 12;
        for base in [0usize, 8] {
            let want: Vec<f32> = (0..LANES)
                .map(|t| {
                    let mut acc = 0.0f32;
                    for d0 in 0..4 {
                        for d1 in 0..3 {
                            acc += gd[base + t + d0 * 48 + d1 * 16];
                        }
                    }
                    acc
                })
                .collect();
            let got = across_levels(|| {
                let mut out = vec![0.0; LANES];
                assert!(reduce_lanes8(&gd, base, &dims, total, &mut out));
                out
            });
            for (a, b) in got.iter().zip(want.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn reduce_lanes8_rejects_deep_rank() {
        let gd = vec![0.0f32; 1 << 12];
        let dims = vec![(2usize, 1usize); MAX_RDIMS + 1];
        let mut out = vec![0.0; LANES];
        assert!(!reduce_lanes8(&gd, 0, &dims, 1 << 9, &mut out));
    }
}
