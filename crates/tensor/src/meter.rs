//! Execution meter: a thread-local count-under-execution oracle for the
//! static cost model.
//!
//! Every metered kernel dispatch through [`crate::parallel`] records the
//! exact scalar-op count (the `work` argument the kernel already computes
//! for the parallel-dispatch threshold) and the number of output elements
//! it writes; the op entry points in [`crate::ops`] additionally record
//! the elements they read. `cts-verify`'s static analyzer re-derives the
//! same numbers from shapes alone, and the proptest oracle in
//! `tests/cost_oracle.rs` pins the two bit-for-bit — the same
//! count-under-execution pattern as `Tape::reachable_params`.
//!
//! The meter is debug-oriented tooling, not observability: it is **off by
//! default** and adds only a thread-local boolean check to the metered
//! paths when disabled. It is compiled in release builds too (unlike a
//! `debug_assertions` gate) so the calibration/exactness benchmark
//! (`bench_cost`) can run it against release-mode kernels.
//!
//! Counts are element counts, not bytes; every buffer in the workspace is
//! `f32`, so bytes are exactly `4 ×` the element counts
//! ([`MeterSnapshot::bytes_read`] / [`MeterSnapshot::bytes_written`]).
//!
//! Deliberately **not** metered (both the oracle and the static model
//! treat them as free): pure data-movement ops that never dispatch a
//! registered kernel (`permute`, `concat`, `slice`, `index_select`,
//! `stack`, `pad_axis`, `broadcast_to`/`reduce_to_shape` fast paths),
//! tensor clones/reshapes, scalar constructors, and the in-place scale
//! used by `mean_axis` normalization.

use std::cell::Cell;

/// A point-in-time copy of this thread's meter counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MeterSnapshot {
    /// Scalar operations executed (the `work` parameter of every metered
    /// kernel dispatch — e.g. `2·b·m·n·k` for a matmul).
    pub flops: u64,
    /// Elements read by metered ops (operand lengths at op entry).
    pub read_elems: u64,
    /// Elements written by metered kernel dispatches (output/accumulator
    /// lengths).
    pub write_elems: u64,
    /// Metered kernel dispatches (one per `for_units`/`partial_sums`
    /// call).
    pub kernel_calls: u64,
}

impl MeterSnapshot {
    /// Bytes read (`f32` elements × 4).
    pub fn bytes_read(&self) -> u64 {
        self.read_elems.saturating_mul(4)
    }

    /// Bytes written (`f32` elements × 4).
    pub fn bytes_written(&self) -> u64 {
        self.write_elems.saturating_mul(4)
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static FLOPS: Cell<u64> = const { Cell::new(0) };
    static READS: Cell<u64> = const { Cell::new(0) };
    static WRITES: Cell<u64> = const { Cell::new(0) };
    static CALLS: Cell<u64> = const { Cell::new(0) };
}

/// Is the meter recording on this thread?
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Turn the meter on/off for this thread. Counters are preserved across
/// toggles; pair with [`reset`] to start a measurement window.
pub fn set_enabled(on: bool) {
    ENABLED.with(|e| e.set(on));
}

/// Zero this thread's counters (recording state is unchanged).
pub fn reset() {
    FLOPS.with(|c| c.set(0));
    READS.with(|c| c.set(0));
    WRITES.with(|c| c.set(0));
    CALLS.with(|c| c.set(0));
}

/// Snapshot this thread's counters.
pub fn snapshot() -> MeterSnapshot {
    MeterSnapshot {
        flops: FLOPS.with(Cell::get),
        read_elems: READS.with(Cell::get),
        write_elems: WRITES.with(Cell::get),
        kernel_calls: CALLS.with(Cell::get),
    }
}

/// Record one metered kernel dispatch: `work` scalar ops writing
/// `out_elems` elements. Called by `parallel::for_units` /
/// `parallel::partial_sums` on the dispatching thread (kernel closures may
/// run on pool workers, but dispatch — and therefore metering — is always
/// caller-side).
pub(crate) fn add_exec(work: usize, out_elems: usize) {
    if !enabled() {
        return;
    }
    FLOPS.with(|c| c.set(c.get().saturating_add(work as u64)));
    WRITES.with(|c| c.set(c.get().saturating_add(out_elems as u64)));
    CALLS.with(|c| c.set(c.get().saturating_add(1)));
}

/// Record `elems` elements read by a metered op. Called once at each op
/// entry point in [`crate::ops`], after any early-return fast path (fast
/// paths are unmetered by design).
pub(crate) fn add_reads(elems: usize) {
    if !enabled() {
        return;
    }
    READS.with(|c| c.set(c.get().saturating_add(elems as u64)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_meter_records_nothing() {
        set_enabled(false);
        reset();
        add_exec(100, 10);
        add_reads(20);
        assert_eq!(snapshot(), MeterSnapshot::default());
    }

    #[test]
    fn enabled_meter_accumulates() {
        set_enabled(true);
        reset();
        add_exec(100, 10);
        add_exec(50, 5);
        add_reads(20);
        let s = snapshot();
        set_enabled(false);
        assert_eq!(
            s,
            MeterSnapshot {
                flops: 150,
                read_elems: 20,
                write_elems: 15,
                kernel_calls: 2,
            }
        );
        assert_eq!(s.bytes_read(), 80);
        assert_eq!(s.bytes_written(), 60);
    }
}
