//! Deterministic parallel partitioning for tensor kernels, dispatched on
//! a persistent worker pool.
//!
//! Every data-parallel kernel in [`crate::ops`] funnels through the helpers
//! here. The model is deliberately simple: an output buffer is viewed as a
//! sequence of fixed-size *units* (a matmul output row, a softmax row, one
//! batch matrix, a single element, …) and contiguous runs of units are
//! dealt out to workers.
//!
//! # Dispatch
//!
//! Shares execute on a lazily-started persistent worker pool
//! ([`crate::pool`]): workers are spawned on the first sufficiently large
//! kernel, then park on a condvar between jobs, so steady-state dispatch
//! is a wake/sleep round-trip instead of an OS thread spawn per kernel
//! (PR 1's scoped-thread dispatch cost tens of microseconds per launch —
//! ruinous for the search loop's thousands of small kernels per epoch).
//! The old spawn-per-kernel path is retained as a benchmark baseline:
//! select it with [`set_dispatch`] or `CTS_DISPATCH=spawn`.
//!
//! Dispatch mode affects scheduling only. Partitioning ([`share`]) and
//! result combination (fixed worker order) are identical in both modes,
//! so results are bit-identical between pool and spawn dispatch, at any
//! thread count, and across pool teardown/re-init.
//!
//! # Thread count
//!
//! The worker count comes from, in priority order:
//!
//! 1. [`set_num_threads`] (process-wide override, mainly for tests/benches),
//! 2. the `CTS_NUM_THREADS` environment variable (read once, cached),
//! 3. [`std::thread::available_parallelism`].
//!
//! With a thread count of 1 every helper takes the exact serial code path,
//! so `CTS_NUM_THREADS=1` is bit-identical to a fully serial build.
//!
//! # Serial fallback
//!
//! Callers pass an estimated scalar-op count for the whole kernel; work
//! smaller than [`PAR_THRESHOLD`] never crosses a thread boundary, so tiny
//! tensors (the common case inside cell-search inner loops) pay nothing.
//!
//! # Determinism registry
//!
//! Bit-identical results at any thread count (the guarantee the
//! checkpoint/resume layer depends on) only hold if every kernel splits
//! and recombines its work in a *fixed* order. That contract is machine
//! checked, not conventional: each call into [`for_units`] /
//! [`partial_sums`] must present a [`KernelSpec`] registered in
//! [`kernels::ALL`], and the [`Partition`] / [`Reduction`] enums only
//! have order-deterministic variants. A new kernel that skips
//! registration panics on first use; one that invents a non-deterministic
//! strategy cannot even name it. `cts-verify` audits the registry as part
//! of its static report.

use crate::{arena, pool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// How a kernel's output is split across workers.
///
/// Every variant is deterministic by construction: the assignment of work
/// to a worker index depends only on the unit count and thread count,
/// never on scheduling order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partition {
    /// Contiguous runs of fixed-size units, dealt out in worker order
    /// (worker `w` gets units `[start_w, start_w + n_w)`; see [`share`]).
    ContiguousUnits,
}

/// How per-worker results are combined into the kernel's output.
///
/// Every variant has a fixed combination order, so floating-point
/// summation is reproducible at a given thread count (and exactly serial
/// at one thread).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reduction {
    /// Workers write disjoint output ranges; nothing is combined.
    DisjointWrites,
    /// Each worker fills a private accumulator; the accumulators are
    /// summed in ascending worker order.
    OrderedPartialSums,
}

/// How a kernel's vector (SIMD) lanes relate to its scalar accumulation
/// order — the declaration the cts-verify determinism audit checks against
/// each kernel's lane width.
///
/// Every variant is bit-deterministic: `ElementChains` and
/// `PinnedMaxTree` produce outputs bit-identical to the scalar path at
/// every SIMD level, thread count, and dispatcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneOrder {
    /// No vector path: the kernel's inner loops are scalar at every SIMD
    /// level (sequential sums, odometer gathers, pure copies).
    ScalarOnly,
    /// Lanes are independent *output elements*; each element keeps its
    /// scalar ascending addition chain (separate mul + add, never FMA), so
    /// no cross-lane combine exists and results are bit-identical to
    /// scalar by construction.
    ElementChains,
    /// Per-lane running maxima combined through a fixed pairwise tree
    /// (softmax max scan). Max is order-insensitive up to the sign of an
    /// equal-zero result, which the consuming `exp(x − m)` cannot observe.
    PinnedMaxTree,
}

/// A kernel's declared SIMD shape: lane width and lane-order contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimdContract {
    /// f32 lanes the vector path is written for (1 = scalar only). The
    /// audit requires `ScalarOnly ⇔ width 1` and vectorized kernels to
    /// match [`crate::simd::LANES`].
    pub lane_width: usize,
    /// How lanes relate to the scalar accumulation order.
    pub order: LaneOrder,
}

/// Static description of one parallel kernel: its name and the
/// partition/reduction strategy it is allowed to use.
///
/// Specs are `'static` and identity-checked against [`kernels::ALL`], so
/// the set of kernels that can touch the thread pool is a closed, auditable
/// list.
#[derive(Debug)]
pub struct KernelSpec {
    /// Stable kernel name (module-qualified, e.g. `"conv.temporal_grad_w"`).
    pub name: &'static str,
    /// Work-splitting strategy.
    pub partition: Partition,
    /// Result-combination strategy.
    pub reduction: Reduction,
    /// Declared SIMD lane width and order (audited by cts-verify).
    pub simd: SimdContract,
    /// Cumulative invocation/timing counters (observability). Embedded in
    /// the spec so recording needs no lookup; timing is only added when
    /// `cts_obs::metrics_enabled()`.
    pub stats: cts_obs::KernelStats,
}

/// The closed registry of kernels allowed on the parallel layer.
pub mod kernels {
    use super::{KernelSpec, LaneOrder, Partition, Reduction, SimdContract};

    const fn disjoint(name: &'static str) -> KernelSpec {
        KernelSpec {
            name,
            partition: Partition::ContiguousUnits,
            reduction: Reduction::DisjointWrites,
            simd: SimdContract { lane_width: 1, order: LaneOrder::ScalarOnly },
            stats: cts_obs::KernelStats::new(),
        }
    }

    const fn summed(name: &'static str) -> KernelSpec {
        KernelSpec {
            name,
            partition: Partition::ContiguousUnits,
            reduction: Reduction::OrderedPartialSums,
            simd: SimdContract { lane_width: 1, order: LaneOrder::ScalarOnly },
            stats: cts_obs::KernelStats::new(),
        }
    }

    /// Mark a spec's hot loops as vectorized at [`crate::simd::LANES`]
    /// width with the given lane-order contract.
    const fn vectorized(mut spec: KernelSpec, order: LaneOrder) -> KernelSpec {
        spec.simd = SimdContract { lane_width: crate::simd::LANES, order };
        spec
    }

    /// Cache-blocked packed-B matrix product (one unit = one output row).
    pub static MATMUL: KernelSpec = vectorized(disjoint("matmul"), LaneOrder::ElementChains);
    /// Fused A·Bᵀ product used by `matmul_grad_a` (one unit = one output
    /// row); reads B's rows directly instead of materialising a transpose.
    pub static MATMUL_NT: KernelSpec = vectorized(disjoint("matmul.nt"), LaneOrder::ElementChains);
    /// Fused Aᵀ·G product used by `matmul_grad_b` (one unit = one output
    /// row); reads A's columns in place instead of materialising a
    /// transpose.
    pub static MATMUL_TN: KernelSpec = vectorized(disjoint("matmul.tn"), LaneOrder::ElementChains);
    /// Tiled last-two-dims transpose (one unit = one matrix).
    pub static TRANSPOSE: KernelSpec = disjoint("matmul.transpose_last2");
    /// Same-shape elementwise zip (one unit = one scalar).
    pub static EW_ZIP: KernelSpec = vectorized(disjoint("elementwise.zip"), LaneOrder::ElementChains);
    /// Broadcasting elementwise zip (odometer walk).
    pub static EW_ZIP_BROADCAST: KernelSpec = disjoint("elementwise.zip_broadcast");
    /// Elementwise unary map.
    pub static EW_UNARY: KernelSpec = vectorized(disjoint("elementwise.unary"), LaneOrder::ElementChains);
    /// Exact-length zip used by saved-value gradient kernels.
    pub static EW_ZIP_EXACT: KernelSpec = disjoint("elementwise.zip_exact");
    /// Broadcast-gradient reduction: one unit = one *target* element,
    /// each summing its grad preimage in ascending flat order (the same
    /// per-element order as the old serial scatter, so results are
    /// bit-identical to it).
    pub static REDUCE_TO_SHAPE: KernelSpec =
        vectorized(disjoint("elementwise.reduce_to_shape"), LaneOrder::ElementChains);
    /// Axis sum (one unit = one inner slice).
    pub static REDUCE_SUM_AXIS: KernelSpec = vectorized(disjoint("reduce.sum_axis"), LaneOrder::ElementChains);
    /// Axis-sum gradient broadcast-back.
    pub static REDUCE_SUM_AXIS_GRAD: KernelSpec = disjoint("reduce.sum_axis_grad");
    /// Axis max.
    pub static REDUCE_MAX_AXIS: KernelSpec = vectorized(disjoint("reduce.max_axis"), LaneOrder::ElementChains);
    /// Broadcast materialisation.
    pub static BROADCAST_TO: KernelSpec = disjoint("reduce.broadcast_to");
    /// Softmax forward (one unit = one row).
    pub static SOFTMAX: KernelSpec = vectorized(disjoint("softmax.forward"), LaneOrder::PinnedMaxTree);
    /// Softmax backward.
    pub static SOFTMAX_GRAD: KernelSpec = vectorized(disjoint("softmax.grad"), LaneOrder::ElementChains);
    /// Log-sum-exp rows.
    pub static LOGSUMEXP: KernelSpec = disjoint("softmax.logsumexp");
    /// Dilated causal temporal convolution (one unit = one series).
    pub static TEMPORAL_CONV: KernelSpec = vectorized(disjoint("conv.temporal"), LaneOrder::ElementChains);
    /// Temporal convolution input gradient.
    pub static TEMPORAL_CONV_GRAD_X: KernelSpec = disjoint("conv.temporal_grad_x");
    /// Temporal convolution weight gradient: per-series partial sums,
    /// combined in worker order.
    pub static TEMPORAL_CONV_GRAD_W: KernelSpec =
        vectorized(summed("conv.temporal_grad_w"), LaneOrder::ElementChains);

    /// Every kernel allowed to use [`super::for_units`] /
    /// [`super::partial_sums`]. Keep in sync with the statics above; the
    /// registration assert fires on first use of an unlisted spec.
    pub static ALL: &[&KernelSpec] = &[
        &MATMUL,
        &MATMUL_NT,
        &MATMUL_TN,
        &TRANSPOSE,
        &EW_ZIP,
        &EW_ZIP_BROADCAST,
        &EW_UNARY,
        &EW_ZIP_EXACT,
        &REDUCE_TO_SHAPE,
        &REDUCE_SUM_AXIS,
        &REDUCE_SUM_AXIS_GRAD,
        &REDUCE_MAX_AXIS,
        &BROADCAST_TO,
        &SOFTMAX,
        &SOFTMAX_GRAD,
        &LOGSUMEXP,
        &TEMPORAL_CONV,
        &TEMPORAL_CONV_GRAD_X,
        &TEMPORAL_CONV_GRAD_W,
    ];

    /// True when `spec` is one of the registered kernel descriptors
    /// (checked by identity: the registry is a closed set of statics, not
    /// a structural pattern).
    pub fn is_registered(spec: &KernelSpec) -> bool {
        ALL.iter().any(|k| std::ptr::eq::<KernelSpec>(*k, spec))
    }
}

/// Panic unless `spec` is registered and uses `expected` reduction.
fn check_spec(spec: &'static KernelSpec, expected: Reduction) {
    assert!(
        kernels::is_registered(spec),
        "kernel spec {:?} is not in parallel::kernels::ALL — register it \
         so the determinism audit can see it",
        spec.name
    );
    assert!(
        spec.reduction == expected,
        "kernel {:?} declares {:?} but was routed through a {:?} entry point",
        spec.name,
        spec.reduction,
        expected
    );
}

/// Estimated scalar-op count below which kernels stay on the serial path.
///
/// Even with persistent workers, waking and joining the pool costs a few
/// microseconds; at roughly one fused multiply-add per nanosecond, work
/// below ~32k ops is cheaper to run in place than to fan out.
pub const PAR_THRESHOLD: usize = 32_768;

/// Sentinel meaning "no override set".
const UNSET: usize = usize::MAX;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(UNSET);
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

fn env_threads() -> usize {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("CTS_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// The worker-thread count kernels will use for sufficiently large work.
pub fn num_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        UNSET => env_threads(),
        n => n,
    }
}

/// Override the worker-thread count process-wide.
///
/// `n >= 1` forces that many workers; `n == 0` clears the override, falling
/// back to `CTS_NUM_THREADS` / available parallelism. Intended for tests and
/// benchmarks that compare serial and parallel execution in one process.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(if n == 0 { UNSET } else { n }, Ordering::Relaxed);
}

/// How parallel shares reach worker threads. Results are bit-identical in
/// both modes; only scheduling overhead differs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dispatch {
    /// Persistent worker pool (default): workers park between kernels.
    Pool,
    /// PR 1 behaviour: spawn scoped threads per kernel call. Kept as the
    /// benchmark baseline for measuring dispatch overhead.
    Spawn,
}

/// 0 = unset (follow `CTS_DISPATCH` env, default pool), 1 = pool, 2 = spawn.
static DISPATCH_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static ENV_DISPATCH: OnceLock<Dispatch> = OnceLock::new();

fn env_dispatch() -> Dispatch {
    *ENV_DISPATCH.get_or_init(|| {
        match std::env::var("CTS_DISPATCH").as_deref() {
            Ok("spawn") => Dispatch::Spawn,
            _ => Dispatch::Pool,
        }
    })
}

/// The dispatch mode kernels will use for sufficiently large work.
pub fn dispatch() -> Dispatch {
    match DISPATCH_OVERRIDE.load(Ordering::Relaxed) {
        1 => Dispatch::Pool,
        2 => Dispatch::Spawn,
        _ => env_dispatch(),
    }
}

/// Override the dispatch mode process-wide (`None` restores the
/// `CTS_DISPATCH` env default). Benchmarks use this to compare pool
/// dispatch against the spawn-per-kernel baseline in one process.
pub fn set_dispatch(d: Option<Dispatch>) {
    DISPATCH_OVERRIDE.store(
        match d {
            None => 0,
            Some(Dispatch::Pool) => 1,
            Some(Dispatch::Spawn) => 2,
        },
        Ordering::Relaxed,
    );
}

/// Tear down the persistent pool (joining its workers); the next parallel
/// kernel lazily re-creates it. Results before and after a reset are
/// bit-identical — the pool holds no numeric state.
pub fn reset_pool() {
    pool::shutdown();
}

/// Number of parked worker threads currently owned by the pool.
pub fn pool_workers() -> usize {
    pool::worker_count()
}

/// Snapshot the worker pool's dispatch counters (observability).
pub fn pool_stats() -> cts_obs::PoolStats {
    pool::stats()
}

/// Zero the worker pool's dispatch counters.
pub fn reset_pool_stats() {
    pool::reset_stats()
}

/// Split `units` items over `threads` workers: first `rem` workers get one
/// extra unit. Returns the unit count for worker `w`.
fn share(units: usize, threads: usize, w: usize) -> usize {
    units / threads + usize::from(w < units % threads)
}

/// A pre-assigned work share, handed to exactly one worker. The mutex is
/// uncontended (each worker takes only its own slot); it exists so the
/// share's `&mut` chunk can cross the closure boundary without `unsafe`.
type Slot<'a, T> = Mutex<Option<T>>;

fn take_slot<T>(slot: &Slot<'_, T>) -> Option<T> {
    slot.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
}

/// Run `task(0..n_shares)` under the active dispatch mode.
fn execute(n_shares: usize, task: &(dyn Fn(usize) + Sync)) {
    match dispatch() {
        Dispatch::Pool => pool::run(n_shares, task),
        Dispatch::Spawn => {
            crossbeam::thread::scope(|s| {
                for w in 1..n_shares {
                    s.spawn(move |_| task(w));
                }
                task(0);
            })
            // invariant: scope() only errs when a worker panicked;
            // re-raising the panic is the intended behaviour.
            .expect("parallel kernel worker panicked");
        }
    }
}

/// Partition `out` into contiguous units of `unit_len` elements and run
/// `f(first_unit, units_slice)` over disjoint runs of units, in parallel
/// when `work` (estimated scalar ops) is large enough.
///
/// `spec` must be a kernel registered in [`kernels::ALL`] declaring
/// [`Reduction::DisjointWrites`]; unregistered specs panic.
///
/// `out.len()` must be a multiple of `unit_len`. The serial path is a single
/// `f(0, out)` call, so `f` must handle any number of units.
pub fn for_units<F>(spec: &'static KernelSpec, out: &mut [f32], unit_len: usize, work: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    check_spec(spec, Reduction::DisjointWrites);
    debug_assert!(unit_len > 0 && out.len().is_multiple_of(unit_len));
    let units = out.len() / unit_len;
    let t = cts_obs::timer();
    let threads = num_threads().min(units);
    if threads <= 1 || work < PAR_THRESHOLD {
        if !out.is_empty() {
            f(0, out);
        }
        spec.stats.record(t, units as u64, false);
        crate::meter::add_exec(work, out.len());
        return;
    }
    // Deal out contiguous chunks (deterministic: depends only on units
    // and thread count), then execute the shares on the dispatch layer.
    let mut slots: Vec<Slot<'_, (usize, &mut [f32])>> = Vec::with_capacity(threads);
    {
        let mut rest = out;
        let mut first = 0usize;
        for w in 0..threads {
            let n_units = share(units, threads, w);
            if n_units == 0 {
                break;
            }
            let (head, tail) = rest.split_at_mut(n_units * unit_len);
            rest = tail;
            slots.push(Mutex::new(Some((first, head))));
            first += n_units;
        }
    }
    let f = &f;
    execute(slots.len(), &|w| {
        if let Some((start, chunk)) = take_slot(&slots[w]) {
            f(start, chunk);
        }
    });
    spec.stats.record(t, units as u64, true);
    crate::meter::add_exec(work, units * unit_len);
}

/// Parallel accumulation: each worker owns a zeroed `acc_len` buffer, calls
/// `f(unit, acc)` for its run of units, and the per-worker buffers are summed
/// (in worker order) into the returned vector.
///
/// `spec` must be a kernel registered in [`kernels::ALL`] declaring
/// [`Reduction::OrderedPartialSums`]; unregistered specs panic.
///
/// Used by kernels whose output is shared across units (e.g. a weight
/// gradient accumulated over a batch). Summation order of partial buffers is
/// deterministic for a fixed thread count; with 1 thread it is exactly the
/// serial accumulation order.
///
/// All accumulators (including the returned one) come from the buffer
/// arena, so steady-state calls allocate nothing.
pub fn partial_sums<F>(spec: &'static KernelSpec, units: usize, acc_len: usize, work: usize, f: F) -> Vec<f32>
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    check_spec(spec, Reduction::OrderedPartialSums);
    let t = cts_obs::timer();
    let threads = num_threads().min(units.max(1));
    if threads <= 1 || work < PAR_THRESHOLD {
        let mut acc = arena::take_zeroed(acc_len);
        for u in 0..units {
            f(u, &mut acc);
        }
        spec.stats.record(t, units as u64, false);
        crate::meter::add_exec(work, acc_len);
        return acc;
    }
    // Accumulators are allocated (from the caller's arena) and summed on
    // the calling thread; workers only fill the slices handed to them, so
    // buffers never migrate between per-thread arenas.
    let mut partials: Vec<Vec<f32>> = Vec::with_capacity(threads);
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(threads);
    let mut first = 0usize;
    for w in 0..threads {
        let n_units = share(units, threads, w);
        if n_units == 0 {
            break;
        }
        partials.push(arena::take_zeroed(acc_len));
        ranges.push((first, n_units));
        first += n_units;
    }
    {
        let slots: Vec<Slot<'_, (usize, usize, &mut [f32])>> = partials
            .iter_mut()
            .zip(ranges.iter())
            .map(|(acc, &(start, n))| Mutex::new(Some((start, n, acc.as_mut_slice()))))
            .collect();
        let f = &f;
        execute(slots.len(), &|w| {
            if let Some((start, n, acc)) = take_slot(&slots[w]) {
                for u in start..start + n {
                    f(u, acc);
                }
            }
        });
    }
    let mut it = partials.into_iter();
    // invariant: threads >= 2 here and units >= threads, so at least one
    // share (and one accumulator) exists.
    let mut acc = it.next().expect("at least one partial accumulator");
    for p in it {
        // Ascending-worker combine; simd::accum keeps one independent
        // vertical chain per element, so the order is unchanged.
        crate::simd::accum(&mut acc, &p);
        arena::recycle(p);
    }
    spec.stats.record(t, units as u64, true);
    crate::meter::add_exec(work, acc_len);
    acc
}

/// Snapshot every registered kernel's cumulative counters, in registry
/// order. Kernels with zero calls are included (callers filter).
pub fn kernel_stats() -> Vec<(&'static str, cts_obs::KernelCounters)> {
    kernels::ALL
        .iter()
        .map(|k| (k.name, k.stats.snapshot()))
        .collect()
}

/// Zero every registered kernel's counters.
pub fn reset_kernel_stats() {
    for k in kernels::ALL {
        k.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests here mutate the process-wide thread override; serialize them.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn thread_count_override_roundtrip() {
        let _g = LOCK.lock().unwrap();
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn dispatch_override_roundtrip() {
        let _g = LOCK.lock().unwrap();
        set_dispatch(Some(Dispatch::Spawn));
        assert_eq!(dispatch(), Dispatch::Spawn);
        set_dispatch(Some(Dispatch::Pool));
        assert_eq!(dispatch(), Dispatch::Pool);
        set_dispatch(None);
    }

    #[test]
    fn for_units_covers_every_unit_once() {
        let _g = LOCK.lock().unwrap();
        for threads in [1, 2, 5] {
            set_num_threads(threads);
            let mut out = vec![0.0f32; 7 * 3];
            // work above threshold to force the parallel path
            for_units(&kernels::EW_UNARY, &mut out, 3, PAR_THRESHOLD * 2, |first, chunk| {
                for (u, slot) in chunk.chunks_mut(3).enumerate() {
                    for s in slot.iter_mut() {
                        *s += (first + u) as f32;
                    }
                }
            });
            let expect: Vec<f32> = (0..7).flat_map(|u| [u as f32; 3]).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
        set_num_threads(0);
    }

    #[test]
    fn for_units_covers_every_unit_once_in_spawn_mode() {
        let _g = LOCK.lock().unwrap();
        set_dispatch(Some(Dispatch::Spawn));
        set_num_threads(3);
        let mut out = vec![0.0f32; 7 * 3];
        for_units(&kernels::EW_UNARY, &mut out, 3, PAR_THRESHOLD * 2, |first, chunk| {
            for (u, slot) in chunk.chunks_mut(3).enumerate() {
                for s in slot.iter_mut() {
                    *s += (first + u) as f32;
                }
            }
        });
        let expect: Vec<f32> = (0..7).flat_map(|u| [u as f32; 3]).collect();
        assert_eq!(out, expect);
        set_num_threads(0);
        set_dispatch(None);
    }

    #[test]
    fn for_units_small_work_stays_serial() {
        let _g = LOCK.lock().unwrap();
        set_num_threads(8);
        let mut out = vec![0.0f32; 4];
        let mut calls = std::sync::atomic::AtomicUsize::new(0);
        for_units(&kernels::EW_UNARY, &mut out, 1, 8, |_, chunk| {
            calls.fetch_add(1, Ordering::SeqCst);
            for s in chunk.iter_mut() {
                *s = 1.0;
            }
        });
        assert_eq!(*calls.get_mut(), 1, "below-threshold work must not split");
        assert_eq!(out, vec![1.0; 4]);
        set_num_threads(0);
    }

    #[test]
    fn partial_sums_matches_serial() {
        let _g = LOCK.lock().unwrap();
        let run = |threads| {
            set_num_threads(threads);
            partial_sums(&kernels::TEMPORAL_CONV_GRAD_W, 10, 4, PAR_THRESHOLD * 2, |u, acc| {
                for (i, a) in acc.iter_mut().enumerate() {
                    *a += (u * 4 + i) as f32;
                }
            })
        };
        let serial = run(1);
        let parallel = run(4);
        set_num_threads(0);
        assert_eq!(serial, parallel);
        // sum over u of (u*4 + 0) for i = 0: 0+4+..+36 = 180
        assert_eq!(serial[0], 180.0);
    }

    #[test]
    fn pool_persists_and_survives_reset() {
        let _g = LOCK.lock().unwrap();
        set_num_threads(4);
        let run_kernel = || {
            let mut out = vec![0.0f32; 64];
            for_units(&kernels::EW_UNARY, &mut out, 1, PAR_THRESHOLD * 2, |first, chunk| {
                for (u, s) in chunk.iter_mut().enumerate() {
                    *s = (first + u) as f32;
                }
            });
            out
        };
        let before = run_kernel();
        assert!(pool_workers() >= 3, "pool should have spawned workers");
        let workers = pool_workers();
        let again = run_kernel();
        assert_eq!(pool_workers(), workers, "steady state spawns no threads");
        reset_pool();
        assert_eq!(pool_workers(), 0);
        let after = run_kernel();
        assert_eq!(before, again);
        assert_eq!(before, after, "teardown/re-init must not change results");
        set_num_threads(0);
    }

    #[test]
    fn unregistered_spec_rejected() {
        static ROGUE: KernelSpec = KernelSpec {
            name: "rogue",
            partition: Partition::ContiguousUnits,
            reduction: Reduction::DisjointWrites,
            simd: SimdContract { lane_width: 1, order: LaneOrder::ScalarOnly },
            stats: cts_obs::KernelStats::new(),
        };
        assert!(!kernels::is_registered(&ROGUE));
        let panicked = std::panic::catch_unwind(|| {
            let mut out = vec![0.0f32; 4];
            for_units(&ROGUE, &mut out, 1, 8, |_, _| {});
        })
        .is_err();
        assert!(panicked, "unregistered kernel spec must be rejected");
    }

    #[test]
    fn wrong_reduction_entry_point_rejected() {
        // A disjoint-writes kernel must not reach the partial-sum combiner.
        let panicked = std::panic::catch_unwind(|| {
            partial_sums(&kernels::MATMUL, 4, 2, 8, |_, _| {});
        })
        .is_err();
        assert!(panicked, "reduction kind is part of the registered contract");
    }

    #[test]
    fn registry_names_unique_and_nonempty() {
        assert!(!kernels::ALL.is_empty());
        let mut names: Vec<&str> = kernels::ALL.iter().map(|k| k.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate kernel names in registry");
        for k in kernels::ALL {
            assert!(kernels::is_registered(k));
        }
    }
}
