//! Scoped-thread parallel partitioning for tensor kernels.
//!
//! Every data-parallel kernel in [`crate::ops`] funnels through the helpers
//! here. The model is deliberately simple: an output buffer is viewed as a
//! sequence of fixed-size *units* (a matmul output row, a softmax row, one
//! batch matrix, a single element, …) and contiguous runs of units are
//! dispatched to scoped worker threads (crossbeam-style scoped threads, so
//! kernels can borrow their inputs without `Arc`).
//!
//! # Thread count
//!
//! The worker count comes from, in priority order:
//!
//! 1. [`set_num_threads`] (process-wide override, mainly for tests/benches),
//! 2. the `CTS_NUM_THREADS` environment variable (read once, cached),
//! 3. [`std::thread::available_parallelism`].
//!
//! With a thread count of 1 every helper takes the exact serial code path,
//! so `CTS_NUM_THREADS=1` is bit-identical to a fully serial build.
//!
//! # Serial fallback
//!
//! Callers pass an estimated scalar-op count for the whole kernel; work
//! smaller than [`PAR_THRESHOLD`] never crosses a thread boundary, so tiny
//! tensors (the common case inside cell-search inner loops) pay nothing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Estimated scalar-op count below which kernels stay on the serial path.
///
/// Spawning a scoped thread costs on the order of tens of microseconds; at
/// roughly one fused multiply-add per nanosecond, work below ~32k ops is
/// cheaper to run in place than to fan out.
pub const PAR_THRESHOLD: usize = 32_768;

/// Sentinel meaning "no override set".
const UNSET: usize = usize::MAX;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(UNSET);
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

fn env_threads() -> usize {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("CTS_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// The worker-thread count kernels will use for sufficiently large work.
pub fn num_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        UNSET => env_threads(),
        n => n,
    }
}

/// Override the worker-thread count process-wide.
///
/// `n >= 1` forces that many workers; `n == 0` clears the override, falling
/// back to `CTS_NUM_THREADS` / available parallelism. Intended for tests and
/// benchmarks that compare serial and parallel execution in one process.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(if n == 0 { UNSET } else { n }, Ordering::Relaxed);
}

/// Split `units` items over `threads` workers: first `rem` workers get one
/// extra unit. Returns the unit count for worker `w`.
fn share(units: usize, threads: usize, w: usize) -> usize {
    units / threads + usize::from(w < units % threads)
}

/// Partition `out` into contiguous units of `unit_len` elements and run
/// `f(first_unit, units_slice)` over disjoint runs of units, in parallel
/// when `work` (estimated scalar ops) is large enough.
///
/// `out.len()` must be a multiple of `unit_len`. The serial path is a single
/// `f(0, out)` call, so `f` must handle any number of units.
pub fn for_units<F>(out: &mut [f32], unit_len: usize, work: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert!(unit_len > 0 && out.len().is_multiple_of(unit_len));
    let units = out.len() / unit_len;
    let threads = num_threads().min(units);
    if threads <= 1 || work < PAR_THRESHOLD {
        if !out.is_empty() {
            f(0, out);
        }
        return;
    }
    crossbeam::thread::scope(|s| {
        let f = &f;
        let mut rest = out;
        let mut first = 0usize;
        for w in 0..threads {
            let n_units = share(units, threads, w);
            if n_units == 0 {
                break;
            }
            let (head, tail) = rest.split_at_mut(n_units * unit_len);
            rest = tail;
            let start = first;
            s.spawn(move |_| f(start, head));
            first += n_units;
        }
    })
    .expect("parallel kernel worker panicked");
}

/// Parallel accumulation: each worker owns a zeroed `acc_len` buffer, calls
/// `f(unit, acc)` for its run of units, and the per-worker buffers are summed
/// (in worker order) into the returned vector.
///
/// Used by kernels whose output is shared across units (e.g. a weight
/// gradient accumulated over a batch). Summation order of partial buffers is
/// deterministic for a fixed thread count; with 1 thread it is exactly the
/// serial accumulation order.
pub fn partial_sums<F>(units: usize, acc_len: usize, work: usize, f: F) -> Vec<f32>
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let threads = num_threads().min(units.max(1));
    if threads <= 1 || work < PAR_THRESHOLD {
        let mut acc = vec![0.0f32; acc_len];
        for u in 0..units {
            f(u, &mut acc);
        }
        return acc;
    }
    let mut partials: Vec<Vec<f32>> = Vec::with_capacity(threads);
    crossbeam::thread::scope(|s| {
        let f = &f;
        let mut handles = Vec::with_capacity(threads);
        let mut first = 0usize;
        for w in 0..threads {
            let n_units = share(units, threads, w);
            if n_units == 0 {
                break;
            }
            let start = first;
            handles.push(s.spawn(move |_| {
                let mut acc = vec![0.0f32; acc_len];
                for u in start..start + n_units {
                    f(u, &mut acc);
                }
                acc
            }));
            first += n_units;
        }
        for h in handles {
            partials.push(h.join().expect("parallel accumulation worker panicked"));
        }
    })
    .expect("parallel accumulation scope failed");
    let mut acc = partials.remove(0);
    for p in &partials {
        for (a, &v) in acc.iter_mut().zip(p.iter()) {
            *a += v;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests here mutate the process-wide thread override; serialize them.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn thread_count_override_roundtrip() {
        let _g = LOCK.lock().unwrap();
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn for_units_covers_every_unit_once() {
        let _g = LOCK.lock().unwrap();
        for threads in [1, 2, 5] {
            set_num_threads(threads);
            let mut out = vec![0.0f32; 7 * 3];
            // work above threshold to force the parallel path
            for_units(&mut out, 3, PAR_THRESHOLD * 2, |first, chunk| {
                for (u, slot) in chunk.chunks_mut(3).enumerate() {
                    for s in slot.iter_mut() {
                        *s += (first + u) as f32;
                    }
                }
            });
            let expect: Vec<f32> = (0..7).flat_map(|u| [u as f32; 3]).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
        set_num_threads(0);
    }

    #[test]
    fn for_units_small_work_stays_serial() {
        let _g = LOCK.lock().unwrap();
        set_num_threads(8);
        let mut out = vec![0.0f32; 4];
        let mut calls = std::sync::atomic::AtomicUsize::new(0);
        for_units(&mut out, 1, 8, |_, chunk| {
            calls.fetch_add(1, Ordering::SeqCst);
            for s in chunk.iter_mut() {
                *s = 1.0;
            }
        });
        assert_eq!(*calls.get_mut(), 1, "below-threshold work must not split");
        assert_eq!(out, vec![1.0; 4]);
        set_num_threads(0);
    }

    #[test]
    fn partial_sums_matches_serial() {
        let _g = LOCK.lock().unwrap();
        let run = |threads| {
            set_num_threads(threads);
            partial_sums(10, 4, PAR_THRESHOLD * 2, |u, acc| {
                for (i, a) in acc.iter_mut().enumerate() {
                    *a += (u * 4 + i) as f32;
                }
            })
        };
        let serial = run(1);
        let parallel = run(4);
        set_num_threads(0);
        assert_eq!(serial, parallel);
        // sum over u of (u*4 + 0) for i = 0: 0+4+..+36 = 180
        assert_eq!(serial[0], 180.0);
    }
}
