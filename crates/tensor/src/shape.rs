//! Shape arithmetic: strides, broadcasting, and index helpers.

/// A tensor shape: the extent of every dimension, outermost first.
pub type Shape = Vec<usize>;

/// Row-major strides for `shape` (in elements, not bytes).
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0; shape.len()];
    let mut acc = 1usize;
    for (stride, &dim) in strides.iter_mut().zip(shape.iter()).rev() {
        *stride = acc;
        acc *= dim;
    }
    strides
}

/// Number of elements a shape holds.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// NumPy-style broadcast of two shapes (align from the right; each dimension
/// must be equal or one of them must be 1).
///
/// Returns `None` when the shapes are incompatible.
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Option<Shape> {
    let rank = a.len().max(b.len());
    let mut out = vec![0; rank];
    for i in 0..rank {
        let da = dim_from_right(a, i);
        let db = dim_from_right(b, i);
        let d = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return None;
        };
        out[rank - 1 - i] = d;
    }
    Some(out)
}

/// Dimension `i` counting from the right, treating missing dims as 1.
pub fn dim_from_right(shape: &[usize], i: usize) -> usize {
    if i < shape.len() {
        shape[shape.len() - 1 - i]
    } else {
        1
    }
}

/// Convert a flat index into multi-dimensional coordinates for `shape`.
pub fn unravel(mut flat: usize, shape: &[usize]) -> Vec<usize> {
    let mut coords = vec![0; shape.len()];
    for i in (0..shape.len()).rev() {
        coords[i] = flat % shape[i];
        flat /= shape[i];
    }
    coords
}

/// Convert coordinates into a flat row-major index for `shape`.
pub fn ravel(coords: &[usize], shape: &[usize]) -> usize {
    debug_assert_eq!(coords.len(), shape.len());
    let mut flat = 0;
    for (c, d) in coords.iter().zip(shape.iter()) {
        debug_assert!(c < d);
        flat = flat * d + c;
    }
    flat
}

/// Flat index into a tensor of `shape` for coordinates in a *broadcast* space:
/// dimensions where `shape` is 1 are pinned to 0.
pub fn ravel_broadcast(coords: &[usize], shape: &[usize]) -> usize {
    let offset = coords.len() - shape.len();
    let mut flat = 0;
    for (i, &d) in shape.iter().enumerate() {
        let c = if d == 1 { 0 } else { coords[offset + i] };
        flat = flat * d + c;
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[5]), vec![1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[3], &[2, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[4, 1, 3], &[2, 1]), Some(vec![4, 2, 3]));
        assert_eq!(broadcast_shapes(&[2, 3], &[4, 3]), None);
    }

    #[test]
    fn ravel_roundtrip() {
        let shape = [2, 3, 4];
        for flat in 0..numel(&shape) {
            let coords = unravel(flat, &shape);
            assert_eq!(ravel(&coords, &shape), flat);
        }
    }

    #[test]
    fn ravel_broadcast_pins_ones() {
        // shape [1,3] viewed in broadcast space [2,3]
        assert_eq!(ravel_broadcast(&[1, 2], &[1, 3]), 2);
        // scalar-ish shape [] -> always 0
        assert_eq!(ravel_broadcast(&[1, 2], &[]), 0);
    }
}
