//! Shape arithmetic: strides, broadcasting, and index helpers.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Ranks up to this are stored inline; higher ranks spill to the heap.
pub const INLINE_RANK: usize = 6;

/// A tensor shape: the extent of every dimension, outermost first.
///
/// Stored inline for ranks up to [`INLINE_RANK`] so that the per-tensor
/// shape/stride/coordinate bookkeeping of a training step never touches
/// the heap — the same churn-elimination story as the data-buffer
/// [`crate::arena`], but for metadata. Derefs to `&[usize]`, so all
/// read-side code treats it exactly like the `Vec<usize>` it replaced.
#[derive(Clone, Default)]
pub struct Shape {
    len: usize,
    inline: [usize; INLINE_RANK],
    // Used only when `len > INLINE_RANK`; an empty Vec never allocates.
    spill: Vec<usize>,
}

impl Shape {
    /// Shape with the dims of `dims`.
    pub fn from_slice(dims: &[usize]) -> Self {
        let mut s = Shape { len: dims.len(), ..Shape::default() };
        if dims.len() <= INLINE_RANK {
            s.inline[..dims.len()].copy_from_slice(dims);
        } else {
            s.spill = dims.to_vec();
        }
        s
    }

    /// The dims as a plain slice.
    pub fn as_slice(&self) -> &[usize] {
        self
    }

    /// Append a trailing dimension (spills to the heap past the inline rank).
    pub fn push(&mut self, dim: usize) {
        if self.len < INLINE_RANK {
            self.inline[self.len] = dim;
        } else {
            if self.len == INLINE_RANK {
                self.spill.reserve(INLINE_RANK + 2);
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(dim);
        }
        self.len += 1;
    }

    /// All-zero shape of the given rank (for building strides/coords).
    pub fn zeros(rank: usize) -> Self {
        let mut s = Shape { len: rank, ..Shape::default() };
        if rank > INLINE_RANK {
            s.spill = vec![0; rank];
        }
        s
    }
}

impl Deref for Shape {
    type Target = [usize];
    fn deref(&self) -> &[usize] {
        if self.len <= INLINE_RANK {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }
}

impl DerefMut for Shape {
    fn deref_mut(&mut self) -> &mut [usize] {
        if self.len <= INLINE_RANK {
            &mut self.inline[..self.len]
        } else {
            &mut self.spill
        }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::from_slice(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        if dims.len() > INLINE_RANK {
            Shape { len: dims.len(), inline: [0; INLINE_RANK], spill: dims }
        } else {
            Shape::from_slice(&dims)
        }
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::from_slice(&dims)
    }
}

impl FromIterator<usize> for Shape {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = Shape::default();
        for d in iter {
            if s.len < INLINE_RANK {
                s.inline[s.len] = d;
            } else {
                if s.len == INLINE_RANK {
                    s.spill.reserve(INLINE_RANK + 2);
                    s.spill.extend_from_slice(&s.inline);
                }
                s.spill.push(d);
            }
            s.len += 1;
        }
        s
    }
}

impl<'a> IntoIterator for &'a Shape {
    type Item = &'a usize;
    type IntoIter = std::slice::Iter<'a, usize>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl PartialEq for Shape {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Shape {}

impl PartialEq<[usize]> for Shape {
    fn eq(&self, other: &[usize]) -> bool {
        **self == *other
    }
}

impl PartialEq<&[usize]> for Shape {
    fn eq(&self, other: &&[usize]) -> bool {
        **self == **other
    }
}

impl PartialEq<Vec<usize>> for Shape {
    fn eq(&self, other: &Vec<usize>) -> bool {
        **self == other[..]
    }
}

impl<const N: usize> PartialEq<[usize; N]> for Shape {
    fn eq(&self, other: &[usize; N]) -> bool {
        **self == other[..]
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render like the slice/Vec it replaced, so shape-mismatch panic
        // messages are unchanged.
        fmt::Debug::fmt(&**self, f)
    }
}

/// Row-major strides for `shape` (in elements, not bytes).
pub fn strides_for(shape: &[usize]) -> Shape {
    let mut strides = Shape::zeros(shape.len());
    let mut acc = 1usize;
    for (stride, &dim) in strides.iter_mut().zip(shape.iter()).rev() {
        *stride = acc;
        acc *= dim;
    }
    strides
}

/// Number of elements a shape holds.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// NumPy-style broadcast of two shapes (align from the right; each dimension
/// must be equal or one of them must be 1).
///
/// Returns `None` when the shapes are incompatible.
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Option<Shape> {
    let rank = a.len().max(b.len());
    let mut out = Shape::zeros(rank);
    for i in 0..rank {
        let da = dim_from_right(a, i);
        let db = dim_from_right(b, i);
        let d = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return None;
        };
        out[rank - 1 - i] = d;
    }
    Some(out)
}

/// Dimension `i` counting from the right, treating missing dims as 1.
pub fn dim_from_right(shape: &[usize], i: usize) -> usize {
    if i < shape.len() {
        shape[shape.len() - 1 - i]
    } else {
        1
    }
}

/// Convert a flat index into multi-dimensional coordinates for `shape`.
pub fn unravel(mut flat: usize, shape: &[usize]) -> Shape {
    let mut coords = Shape::zeros(shape.len());
    for i in (0..shape.len()).rev() {
        coords[i] = flat % shape[i];
        flat /= shape[i];
    }
    coords
}

/// Convert coordinates into a flat row-major index for `shape`.
pub fn ravel(coords: &[usize], shape: &[usize]) -> usize {
    debug_assert_eq!(coords.len(), shape.len());
    let mut flat = 0;
    for (c, d) in coords.iter().zip(shape.iter()) {
        debug_assert!(c < d);
        flat = flat * d + c;
    }
    flat
}

/// Flat index into a tensor of `shape` for coordinates in a *broadcast* space:
/// dimensions where `shape` is 1 are pinned to 0.
pub fn ravel_broadcast(coords: &[usize], shape: &[usize]) -> usize {
    let offset = coords.len() - shape.len();
    let mut flat = 0;
    for (i, &d) in shape.iter().enumerate() {
        let c = if d == 1 { 0 } else { coords[offset + i] };
        flat = flat * d + c;
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[5]), vec![1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[4, 1, 3], &[2, 1]).unwrap(), vec![4, 2, 3]);
        assert_eq!(broadcast_shapes(&[2, 3], &[4, 3]), None);
    }

    #[test]
    fn ravel_roundtrip() {
        let shape = [2, 3, 4];
        for flat in 0..numel(&shape) {
            let coords = unravel(flat, &shape);
            assert_eq!(ravel(&coords, &shape), flat);
        }
    }

    #[test]
    fn ravel_broadcast_pins_ones() {
        // shape [1,3] viewed in broadcast space [2,3]
        assert_eq!(ravel_broadcast(&[1, 2], &[1, 3]), 2);
        // scalar-ish shape [] -> always 0
        assert_eq!(ravel_broadcast(&[1, 2], &[]), 0);
    }
}
