//! The dense, contiguous, row-major `f32` tensor.

use crate::arena;
use crate::shape::{numel, ravel, strides_for, Shape};
use std::fmt;

/// A dense row-major `f32` tensor of arbitrary rank.
///
/// Cloning copies the buffer; all workspace code passes `&Tensor` on hot
/// paths and relies on explicit `clone` when ownership is needed.
///
/// Buffers come from (and return to, on drop) the thread-local
/// [`crate::arena`], so the create/destroy churn of a training step
/// recycles a steady-state set of allocations instead of hitting the
/// system allocator per op.
#[derive(PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Self {
            shape: self.shape.clone(),
            data: arena::take_copied(&self.data),
        }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        arena::recycle(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    /// Build a tensor from a shape and a data buffer.
    ///
    /// # Panics
    /// Panics when `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            numel(&shape),
            data.len(),
            "shape {:?} needs {} elements, got {}",
            shape,
            numel(&shape),
            data.len()
        );
        Self { shape, data }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = numel(&shape);
        Self { shape, data: arena::take_zeroed(n) }
    }

    /// All-ones tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = numel(&shape);
        Self { shape, data: arena::take_filled(n, value) }
    }

    /// Rank-0-like scalar stored as shape `[1]`.
    pub fn scalar(value: f32) -> Self {
        Self { shape: [1].into(), data: arena::take_filled(1, value) }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros([n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its buffer.
    pub fn into_vec(mut self) -> Vec<f32> {
        // `Tensor: Drop`, so the field is taken rather than moved out; the
        // drop then recycles an empty vec, which the arena ignores.
        std::mem::take(&mut self.data)
    }

    /// Element access by coordinates.
    pub fn at(&self, coords: &[usize]) -> f32 {
        self.data[ravel(coords, &self.shape)]
    }

    /// Mutable element access by coordinates.
    pub fn at_mut(&mut self, coords: &[usize]) -> &mut f32 {
        &mut self.data[ravel(coords, &self.shape)]
    }

    /// The single value of a one-element tensor.
    ///
    /// # Panics
    /// Panics when the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on tensor of shape {:?}", self.shape);
        self.data[0]
    }

    /// Reinterpret the buffer with a new shape of identical element count.
    pub fn reshaped(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(numel(&shape), self.data.len(), "reshape {:?} -> {:?}", self.shape, shape);
        self.shape = shape;
        self
    }

    /// Row-major strides.
    pub fn strides(&self) -> Shape {
        strides_for(&self.shape)
    }

    /// Apply `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: arena::take_from_iter(self.data.len(), self.data.iter().map(|&x| f(x))),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for empty tensors).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Elementwise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// In-place `self += alpha * other` (shapes must match exactly).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        crate::simd::axpy(&mut self.data, alpha, &other.data);
    }

    /// In-place scale by `alpha`.
    pub fn scale_inplace(&mut self, alpha: f32) {
        crate::simd::scale_in_place(&mut self.data, alpha);
    }

    /// Fill the buffer with a constant.
    pub fn fill(&mut self, value: f32) {
        for a in self.data.iter_mut() {
            *a = value;
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            let head: Vec<f32> = self.data[..8].to_vec();
            write!(f, " [{:?}.. ({} elems)]", head, self.data.len())
        }
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.shape(), &[2, 3]);
        assert_eq!(z.sum(), 0.0);
        let o = Tensor::ones([4]);
        assert_eq!(o.sum(), 4.0);
        let e = Tensor::eye(3);
        assert_eq!(e.sum(), 3.0);
        assert_eq!(e.at(&[1, 1]), 1.0);
        assert_eq!(e.at(&[0, 1]), 0.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_wrong_len_panics() {
        let _ = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn indexing_and_mutation() {
        let mut t = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect());
        assert_eq!(t.at(&[1, 2]), 5.0);
        *t.at_mut(&[0, 1]) = 9.0;
        assert_eq!(t.at(&[0, 1]), 9.0);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec([4], vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(t.sum(), -2.0);
        assert_eq!(t.mean(), -0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -4.0);
        assert!((t.norm() - (30.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::ones([3]);
        let b = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3.0, 5.0, 7.0]);
        a.scale_inplace(0.5);
        assert_eq!(a.data(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn nan_detection() {
        let mut t = Tensor::zeros([2]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }
}
