//! Random tensor initializers.
//!
//! Every initializer takes an explicit RNG so experiments stay reproducible;
//! the workspace never touches a global RNG.

use crate::Tensor;
use rand::Rng;

/// Uniform in `[lo, hi)`.
pub fn uniform(rng: &mut impl Rng, shape: impl Into<Vec<usize>>, lo: f32, hi: f32) -> Tensor {
    let shape = shape.into();
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data)
}

/// Standard normal scaled by `std` (Box–Muller).
pub fn normal(rng: &mut impl Rng, shape: impl Into<Vec<usize>>, std: f32) -> Tensor {
    let shape = shape.into();
    let n: usize = shape.iter().product();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(1e-7f32..1.0);
        let u2: f32 = rng.gen_range(0.0f32..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(shape, data)
}

/// Glorot/Xavier uniform for a weight with `fan_in`/`fan_out`.
pub fn xavier_uniform(rng: &mut impl Rng, shape: impl Into<Vec<usize>>, fan_in: usize, fan_out: usize) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, shape, -bound, bound)
}

/// Kaiming/He uniform for ReLU networks.
pub fn kaiming_uniform(rng: &mut impl Rng, shape: impl Into<Vec<usize>>, fan_in: usize) -> Tensor {
    let bound = (3.0f32 / fan_in as f32).sqrt();
    uniform(rng, shape, -bound, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let t = uniform(&mut rng, [1000], -0.5, 0.5);
        assert!(t.max() < 0.5 && t.min() >= -0.5);
    }

    #[test]
    fn normal_moments() {
        let mut rng = SmallRng::seed_from_u64(2);
        let t = normal(&mut rng, [20000], 2.0);
        assert!(t.mean().abs() < 0.1, "mean {}", t.mean());
        let var: f32 = t.data().iter().map(|x| x * x).sum::<f32>() / t.len() as f32;
        assert!((var - 4.0).abs() < 0.3, "var {}", var);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        assert_eq!(
            uniform(&mut a, [16], -1.0, 1.0).data(),
            uniform(&mut b, [16], -1.0, 1.0).data()
        );
    }

    #[test]
    fn xavier_bound_shrinks_with_fan() {
        let mut rng = SmallRng::seed_from_u64(3);
        let t = xavier_uniform(&mut rng, [1000], 300, 300);
        assert!(t.max() <= 0.1 + 1e-6);
    }
}
