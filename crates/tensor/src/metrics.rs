//! Tensor-layer observability roll-ups: emits per-kernel, arena, and
//! worker-pool counter rows into the `cts-obs` run log.
//!
//! The obs crate sits *below* this one in the dependency graph (so the
//! hot paths in [`crate::parallel`] / [`crate::pool`] can record into it),
//! which means `cts-obs` cannot itself read tensor-layer state — this
//! module is the bridge that publishes it. Callers pair
//! [`emit_epoch_rows`] with `cts_obs::emit_epoch_rows` (phases + tape)
//! once per epoch.

use crate::{arena, parallel};
use cts_obs::runlog::{self, Value};

/// Emit one epoch's tensor-layer rows into the run log: a `kernel` row
/// per active kernel, one `arena` row (plus `arena_class` rows for active
/// size classes), and one `pool` row. Counters are cumulative; the
/// `report` summarizer diffs/aggregates them. No-op when metrics are off.
pub fn emit_epoch_rows(epoch: u64) {
    if !cts_obs::metrics_enabled() {
        return;
    }
    emit_host_row();
    for (name, c) in parallel::kernel_stats() {
        if c.calls == 0 {
            continue;
        }
        runlog::emit(
            "kernel",
            &[
                ("epoch", Value::U64(epoch)),
                ("name", Value::Str(name)),
                ("calls", Value::U64(c.calls)),
                ("parallel_calls", Value::U64(c.parallel_calls)),
                ("simd_calls", Value::U64(c.simd_calls)),
                ("units", Value::U64(c.units)),
                ("ns", Value::U64(c.ns)),
            ],
        );
    }
    let a = arena::stats();
    runlog::emit(
        "arena",
        &[
            ("epoch", Value::U64(epoch)),
            ("hits", Value::U64(a.hits)),
            ("misses", Value::U64(a.misses)),
            ("recycled", Value::U64(a.recycled)),
            ("discarded", Value::U64(a.discarded)),
            ("resident_floats", Value::U64(a.resident_floats)),
        ],
    );
    for c in arena::class_stats() {
        runlog::emit(
            "arena_class",
            &[
                ("epoch", Value::U64(epoch)),
                ("class", Value::U64(c.class as u64)),
                ("buffers", Value::U64(c.buffers as u64)),
                ("resident_floats", Value::U64(c.resident_floats)),
                ("hits", Value::U64(c.hits)),
                ("misses", Value::U64(c.misses)),
            ],
        );
    }
    let p = parallel::pool_stats();
    let busy_total: u64 = p.busy_ns.iter().sum();
    runlog::emit(
        "pool",
        &[
            ("epoch", Value::U64(epoch)),
            ("workers", Value::U64(p.workers as u64)),
            ("dispatches", Value::U64(p.dispatches)),
            ("nested_serial", Value::U64(p.nested_serial)),
            ("wakes", Value::U64(p.wakes)),
            ("parks", Value::U64(p.parks)),
            ("busy_ns_total", Value::U64(busy_total)),
        ],
    );
}

/// Emit one `host` row per process: available hardware parallelism plus
/// the detected and active SIMD levels. `cts-obs` sits below this crate
/// and cannot ask [`crate::simd`] itself, so the tensor layer publishes
/// the facts the `report` summarizer needs to judge whether `simd_calls`
/// counters reflect a capable host running scalar fallbacks.
fn emit_host_row() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let par = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        runlog::emit(
            "host",
            &[
                ("available_parallelism", Value::U64(par as u64)),
                ("simd_detected", Value::Str(crate::simd::detected_name())),
                ("simd_active", Value::Str(crate::simd::level_name())),
            ],
        );
    });
}

/// Zero every tensor-layer counter (kernels, arena, pool) — used at run
/// start so cumulative rows start from a clean slate.
pub fn reset() {
    parallel::reset_kernel_stats();
    parallel::reset_pool_stats();
    arena::reset_stats();
}
