//! Persistent worker pool behind [`crate::parallel`].
//!
//! PR 1's dispatch spawned OS threads per kernel call (crossbeam scoped
//! threads). That costs tens of microseconds per launch — fatal in the
//! bi-level search loop, which issues thousands of small kernels per
//! epoch. This pool spawns workers once (lazily, on the first parallel
//! kernel), parks them on a condvar between jobs, and wakes them with a
//! generation counter, so steady-state dispatch is a mutex + condvar
//! round-trip instead of a thread spawn.
//!
//! Determinism is unaffected by construction: the pool only changes *who*
//! executes a share, never how shares are partitioned (`share()`) or how
//! partial results are combined (fixed worker order) — both stay in
//! [`crate::parallel`].
//!
//! # Protocol
//!
//! - `run(n_shares, task)` publishes one job: the calling thread executes
//!   share 0 itself, workers `1..n_shares` execute theirs, and `run` does
//!   not return until every worker finished. Jobs are serialized by a
//!   dispatch mutex (concurrent callers queue; the pool is a process-wide
//!   singleton).
//! - Workers park in `Condvar::wait` and identify fresh work by an
//!   incrementing job epoch, so there are no missed or double-executed
//!   jobs across spurious wakeups.
//! - A worker panic is caught, recorded, and re-raised on the dispatching
//!   thread after the job drains; a dispatcher panic still waits for its
//!   workers before unwinding (see `CompletionGuard`), so the borrow
//!   erased in [`ErasedTask`] can never dangle.
//! - Nested dispatch (a kernel closure issuing another parallel kernel)
//!   falls back to executing all shares serially in ascending order on
//!   the current thread — deadlock-free and bit-identical, because share
//!   execution order never affects results.
//!
//! # Why `unsafe` (and why only here)
//!
//! Persistent threads cannot borrow from a caller's stack frame in safe
//! Rust — that is exactly the lifetime crossing scoped threads exist for.
//! The pool erases the task borrow to a raw pointer for the duration of
//! one job and re-establishes the invariant dynamically: the dispatcher
//! blocks until `active == 0` before the borrow ends. This is the only
//! module in the crate allowed to use `unsafe` (the crate is
//! `deny(unsafe_code)`), and the two exceptions below carry their proofs.

#![allow(unsafe_code)]

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

// --- Observability counters (always-on atomics; timing metrics-gated) ---

/// Jobs published to workers (parallel regions with at least one worker).
static DISPATCHES: AtomicU64 = AtomicU64::new(0);
/// Nested parallel regions degraded to in-place serial execution.
static NESTED_SERIAL: AtomicU64 = AtomicU64::new(0);
/// Worker job pickups (wake transitions out of the condvar).
static WAKES: AtomicU64 = AtomicU64::new(0);
/// Worker condvar waits entered (park transitions).
static PARKS: AtomicU64 = AtomicU64::new(0);
/// Per-worker busy nanoseconds; worker `id` accumulates into slot
/// `min(id - 1, N_BUSY - 1)` (ids beyond the tracked range fold into the
/// last slot). Only advances while `cts_obs::metrics_enabled()`.
const N_BUSY: usize = 64;
static BUSY_NS: [AtomicU64; N_BUSY] = [const { AtomicU64::new(0) }; N_BUSY];

fn busy_slot(id: usize) -> &'static AtomicU64 {
    &BUSY_NS[(id - 1).min(N_BUSY - 1)]
}

/// Snapshot the pool's dispatch counters.
pub(crate) fn stats() -> cts_obs::PoolStats {
    let workers = worker_count();
    cts_obs::PoolStats {
        workers,
        dispatches: DISPATCHES.load(Ordering::Relaxed),
        nested_serial: NESTED_SERIAL.load(Ordering::Relaxed),
        wakes: WAKES.load(Ordering::Relaxed),
        parks: PARKS.load(Ordering::Relaxed),
        busy_ns: BUSY_NS[..workers.clamp(1, N_BUSY)]
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect(),
    }
}

/// Zero the pool's dispatch counters (worker count is live state, not a
/// counter, and is unaffected).
pub(crate) fn reset_stats() {
    DISPATCHES.store(0, Ordering::Relaxed);
    NESTED_SERIAL.store(0, Ordering::Relaxed);
    WAKES.store(0, Ordering::Relaxed);
    PARKS.store(0, Ordering::Relaxed);
    for a in &BUSY_NS {
        a.store(0, Ordering::Relaxed);
    }
}

/// Lifetime-erased pointer to the current job's share closure. The
/// pointee type is `+ 'static` only because a stored trait object must
/// name *some* lifetime — the actual borrow is shorter and is kept alive
/// dynamically (see `run` / `CompletionGuard`).
struct ErasedTask(*const (dyn Fn(usize) + Sync + 'static));

// The pointer is created from a `&(dyn Fn(usize) + Sync)` in `run`, which
// does not return (and does not let the erased borrow end, even on panic —
// see `CompletionGuard`) until `active == 0`, i.e. until every worker has
// finished dereferencing it.
// SAFETY: the pointee outlives all worker accesses (above) and is `Sync`,
// so concurrent `&`-calls from multiple workers are sound.
unsafe impl Send for ErasedTask {}
// SAFETY: as above — shared access to a `Sync` closure.
unsafe impl Sync for ErasedTask {}

struct State {
    /// Job generation counter; bumped once per published job.
    epoch: u64,
    /// The currently published job, if any.
    task: Option<ErasedTask>,
    /// Worker ids `1..=participants` run the current job.
    participants: usize,
    /// Participants that have not yet finished the current job.
    active: usize,
    /// Worker threads currently alive.
    spawned: usize,
    /// Set while `shutdown` drains the pool.
    quitting: bool,
    /// A worker panicked during the current job.
    panicked: bool,
}

struct Pool {
    state: Mutex<State>,
    /// Workers park here between jobs.
    work: Condvar,
    /// The dispatcher parks here until `active == 0`.
    done: Condvar,
    /// Serializes dispatches: one parallel region at a time.
    dispatch: Mutex<()>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// True while this thread is inside a parallel region (dispatcher or
    /// worker); nested dispatch then runs all shares serially in place.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(State {
            epoch: 0,
            task: None,
            participants: 0,
            active: 0,
            spawned: 0,
            quitting: false,
            panicked: false,
        }),
        work: Condvar::new(),
        done: Condvar::new(),
        dispatch: Mutex::new(()),
        handles: Mutex::new(Vec::new()),
    })
}

/// Poison-tolerant lock: a panicking kernel closure must not wedge the
/// pool for every subsequent kernel in the process.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Waits out the current job on drop, then clears it. Exists so that a
/// panic in the dispatcher's own share cannot end the erased borrow while
/// workers still hold the task pointer.
struct CompletionGuard {
    p: &'static Pool,
    engaged: bool,
}

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        if self.engaged {
            let mut st = lock(&self.p.state);
            while st.active > 0 {
                st = self
                    .p
                    .done
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            st.task = None;
        }
        IN_PARALLEL.with(|f| f.set(false));
    }
}

/// Execute `task(0) ..= task(n_shares - 1)`, share 0 on the calling
/// thread, the rest on pool workers. Returns after all shares complete;
/// propagates the first panic observed.
pub(crate) fn run(n_shares: usize, task: &(dyn Fn(usize) + Sync)) {
    if n_shares == 0 {
        return;
    }
    let nested = IN_PARALLEL.with(|f| f.replace(true));
    if nested {
        // Nested parallel region (kernel inside kernel): run every share
        // in ascending order right here. Share execution order never
        // affects results, so this is bit-identical and deadlock-free.
        // The flag was already true; leave it for the outer region.
        NESTED_SERIAL.fetch_add(1, Ordering::Relaxed);
        for w in 0..n_shares {
            task(w);
        }
        return;
    }
    let p = pool();
    let region = lock(&p.dispatch);
    let needed = n_shares - 1;
    if needed > 0 {
        DISPATCHES.fetch_add(1, Ordering::Relaxed);
        let mut st = lock(&p.state);
        spawn_to(p, &mut st, needed);
        st.epoch += 1;
        // Pure lifetime erasure to satisfy ErasedTask's stored type; the
        // borrow stays alive until every worker finished with it.
        // SAFETY: `run` does not return (even on panic: CompletionGuard)
        // before `active == 0`, and `task` is cleared right after.
        let erased = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        };
        st.task = Some(ErasedTask(erased));
        st.participants = needed;
        st.active = needed;
        st.panicked = false;
        drop(st);
        p.work.notify_all();
    }
    let guard = CompletionGuard {
        p,
        engaged: needed > 0,
    };
    let own = catch_unwind(AssertUnwindSafe(|| task(0)));
    drop(guard); // waits for all workers, clears the job, resets the flag
    let worker_panicked = lock(&p.state).panicked;
    drop(region);
    match own {
        Err(payload) => resume_unwind(payload),
        Ok(()) if worker_panicked => panic!("parallel kernel worker panicked"),
        Ok(()) => {}
    }
}

/// Spawn workers until `needed` are alive. Called under the state lock.
fn spawn_to(p: &'static Pool, st: &mut State, needed: usize) {
    while st.spawned < needed {
        let id = st.spawned + 1;
        let h = std::thread::Builder::new()
            .name(format!("cts-pool-{id}"))
            .spawn(move || worker_loop(id))
            // invariant: thread spawn only fails on resource exhaustion,
            // at which point the process cannot make progress anyway.
            .expect("failed to spawn pool worker");
        lock(&p.handles).push(h);
        st.spawned += 1;
    }
}

fn worker_loop(id: usize) {
    // invariant: workers are only spawned from `run`, after POOL is set.
    let p = POOL.get().expect("pool initialised before workers spawn");
    let mut seen = 0u64;
    let mut st = lock(&p.state);
    loop {
        if st.quitting {
            return;
        }
        if st.epoch != seen {
            seen = st.epoch;
            if id <= st.participants {
                if let Some(t) = &st.task {
                    let task = t.0;
                    drop(st);
                    WAKES.fetch_add(1, Ordering::Relaxed);
                    let busy = cts_obs::timer();
                    IN_PARALLEL.with(|f| f.set(true));
                    // SAFETY: the dispatcher keeps the closure (and all
                    // it borrows) alive until `active` drops to 0 — only
                    // after this call returns; it is `Sync` (ErasedTask).
                    let r = catch_unwind(AssertUnwindSafe(|| (unsafe { &*task })(id)));
                    IN_PARALLEL.with(|f| f.set(false));
                    if let Some(ns) = busy.elapsed_ns() {
                        busy_slot(id).fetch_add(ns, Ordering::Relaxed);
                    }
                    st = lock(&p.state);
                    if r.is_err() {
                        st.panicked = true;
                    }
                    st.active -= 1;
                    if st.active == 0 {
                        p.done.notify_all();
                    }
                    continue;
                }
            }
        }
        PARKS.fetch_add(1, Ordering::Relaxed);
        st = p
            .work
            .wait(st)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

/// Join every worker and reset the pool to its never-started state. The
/// next parallel kernel lazily respawns workers. Used by tests to prove
/// teardown/re-init keeps results bit-identical, and available to hosts
/// that want to reclaim the threads.
pub(crate) fn shutdown() {
    let Some(p) = POOL.get() else { return };
    let _region = lock(&p.dispatch);
    {
        let mut st = lock(&p.state);
        if st.spawned == 0 {
            return;
        }
        st.quitting = true;
    }
    p.work.notify_all();
    let handles = std::mem::take(&mut *lock(&p.handles));
    for h in handles {
        let _ = h.join();
    }
    let mut st = lock(&p.state);
    *st = State {
        epoch: 0,
        task: None,
        participants: 0,
        active: 0,
        spawned: 0,
        quitting: false,
        panicked: false,
    };
}

/// Number of worker threads currently parked in the pool (not counting
/// dispatching callers, which always run share 0 themselves).
pub(crate) fn worker_count() -> usize {
    POOL.get().map_or(0, |p| lock(&p.state).spawned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    // The pool is a process-wide singleton; tests that count workers or
    // tear the pool down serialize here.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn runs_every_share_exactly_once() {
        let _g = lock(&TEST_LOCK);
        for n in [1usize, 2, 3, 7] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            run(n, &|w| {
                hits[w].fetch_add(1, Ordering::SeqCst);
            });
            for (w, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::SeqCst), 1, "share {w} of {n}");
            }
        }
    }

    #[test]
    fn workers_persist_between_jobs() {
        let _g = lock(&TEST_LOCK);
        run(4, &|_| {});
        let after_first = worker_count();
        assert!(after_first >= 3);
        for _ in 0..10 {
            run(4, &|_| {});
        }
        assert_eq!(worker_count(), after_first, "steady-state spawns no threads");
    }

    #[test]
    fn shutdown_then_reinit_still_runs() {
        let _g = lock(&TEST_LOCK);
        run(3, &|_| {});
        shutdown();
        assert_eq!(worker_count(), 0);
        let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        run(3, &|w| {
            hits[w].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn worker_panic_propagates_to_dispatcher() {
        let _g = lock(&TEST_LOCK);
        let r = catch_unwind(AssertUnwindSafe(|| {
            run(4, &|w| {
                if w == 2 {
                    panic!("boom in worker");
                }
            });
        }));
        assert!(r.is_err(), "dispatcher must observe the worker panic");
        // Pool must still be functional afterwards.
        let ok = AtomicUsize::new(0);
        run(4, &|_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn dispatcher_panic_waits_for_workers() {
        let _g = lock(&TEST_LOCK);
        let slow = AtomicUsize::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            run(4, &|w| {
                if w == 0 {
                    panic!("boom in caller");
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
                slow.fetch_add(1, Ordering::SeqCst);
            });
        }));
        assert!(r.is_err());
        // By the time run unwound, every worker must have finished (the
        // guard waited) — otherwise the erased borrow would have dangled.
        assert_eq!(slow.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn nested_dispatch_runs_serially_in_order() {
        let _g = lock(&TEST_LOCK);
        let order = Mutex::new(Vec::new());
        run(2, &|outer| {
            if outer == 0 {
                run(3, &|inner| {
                    order.lock().unwrap().push(inner);
                });
            }
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }
}
