//! Symbolic shapes for static (pre-execution) shape inference.
//!
//! `cts-verify` walks candidate architectures *without running them*; the
//! dimensions it propagates are therefore a mix of known constants (the
//! window length, the channel width) and symbols that stay free until a
//! concrete batch arrives (the batch size, sometimes the node count). A
//! [`SymDim`] is exactly that: either a proven constant or a named
//! unknown. Two symbolic dims are compatible only when the analyzer can
//! *prove* they are — same symbol, same constant, or a broadcastable `1` —
//! so every accepted architecture is shape-safe for every binding of the
//! symbols.

use std::fmt;

/// One dimension of a symbolic shape: a known constant or a named symbol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SymDim {
    /// A dimension whose extent is known statically.
    Const(usize),
    /// A dimension that stays free until runtime (e.g. the batch size
    /// `"B"`). Two symbols are equal only when their names match.
    Sym(&'static str),
}

impl SymDim {
    /// The concrete extent, resolving symbols through `bindings`.
    /// `None` when a symbol has no binding.
    pub fn eval(&self, bindings: &[(&str, usize)]) -> Option<usize> {
        match self {
            SymDim::Const(c) => Some(*c),
            SymDim::Sym(name) => bindings
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v),
        }
    }

    /// True when this dim is provably the constant `c`.
    pub fn is_const(&self, c: usize) -> bool {
        matches!(self, SymDim::Const(k) if *k == c)
    }
}

impl fmt::Display for SymDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymDim::Const(c) => write!(f, "{c}"),
            SymDim::Sym(s) => f.write_str(s),
        }
    }
}

/// A symbolic tensor shape.
pub type SymShape = Vec<SymDim>;

/// Render a symbolic shape as `[B, 5, 12, 16]`.
pub fn format_shape(shape: &[SymDim]) -> String {
    let dims: Vec<String> = shape.iter().map(ToString::to_string).collect();
    format!("[{}]", dims.join(", "))
}

/// Resolve every dim of `shape` through `bindings`; `None` when any
/// symbol is unbound.
pub fn eval_shape(shape: &[SymDim], bindings: &[(&str, usize)]) -> Option<Vec<usize>> {
    shape.iter().map(|d| d.eval(bindings)).collect()
}

/// Provable broadcast of two dims, mirroring the runtime rule of
/// [`crate::broadcast_shapes`]: equal dims pass through, a constant `1`
/// stretches to the other side. A symbol against a different symbol or a
/// constant `≠ 1` is *not provably* compatible and returns `None` — the
/// analyzer never assumes shapes that only might match.
pub fn broadcast_dim(a: SymDim, b: SymDim) -> Option<SymDim> {
    if a == b {
        return Some(a);
    }
    if a.is_const(1) {
        return Some(b);
    }
    if b.is_const(1) {
        return Some(a);
    }
    None
}

/// Symbolic counterpart of [`crate::broadcast_shapes`]: align the shapes
/// at their trailing dims and broadcast pairwise. `Err` carries a
/// human-readable description of the incompatibility.
pub fn broadcast_sym(a: &[SymDim], b: &[SymDim]) -> Result<SymShape, String> {
    let rank = a.len().max(b.len());
    let mut out = Vec::with_capacity(rank);
    for i in 0..rank {
        let da = if i < rank - a.len() {
            SymDim::Const(1)
        } else {
            a[i - (rank - a.len())]
        };
        let db = if i < rank - b.len() {
            SymDim::Const(1)
        } else {
            b[i - (rank - b.len())]
        };
        match broadcast_dim(da, db) {
            Some(d) => out.push(d),
            None => {
                return Err(format!(
                    "cannot broadcast {} with {} (axis {i}: {da} vs {db})",
                    format_shape(a),
                    format_shape(b)
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast_shapes;

    const B: SymDim = SymDim::Sym("B");

    #[test]
    fn equal_symbols_broadcast() {
        let a = vec![B, SymDim::Const(3)];
        let b = vec![B, SymDim::Const(3)];
        assert_eq!(broadcast_sym(&a, &b).unwrap(), a);
    }

    #[test]
    fn const_one_stretches() {
        let a = vec![B, SymDim::Const(1), SymDim::Const(4)];
        let b = vec![SymDim::Const(5), SymDim::Const(4)];
        assert_eq!(
            broadcast_sym(&a, &b).unwrap(),
            vec![B, SymDim::Const(5), SymDim::Const(4)]
        );
    }

    #[test]
    fn distinct_symbols_rejected() {
        let a = vec![SymDim::Sym("B")];
        let b = vec![SymDim::Sym("N")];
        assert!(broadcast_sym(&a, &b).is_err());
    }

    #[test]
    fn symbol_vs_constant_rejected() {
        // A symbol *might* equal 7 at runtime, but the analyzer must not
        // assume it; only a provable match passes.
        assert!(broadcast_sym(&[B], &[SymDim::Const(7)]).is_err());
        assert!(broadcast_sym(&[B], &[SymDim::Const(1)]).is_ok());
    }

    #[test]
    fn agrees_with_runtime_broadcast_on_constants() {
        let cases: [(&[usize], &[usize]); 4] = [
            (&[2, 3, 4], &[3, 4]),
            (&[2, 1, 4], &[2, 5, 4]),
            (&[1], &[7, 2]),
            (&[6, 5], &[6, 1]),
        ];
        for (a, b) in cases {
            let sa: SymShape = a.iter().map(|&d| SymDim::Const(d)).collect();
            let sb: SymShape = b.iter().map(|&d| SymDim::Const(d)).collect();
            let sym = eval_shape(&broadcast_sym(&sa, &sb).unwrap(), &[]).unwrap();
            let concrete = broadcast_shapes(a, b).unwrap();
            assert_eq!(sym, concrete.as_slice(), "{a:?} vs {b:?}");
        }
        // and a runtime-incompatible pair is symbolically incompatible too
        let sa = vec![SymDim::Const(2), SymDim::Const(3)];
        let sb = vec![SymDim::Const(4), SymDim::Const(3)];
        assert!(broadcast_sym(&sa, &sb).is_err());
        assert!(broadcast_shapes(&[2, 3], &[4, 3]).is_none());
    }

    #[test]
    fn eval_resolves_bindings() {
        let s = vec![B, SymDim::Const(5)];
        assert_eq!(eval_shape(&s, &[("B", 8)]), Some(vec![8, 5]));
        assert_eq!(eval_shape(&s, &[]), None);
    }

    #[test]
    fn display_format() {
        assert_eq!(
            format_shape(&[B, SymDim::Const(5), SymDim::Const(12)]),
            "[B, 5, 12]"
        );
    }
}
