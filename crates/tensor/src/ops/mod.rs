//! Tensor operations and their analytic gradients.
//!
//! Each differentiable op `f` exposes a forward function and one gradient
//! function per differentiable input, named `f_grad_<input>`. Gradient
//! functions take the upstream gradient (w.r.t. the op output) plus whatever
//! saved values they need and return the gradient w.r.t. that input, already
//! shaped like the input (broadcasting is reduced away internally).

mod conv;
mod elementwise;
mod matmul;
mod reduce;
mod shapeops;
mod softmax;

pub use conv::*;
pub use elementwise::*;
pub use matmul::*;
pub use reduce::*;
pub use shapeops::*;
pub use softmax::*;
