//! Tensor operations and their analytic gradients.
//!
//! Each differentiable op `f` exposes a forward function and one gradient
//! function per differentiable input, named `f_grad_<input>`. Gradient
//! functions take the upstream gradient (w.r.t. the op output) plus whatever
//! saved values they need and return the gradient w.r.t. that input, already
//! shaped like the input (broadcasting is reduced away internally).
//!
//! Large kernels execute on the persistent worker pool behind
//! [`crate::parallel`] (thread count via `CTS_NUM_THREADS`), with output
//! buffers drawn from the thread-local [`crate::arena`]; [`reference`]
//! holds the naive serial oracles they are tested and benchmarked against.

mod conv;
mod elementwise;
mod matmul;
mod reduce;
mod shapeops;
mod softmax;

pub mod reference;

pub use conv::*;
pub use elementwise::*;
pub use matmul::*;
pub use reduce::*;
pub use shapeops::*;
pub use softmax::*;
