//! Batched matrix multiplication with broadcasting over batch dimensions.

use crate::shape::{broadcast_shapes, numel, ravel_broadcast, unravel};
use crate::Tensor;

/// Matrix product over the last two dims: `a: [..., m, k] × b: [..., k, n]`.
///
/// Leading (batch) dimensions broadcast against each other, so a shared
/// weight `[k, n]` multiplies a batch `[B, T, m, k]` directly.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert!(a.rank() >= 2 && b.rank() >= 2, "matmul needs rank >= 2");
    let (m, ka) = (a.shape()[a.rank() - 2], a.shape()[a.rank() - 1]);
    let (kb, n) = (b.shape()[b.rank() - 2], b.shape()[b.rank() - 1]);
    assert_eq!(ka, kb, "matmul inner dims: {:?} x {:?}", a.shape(), b.shape());
    let k = ka;

    let a_batch = &a.shape()[..a.rank() - 2];
    let b_batch = &b.shape()[..b.rank() - 2];
    let batch_shape = broadcast_shapes(a_batch, b_batch)
        .unwrap_or_else(|| panic!("matmul batch broadcast {:?} x {:?}", a.shape(), b.shape()));
    let batch = numel(&batch_shape);

    let mut out_shape = batch_shape.clone();
    out_shape.push(m);
    out_shape.push(n);
    let mut out = vec![0.0f32; batch * m * n];

    let a_data = a.data();
    let b_data = b.data();
    for bi in 0..batch {
        let coords = unravel(bi, &batch_shape);
        let a_off = ravel_broadcast(&coords, a_batch) * m * k;
        let b_off = ravel_broadcast(&coords, b_batch) * k * n;
        let o_off = bi * m * n;
        // i-k-j loop order: row of b streamed for each a[i][k].
        for i in 0..m {
            let a_row = &a_data[a_off + i * k..a_off + (i + 1) * k];
            let out_row = &mut out[o_off + i * n..o_off + (i + 1) * n];
            for (kk, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b_data[b_off + kk * n..b_off + (kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
    }
    Tensor::from_vec(out_shape, out)
}

/// Transpose the last two dimensions.
pub fn transpose_last2(a: &Tensor) -> Tensor {
    assert!(a.rank() >= 2);
    let r = a.rank();
    let (m, n) = (a.shape()[r - 2], a.shape()[r - 1]);
    let batch: usize = a.shape()[..r - 2].iter().product();
    let mut out_shape = a.shape().to_vec();
    out_shape[r - 2] = n;
    out_shape[r - 1] = m;
    let mut out = vec![0.0f32; a.len()];
    let data = a.data();
    for b in 0..batch {
        let off = b * m * n;
        for i in 0..m {
            for j in 0..n {
                out[off + j * m + i] = data[off + i * n + j];
            }
        }
    }
    Tensor::from_vec(out_shape, out)
}

/// ∂(a·b)/∂a = grad · bᵀ, reduced over broadcast batch dims to a's shape.
pub fn matmul_grad_a(grad: &Tensor, b: &Tensor, a_shape: &[usize]) -> Tensor {
    let ga = matmul(grad, &transpose_last2(b));
    super::reduce_to_shape(&ga, a_shape)
}

/// ∂(a·b)/∂b = aᵀ · grad, reduced over broadcast batch dims to b's shape.
pub fn matmul_grad_b(grad: &Tensor, a: &Tensor, b_shape: &[usize]) -> Tensor {
    let gb = matmul(&transpose_last2(a), grad);
    super::reduce_to_shape(&gb, b_shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec())
    }

    #[test]
    fn matmul_2x2() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let b = t(&[2, 2], &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(&[1, 3], &[1.0, 2.0, 3.0]);
        let b = t(&[3, 2], &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        assert_eq!(matmul(&a, &b).data(), &[4.0, 5.0]);
    }

    #[test]
    fn matmul_batched_broadcast_weight() {
        // [2,1,2,2] batch times shared [2,2] weight
        let a = t(&[2, 2, 2], &[1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0]);
        let w = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let y = matmul(&a, &w);
        assert_eq!(y.shape(), &[2, 2, 2]);
        assert_eq!(&y.data()[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&y.data()[4..], &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn matmul_broadcast_matrix_times_batch() {
        // A [3,3] times X [2,3,1]
        let a = Tensor::eye(3);
        let x = t(&[2, 3, 1], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = matmul(&a, &x);
        assert_eq!(y.shape(), &[2, 3, 1]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let at = transpose_last2(&a);
        assert_eq!(at.shape(), &[3, 2]);
        assert_eq!(at.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(transpose_last2(&at).data(), a.data());
    }

    #[test]
    fn grads_match_manual() {
        // f = sum(a@b); df/da = ones @ b^T, df/db = a^T @ ones.
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 2], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = Tensor::ones([2, 2]);
        let ga = matmul_grad_a(&g, &b, a.shape());
        assert_eq!(ga.data(), &[3.0, 7.0, 11.0, 3.0, 7.0, 11.0]);
        let gb = matmul_grad_b(&g, &a, b.shape());
        assert_eq!(gb.data(), &[5.0, 5.0, 7.0, 7.0, 9.0, 9.0]);
    }

    #[test]
    fn grad_reduces_broadcast_batch() {
        // shared weight [2,2] used across batch of 3
        let a = t(&[3, 1, 2], &[1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        let w = Tensor::eye(2);
        let g = Tensor::ones([3, 1, 2]);
        let gw = matmul_grad_b(&g, &a, w.shape());
        assert_eq!(gw.shape(), &[2, 2]);
        // each batch contributes a^T@ones = [[a0],[a1]] broadcast over cols
        assert_eq!(gw.data(), &[6.0, 6.0, 6.0, 6.0]);
    }
}
