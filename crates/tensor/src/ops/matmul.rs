//! Batched matrix multiplication with broadcasting over batch dimensions.
//!
//! The inner kernel is cache-blocked with a packed-B panel: `B` tiles of at
//! most `KC × NC` elements are copied into a dense thread-local panel that
//! stays resident in L1/L2 while all rows of the block consume it. Batched
//! work is partitioned across scoped worker threads by output row (see
//! [`crate::parallel`]); each worker owns a disjoint slice of the output.
//!
//! Accumulation is always in ascending-`k` order, for every block size and
//! thread count, so results are bit-identical to the naive serial triple
//! loop (`ops::reference::matmul`) regardless of `CTS_NUM_THREADS`.
//!
//! Non-finite values propagate: `0 × NaN = NaN` contributions are *not*
//! skipped, so a NaN/∞ in either operand always reaches the output (the
//! seed kernel's `a == 0.0` fast-out silently masked them).

use crate::parallel;
use crate::shape::{broadcast_shapes, numel, ravel_broadcast, unravel};
use crate::Tensor;

/// K-dimension block size of the packed kernel.
const KC: usize = 128;
/// N-dimension block size of the packed kernel (panel is `KC × NC` floats).
const NC: usize = 64;

/// Matrix product over the last two dims: `a: [..., m, k] × b: [..., k, n]`.
///
/// Leading (batch) dimensions broadcast against each other, so a shared
/// weight `[k, n]` multiplies a batch `[B, T, m, k]` directly.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert!(a.rank() >= 2 && b.rank() >= 2, "matmul needs rank >= 2");
    let (m, ka) = (a.shape()[a.rank() - 2], a.shape()[a.rank() - 1]);
    let (kb, n) = (b.shape()[b.rank() - 2], b.shape()[b.rank() - 1]);
    assert_eq!(ka, kb, "matmul inner dims: {:?} x {:?}", a.shape(), b.shape());
    let k = ka;

    let a_batch = &a.shape()[..a.rank() - 2];
    let b_batch = &b.shape()[..b.rank() - 2];
    let batch_shape = broadcast_shapes(a_batch, b_batch)
        .unwrap_or_else(|| panic!("matmul batch broadcast {:?} x {:?}", a.shape(), b.shape()));
    let batch = numel(&batch_shape);

    let mut out_shape = batch_shape.clone();
    out_shape.push(m);
    out_shape.push(n);
    let mut out = vec![0.0f32; batch * m * n];

    let a_data = a.data();
    let b_data = b.data();
    let work = 2usize.saturating_mul(batch).saturating_mul(m).saturating_mul(n).saturating_mul(k);
    // One unit = one output row; contiguous runs of rows go to each worker,
    // grouped by batch below so B panels are packed once per row block.
    parallel::for_units(&parallel::kernels::MATMUL, &mut out, n.max(1), work, |row0, chunk| {
        if n == 0 || m == 0 {
            return;
        }
        let rows = chunk.len() / n;
        let mut done = 0;
        while done < rows {
            let row = row0 + done;
            let bi = row / m;
            let i0 = row % m;
            let take = (m - i0).min(rows - done);
            let coords = unravel(bi, &batch_shape);
            let a_off = ravel_broadcast(&coords, a_batch) * m * k;
            let b_off = ravel_broadcast(&coords, b_batch) * k * n;
            gemm_rows(
                &a_data[a_off + i0 * k..a_off + (i0 + take) * k],
                &b_data[b_off..b_off + k * n],
                &mut chunk[done * n..(done + take) * n],
                k,
                n,
            );
            done += take;
        }
    });
    Tensor::from_vec(out_shape, out)
}

/// `out[rows × n] += a[rows × k] · b[k × n]` for one batch element.
///
/// `out` must be zero-initialised by the caller. Small `b` matrices are
/// streamed directly (they already fit in cache); larger ones go through the
/// packed-panel path.
fn gemm_rows(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    let rows = out.len() / n;
    if k * n <= KC * NC {
        for i in 0..rows {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (kk, &av) in a_row.iter().enumerate() {
                let b_row = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
        return;
    }
    // Packed path: copy each KC × NC tile of b into a dense panel so the
    // inner loops hit a compact, contiguous working set.
    let mut panel = vec![0.0f32; KC * NC.min(n)];
    let mut k0 = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        let mut j0 = 0;
        while j0 < n {
            let nc = NC.min(n - j0);
            for kk in 0..kc {
                let src = (k0 + kk) * n + j0;
                panel[kk * nc..kk * nc + nc].copy_from_slice(&b[src..src + nc]);
            }
            for i in 0..rows {
                let a_row = &a[i * k + k0..i * k + k0 + kc];
                let out_row = &mut out[i * n + j0..i * n + j0 + nc];
                for (kk, &av) in a_row.iter().enumerate() {
                    let b_row = &panel[kk * nc..kk * nc + nc];
                    for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += av * bv;
                    }
                }
            }
            j0 += nc;
        }
        k0 += kc;
    }
}

/// Transpose the last two dimensions.
///
/// Tiled (cache-oblivious enough for the sizes used here) and partitioned
/// across threads by batch element.
pub fn transpose_last2(a: &Tensor) -> Tensor {
    assert!(a.rank() >= 2);
    let r = a.rank();
    let (m, n) = (a.shape()[r - 2], a.shape()[r - 1]);
    let mut out_shape = a.shape().to_vec();
    out_shape[r - 2] = n;
    out_shape[r - 1] = m;
    let mut out = vec![0.0f32; a.len()];
    let data = a.data();
    let mat = m * n;
    if mat == 0 {
        return Tensor::from_vec(out_shape, out);
    }
    parallel::for_units(&parallel::kernels::TRANSPOSE, &mut out, mat, a.len(), |b0, chunk| {
        for (bb, dst) in chunk.chunks_mut(mat).enumerate() {
            let src = &data[(b0 + bb) * mat..(b0 + bb + 1) * mat];
            transpose_tile(src, dst, m, n);
        }
    });
    Tensor::from_vec(out_shape, out)
}

/// `dst[n × m] = src[m × n]ᵀ`, in 32×32 tiles.
fn transpose_tile(src: &[f32], dst: &mut [f32], m: usize, n: usize) {
    const TB: usize = 32;
    let mut i0 = 0;
    while i0 < m {
        let iend = (i0 + TB).min(m);
        let mut j0 = 0;
        while j0 < n {
            let jend = (j0 + TB).min(n);
            for i in i0..iend {
                for j in j0..jend {
                    dst[j * m + i] = src[i * n + j];
                }
            }
            j0 = jend;
        }
        i0 = iend;
    }
}

/// ∂(a·b)/∂a = grad · bᵀ, reduced over broadcast batch dims to a's shape.
pub fn matmul_grad_a(grad: &Tensor, b: &Tensor, a_shape: &[usize]) -> Tensor {
    let ga = matmul(grad, &transpose_last2(b));
    super::reduce_to_shape(&ga, a_shape)
}

/// ∂(a·b)/∂b = aᵀ · grad, reduced over broadcast batch dims to b's shape.
pub fn matmul_grad_b(grad: &Tensor, a: &Tensor, b_shape: &[usize]) -> Tensor {
    let gb = matmul(&transpose_last2(a), grad);
    super::reduce_to_shape(&gb, b_shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec())
    }

    #[test]
    fn matmul_2x2() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let b = t(&[2, 2], &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(&[1, 3], &[1.0, 2.0, 3.0]);
        let b = t(&[3, 2], &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        assert_eq!(matmul(&a, &b).data(), &[4.0, 5.0]);
    }

    #[test]
    fn matmul_batched_broadcast_weight() {
        // [2,1,2,2] batch times shared [2,2] weight
        let a = t(&[2, 2, 2], &[1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0]);
        let w = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let y = matmul(&a, &w);
        assert_eq!(y.shape(), &[2, 2, 2]);
        assert_eq!(&y.data()[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&y.data()[4..], &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn matmul_broadcast_matrix_times_batch() {
        // A [3,3] times X [2,3,1]
        let a = Tensor::eye(3);
        let x = t(&[2, 3, 1], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = matmul(&a, &x);
        assert_eq!(y.shape(), &[2, 3, 1]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn matmul_exceeding_block_sizes_matches_reference() {
        // k and n beyond one KC × NC panel exercise the packed path edges.
        let (m, k, n) = (3, KC + 5, NC * 2 + 3);
        let a = t(&[m, k], &(0..m * k).map(|i| (i % 13) as f32 - 6.0).collect::<Vec<_>>());
        let b = t(&[k, n], &(0..k * n).map(|i| (i % 7) as f32 - 3.0).collect::<Vec<_>>());
        let fast = matmul(&a, &b);
        let slow = super::super::reference::matmul(&a, &b);
        assert_eq!(fast.data(), slow.data(), "packed kernel diverged from reference");
    }

    #[test]
    fn matmul_propagates_nan_from_either_operand() {
        // Regression: the seed kernel skipped a == 0.0 rows, so 0 × NaN was
        // silently dropped instead of poisoning the output.
        let mut a = Tensor::zeros([2, 2]);
        a.data_mut()[0] = 0.0; // explicit: the masking bug needs a zero here
        let mut b = Tensor::ones([2, 2]);
        b.data_mut()[0] = f32::NAN;
        let y = matmul(&a, &b);
        assert!(y.data()[0].is_nan(), "NaN in b masked by zero in a: {:?}", y);

        let mut a2 = Tensor::ones([2, 2]);
        a2.data_mut()[3] = f32::NAN;
        let b2 = Tensor::zeros([2, 2]);
        let y2 = matmul(&a2, &b2);
        assert!(y2.data()[2].is_nan() && y2.data()[3].is_nan(), "NaN in a lost: {:?}", y2);

        // Infinity likewise: 0 × ∞ = NaN must reach the output.
        let mut b3 = Tensor::ones([2, 2]);
        b3.data_mut()[0] = f32::INFINITY;
        let y3 = matmul(&Tensor::zeros([2, 2]), &b3);
        assert!(y3.data()[0].is_nan(), "0 × ∞ must be NaN: {:?}", y3);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let at = transpose_last2(&a);
        assert_eq!(at.shape(), &[3, 2]);
        assert_eq!(at.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(transpose_last2(&at).data(), a.data());
    }

    #[test]
    fn transpose_beyond_tile_size() {
        let (m, n) = (37, 41); // not multiples of the 32-wide tile
        let a = t(&[m, n], &(0..m * n).map(|i| i as f32).collect::<Vec<_>>());
        let at = transpose_last2(&a);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(at.at(&[j, i]), a.at(&[i, j]));
            }
        }
    }

    #[test]
    fn grads_match_manual() {
        // f = sum(a@b); df/da = ones @ b^T, df/db = a^T @ ones.
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 2], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = Tensor::ones([2, 2]);
        let ga = matmul_grad_a(&g, &b, a.shape());
        assert_eq!(ga.data(), &[3.0, 7.0, 11.0, 3.0, 7.0, 11.0]);
        let gb = matmul_grad_b(&g, &a, b.shape());
        assert_eq!(gb.data(), &[5.0, 5.0, 7.0, 7.0, 9.0, 9.0]);
    }

    #[test]
    fn grad_reduces_broadcast_batch() {
        // shared weight [2,2] used across batch of 3
        let a = t(&[3, 1, 2], &[1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        let w = Tensor::eye(2);
        let g = Tensor::ones([3, 1, 2]);
        let gw = matmul_grad_b(&g, &a, w.shape());
        assert_eq!(gw.shape(), &[2, 2]);
        // each batch contributes a^T@ones = [[a0],[a1]] broadcast over cols
        assert_eq!(gw.data(), &[6.0, 6.0, 6.0, 6.0]);
    }
}
