//! Batched matrix multiplication with broadcasting over batch dimensions.
//!
//! The inner kernel is cache-blocked with a packed-B panel: `B` tiles of at
//! most `KC × NC` elements are copied into a dense thread-local panel that
//! stays resident in L1/L2 while all rows of the block consume it. Batched
//! work is partitioned across the persistent worker pool by output row (see
//! [`crate::parallel`]); each worker owns a disjoint slice of the output,
//! and the packing panel is thread-local scratch that survives across
//! kernel calls (pool workers persist), so steady-state matmuls allocate
//! nothing.
//!
//! The innermost loops are the SIMD row-block microkernel
//! ([`crate::simd::gemm_rowblock`], reached via [`micro_accum`]): a strip of
//! output columns is held in vector accumulators while a block of `k` is
//! streamed through. Crucially the accumulators are loaded from (and stored
//! back to) the output, never zero-initialised, so each output element still
//! sees one strictly ascending-`k` addition chain — results are
//! bit-identical to the naive serial triple loop (`ops::reference::matmul`)
//! for every block size, thread count, and SIMD level.
//!
//! The backward products do not materialise full transposes: [`matmul_nt`]
//! (`A·Bᵀ`, for ∂/∂a) transpose-packs B tiles into the panel and runs the
//! same microkernel as the forward product, and [`matmul_tn`] (`Aᵀ·G`, for
//! ∂/∂b) walks A's columns with an axpy loop. Both reproduce the exact
//! accumulation order of the transpose-then-matmul composition they
//! replaced, so they are bit-identical to it (asserted in tests and the
//! parallel-consistency proptests).
//!
//! Non-finite values propagate: `0 × NaN = NaN` contributions are *not*
//! skipped, so a NaN/∞ in either operand always reaches the output (the
//! seed kernel's `a == 0.0` fast-out silently masked them).

use crate::arena;
use crate::meter;
use crate::parallel;
use crate::shape::{broadcast_shapes, numel, ravel_broadcast, unravel};
use crate::Tensor;
use std::cell::RefCell;

/// K-dimension block size of the packed kernel.
const KC: usize = 128;
/// N-dimension block size of the packed kernel (panel is `KC × NC` floats).
const NC: usize = 64;

thread_local! {
    /// Per-thread packed-B panel, reused across gemm calls. Pool workers
    /// persist between kernels, so this is allocated once per thread for
    /// the life of the process instead of once per gemm call.
    static PANEL: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Per-thread full `bᵀ` buffer for [`matmul_nt`]'s small-B fast path.
    static NT_BT: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Largest `bᵀ` (in floats) that [`matmul_nt`] materialises whole per
/// worker. Below this the transpose is done once per *distinct* B matrix
/// (typically once, for shared weights) and the product runs the exact
/// forward [`gemm_rows`] path; above it, B is transpose-packed tile by
/// tile per batch element instead of held resident.
const NT_FULL_CAP: usize = 1 << 20;

/// Matrix product over the last two dims: `a: [..., m, k] × b: [..., k, n]`.
///
/// Leading (batch) dimensions broadcast against each other, so a shared
/// weight `[k, n]` multiplies a batch `[B, T, m, k]` directly.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert!(a.rank() >= 2 && b.rank() >= 2, "matmul needs rank >= 2");
    meter::add_reads(a.len() + b.len());
    let (m, ka) = (a.shape()[a.rank() - 2], a.shape()[a.rank() - 1]);
    let (kb, n) = (b.shape()[b.rank() - 2], b.shape()[b.rank() - 1]);
    assert_eq!(ka, kb, "matmul inner dims: {:?} x {:?}", a.shape(), b.shape());
    let k = ka;

    let a_batch = &a.shape()[..a.rank() - 2];
    let b_batch = &b.shape()[..b.rank() - 2];
    let batch_shape = broadcast_shapes(a_batch, b_batch)
        .unwrap_or_else(|| panic!("matmul batch broadcast {:?} x {:?}", a.shape(), b.shape()));
    let batch = numel(&batch_shape);

    let mut out_shape = batch_shape.clone();
    out_shape.push(m);
    out_shape.push(n);
    let mut out = arena::take_zeroed(batch * m * n);

    let a_data = a.data();
    let b_data = b.data();
    let work = 2usize.saturating_mul(batch).saturating_mul(m).saturating_mul(n).saturating_mul(k);
    // One unit = one output row; contiguous runs of rows go to each worker,
    // grouped by batch below so B panels are packed once per row block.
    parallel::for_units(&parallel::kernels::MATMUL, &mut out, n.max(1), work, |row0, chunk| {
        if n == 0 || m == 0 {
            return;
        }
        let rows = chunk.len() / n;
        let mut done = 0;
        while done < rows {
            let row = row0 + done;
            let bi = row / m;
            let i0 = row % m;
            let take = (m - i0).min(rows - done);
            let coords = unravel(bi, &batch_shape);
            let a_off = ravel_broadcast(&coords, a_batch) * m * k;
            let b_off = ravel_broadcast(&coords, b_batch) * k * n;
            gemm_rows(
                &a_data[a_off + i0 * k..a_off + (i0 + take) * k],
                &b_data[b_off..b_off + k * n],
                &mut chunk[done * n..(done + take) * n],
                k,
                n,
            );
            done += take;
        }
    });
    if crate::simd::active() {
        parallel::kernels::MATMUL.stats.record_simd();
    }
    Tensor::from_vec(out_shape, out)
}

/// Fixed-width microkernel: `out_row[j] += Σ_kk a_row[kk] · b[kk·ldb + j]`
/// for every `j`, dispatched to [`crate::simd::gemm_rowblock`] (AVX2 /
/// SSE2 / scalar).
///
/// Accumulators are *loaded from* `out_row` (never zeroed), so each output
/// element's addition chain stays strictly ascending in `kk` across calls —
/// the bit-exactness invariant every caller relies on. All dispatch levels
/// keep one independent vertical accumulator per output column, so they
/// are bit-identical to each other and to the naive serial loop.
#[inline]
fn micro_accum(a_row: &[f32], b: &[f32], ldb: usize, out_row: &mut [f32]) {
    crate::simd::gemm_rowblock(a_row, b, ldb, out_row);
}

/// `out[rows × n] += a[rows × k] · b[k × n]` for one batch element.
///
/// `out` must be zero-initialised by the caller. Small `b` matrices are
/// streamed directly (they already fit in cache); larger ones go through the
/// packed-panel path.
fn gemm_rows(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    let rows = out.len() / n;
    if k * n <= KC * NC {
        for i in 0..rows {
            micro_accum(&a[i * k..(i + 1) * k], b, n, &mut out[i * n..(i + 1) * n]);
        }
        return;
    }
    // Packed path: copy each KC × NC tile of b into a dense panel so the
    // inner loops hit a compact, contiguous working set.
    PANEL.with(|p| {
        let mut panel = p.borrow_mut();
        let need = KC * NC.min(n);
        if panel.len() < need {
            panel.resize(need, 0.0);
        }
        let mut k0 = 0;
        while k0 < k {
            let kc = KC.min(k - k0);
            let mut j0 = 0;
            while j0 < n {
                let nc = NC.min(n - j0);
                for kk in 0..kc {
                    let src = (k0 + kk) * n + j0;
                    panel[kk * nc..kk * nc + nc].copy_from_slice(&b[src..src + nc]);
                }
                for i in 0..rows {
                    micro_accum(
                        &a[i * k + k0..i * k + k0 + kc],
                        &panel,
                        nc,
                        &mut out[i * n + j0..i * n + j0 + nc],
                    );
                }
                j0 += nc;
            }
            k0 += kc;
        }
    });
}

/// Transpose the last two dimensions.
///
/// Tiled (cache-oblivious enough for the sizes used here) and partitioned
/// across threads by batch element.
pub fn transpose_last2(a: &Tensor) -> Tensor {
    assert!(a.rank() >= 2);
    let r = a.rank();
    let (m, n) = (a.shape()[r - 2], a.shape()[r - 1]);
    let mut out_shape = crate::shape::Shape::from_slice(a.shape());
    out_shape[r - 2] = n;
    out_shape[r - 1] = m;
    let mut out = arena::take_zeroed(a.len());
    let data = a.data();
    let mat = m * n;
    if mat == 0 {
        return Tensor::from_vec(out_shape, out);
    }
    meter::add_reads(a.len());
    parallel::for_units(&parallel::kernels::TRANSPOSE, &mut out, mat, a.len(), |b0, chunk| {
        for (bb, dst) in chunk.chunks_mut(mat).enumerate() {
            let src = &data[(b0 + bb) * mat..(b0 + bb + 1) * mat];
            transpose_tile(src, dst, m, n);
        }
    });
    Tensor::from_vec(out_shape, out)
}

/// `dst[n × m] = src[m × n]ᵀ`, in 32×32 tiles.
fn transpose_tile(src: &[f32], dst: &mut [f32], m: usize, n: usize) {
    const TB: usize = 32;
    let mut i0 = 0;
    while i0 < m {
        let iend = (i0 + TB).min(m);
        let mut j0 = 0;
        while j0 < n {
            let jend = (j0 + TB).min(n);
            for i in i0..iend {
                for j in j0..jend {
                    dst[j * m + i] = src[i * n + j];
                }
            }
            j0 = jend;
        }
        i0 = iend;
    }
}

/// Fused `A · Bᵀ`: `a: [..., m, k] × b: [..., n, k] → [..., m, n]` with
/// `out[i, j] = Σ_k a[i, k] · b[j, k]` (batch dims broadcast).
///
/// Small B matrices (`n·k ≤` [`NT_FULL_CAP`]) are transposed whole into a
/// per-worker buffer — once per *distinct* B, so a shared weight broadcast
/// over a big batch transposes exactly once per worker — and then multiply
/// through the identical [`gemm_rows`] path as the forward product. Larger
/// B falls back to per-tile transpose-packing ([`nt_rows`]). Both orders
/// accumulate each output element in strictly ascending `k`, so the result
/// is bit-identical to `matmul(a, transpose_last2(b))`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert!(a.rank() >= 2 && b.rank() >= 2, "matmul_nt needs rank >= 2");
    meter::add_reads(a.len() + b.len());
    let (m, ka) = (a.shape()[a.rank() - 2], a.shape()[a.rank() - 1]);
    let (n, kb) = (b.shape()[b.rank() - 2], b.shape()[b.rank() - 1]);
    assert_eq!(ka, kb, "matmul_nt inner dims: {:?} x {:?}", a.shape(), b.shape());
    let k = ka;

    let a_batch = &a.shape()[..a.rank() - 2];
    let b_batch = &b.shape()[..b.rank() - 2];
    let batch_shape = broadcast_shapes(a_batch, b_batch)
        .unwrap_or_else(|| panic!("matmul_nt batch broadcast {:?} x {:?}", a.shape(), b.shape()));
    let batch = numel(&batch_shape);

    let mut out_shape = batch_shape.clone();
    out_shape.push(m);
    out_shape.push(n);
    let mut out = arena::take_zeroed(batch * m * n);

    let a_data = a.data();
    let b_data = b.data();
    let work = 2usize.saturating_mul(batch).saturating_mul(m).saturating_mul(n).saturating_mul(k);
    parallel::for_units(&parallel::kernels::MATMUL_NT, &mut out, n.max(1), work, |row0, chunk| {
        if n == 0 || m == 0 {
            return;
        }
        let rows = chunk.len() / n;
        let full = n * k <= NT_FULL_CAP;
        NT_BT.with(|p| {
            let mut bt = p.borrow_mut();
            if full && bt.len() < k * n {
                bt.resize(k * n, 0.0);
            }
            // `usize::MAX` can never be a valid element offset.
            let mut packed_off = usize::MAX;
            let mut done = 0;
            while done < rows {
                let row = row0 + done;
                let bi = row / m;
                let i0 = row % m;
                let take = (m - i0).min(rows - done);
                let coords = unravel(bi, &batch_shape);
                let a_off = ravel_broadcast(&coords, a_batch) * m * k;
                let b_off = ravel_broadcast(&coords, b_batch) * n * k;
                let a_rows = &a_data[a_off + i0 * k..a_off + (i0 + take) * k];
                let out_rows = &mut chunk[done * n..(done + take) * n];
                if full {
                    if b_off != packed_off {
                        transpose_tile(&b_data[b_off..b_off + n * k], &mut bt[..k * n], n, k);
                        packed_off = b_off;
                    }
                    gemm_rows(a_rows, &bt[..k * n], out_rows, k, n);
                } else {
                    nt_rows(a_rows, &b_data[b_off..b_off + n * k], out_rows, k, n);
                }
                done += take;
            }
        });
    });
    if crate::simd::active() {
        parallel::kernels::MATMUL_NT.stats.record_simd();
    }
    Tensor::from_vec(out_shape, out)
}

/// `out[rows × n] += a[rows × k] · bᵀ` where `b` is `[n × k]` row-major —
/// the large-B fallback of [`matmul_nt`] (`n·k >` [`NT_FULL_CAP`]).
///
/// Each `KC × NC` tile of `bᵀ` is transpose-packed into the thread-local
/// panel (`panel[kk·nc + jj] = b[(j0+jj)·k + k0+kk]`) and then consumed by
/// the *same* vectorized microkernel as plain [`matmul`]. The seed path
/// strode `b` row-wise with interleaved dot products — ~2.1× slower at the
/// bench volume because every output column walked a strided `k`-vector.
/// Per output element the chain is still strictly ascending in `k` (tiles
/// advance `k0` outermost), so the result stays bit-identical to
/// `matmul(a, transpose_last2(b))`.
fn nt_rows(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    let rows = out.len() / n;
    PANEL.with(|p| {
        let mut panel = p.borrow_mut();
        let need = KC * NC.min(n.max(1));
        if panel.len() < need {
            panel.resize(need, 0.0);
        }
        let mut k0 = 0;
        while k0 < k {
            let kc = KC.min(k - k0);
            let mut j0 = 0;
            while j0 < n {
                let nc = NC.min(n - j0);
                for jj in 0..nc {
                    let src = &b[(j0 + jj) * k + k0..(j0 + jj) * k + k0 + kc];
                    for (kk, &v) in src.iter().enumerate() {
                        panel[kk * nc + jj] = v;
                    }
                }
                for i in 0..rows {
                    micro_accum(
                        &a[i * k + k0..i * k + k0 + kc],
                        &panel,
                        nc,
                        &mut out[i * n + j0..i * n + j0 + nc],
                    );
                }
                j0 += nc;
            }
            k0 += kc;
        }
    });
}

/// Fused `Aᵀ · G`: `a: [..., m, k] × g: [..., m, n] → [..., k, n]` with
/// `out[r, j] = Σ_i a[i, r] · g[i, j]` (batch dims broadcast).
///
/// A's columns are walked in place (one scalar per `i`) while G's rows are
/// streamed contiguously with an axpy update — no transpose materialised.
/// Each output element accumulates in ascending `i`, the exact order of
/// `matmul(transpose_last2(a), g)`, so the result is bit-identical to it.
pub fn matmul_tn(a: &Tensor, g: &Tensor) -> Tensor {
    assert!(a.rank() >= 2 && g.rank() >= 2, "matmul_tn needs rank >= 2");
    meter::add_reads(a.len() + g.len());
    let (ma, kd) = (a.shape()[a.rank() - 2], a.shape()[a.rank() - 1]);
    let (mg, n) = (g.shape()[g.rank() - 2], g.shape()[g.rank() - 1]);
    assert_eq!(ma, mg, "matmul_tn outer dims: {:?} x {:?}", a.shape(), g.shape());
    let m = ma;

    let a_batch = &a.shape()[..a.rank() - 2];
    let g_batch = &g.shape()[..g.rank() - 2];
    let batch_shape = broadcast_shapes(a_batch, g_batch)
        .unwrap_or_else(|| panic!("matmul_tn batch broadcast {:?} x {:?}", a.shape(), g.shape()));
    let batch = numel(&batch_shape);

    let mut out_shape = batch_shape.clone();
    out_shape.push(kd);
    out_shape.push(n);
    let mut out = arena::take_zeroed(batch * kd * n);

    let a_data = a.data();
    let g_data = g.data();
    let work = 2usize.saturating_mul(batch).saturating_mul(m).saturating_mul(kd).saturating_mul(n);
    parallel::for_units(&parallel::kernels::MATMUL_TN, &mut out, n.max(1), work, |row0, chunk| {
        if n == 0 || kd == 0 {
            return;
        }
        let rows = chunk.len() / n;
        let mut done = 0;
        while done < rows {
            let row = row0 + done;
            let bi = row / kd;
            let r0 = row % kd;
            let take = (kd - r0).min(rows - done);
            let coords = unravel(bi, &batch_shape);
            let a_off = ravel_broadcast(&coords, a_batch) * m * kd;
            let g_off = ravel_broadcast(&coords, g_batch) * m * n;
            tn_rows(
                &a_data[a_off..a_off + m * kd],
                &g_data[g_off..g_off + m * n],
                &mut chunk[done * n..(done + take) * n],
                m,
                kd,
                n,
                r0,
            );
            done += take;
        }
    });
    if crate::simd::active() {
        parallel::kernels::MATMUL_TN.stats.record_simd();
    }
    Tensor::from_vec(out_shape, out)
}

/// `out[take × n] += aᵀ[r0.., :] · g` for one batch element, where `a` is
/// `[m × kd]` and `g` is `[m × n]`, producing output rows `r0..r0+take`.
fn tn_rows(a: &[f32], g: &[f32], out: &mut [f32], m: usize, kd: usize, n: usize, r0: usize) {
    let take = out.len() / n;
    for rr in 0..take {
        let r = r0 + rr;
        let out_row = &mut out[rr * n..(rr + 1) * n];
        for i in 0..m {
            let av = a[i * kd + r];
            crate::simd::axpy(out_row, av, &g[i * n..(i + 1) * n]);
        }
    }
}

/// ∂(a·b)/∂a = grad · bᵀ, reduced over broadcast batch dims to a's shape.
/// The transpose is fused into the gemm ([`matmul_nt`]) — bit-identical to
/// the old `matmul(grad, transpose_last2(b))` composition.
pub fn matmul_grad_a(grad: &Tensor, b: &Tensor, a_shape: &[usize]) -> Tensor {
    let ga = matmul_nt(grad, b);
    super::reduce_to_shape(&ga, a_shape)
}

/// ∂(a·b)/∂b = aᵀ · grad, reduced over broadcast batch dims to b's shape.
/// The transpose is fused into the gemm ([`matmul_tn`]) — bit-identical to
/// the old `matmul(transpose_last2(a), grad)` composition.
pub fn matmul_grad_b(grad: &Tensor, a: &Tensor, b_shape: &[usize]) -> Tensor {
    let gb = matmul_tn(a, grad);
    super::reduce_to_shape(&gb, b_shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec())
    }

    #[test]
    fn matmul_2x2() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let b = t(&[2, 2], &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(&[1, 3], &[1.0, 2.0, 3.0]);
        let b = t(&[3, 2], &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        assert_eq!(matmul(&a, &b).data(), &[4.0, 5.0]);
    }

    #[test]
    fn matmul_batched_broadcast_weight() {
        // [2,1,2,2] batch times shared [2,2] weight
        let a = t(&[2, 2, 2], &[1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0]);
        let w = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let y = matmul(&a, &w);
        assert_eq!(y.shape(), &[2, 2, 2]);
        assert_eq!(&y.data()[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&y.data()[4..], &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn matmul_broadcast_matrix_times_batch() {
        // A [3,3] times X [2,3,1]
        let a = Tensor::eye(3);
        let x = t(&[2, 3, 1], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = matmul(&a, &x);
        assert_eq!(y.shape(), &[2, 3, 1]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn matmul_exceeding_block_sizes_matches_reference() {
        // k and n beyond one KC × NC panel exercise the packed path edges.
        let (m, k, n) = (3, KC + 5, NC * 2 + 3);
        let a = t(&[m, k], &(0..m * k).map(|i| (i % 13) as f32 - 6.0).collect::<Vec<_>>());
        let b = t(&[k, n], &(0..k * n).map(|i| (i % 7) as f32 - 3.0).collect::<Vec<_>>());
        let fast = matmul(&a, &b);
        let slow = super::super::reference::matmul(&a, &b);
        assert_eq!(fast.data(), slow.data(), "packed kernel diverged from reference");
    }

    #[test]
    fn matmul_propagates_nan_from_either_operand() {
        // Regression: the seed kernel skipped a == 0.0 rows, so 0 × NaN was
        // silently dropped instead of poisoning the output.
        let mut a = Tensor::zeros([2, 2]);
        a.data_mut()[0] = 0.0; // explicit: the masking bug needs a zero here
        let mut b = Tensor::ones([2, 2]);
        b.data_mut()[0] = f32::NAN;
        let y = matmul(&a, &b);
        assert!(y.data()[0].is_nan(), "NaN in b masked by zero in a: {:?}", y);

        let mut a2 = Tensor::ones([2, 2]);
        a2.data_mut()[3] = f32::NAN;
        let b2 = Tensor::zeros([2, 2]);
        let y2 = matmul(&a2, &b2);
        assert!(y2.data()[2].is_nan() && y2.data()[3].is_nan(), "NaN in a lost: {:?}", y2);

        // Infinity likewise: 0 × ∞ = NaN must reach the output.
        let mut b3 = Tensor::ones([2, 2]);
        b3.data_mut()[0] = f32::INFINITY;
        let y3 = matmul(&Tensor::zeros([2, 2]), &b3);
        assert!(y3.data()[0].is_nan(), "0 × ∞ must be NaN: {:?}", y3);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let at = transpose_last2(&a);
        assert_eq!(at.shape(), &[3, 2]);
        assert_eq!(at.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(transpose_last2(&at).data(), a.data());
    }

    #[test]
    fn transpose_beyond_tile_size() {
        let (m, n) = (37, 41); // not multiples of the 32-wide tile
        let a = t(&[m, n], &(0..m * n).map(|i| i as f32).collect::<Vec<_>>());
        let at = transpose_last2(&a);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(at.at(&[j, i]), a.at(&[i, j]));
            }
        }
    }

    #[test]
    fn nt_matches_transpose_composition_bit_exact() {
        // Sizes straddle the MR/unroll widths and the block edges.
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (4, 17, 9), (5, KC + 3, 13)] {
            let a = t(&[m, k], &(0..m * k).map(|i| ((i * 37) % 19) as f32 - 9.0).collect::<Vec<_>>());
            let b = t(&[n, k], &(0..n * k).map(|i| ((i * 23) % 17) as f32 - 8.0).collect::<Vec<_>>());
            let fused = matmul_nt(&a, &b);
            let composed = matmul(&a, &transpose_last2(&b));
            assert_eq!(fused.shape(), composed.shape());
            assert_eq!(fused.data(), composed.data(), "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn nt_large_b_tile_fallback_bit_exact() {
        // n·k just over NT_FULL_CAP forces the per-tile transpose-pack
        // path (`nt_rows`) instead of the whole-bᵀ fast path.
        let (m, k, n) = (3usize, 1020usize, 1030usize);
        assert!(n * k > NT_FULL_CAP);
        let a = t(&[m, k], &(0..m * k).map(|i| ((i * 37) % 19) as f32 - 9.0).collect::<Vec<_>>());
        let b = t(&[n, k], &(0..n * k).map(|i| ((i * 23) % 17) as f32 - 8.0).collect::<Vec<_>>());
        let fused = matmul_nt(&a, &b);
        let composed = matmul(&a, &transpose_last2(&b));
        assert_eq!(fused.shape(), composed.shape());
        assert_eq!(fused.data(), composed.data());
    }

    #[test]
    fn tn_matches_transpose_composition_bit_exact() {
        for (m, kd, n) in [(1, 1, 1), (5, 3, 7), (17, 4, 9), (KC + 3, 5, 13)] {
            let a = t(&[m, kd], &(0..m * kd).map(|i| ((i * 31) % 19) as f32 - 9.0).collect::<Vec<_>>());
            let g = t(&[m, n], &(0..m * n).map(|i| ((i * 29) % 17) as f32 - 8.0).collect::<Vec<_>>());
            let fused = matmul_tn(&a, &g);
            let composed = matmul(&transpose_last2(&a), &g);
            assert_eq!(fused.shape(), composed.shape());
            assert_eq!(fused.data(), composed.data(), "m={m} kd={kd} n={n}");
        }
    }

    #[test]
    fn nt_tn_broadcast_batches_match_composition() {
        // Batched left operand against shared right operand, and vice versa.
        let a = t(&[2, 3, 4], &(0..24).map(|i| (i % 11) as f32 - 5.0).collect::<Vec<_>>());
        let b = t(&[5, 4], &(0..20).map(|i| (i % 7) as f32 - 3.0).collect::<Vec<_>>());
        let fused = matmul_nt(&a, &b);
        let composed = matmul(&a, &transpose_last2(&b));
        assert_eq!(fused.data(), composed.data());

        let g = t(&[2, 3, 5], &(0..30).map(|i| (i % 13) as f32 - 6.0).collect::<Vec<_>>());
        let a2 = t(&[3, 4], &(0..12).map(|i| (i % 5) as f32 - 2.0).collect::<Vec<_>>());
        let fused2 = matmul_tn(&a2, &g);
        let composed2 = matmul(&transpose_last2(&a2), &g);
        assert_eq!(fused2.data(), composed2.data());
    }

    #[test]
    fn nt_propagates_nan() {
        // 0 · NaN must reach the output through the fused path too.
        let a = Tensor::zeros([2, 3]);
        let mut b = Tensor::ones([4, 3]);
        b.data_mut()[0] = f32::NAN;
        let y = matmul_nt(&a, &b);
        assert!(y.data()[0].is_nan(), "NaN masked in matmul_nt: {:?}", y);
    }

    #[test]
    fn grads_match_manual() {
        // f = sum(a@b); df/da = ones @ b^T, df/db = a^T @ ones.
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 2], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = Tensor::ones([2, 2]);
        let ga = matmul_grad_a(&g, &b, a.shape());
        assert_eq!(ga.data(), &[3.0, 7.0, 11.0, 3.0, 7.0, 11.0]);
        let gb = matmul_grad_b(&g, &a, b.shape());
        assert_eq!(gb.data(), &[5.0, 5.0, 7.0, 7.0, 9.0, 9.0]);
    }

    #[test]
    fn grad_reduces_broadcast_batch() {
        // shared weight [2,2] used across batch of 3
        let a = t(&[3, 1, 2], &[1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        let w = Tensor::eye(2);
        let g = Tensor::ones([3, 1, 2]);
        let gw = matmul_grad_b(&g, &a, w.shape());
        assert_eq!(gw.shape(), &[2, 2]);
        // each batch contributes a^T@ones = [[a0],[a1]] broadcast over cols
        assert_eq!(gw.data(), &[6.0, 6.0, 6.0, 6.0]);
    }
}
