//! Naive serial reference kernels — the oracle the optimized, parallel
//! kernels are tested (and benchmarked) against.
//!
//! Everything here is deliberately the simplest correct implementation:
//! plain loops, per-element broadcast index math, no blocking, no threads.
//! These closely match the seed repository's original serial kernels (minus
//! the `a == 0.0` skip that masked NaN/∞ — see `ops::matmul`), so they also
//! serve as the "serial baseline" side of the serial-vs-parallel benches.

use crate::shape::{broadcast_shapes, numel, ravel_broadcast, strides_for, unravel};
use crate::Tensor;

/// Naive batched matmul: `[..., m, k] × [..., k, n]` with batch broadcasting.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert!(a.rank() >= 2 && b.rank() >= 2, "matmul needs rank >= 2");
    let (m, k) = (a.shape()[a.rank() - 2], a.shape()[a.rank() - 1]);
    let (kb, n) = (b.shape()[b.rank() - 2], b.shape()[b.rank() - 1]);
    assert_eq!(k, kb, "matmul inner dims: {:?} x {:?}", a.shape(), b.shape());
    let a_batch = &a.shape()[..a.rank() - 2];
    let b_batch = &b.shape()[..b.rank() - 2];
    let batch_shape = broadcast_shapes(a_batch, b_batch)
        .unwrap_or_else(|| panic!("matmul batch broadcast {:?} x {:?}", a.shape(), b.shape()));
    let batch = numel(&batch_shape);
    let mut out_shape = batch_shape.clone();
    out_shape.push(m);
    out_shape.push(n);
    let mut out = vec![0.0f32; batch * m * n];
    let (ad, bd) = (a.data(), b.data());
    for bi in 0..batch {
        let coords = unravel(bi, &batch_shape);
        let a_off = ravel_broadcast(&coords, a_batch) * m * k;
        let b_off = ravel_broadcast(&coords, b_batch) * k * n;
        let o_off = bi * m * n;
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += ad[a_off + i * k + kk] * bd[b_off + kk * n + j];
                }
                out[o_off + i * n + j] = acc;
            }
        }
    }
    Tensor::from_vec(out_shape, out)
}

/// Naive elementwise binary op with NumPy broadcasting.
pub fn zip_broadcast(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    let out_shape = broadcast_shapes(a.shape(), b.shape())
        .unwrap_or_else(|| panic!("broadcast mismatch {:?} vs {:?}", a.shape(), b.shape()));
    let n = numel(&out_shape);
    let mut data = Vec::with_capacity(n);
    for flat in 0..n {
        let coords = unravel(flat, &out_shape);
        let x = a.data()[ravel_broadcast(&coords, a.shape())];
        let y = b.data()[ravel_broadcast(&coords, b.shape())];
        data.push(f(x, y));
    }
    Tensor::from_vec(out_shape, data)
}

/// Naive `a + b` with broadcasting.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    zip_broadcast(a, b, |x, y| x + y)
}

/// Naive `a * b` with broadcasting.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    zip_broadcast(a, b, |x, y| x * y)
}

/// Naive softmax over the last axis.
pub fn softmax_last(a: &Tensor) -> Tensor {
    let n = a.shape()[a.rank() - 1];
    let rows = a.len() / n.max(1);
    let mut out = vec![0.0f32; a.len()];
    for row in 0..rows {
        let s = &a.data()[row * n..(row + 1) * n];
        let m = s.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0f32;
        for (o, &x) in out[row * n..(row + 1) * n].iter_mut().zip(s.iter()) {
            let e = (x - m).exp();
            *o = e;
            z += e;
        }
        let inv = 1.0 / z;
        for o in &mut out[row * n..(row + 1) * n] {
            *o *= inv;
        }
    }
    Tensor::from_vec(a.shape().to_vec(), out)
}

/// Naive sum over one axis.
pub fn sum_axis(a: &Tensor, axis: usize, keepdim: bool) -> Tensor {
    let outer: usize = a.shape()[..axis].iter().product();
    let len = a.shape()[axis];
    let inner: usize = a.shape()[axis + 1..].iter().product();
    let mut out = vec![0.0f32; outer * inner];
    for o in 0..outer {
        for l in 0..len {
            for i in 0..inner {
                out[o * inner + i] += a.data()[(o * len + l) * inner + i];
            }
        }
    }
    let mut shape = a.shape().to_vec();
    if keepdim {
        shape[axis] = 1;
    } else {
        shape.remove(axis);
    }
    if shape.is_empty() {
        shape.push(1);
    }
    Tensor::from_vec(shape, out)
}

/// Naive reduce of a broadcast-output-shaped gradient back to
/// `target_shape`: the seed's serial scatter-add, one pass over `grad` in
/// flat order. Oracle for the parallel gather in
/// `ops::elementwise::reduce_to_shape`, which must match it bit-for-bit.
pub fn reduce_to_shape(grad: &Tensor, target_shape: &[usize]) -> Tensor {
    if grad.shape() == target_shape {
        return grad.clone();
    }
    let mut out = Tensor::zeros(target_shape.to_vec());
    let gshape = grad.shape().to_vec();
    // Strides of the target viewed in grad space (0 on broadcast axes).
    let mut t_str = vec![0usize; gshape.len()];
    let offset = gshape.len() - target_shape.len();
    let real = strides_for(target_shape);
    for (i, (&dim, &stride)) in target_shape.iter().zip(real.iter()).enumerate() {
        t_str[offset + i] = if dim == 1 { 0 } else { stride };
    }
    let mut coords = vec![0usize; gshape.len()];
    let mut idx = 0usize;
    for flat in 0..grad.len() {
        out.data_mut()[idx] += grad.data()[flat];
        if flat + 1 == grad.len() {
            break;
        }
        for d in (0..gshape.len()).rev() {
            coords[d] += 1;
            idx += t_str[d];
            if coords[d] < gshape[d] {
                break;
            }
            coords[d] = 0;
            idx -= t_str[d] * gshape[d];
        }
    }
    out
}

/// Naive transpose of the last two dims.
pub fn transpose_last2(a: &Tensor) -> Tensor {
    let r = a.rank();
    let (m, n) = (a.shape()[r - 2], a.shape()[r - 1]);
    let batch: usize = a.shape()[..r - 2].iter().product();
    let mut out_shape = a.shape().to_vec();
    out_shape[r - 2] = n;
    out_shape[r - 1] = m;
    let mut out = vec![0.0f32; a.len()];
    for b in 0..batch {
        let off = b * m * n;
        for i in 0..m {
            for j in 0..n {
                out[off + j * m + i] = a.data()[off + i * n + j];
            }
        }
    }
    Tensor::from_vec(out_shape, out)
}
