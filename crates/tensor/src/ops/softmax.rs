//! Softmax over the last axis (with optional temperature via pre-scaling).
//!
//! Rows are independent, so all three kernels partition the row range
//! across the scoped-thread pool in [`crate::parallel`]; per-row math is
//! unchanged from the serial version, keeping results bit-exact at any
//! thread count.
//!
//! SIMD coverage is per pass: the max scan ([`crate::simd::row_max`], a
//! pinned horizontal-reduce tree whose one reorder artifact — the sign of
//! an equal-zero maximum — is erased by the `exp(x − m)` that consumes it)
//! and the `1/z` normalization ([`crate::simd::scale_in_place`]) vectorize;
//! the exp pass and the running `z` sum stay scalar because a vector unit
//! would have to reassociate that single sequential addition chain.

use crate::arena;
use crate::meter;
use crate::parallel;
use crate::Tensor;

/// Numerically stable softmax over the last axis.
pub fn softmax_last(a: &Tensor) -> Tensor {
    meter::add_reads(a.len());
    let r = a.rank();
    let n = a.shape()[r - 1];
    let mut out = arena::take_zeroed(a.len());
    let data = a.data();
    // ~4 flops per element (max scan, exp, sum, scale).
    parallel::for_units(&parallel::kernels::SOFTMAX, &mut out, n.max(1), 4 * a.len(), |start, chunk| {
        if n == 0 {
            return;
        }
        for (ri, o) in chunk.chunks_mut(n).enumerate() {
            let base = (start + ri) * n;
            let s = &data[base..base + n];
            let m = crate::simd::row_max(s);
            let mut z = 0.0f32;
            for (oi, &x) in o.iter_mut().zip(s.iter()) {
                let e = (x - m).exp();
                *oi = e;
                z += e;
            }
            crate::simd::scale_in_place(o, 1.0 / z);
        }
    });
    if crate::simd::active() {
        parallel::kernels::SOFTMAX.stats.record_simd();
    }
    Tensor::from_vec(a.shape(), out)
}

/// ∂softmax/∂a given the saved output `y`: `y ⊙ (g − Σ g⊙y)` per row.
pub fn softmax_last_grad(grad: &Tensor, y: &Tensor) -> Tensor {
    meter::add_reads(grad.len() + y.len());
    let r = y.rank();
    let n = y.shape()[r - 1];
    let mut out = arena::take_zeroed(y.len());
    let g = grad.data();
    let yv = y.data();
    parallel::for_units(&parallel::kernels::SOFTMAX_GRAD, &mut out, n.max(1), 4 * y.len(), |start, chunk| {
        if n == 0 {
            return;
        }
        for (ri, o) in chunk.chunks_mut(n).enumerate() {
            let base = (start + ri) * n;
            let dot: f32 = (0..n).map(|i| g[base + i] * yv[base + i]).sum();
            crate::simd::softmax_grad_row(o, &yv[base..base + n], &g[base..base + n], dot);
        }
    });
    if crate::simd::active() {
        parallel::kernels::SOFTMAX_GRAD.stats.record_simd();
    }
    Tensor::from_vec(y.shape(), out)
}

/// Log-sum-exp over the last axis (stable), used by some losses.
pub fn logsumexp_last(a: &Tensor) -> Tensor {
    meter::add_reads(a.len());
    let r = a.rank();
    let n = a.shape()[r - 1];
    let rows = a.len() / n.max(1);
    let mut out = arena::take_zeroed(rows);
    let data = a.data();
    parallel::for_units(&parallel::kernels::LOGSUMEXP, &mut out, 1, 3 * a.len(), |start, chunk| {
        for (ri, o) in chunk.iter_mut().enumerate() {
            let base = (start + ri) * n;
            let s = &data[base..base + n];
            let m = s.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let z: f32 = s.iter().map(|&x| (x - m).exp()).sum();
            *o = m + z.ln();
        }
    });
    let mut shape = crate::shape::Shape::from_slice(&a.shape()[..r - 1]);
    if shape.is_empty() {
        shape.push(1);
    }
    Tensor::from_vec(shape, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let y = softmax_last(&a);
        let row0: f32 = y.data()[..3].iter().sum();
        let row1: f32 = y.data()[3..].iter().sum();
        assert!((row0 - 1.0).abs() < 1e-6);
        assert!((row1 - 1.0).abs() < 1e-6);
        // monotone within rows
        assert!(y.data()[0] < y.data()[1] && y.data()[1] < y.data()[2]);
    }

    #[test]
    fn softmax_stable_for_large_inputs() {
        let a = Tensor::from_vec([1, 2], vec![1000.0, 1001.0]);
        let y = softmax_last(&a);
        assert!(!y.has_non_finite());
        assert!((y.data()[0] + y.data()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_grad_zero_for_uniform_upstream() {
        // If upstream grad is constant, softmax grad must be ~0 (probability
        // simplex is invariant to common shifts).
        let a = Tensor::from_vec([1, 4], vec![0.3, -1.0, 2.0, 0.0]);
        let y = softmax_last(&a);
        let g = Tensor::ones([1, 4]);
        let dx = softmax_last_grad(&g, &y);
        for v in dx.data() {
            assert!(v.abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_matches_reference_above_threshold() {
        let a = Tensor::from_vec(
            vec![64, 24, 32],
            (0..64 * 24 * 32).map(|i| ((i * 31 % 113) as f32) * 0.1 - 5.0).collect(),
        );
        let fast = softmax_last(&a);
        let slow = super::super::reference::softmax_last(&a);
        assert_eq!(fast.data(), slow.data());
    }

    #[test]
    fn logsumexp_matches_naive() {
        let a = Tensor::from_vec([1, 3], vec![0.0, 1.0, 2.0]);
        let l = logsumexp_last(&a);
        let naive = (0f32.exp() + 1f32.exp() + 2f32.exp()).ln();
        assert!((l.item() - naive).abs() < 1e-5);
    }
}
