//! Dilated causal temporal convolution over `[B, N, T, D]` activations.
//!
//! The convolution is *causal*: output step `t` only sees inputs at
//! `t, t-d, t-2d, …` (implicit left zero-padding keeps the sequence length
//! unchanged), matching the gated dilated causal convolutions of
//! Graph WaveNet / WaveNet-style ST models.
//!
//! Series (the `B*N` leading dims) are independent, so forward and both
//! gradients run on the scoped-thread pool in [`crate::parallel`]. The
//! weight gradient accumulates into a shared `[K, Din, Dout]` buffer, so it
//! goes through [`crate::parallel::partial_sums`]: each worker owns a
//! zeroed copy, summed in deterministic worker order afterwards.
//!
//! Note: the original kernels skipped `x == 0.0` terms as a "sparsity"
//! shortcut. That silently masked NaN/∞ (`0 × NaN` must be NaN, but the
//! skip produced 0), hiding numerical blow-ups from `has_non_finite`
//! checks downstream — same bug class as the old matmul kernel. The skip
//! is gone; see `zero_times_nan_propagates` below.

use crate::arena;
use crate::meter;
use crate::parallel;
use crate::Tensor;

/// Forward dilated causal conv.
///
/// * `x`: `[B, N, T, D_in]`
/// * `w`: `[K, D_in, D_out]` (tap `K-1` reads the current step)
///
/// Returns `[B, N, T, D_out]`.
pub fn temporal_conv(x: &Tensor, w: &Tensor, dilation: usize) -> Tensor {
    meter::add_reads(x.len() + w.len());
    let (b, n, t, din) = dims4(x);
    let (k, wdin, dout) = dims3(w);
    assert_eq!(din, wdin, "temporal_conv channel mismatch");
    assert!(dilation >= 1);
    let mut out = arena::take_zeroed(b * n * t * dout);
    let xd = x.data();
    let wd = w.data();
    let series = b * n;
    let unit = t * dout;
    let work = 2 * series * t * k * din * dout;
    parallel::for_units(&parallel::kernels::TEMPORAL_CONV, &mut out, unit.max(1), work, |u0, chunk| {
        if unit == 0 {
            return;
        }
        for (si, oser) in chunk.chunks_mut(unit).enumerate() {
            let s = u0 + si;
            let x_off = s * t * din;
            for ti in 0..t {
                let orow = &mut oser[ti * dout..(ti + 1) * dout];
                for ki in 0..k {
                    let lag = (k - 1 - ki) * dilation;
                    if lag > ti {
                        continue;
                    }
                    let src = ti - lag;
                    let xrow = &xd[x_off + src * din..x_off + (src + 1) * din];
                    let wmat = &wd[ki * din * dout..(ki + 1) * din * dout];
                    for (i, &xv) in xrow.iter().enumerate() {
                        crate::simd::axpy(orow, xv, &wmat[i * dout..(i + 1) * dout]);
                    }
                }
            }
        }
    });
    if crate::simd::active() {
        parallel::kernels::TEMPORAL_CONV.stats.record_simd();
    }
    Tensor::from_vec([b, n, t, dout], out)
}

/// ∂temporal_conv/∂x.
pub fn temporal_conv_grad_x(grad: &Tensor, w: &Tensor, x_shape: &[usize], dilation: usize) -> Tensor {
    meter::add_reads(grad.len() + w.len());
    let (b, n, t, din) = (x_shape[0], x_shape[1], x_shape[2], x_shape[3]);
    let (k, _, dout) = dims3(w);
    let mut gx = arena::take_zeroed(b * n * t * din);
    let gd = grad.data();
    let wd = w.data();
    let series = b * n;
    let unit = t * din;
    let work = 2 * series * t * k * din * dout;
    parallel::for_units(&parallel::kernels::TEMPORAL_CONV_GRAD_X, &mut gx, unit.max(1), work, |u0, chunk| {
        if unit == 0 {
            return;
        }
        for (si, xser) in chunk.chunks_mut(unit).enumerate() {
            let s = u0 + si;
            let g_off = s * t * dout;
            for ti in 0..t {
                let grow = &gd[g_off + ti * dout..g_off + (ti + 1) * dout];
                for ki in 0..k {
                    let lag = (k - 1 - ki) * dilation;
                    if lag > ti {
                        continue;
                    }
                    let src = ti - lag;
                    let xrow = &mut xser[src * din..(src + 1) * din];
                    let wmat = &wd[ki * din * dout..(ki + 1) * din * dout];
                    for (i, xg) in xrow.iter_mut().enumerate() {
                        let wrow = &wmat[i * dout..(i + 1) * dout];
                        let mut acc = 0.0f32;
                        for (gv, wv) in grow.iter().zip(wrow.iter()) {
                            acc += gv * wv;
                        }
                        *xg += acc;
                    }
                }
            }
        }
    });
    Tensor::from_vec(x_shape, gx)
}

/// ∂temporal_conv/∂w.
pub fn temporal_conv_grad_w(grad: &Tensor, x: &Tensor, w_shape: &[usize], dilation: usize) -> Tensor {
    meter::add_reads(grad.len() + x.len());
    let (b, n, t, din) = dims4(x);
    let (k, _, dout) = (w_shape[0], w_shape[1], w_shape[2]);
    let gd = grad.data();
    let xd = x.data();
    let series = b * n;
    let work = 2 * series * t * k * din * dout;
    let gw = parallel::partial_sums(&parallel::kernels::TEMPORAL_CONV_GRAD_W, series, k * din * dout, work, |s, acc| {
        let x_off = s * t * din;
        let g_off = s * t * dout;
        for ti in 0..t {
            let grow = &gd[g_off + ti * dout..g_off + (ti + 1) * dout];
            for ki in 0..k {
                let lag = (k - 1 - ki) * dilation;
                if lag > ti {
                    continue;
                }
                let src = ti - lag;
                let xrow = &xd[x_off + src * din..x_off + (src + 1) * din];
                let wmat = &mut acc[ki * din * dout..(ki + 1) * din * dout];
                for (i, &xv) in xrow.iter().enumerate() {
                    crate::simd::axpy(&mut wmat[i * dout..(i + 1) * dout], xv, grow);
                }
            }
        }
    });
    if crate::simd::active() {
        parallel::kernels::TEMPORAL_CONV_GRAD_W.stats.record_simd();
    }
    Tensor::from_vec(w_shape, gw)
}

fn dims4(x: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(x.rank(), 4, "expected [B,N,T,D], got {:?}", x.shape());
    (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3])
}

fn dims3(w: &Tensor) -> (usize, usize, usize) {
    assert_eq!(w.rank(), 3, "expected [K,Din,Dout], got {:?}", w.shape());
    (w.shape()[0], w.shape()[1], w.shape()[2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_passes_through() {
        // K=1, Din=Dout=1, w=[[1]] => output == input
        let x = Tensor::from_vec([1, 1, 4, 1], vec![1.0, 2.0, 3.0, 4.0]);
        let w = Tensor::from_vec([1, 1, 1], vec![1.0]);
        let y = temporal_conv(&x, &w, 1);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn causal_difference_kernel() {
        // K=2, w = [-1 (prev), +1 (cur)] computes x[t]-x[t-1] with x[-1]=0.
        let x = Tensor::from_vec([1, 1, 4, 1], vec![1.0, 3.0, 6.0, 10.0]);
        let w = Tensor::from_vec([2, 1, 1], vec![-1.0, 1.0]);
        let y = temporal_conv(&x, &w, 1);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn dilation_skips_steps() {
        // K=2, dilation=2: y[t] = x[t] - x[t-2]
        let x = Tensor::from_vec([1, 1, 5, 1], vec![1.0, 2.0, 4.0, 8.0, 16.0]);
        let w = Tensor::from_vec([2, 1, 1], vec![-1.0, 1.0]);
        let y = temporal_conv(&x, &w, 2);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 6.0, 12.0]);
    }

    #[test]
    fn causality_no_future_leak() {
        // Changing x[t0] must not affect outputs before t0.
        let mut x = Tensor::zeros([1, 1, 6, 2]);
        let w = Tensor::from_vec([3, 2, 1], vec![0.5; 6]);
        let y0 = temporal_conv(&x, &w, 1);
        x.data_mut()[3 * 2] = 7.0; // bump t=3, channel 0
        let y1 = temporal_conv(&x, &w, 1);
        for t in 0..3 {
            assert_eq!(y0.at(&[0, 0, t, 0]), y1.at(&[0, 0, t, 0]));
        }
        assert_ne!(y0.at(&[0, 0, 3, 0]), y1.at(&[0, 0, 3, 0]));
    }

    #[test]
    fn zero_times_nan_propagates() {
        // A NaN weight must poison the output even where x is exactly 0 —
        // the old `xv == 0.0 { continue }` shortcut hid it.
        let x = Tensor::zeros([1, 1, 3, 2]);
        let w = Tensor::from_vec([1, 2, 1], vec![f32::NAN, 1.0]);
        let y = temporal_conv(&x, &w, 1);
        assert!(y.data().iter().all(|v| v.is_nan()), "NaN masked: {:?}", y.data());
        // Same for the weight gradient with a NaN upstream and zero input.
        let g = Tensor::full(vec![1, 1, 3, 1], f32::NAN);
        let gw = temporal_conv_grad_w(&g, &x, w.shape(), 1);
        assert!(gw.data().iter().all(|v| v.is_nan()), "gw masked: {:?}", gw.data());
    }

    #[test]
    fn grads_match_finite_difference() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let x = Tensor::from_vec(
            [2, 2, 5, 3],
            (0..60).map(|_| rng.gen_range(-1.0..1.0)).collect::<Vec<f32>>(),
        );
        let w = Tensor::from_vec(
            [2, 3, 2],
            (0..12).map(|_| rng.gen_range(-1.0..1.0)).collect::<Vec<f32>>(),
        );
        let dil = 2;
        let y = temporal_conv(&x, &w, dil);
        let g = Tensor::ones(y.shape().to_vec());
        let gx = temporal_conv_grad_x(&g, &w, x.shape(), dil);
        let gw = temporal_conv_grad_w(&g, &x, w.shape(), dil);
        let f = |x: &Tensor, w: &Tensor| temporal_conv(x, w, dil).sum();
        let eps = 1e-2;
        for idx in [0usize, 7, 30, 59] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (f(&xp, &w) - f(&xm, &w)) / (2.0 * eps);
            assert!(
                (num - gx.data()[idx]).abs() < 1e-2,
                "gx[{idx}]: num {num} vs {}",
                gx.data()[idx]
            );
        }
        for idx in [0usize, 5, 11] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let num = (f(&x, &wp) - f(&x, &wm)) / (2.0 * eps);
            assert!(
                (num - gw.data()[idx]).abs() < 1e-1,
                "gw[{idx}]: num {num} vs {}",
                gw.data()[idx]
            );
        }
    }
}
