//! Shape-manipulating operations: permute, concat, slice, index-select.

use crate::arena;
use crate::shape::{numel, Shape};
use crate::Tensor;

/// Permute dimensions: `perm[i]` is the source axis that becomes output axis `i`.
pub fn permute(a: &Tensor, perm: &[usize]) -> Tensor {
    assert_eq!(perm.len(), a.rank(), "permute rank mismatch");
    let in_shape = a.shape();
    let out_shape: Shape = perm.iter().map(|&p| in_shape[p]).collect();
    let mut out = arena::take_zeroed(a.len());
    let in_strides = a.strides();
    // stride of output axis i in the *input* buffer
    let mapped_strides: Shape = perm.iter().map(|&p| in_strides[p]).collect();
    // Odometer over output coordinates carrying the source offset along —
    // no per-element coordinate vector (this runs on every tape step).
    let rank = out_shape.len();
    let mut coords = Shape::zeros(rank);
    let mut src = 0usize;
    let data = a.data();
    for slot in out.iter_mut() {
        *slot = data[src];
        for ax in (0..rank).rev() {
            coords[ax] += 1;
            src += mapped_strides[ax];
            if coords[ax] < out_shape[ax] {
                break;
            }
            src -= out_shape[ax] * mapped_strides[ax];
            coords[ax] = 0;
        }
    }
    Tensor::from_vec(out_shape, out)
}

/// Inverse permutation: `inverse(perm)[perm[i]] = i`.
pub fn inverse_perm(perm: &[usize]) -> Shape {
    let mut inv = Shape::zeros(perm.len());
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

/// ∂permute/∂a = permute the gradient by the inverse permutation.
pub fn permute_grad(grad: &Tensor, perm: &[usize]) -> Tensor {
    permute(grad, &inverse_perm(perm))
}

/// Concatenate tensors along `axis`; all other dims must match.
pub fn concat(parts: &[&Tensor], axis: usize) -> Tensor {
    assert!(!parts.is_empty());
    let first = parts[0].shape();
    let mut out_shape = Shape::from_slice(first);
    out_shape[axis] = parts.iter().map(|p| p.shape()[axis]).sum();
    for p in parts {
        for (d, (&a, &b)) in p.shape().iter().zip(first.iter()).enumerate() {
            assert!(d == axis || a == b, "concat dim {} mismatch", d);
        }
    }
    let outer: usize = first[..axis].iter().product();
    let inner: usize = first[axis + 1..].iter().product();
    let total_axis = out_shape[axis];
    let mut out = arena::take_zeroed(numel(&out_shape));
    let mut offset = 0;
    for p in parts {
        let len = p.shape()[axis];
        for o in 0..outer {
            let src = o * len * inner;
            let dst = (o * total_axis + offset) * inner;
            out[dst..dst + len * inner].copy_from_slice(&p.data()[src..src + len * inner]);
        }
        offset += len;
    }
    Tensor::from_vec(out_shape, out)
}

/// Slice `[start, end)` along `axis`.
pub fn slice(a: &Tensor, axis: usize, start: usize, end: usize) -> Tensor {
    assert!(start <= end && end <= a.shape()[axis], "slice bounds");
    let outer: usize = a.shape()[..axis].iter().product();
    let len = a.shape()[axis];
    let inner: usize = a.shape()[axis + 1..].iter().product();
    let out_len = end - start;
    let mut out_shape = Shape::from_slice(a.shape());
    out_shape[axis] = out_len;
    let mut out = arena::take_zeroed(outer * out_len * inner);
    for o in 0..outer {
        let src = (o * len + start) * inner;
        let dst = o * out_len * inner;
        out[dst..dst + out_len * inner].copy_from_slice(&a.data()[src..src + out_len * inner]);
    }
    Tensor::from_vec(out_shape, out)
}

/// ∂slice/∂a: scatter upstream grad into a zero tensor of the input shape.
pub fn slice_grad(grad: &Tensor, a_shape: &[usize], axis: usize, start: usize) -> Tensor {
    let outer: usize = a_shape[..axis].iter().product();
    let len = a_shape[axis];
    let inner: usize = a_shape[axis + 1..].iter().product();
    let out_len = grad.shape()[axis];
    let mut out = Tensor::zeros(a_shape.to_vec());
    for o in 0..outer {
        let dst = (o * len + start) * inner;
        let src = o * out_len * inner;
        out.data_mut()[dst..dst + out_len * inner]
            .copy_from_slice(&grad.data()[src..src + out_len * inner]);
    }
    out
}

/// Gather the given `indices` along `axis` (`torch.index_select`).
pub fn index_select(a: &Tensor, axis: usize, indices: &[usize]) -> Tensor {
    let outer: usize = a.shape()[..axis].iter().product();
    let len = a.shape()[axis];
    let inner: usize = a.shape()[axis + 1..].iter().product();
    let mut out_shape = Shape::from_slice(a.shape());
    out_shape[axis] = indices.len();
    let mut out = arena::take_zeroed(outer * indices.len() * inner);
    for o in 0..outer {
        for (j, &idx) in indices.iter().enumerate() {
            assert!(idx < len, "index_select out of bounds");
            let src = (o * len + idx) * inner;
            let dst = (o * indices.len() + j) * inner;
            out[dst..dst + inner].copy_from_slice(&a.data()[src..src + inner]);
        }
    }
    Tensor::from_vec(out_shape, out)
}

/// ∂index_select/∂a: scatter-add (duplicated indices accumulate).
pub fn index_select_grad(
    grad: &Tensor,
    a_shape: &[usize],
    axis: usize,
    indices: &[usize],
) -> Tensor {
    let outer: usize = a_shape[..axis].iter().product();
    let len = a_shape[axis];
    let inner: usize = a_shape[axis + 1..].iter().product();
    let mut out = Tensor::zeros(a_shape.to_vec());
    for o in 0..outer {
        for (j, &idx) in indices.iter().enumerate() {
            let dst = (o * len + idx) * inner;
            let src = (o * indices.len() + j) * inner;
            for i in 0..inner {
                out.data_mut()[dst + i] += grad.data()[src + i];
            }
        }
    }
    out
}

/// Stack rank-R tensors into a rank-(R+1) tensor along a new axis 0.
pub fn stack(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty());
    let shape = parts[0].shape();
    for p in parts {
        assert_eq!(p.shape(), shape, "stack shape mismatch");
    }
    let out_shape: Shape = std::iter::once(parts.len()).chain(shape.iter().copied()).collect();
    let each = parts[0].len();
    let mut data = arena::take_zeroed(parts.len() * each);
    for (p, dst) in parts.iter().zip(data.chunks_mut(each.max(1))) {
        dst.copy_from_slice(p.data());
    }
    Tensor::from_vec(out_shape, data)
}

/// Pad `axis` with `before` zeros in front and `after` zeros behind.
pub fn pad_axis(a: &Tensor, axis: usize, before: usize, after: usize) -> Tensor {
    if before == 0 && after == 0 {
        return a.clone();
    }
    let outer: usize = a.shape()[..axis].iter().product();
    let len = a.shape()[axis];
    let inner: usize = a.shape()[axis + 1..].iter().product();
    let new_len = before + len + after;
    let mut out_shape = Shape::from_slice(a.shape());
    out_shape[axis] = new_len;
    let mut out = arena::take_zeroed(outer * new_len * inner);
    for o in 0..outer {
        let src = o * len * inner;
        let dst = (o * new_len + before) * inner;
        out[dst..dst + len * inner].copy_from_slice(&a.data()[src..src + len * inner]);
    }
    Tensor::from_vec(out_shape, out)
}

/// ∂pad_axis/∂a: slice the padding back off.
pub fn pad_axis_grad(grad: &Tensor, axis: usize, before: usize, orig_len: usize) -> Tensor {
    slice(grad, axis, before, before + orig_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec())
    }

    #[test]
    fn permute_2d_is_transpose() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let p = permute(&a, &[1, 0]);
        assert_eq!(p.shape(), &[3, 2]);
        assert_eq!(p.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn permute_roundtrip_3d() {
        let a = t(&[2, 3, 4], &(0..24).map(|x| x as f32).collect::<Vec<_>>());
        let perm = [2, 0, 1];
        let p = permute(&a, &perm);
        assert_eq!(p.shape(), &[4, 2, 3]);
        let back = permute_grad(&p, &perm);
        assert_eq!(back.data(), a.data());
        assert_eq!(p.at(&[3, 1, 2]), a.at(&[1, 2, 3]));
    }

    #[test]
    fn concat_axis1() {
        let a = t(&[2, 1], &[1.0, 2.0]);
        let b = t(&[2, 2], &[3.0, 4.0, 5.0, 6.0]);
        let c = concat(&[&a, &b], 1);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.data(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn slice_and_grad_roundtrip() {
        let a = t(&[2, 4], &(0..8).map(|x| x as f32).collect::<Vec<_>>());
        let s = slice(&a, 1, 1, 3);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[1.0, 2.0, 5.0, 6.0]);
        let g = slice_grad(&s, a.shape(), 1, 1);
        assert_eq!(g.data(), &[0.0, 1.0, 2.0, 0.0, 0.0, 5.0, 6.0, 0.0]);
    }

    #[test]
    fn index_select_with_duplicates() {
        let a = t(&[3, 2], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = index_select(&a, 0, &[2, 0, 2]);
        assert_eq!(s.shape(), &[3, 2]);
        assert_eq!(s.data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let g = index_select_grad(&Tensor::ones([3, 2]), a.shape(), 0, &[2, 0, 2]);
        assert_eq!(g.data(), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn stack_adds_axis() {
        let a = t(&[2], &[1.0, 2.0]);
        let b = t(&[2], &[3.0, 4.0]);
        let s = stack(&[&a, &b]);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn pad_then_grad() {
        let a = t(&[1, 2], &[1.0, 2.0]);
        let p = pad_axis(&a, 1, 2, 1);
        assert_eq!(p.shape(), &[1, 5]);
        assert_eq!(p.data(), &[0.0, 0.0, 1.0, 2.0, 0.0]);
        let g = pad_axis_grad(&p, 1, 2, 2);
        assert_eq!(g.data(), a.data());
    }
}
