//! Elementwise binary (broadcasting) and unary operations.

use crate::shape::{broadcast_shapes, numel, ravel_broadcast, unravel};
use crate::Tensor;

/// Elementwise binary op with NumPy broadcasting.
fn zip_broadcast(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    if a.shape() == b.shape() {
        // Fast path: identical shapes.
        let data = a
            .data()
            .iter()
            .zip(b.data().iter())
            .map(|(&x, &y)| f(x, y))
            .collect();
        return Tensor::from_vec(a.shape().to_vec(), data);
    }
    let out_shape = broadcast_shapes(a.shape(), b.shape())
        .unwrap_or_else(|| panic!("broadcast mismatch {:?} vs {:?}", a.shape(), b.shape()));
    let n = numel(&out_shape);
    let mut data = Vec::with_capacity(n);
    for flat in 0..n {
        let coords = unravel(flat, &out_shape);
        let x = a.data()[ravel_broadcast(&coords, a.shape())];
        let y = b.data()[ravel_broadcast(&coords, b.shape())];
        data.push(f(x, y));
    }
    Tensor::from_vec(out_shape, data)
}

/// Reduce `grad` (in broadcast-output shape) back to `target_shape` by
/// summing over the dimensions that were broadcast.
pub fn reduce_to_shape(grad: &Tensor, target_shape: &[usize]) -> Tensor {
    if grad.shape() == target_shape {
        return grad.clone();
    }
    let mut out = Tensor::zeros(target_shape.to_vec());
    let gshape = grad.shape().to_vec();
    for flat in 0..grad.len() {
        let coords = unravel(flat, &gshape);
        let idx = ravel_broadcast(&coords, target_shape);
        out.data_mut()[idx] += grad.data()[flat];
    }
    out
}

/// `a + b` with broadcasting.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    zip_broadcast(a, b, |x, y| x + y)
}

/// `a - b` with broadcasting.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    zip_broadcast(a, b, |x, y| x - y)
}

/// `a * b` with broadcasting.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    zip_broadcast(a, b, |x, y| x * y)
}

/// `a / b` with broadcasting.
pub fn div(a: &Tensor, b: &Tensor) -> Tensor {
    zip_broadcast(a, b, |x, y| x / y)
}

/// ∂(a∘b)/∂a for add/sub: pass-through (sign handled by caller for sub).
pub fn binary_grad_passthrough(grad: &Tensor, input_shape: &[usize]) -> Tensor {
    reduce_to_shape(grad, input_shape)
}

/// ∂(a*b)/∂a = grad * b, reduced to a's shape.
pub fn mul_grad(grad: &Tensor, other: &Tensor, input_shape: &[usize]) -> Tensor {
    reduce_to_shape(&mul(grad, other), input_shape)
}

/// ∂(a/b)/∂a = grad / b, reduced to a's shape.
pub fn div_grad_a(grad: &Tensor, b: &Tensor, a_shape: &[usize]) -> Tensor {
    reduce_to_shape(&div(grad, b), a_shape)
}

/// ∂(a/b)/∂b = -grad * a / b², reduced to b's shape.
pub fn div_grad_b(grad: &Tensor, a: &Tensor, b: &Tensor) -> Tensor {
    let gb = zip_broadcast(&mul(grad, a), b, |num, den| -num / (den * den));
    reduce_to_shape(&gb, b.shape())
}

// ---------------------------------------------------------------------------
// Unary ops
// ---------------------------------------------------------------------------

/// Elementwise negation.
pub fn neg(a: &Tensor) -> Tensor {
    a.map(|x| -x)
}

/// `a * c` for scalar `c`.
pub fn scale(a: &Tensor, c: f32) -> Tensor {
    a.map(|x| x * c)
}

/// `a + c` for scalar `c`.
pub fn add_scalar(a: &Tensor, c: f32) -> Tensor {
    a.map(|x| x + c)
}

/// Rectified linear unit.
pub fn relu(a: &Tensor) -> Tensor {
    a.map(|x| x.max(0.0))
}

/// ∂relu/∂a = grad ⊙ 1[a>0].
pub fn relu_grad(grad: &Tensor, a: &Tensor) -> Tensor {
    let data = grad
        .data()
        .iter()
        .zip(a.data().iter())
        .map(|(&g, &x)| if x > 0.0 { g } else { 0.0 })
        .collect();
    Tensor::from_vec(a.shape().to_vec(), data)
}

/// Logistic sigmoid, numerically stable for large |x|.
pub fn sigmoid(a: &Tensor) -> Tensor {
    a.map(|x| {
        if x >= 0.0 {
            1.0 / (1.0 + (-x).exp())
        } else {
            let e = x.exp();
            e / (1.0 + e)
        }
    })
}

/// ∂sigmoid/∂a given the saved output `y`: grad ⊙ y(1-y).
pub fn sigmoid_grad(grad: &Tensor, y: &Tensor) -> Tensor {
    let data = grad
        .data()
        .iter()
        .zip(y.data().iter())
        .map(|(&g, &s)| g * s * (1.0 - s))
        .collect();
    Tensor::from_vec(y.shape().to_vec(), data)
}

/// Hyperbolic tangent.
pub fn tanh(a: &Tensor) -> Tensor {
    a.map(f32::tanh)
}

/// ∂tanh/∂a given the saved output `y`: grad ⊙ (1-y²).
pub fn tanh_grad(grad: &Tensor, y: &Tensor) -> Tensor {
    let data = grad
        .data()
        .iter()
        .zip(y.data().iter())
        .map(|(&g, &t)| g * (1.0 - t * t))
        .collect();
    Tensor::from_vec(y.shape().to_vec(), data)
}

/// Elementwise exp.
pub fn exp(a: &Tensor) -> Tensor {
    a.map(f32::exp)
}

/// Natural log (inputs must be positive; callers clamp).
pub fn ln(a: &Tensor) -> Tensor {
    a.map(f32::ln)
}

/// ∂ln/∂a = grad / a.
pub fn ln_grad(grad: &Tensor, a: &Tensor) -> Tensor {
    let data = grad
        .data()
        .iter()
        .zip(a.data().iter())
        .map(|(&g, &x)| g / x)
        .collect();
    Tensor::from_vec(a.shape().to_vec(), data)
}

/// Elementwise square root.
pub fn sqrt(a: &Tensor) -> Tensor {
    a.map(f32::sqrt)
}

/// ∂sqrt/∂a given the saved output `y`: grad / (2y).
pub fn sqrt_grad(grad: &Tensor, y: &Tensor) -> Tensor {
    let data = grad
        .data()
        .iter()
        .zip(y.data().iter())
        .map(|(&g, &s)| g / (2.0 * s))
        .collect();
    Tensor::from_vec(y.shape().to_vec(), data)
}

/// Elementwise absolute value.
pub fn abs(a: &Tensor) -> Tensor {
    a.map(f32::abs)
}

/// ∂|a|/∂a = grad ⊙ sign(a) (sub-gradient 0 at 0).
pub fn abs_grad(grad: &Tensor, a: &Tensor) -> Tensor {
    let data = grad
        .data()
        .iter()
        .zip(a.data().iter())
        .map(|(&g, &x)| {
            if x > 0.0 {
                g
            } else if x < 0.0 {
                -g
            } else {
                0.0
            }
        })
        .collect();
    Tensor::from_vec(a.shape().to_vec(), data)
}

/// Elementwise square.
pub fn square(a: &Tensor) -> Tensor {
    a.map(|x| x * x)
}

/// ∂a²/∂a = 2·grad⊙a.
pub fn square_grad(grad: &Tensor, a: &Tensor) -> Tensor {
    let data = grad
        .data()
        .iter()
        .zip(a.data().iter())
        .map(|(&g, &x)| 2.0 * g * x)
        .collect();
    Tensor::from_vec(a.shape().to_vec(), data)
}

/// Gaussian error linear unit (tanh approximation).
pub fn gelu(a: &Tensor) -> Tensor {
    a.map(gelu_scalar)
}

fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// ∂gelu/∂a via the tanh approximation derivative.
pub fn gelu_grad(grad: &Tensor, a: &Tensor) -> Tensor {
    const C: f32 = 0.797_884_6;
    let data = grad
        .data()
        .iter()
        .zip(a.data().iter())
        .map(|(&g, &x)| {
            let x3 = x * x * x;
            let u = C * (x + 0.044715 * x3);
            let t = u.tanh();
            let du = C * (1.0 + 3.0 * 0.044715 * x * x);
            g * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du)
        })
        .collect();
    Tensor::from_vec(a.shape().to_vec(), data)
}

/// Clamp every element into `[lo, hi]`.
pub fn clamp(a: &Tensor, lo: f32, hi: f32) -> Tensor {
    a.map(|x| x.clamp(lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec())
    }

    #[test]
    fn add_same_shape() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let b = t(&[2, 2], &[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(add(&a, &b).data(), &[11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn add_broadcast_row() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3], &[10.0, 20.0, 30.0]);
        assert_eq!(add(&a, &b).data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn mul_broadcast_col() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let b = t(&[2, 1], &[10.0, 100.0]);
        assert_eq!(mul(&a, &b).data(), &[10.0, 20.0, 300.0, 400.0]);
    }

    #[test]
    fn reduce_to_shape_sums_broadcast_dims() {
        let g = t(&[2, 3], &[1.0; 6]);
        let r = reduce_to_shape(&g, &[3]);
        assert_eq!(r.data(), &[2.0, 2.0, 2.0]);
        let r2 = reduce_to_shape(&g, &[2, 1]);
        assert_eq!(r2.data(), &[3.0, 3.0]);
    }

    #[test]
    fn div_grads() {
        let a = t(&[2], &[4.0, 9.0]);
        let b = t(&[2], &[2.0, 3.0]);
        let g = t(&[2], &[1.0, 1.0]);
        assert_eq!(div_grad_a(&g, &b, a.shape()).data(), &[0.5, 1.0 / 3.0]);
        let gb = div_grad_b(&g, &a, &b);
        assert_eq!(gb.data(), &[-1.0, -1.0]);
    }

    #[test]
    fn sigmoid_matches_definition() {
        let a = t(&[3], &[0.0, 50.0, -50.0]);
        let s = sigmoid(&a);
        assert!((s.data()[0] - 0.5).abs() < 1e-6);
        assert!((s.data()[1] - 1.0).abs() < 1e-6);
        assert!(s.data()[2] < 1e-6);
        assert!(!s.has_non_finite());
    }

    #[test]
    fn relu_and_grad() {
        let a = t(&[4], &[-1.0, 0.0, 0.5, 2.0]);
        assert_eq!(relu(&a).data(), &[0.0, 0.0, 0.5, 2.0]);
        let g = t(&[4], &[1.0; 4]);
        assert_eq!(relu_grad(&g, &a).data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn abs_grad_signs() {
        let a = t(&[3], &[-2.0, 0.0, 3.0]);
        let g = t(&[3], &[1.0; 3]);
        assert_eq!(abs_grad(&g, &a).data(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn gelu_values() {
        let a = t(&[2], &[0.0, 100.0]);
        let y = gelu(&a);
        assert!(y.data()[0].abs() < 1e-6);
        assert!((y.data()[1] - 100.0).abs() < 1e-3);
    }
}
