//! Elementwise binary (broadcasting) and unary operations.
//!
//! All three shapes of elementwise work — same-shape zips, broadcasting
//! zips, and unary maps — run through [`crate::parallel`]: the flat output
//! is split into contiguous ranges and each worker fills its own range.
//! Broadcast indexing uses precomputed broadcast strides and an odometer
//! walk instead of per-element `unravel`/`ravel`, which also speeds up the
//! serial path.

use crate::arena;
use crate::meter;
use crate::parallel;
use crate::shape::{broadcast_shapes, numel, strides_for, unravel, Shape};
use crate::simd::{self, BinOp, UnOp};
use crate::Tensor;

/// Per-axis strides of `shape` viewed in the broadcast space `out_shape`
/// (right-aligned; broadcast axes get stride 0).
fn broadcast_strides(shape: &[usize], out_shape: &[usize]) -> Shape {
    let mut out = Shape::zeros(out_shape.len());
    let offset = out_shape.len() - shape.len();
    let real = strides_for(shape);
    for (i, (&dim, &stride)) in shape.iter().zip(real.iter()).enumerate() {
        out[offset + i] = if dim == 1 { 0 } else { stride };
    }
    out
}

/// Arithmetic binary op with NumPy broadcasting, dispatched by [`BinOp`]
/// descriptor so the same-shape fast path can run the SIMD lanes of
/// [`simd::binary_map`] (the broadcast odometer path stays scalar — its
/// strided gathers have no contiguous lanes to load).
fn zip_arith(a: &Tensor, b: &Tensor, op: BinOp) -> Tensor {
    if a.shape() == b.shape() {
        meter::add_reads(a.len() + b.len());
        let (ad, bd) = (a.data(), b.data());
        let mut data = arena::take_zeroed(ad.len());
        parallel::for_units(&parallel::kernels::EW_ZIP, &mut data, 1, ad.len(), |start, chunk| {
            let end = start + chunk.len();
            simd::binary_map(op, &ad[start..end], &bd[start..end], chunk);
        });
        if simd::active() {
            parallel::kernels::EW_ZIP.stats.record_simd();
        }
        return Tensor::from_vec(a.shape(), data);
    }
    zip_broadcast(a, b, |x, y| op.apply(x, y))
}

/// Elementwise binary op with NumPy broadcasting.
fn zip_broadcast(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
    meter::add_reads(a.len() + b.len());
    if a.shape() == b.shape() {
        // Fast path: identical shapes, one flat parallel zip.
        let (ad, bd) = (a.data(), b.data());
        let mut data = arena::take_zeroed(ad.len());
        parallel::for_units(&parallel::kernels::EW_ZIP, &mut data, 1, ad.len(), |start, chunk| {
            for (i, o) in chunk.iter_mut().enumerate() {
                *o = f(ad[start + i], bd[start + i]);
            }
        });
        return Tensor::from_vec(a.shape(), data);
    }
    let out_shape = broadcast_shapes(a.shape(), b.shape())
        .unwrap_or_else(|| panic!("broadcast mismatch {:?} vs {:?}", a.shape(), b.shape()));
    let n = numel(&out_shape);
    let a_str = broadcast_strides(a.shape(), &out_shape);
    let b_str = broadcast_strides(b.shape(), &out_shape);
    let (ad, bd) = (a.data(), b.data());
    let mut data = arena::take_zeroed(n);
    parallel::for_units(&parallel::kernels::EW_ZIP_BROADCAST, &mut data, 1, n, |start, chunk| {
        // Odometer walk: carry coordinates and both source offsets along.
        let mut coords = unravel(start, &out_shape);
        let mut ia: usize = coords.iter().zip(a_str.iter()).map(|(c, s)| c * s).sum();
        let mut ib: usize = coords.iter().zip(b_str.iter()).map(|(c, s)| c * s).sum();
        let last = chunk.len() - 1;
        for (i, o) in chunk.iter_mut().enumerate() {
            *o = f(ad[ia], bd[ib]);
            if i == last {
                break;
            }
            for d in (0..out_shape.len()).rev() {
                coords[d] += 1;
                ia += a_str[d];
                ib += b_str[d];
                if coords[d] < out_shape[d] {
                    break;
                }
                coords[d] = 0;
                ia -= a_str[d] * out_shape[d];
                ib -= b_str[d] * out_shape[d];
            }
        }
    });
    Tensor::from_vec(out_shape, data)
}

/// Arithmetic unary map dispatched by [`UnOp`] descriptor through the SIMD
/// lanes of [`simd::unary_map`]. Transcendental maps (exp, tanh, …) stay on
/// the closure-based [`unary`]: their libm scalar calls have no bit-exact
/// vector equivalent.
fn unary_arith(a: &Tensor, op: UnOp) -> Tensor {
    meter::add_reads(a.len());
    let ad = a.data();
    let mut data = arena::take_zeroed(ad.len());
    parallel::for_units(&parallel::kernels::EW_UNARY, &mut data, 1, ad.len(), |start, chunk| {
        simd::unary_map(op, &ad[start..start + chunk.len()], chunk);
    });
    if simd::active() {
        parallel::kernels::EW_UNARY.stats.record_simd();
    }
    Tensor::from_vec(a.shape(), data)
}

/// Elementwise unary map, parallel over flat ranges.
fn unary(a: &Tensor, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
    meter::add_reads(a.len());
    let ad = a.data();
    let mut data = arena::take_zeroed(ad.len());
    parallel::for_units(&parallel::kernels::EW_UNARY, &mut data, 1, ad.len(), |start, chunk| {
        for (o, &x) in chunk.iter_mut().zip(ad[start..].iter()) {
            *o = f(x);
        }
    });
    Tensor::from_vec(a.shape(), data)
}

/// Exact-shape zip of two buffers (used by saved-value gradient kernels).
fn zip_exact(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
    debug_assert_eq!(a.len(), b.len(), "zip_exact length mismatch");
    meter::add_reads(a.len() + b.len());
    let (ad, bd) = (a.data(), b.data());
    let mut data = arena::take_zeroed(ad.len());
    parallel::for_units(&parallel::kernels::EW_ZIP_EXACT, &mut data, 1, ad.len(), |start, chunk| {
        for (i, o) in chunk.iter_mut().enumerate() {
            *o = f(ad[start + i], bd[start + i]);
        }
    });
    Tensor::from_vec(b.shape(), data)
}

/// Reduce `grad` (in broadcast-output shape) back to `target_shape` by
/// summing over the dimensions that were broadcast.
///
/// Parallel in *gather* form: one unit of work is one target element, which
/// sums its grad preimage in ascending grad-flat order (row-major odometer
/// over the reduced axes). That is exactly the per-element addition chain
/// of the seed's serial scatter-add (`ops::reference::reduce_to_shape`), so
/// results are bit-identical to it at every thread count — while workers
/// write disjoint target ranges, so no scatter races.
pub fn reduce_to_shape(grad: &Tensor, target_shape: &[usize]) -> Tensor {
    if grad.shape() == target_shape {
        return grad.clone();
    }
    meter::add_reads(grad.len());
    let gshape = grad.shape();
    let g_str = strides_for(gshape);
    let offset = gshape.len() - target_shape.len();
    // Axes to sum over: grad axes where the (right-aligned) target dim is
    // absent or 1 while grad's is larger. Stored as (len, grad stride) in
    // axis order, so the odometer below walks them row-major — i.e. in
    // ascending grad-flat order for a fixed target element.
    let mut reduce_dims: Vec<(usize, usize)> = Vec::with_capacity(gshape.len());
    for (d, (&gdim, &gstride)) in gshape.iter().zip(g_str.iter()).enumerate() {
        let tdim = if d < offset { 1 } else { target_shape[d - offset] };
        if tdim != gdim {
            reduce_dims.push((gdim, gstride));
        }
    }
    let total: usize = reduce_dims.iter().map(|&(len, _)| len).product();
    let n_out = numel(target_shape);
    let gd = grad.data();
    let mut out = arena::take_zeroed(n_out);
    // Vector groups apply when the grad's last axis is preserved in the
    // target: then [`simd::LANES`] consecutive target elements have grad
    // bases `base..base+LANES` (last stride is 1) and share one preimage
    // walk, so each lane keeps the exact per-element ascending chain.
    let tr = target_shape.len();
    let lanes_ok = tr > 0
        && gshape[gshape.len() - 1] == target_shape[tr - 1]
        && target_shape[tr - 1] >= simd::LANES
        && total > 0
        && reduce_dims.len() <= simd::MAX_RDIMS;
    parallel::for_units(&parallel::kernels::REDUCE_TO_SHAPE, &mut out, 1, grad.len(), |start, chunk| {
        if chunk.is_empty() {
            return;
        }
        // Target-coordinate odometer carries the grad base offset along.
        let mut tcoords = unravel(start, target_shape);
        let mut base: usize =
            tcoords.iter().enumerate().map(|(i, &c)| c * g_str[offset + i]).sum();
        // Advance the odometer by `step` target elements; `step` never
        // exceeds what remains in the current last-axis row, so the carry
        // fires on exact `== dim` boundaries like the single-step walk.
        let advance = |tcoords: &mut Shape, base: &mut usize, step: usize| {
            tcoords[tr - 1] += step;
            *base += step * g_str[offset + tr - 1];
            let mut d = tr - 1;
            loop {
                if tcoords[d] < target_shape[d] {
                    break;
                }
                tcoords[d] = 0;
                *base -= g_str[offset + d] * target_shape[d];
                if d == 0 {
                    break;
                }
                d -= 1;
                tcoords[d] += 1;
                *base += g_str[offset + d];
            }
        };
        let n = chunk.len();
        let mut i = 0;
        while i < n {
            let step = if lanes_ok
                && n - i >= simd::LANES
                && target_shape[tr - 1] - tcoords[tr - 1] >= simd::LANES
                && simd::reduce_lanes8(gd, base, &reduce_dims, total, &mut chunk[i..i + simd::LANES])
            {
                simd::LANES
            } else {
                let mut acc = 0.0f32;
                let mut roff = 0usize;
                let mut r = Shape::zeros(reduce_dims.len());
                for _ in 0..total {
                    acc += gd[base + roff];
                    for j in (0..reduce_dims.len()).rev() {
                        let (len, stride) = reduce_dims[j];
                        r[j] += 1;
                        roff += stride;
                        if r[j] < len {
                            break;
                        }
                        r[j] = 0;
                        roff -= len * stride;
                    }
                }
                chunk[i] = acc;
                1
            };
            i += step;
            if i < n {
                advance(&mut tcoords, &mut base, step);
            }
        }
    });
    if lanes_ok && simd::active() {
        parallel::kernels::REDUCE_TO_SHAPE.stats.record_simd();
    }
    Tensor::from_vec(target_shape, out)
}

/// `a + b` with broadcasting.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    zip_arith(a, b, BinOp::Add)
}

/// `a - b` with broadcasting.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    zip_arith(a, b, BinOp::Sub)
}

/// `a * b` with broadcasting.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    zip_arith(a, b, BinOp::Mul)
}

/// `a / b` with broadcasting.
pub fn div(a: &Tensor, b: &Tensor) -> Tensor {
    zip_arith(a, b, BinOp::Div)
}

/// ∂(a∘b)/∂a for add/sub: pass-through (sign handled by caller for sub).
pub fn binary_grad_passthrough(grad: &Tensor, input_shape: &[usize]) -> Tensor {
    reduce_to_shape(grad, input_shape)
}

/// ∂(a*b)/∂a = grad * b, reduced to a's shape.
pub fn mul_grad(grad: &Tensor, other: &Tensor, input_shape: &[usize]) -> Tensor {
    reduce_to_shape(&mul(grad, other), input_shape)
}

/// ∂(a/b)/∂a = grad / b, reduced to a's shape.
pub fn div_grad_a(grad: &Tensor, b: &Tensor, a_shape: &[usize]) -> Tensor {
    reduce_to_shape(&div(grad, b), a_shape)
}

/// ∂(a/b)/∂b = -grad * a / b², reduced to b's shape.
pub fn div_grad_b(grad: &Tensor, a: &Tensor, b: &Tensor) -> Tensor {
    let gb = zip_broadcast(&mul(grad, a), b, |num, den| -num / (den * den));
    reduce_to_shape(&gb, b.shape())
}

// ---------------------------------------------------------------------------
// Unary ops
// ---------------------------------------------------------------------------

/// Elementwise negation.
pub fn neg(a: &Tensor) -> Tensor {
    unary_arith(a, UnOp::Neg)
}

/// `a * c` for scalar `c`.
pub fn scale(a: &Tensor, c: f32) -> Tensor {
    unary_arith(a, UnOp::Scale(c))
}

/// `a + c` for scalar `c`.
pub fn add_scalar(a: &Tensor, c: f32) -> Tensor {
    unary_arith(a, UnOp::AddScalar(c))
}

/// Rectified linear unit (`maxps(x, 0)`: NaN and −0 both map to +0).
pub fn relu(a: &Tensor) -> Tensor {
    unary_arith(a, UnOp::Relu)
}

/// ∂relu/∂a = grad ⊙ 1[a>0].
pub fn relu_grad(grad: &Tensor, a: &Tensor) -> Tensor {
    zip_exact(grad, a, |g, x| if x > 0.0 { g } else { 0.0 })
}

/// Logistic sigmoid, numerically stable for large |x|.
pub fn sigmoid(a: &Tensor) -> Tensor {
    unary(a, |x| {
        if x >= 0.0 {
            1.0 / (1.0 + (-x).exp())
        } else {
            let e = x.exp();
            e / (1.0 + e)
        }
    })
}

/// ∂sigmoid/∂a given the saved output `y`: grad ⊙ y(1-y).
pub fn sigmoid_grad(grad: &Tensor, y: &Tensor) -> Tensor {
    zip_exact(grad, y, |g, s| g * s * (1.0 - s))
}

/// Hyperbolic tangent.
pub fn tanh(a: &Tensor) -> Tensor {
    unary(a, f32::tanh)
}

/// ∂tanh/∂a given the saved output `y`: grad ⊙ (1-y²).
pub fn tanh_grad(grad: &Tensor, y: &Tensor) -> Tensor {
    zip_exact(grad, y, |g, t| g * (1.0 - t * t))
}

/// Elementwise exp.
pub fn exp(a: &Tensor) -> Tensor {
    unary(a, f32::exp)
}

/// Natural log (inputs must be positive; callers clamp).
pub fn ln(a: &Tensor) -> Tensor {
    unary(a, f32::ln)
}

/// ∂ln/∂a = grad / a.
pub fn ln_grad(grad: &Tensor, a: &Tensor) -> Tensor {
    zip_exact(grad, a, |g, x| g / x)
}

/// Elementwise square root.
pub fn sqrt(a: &Tensor) -> Tensor {
    unary(a, f32::sqrt)
}

/// ∂sqrt/∂a given the saved output `y`: grad / (2y).
pub fn sqrt_grad(grad: &Tensor, y: &Tensor) -> Tensor {
    zip_exact(grad, y, |g, s| g / (2.0 * s))
}

/// Elementwise absolute value.
pub fn abs(a: &Tensor) -> Tensor {
    unary_arith(a, UnOp::Abs)
}

/// ∂|a|/∂a = grad ⊙ sign(a) (sub-gradient 0 at 0).
pub fn abs_grad(grad: &Tensor, a: &Tensor) -> Tensor {
    zip_exact(grad, a, |g, x| {
        if x > 0.0 {
            g
        } else if x < 0.0 {
            -g
        } else {
            0.0
        }
    })
}

/// Elementwise square.
pub fn square(a: &Tensor) -> Tensor {
    unary_arith(a, UnOp::Square)
}

/// ∂a²/∂a = 2·grad⊙a.
pub fn square_grad(grad: &Tensor, a: &Tensor) -> Tensor {
    zip_exact(grad, a, |g, x| 2.0 * g * x)
}

/// Gaussian error linear unit (tanh approximation).
pub fn gelu(a: &Tensor) -> Tensor {
    unary(a, gelu_scalar)
}

fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// ∂gelu/∂a via the tanh approximation derivative.
pub fn gelu_grad(grad: &Tensor, a: &Tensor) -> Tensor {
    const C: f32 = 0.797_884_6;
    zip_exact(grad, a, |g, x| {
        let x3 = x * x * x;
        let u = C * (x + 0.044715 * x3);
        let t = u.tanh();
        let du = C * (1.0 + 3.0 * 0.044715 * x * x);
        g * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du)
    })
}

/// Clamp every element into `[lo, hi]` (NaN passes through unchanged).
pub fn clamp(a: &Tensor, lo: f32, hi: f32) -> Tensor {
    unary_arith(a, UnOp::Clamp(lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec())
    }

    #[test]
    fn add_same_shape() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let b = t(&[2, 2], &[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(add(&a, &b).data(), &[11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn add_broadcast_row() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3], &[10.0, 20.0, 30.0]);
        assert_eq!(add(&a, &b).data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn mul_broadcast_col() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let b = t(&[2, 1], &[10.0, 100.0]);
        assert_eq!(mul(&a, &b).data(), &[10.0, 20.0, 300.0, 400.0]);
    }

    #[test]
    fn broadcast_matches_reference_on_mixed_ranks() {
        let a = t(&[2, 1, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[4, 1], &[0.5, 1.0, 2.0, 4.0]);
        let fast = mul(&a, &b);
        let slow = super::super::reference::mul(&a, &b);
        assert_eq!(fast.shape(), slow.shape());
        assert_eq!(fast.data(), slow.data());
    }

    #[test]
    fn reduce_to_shape_sums_broadcast_dims() {
        let g = t(&[2, 3], &[1.0; 6]);
        let r = reduce_to_shape(&g, &[3]);
        assert_eq!(r.data(), &[2.0, 2.0, 2.0]);
        let r2 = reduce_to_shape(&g, &[2, 1]);
        assert_eq!(r2.data(), &[3.0, 3.0]);
    }

    #[test]
    fn reduce_to_shape_matches_serial_scatter_bit_exact() {
        // Irregular values so any reassociation of the per-element addition
        // chain would show up in the low bits.
        let g = t(
            &[3, 2, 4],
            &(0..24).map(|i| ((i * 31) % 17) as f32 * 0.1 - 0.7).collect::<Vec<_>>(),
        );
        for target in [
            vec![4usize],
            vec![2, 4],
            vec![1, 4],
            vec![2, 1],
            vec![3, 1, 1],
            vec![3, 2, 4],
            vec![1],
        ] {
            let fast = reduce_to_shape(&g, &target);
            let slow = super::super::reference::reduce_to_shape(&g, &target);
            assert_eq!(fast.shape(), slow.shape(), "target {target:?}");
            assert_eq!(fast.data(), slow.data(), "target {target:?}");
        }
    }

    #[test]
    fn div_grads() {
        let a = t(&[2], &[4.0, 9.0]);
        let b = t(&[2], &[2.0, 3.0]);
        let g = t(&[2], &[1.0, 1.0]);
        assert_eq!(div_grad_a(&g, &b, a.shape()).data(), &[0.5, 1.0 / 3.0]);
        let gb = div_grad_b(&g, &a, &b);
        assert_eq!(gb.data(), &[-1.0, -1.0]);
    }

    #[test]
    fn sigmoid_matches_definition() {
        let a = t(&[3], &[0.0, 50.0, -50.0]);
        let s = sigmoid(&a);
        assert!((s.data()[0] - 0.5).abs() < 1e-6);
        assert!((s.data()[1] - 1.0).abs() < 1e-6);
        assert!(s.data()[2] < 1e-6);
        assert!(!s.has_non_finite());
    }

    #[test]
    fn relu_and_grad() {
        let a = t(&[4], &[-1.0, 0.0, 0.5, 2.0]);
        assert_eq!(relu(&a).data(), &[0.0, 0.0, 0.5, 2.0]);
        let g = t(&[4], &[1.0; 4]);
        assert_eq!(relu_grad(&g, &a).data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn abs_grad_signs() {
        let a = t(&[3], &[-2.0, 0.0, 3.0]);
        let g = t(&[3], &[1.0; 3]);
        assert_eq!(abs_grad(&g, &a).data(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn gelu_values() {
        let a = t(&[2], &[0.0, 100.0]);
        let y = gelu(&a);
        assert!(y.data()[0].abs() < 1e-6);
        assert!((y.data()[1] - 100.0).abs() < 1e-3);
    }
}
