//! Reductions (sum/mean over an axis or all elements) and broadcasting back.
//!
//! Axis reductions partition their output over the *outer* index through
//! [`crate::parallel::for_units`]: each outer slot owns a disjoint
//! `inner`-length slice of the output, so workers never share an
//! accumulator and the per-slot ascending-`l` accumulation order is
//! identical to the serial kernel (bit-exact at any thread count).

use crate::arena;
use crate::meter;
use crate::parallel;
use crate::shape::Shape;
use crate::Tensor;

/// Shape with `axis` removed (`keepdim=false`) or set to 1 (`keepdim=true`).
fn reduced_shape(shape: &[usize], axis: usize, keepdim: bool) -> Shape {
    let mut s: Shape = if keepdim {
        shape
            .iter()
            .enumerate()
            .map(|(i, &d)| if i == axis { 1 } else { d })
            .collect()
    } else {
        shape
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| (i != axis).then_some(d))
            .collect()
    };
    if s.is_empty() {
        s.push(1);
    }
    s
}

/// Decompose a shape around `axis` into (outer, axis_len, inner).
fn split_at_axis(shape: &[usize], axis: usize) -> (usize, usize, usize) {
    let outer: usize = shape[..axis].iter().product();
    let len = shape[axis];
    let inner: usize = shape[axis + 1..].iter().product();
    (outer, len, inner)
}

/// Sum over one axis.
pub fn sum_axis(a: &Tensor, axis: usize, keepdim: bool) -> Tensor {
    meter::add_reads(a.len());
    let (outer, len, inner) = split_at_axis(a.shape(), axis);
    let mut out = arena::take_zeroed(outer * inner);
    let data = a.data();
    parallel::for_units(&parallel::kernels::REDUCE_SUM_AXIS, &mut out, inner.max(1), outer * len * inner, |o0, chunk| {
        if inner == 0 {
            return;
        }
        for (oi, oslice) in chunk.chunks_mut(inner).enumerate() {
            let o = o0 + oi;
            for l in 0..len {
                let base = (o * len + l) * inner;
                crate::simd::accum(oslice, &data[base..base + inner]);
            }
        }
    });
    if crate::simd::active() {
        parallel::kernels::REDUCE_SUM_AXIS.stats.record_simd();
    }
    Tensor::from_vec(reduced_shape(a.shape(), axis, keepdim), out)
}

/// Mean over one axis.
pub fn mean_axis(a: &Tensor, axis: usize, keepdim: bool) -> Tensor {
    let len = a.shape()[axis] as f32;
    let mut s = sum_axis(a, axis, keepdim);
    s.scale_inplace(1.0 / len);
    s
}

/// ∂sum_axis/∂a: upstream grad broadcast back along `axis`.
pub fn sum_axis_grad(grad: &Tensor, a_shape: &[usize], axis: usize) -> Tensor {
    meter::add_reads(grad.len());
    let (outer, len, inner) = split_at_axis(a_shape, axis);
    let mut out = arena::take_zeroed(outer * len * inner);
    let g = grad.data();
    debug_assert_eq!(g.len(), outer * inner);
    parallel::for_units(&parallel::kernels::REDUCE_SUM_AXIS_GRAD, &mut out, (len * inner).max(1), outer * len * inner, |u0, chunk| {
        if inner == 0 || len == 0 {
            return;
        }
        for (oi, oslice) in chunk.chunks_mut(len * inner).enumerate() {
            let o = u0 + oi;
            let gbase = o * inner;
            for row in oslice.chunks_mut(inner) {
                row.copy_from_slice(&g[gbase..gbase + inner]);
            }
        }
    });
    Tensor::from_vec(a_shape, out)
}

/// ∂mean_axis/∂a: broadcast divided by axis length.
pub fn mean_axis_grad(grad: &Tensor, a_shape: &[usize], axis: usize) -> Tensor {
    let mut g = sum_axis_grad(grad, a_shape, axis);
    g.scale_inplace(1.0 / a_shape[axis] as f32);
    g
}

/// Sum of all elements as a `[1]` tensor.
pub fn sum_all(a: &Tensor) -> Tensor {
    Tensor::scalar(a.sum())
}

/// Mean of all elements as a `[1]` tensor.
pub fn mean_all(a: &Tensor) -> Tensor {
    Tensor::scalar(a.mean())
}

/// ∂sum_all/∂a: the scalar upstream grad splattered everywhere.
pub fn sum_all_grad(grad: &Tensor, a_shape: &[usize]) -> Tensor {
    Tensor::full(a_shape, grad.item())
}

/// ∂mean_all/∂a.
pub fn mean_all_grad(grad: &Tensor, a_shape: &[usize]) -> Tensor {
    let n: usize = a_shape.iter().product();
    Tensor::full(a_shape, grad.item() / n as f32)
}

/// Maximum over one axis (non-differentiable helper for e.g. Informer's
/// sparsity measurement; used on detached values only).
pub fn max_axis(a: &Tensor, axis: usize, keepdim: bool) -> Tensor {
    meter::add_reads(a.len());
    let (outer, len, inner) = split_at_axis(a.shape(), axis);
    let mut out = arena::take_filled(outer * inner, f32::NEG_INFINITY);
    let data = a.data();
    parallel::for_units(&parallel::kernels::REDUCE_MAX_AXIS, &mut out, inner.max(1), outer * len * inner, |o0, chunk| {
        if inner == 0 {
            return;
        }
        for (oi, oslice) in chunk.chunks_mut(inner).enumerate() {
            let o = o0 + oi;
            for l in 0..len {
                let base = (o * len + l) * inner;
                crate::simd::max_accum(oslice, &data[base..base + inner]);
            }
        }
    });
    if crate::simd::active() {
        parallel::kernels::REDUCE_MAX_AXIS.stats.record_simd();
    }
    Tensor::from_vec(reduced_shape(a.shape(), axis, keepdim), out)
}

/// Materialize `a` broadcast to `target` shape.
pub fn broadcast_to(a: &Tensor, target: &[usize]) -> Tensor {
    use crate::shape::{numel, strides_for, unravel};
    if a.shape() == target {
        return a.clone();
    }
    meter::add_reads(a.len());
    let n = numel(target);
    let mut out = arena::take_zeroed(n);
    let data = a.data();
    let shape = a.shape();
    // Right-aligned broadcast strides into `a`: 0 where a dim broadcasts.
    let rank = target.len();
    let astr = strides_for(shape);
    let mut bstr = Shape::zeros(rank);
    let offset = rank - shape.len();
    for (i, (&d, &s)) in shape.iter().zip(astr.iter()).enumerate() {
        bstr[offset + i] = if d == 1 { 0 } else { s };
    }
    parallel::for_units(&parallel::kernels::BROADCAST_TO, &mut out, 1, n, |start, chunk| {
        // One coordinate vector per chunk, then an odometer walk carrying
        // the source offset — no per-element unravel allocation.
        let mut coords = unravel(start, target);
        let mut src: usize = coords.iter().zip(bstr.iter()).map(|(c, s)| c * s).sum();
        for o in chunk.iter_mut() {
            *o = data[src];
            for ax in (0..rank).rev() {
                coords[ax] += 1;
                src += bstr[ax];
                if coords[ax] < target[ax] {
                    break;
                }
                src -= target[ax] * bstr[ax];
                coords[ax] = 0;
            }
        }
    });
    Tensor::from_vec(target, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec())
    }

    #[test]
    fn sum_axis_middle() {
        let a = t(&[2, 3, 2], &(1..=12).map(|x| x as f32).collect::<Vec<_>>());
        let s = sum_axis(&a, 1, false);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[9.0, 12.0, 27.0, 30.0]);
        let sk = sum_axis(&a, 1, true);
        assert_eq!(sk.shape(), &[2, 1, 2]);
        assert_eq!(sk.data(), s.data());
    }

    #[test]
    fn mean_axis_last() {
        let a = t(&[2, 2], &[1.0, 3.0, 5.0, 7.0]);
        let m = mean_axis(&a, 1, false);
        assert_eq!(m.data(), &[2.0, 6.0]);
    }

    #[test]
    fn sum_axis_grad_broadcasts() {
        let g = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let back = sum_axis_grad(&g, &[2, 3, 2], 1);
        assert_eq!(back.shape(), &[2, 3, 2]);
        assert_eq!(back.at(&[0, 0, 1]), 2.0);
        assert_eq!(back.at(&[0, 2, 1]), 2.0);
        assert_eq!(back.at(&[1, 1, 0]), 3.0);
    }

    #[test]
    fn all_reductions() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(sum_all(&a).item(), 10.0);
        assert_eq!(mean_all(&a).item(), 2.5);
        let g = Tensor::scalar(2.0);
        assert_eq!(sum_all_grad(&g, a.shape()).data(), &[2.0; 4]);
        assert_eq!(mean_all_grad(&g, a.shape()).data(), &[0.5; 4]);
    }

    #[test]
    fn max_axis_works() {
        let a = t(&[2, 3], &[1.0, 5.0, 3.0, 7.0, 2.0, 6.0]);
        let m = max_axis(&a, 1, false);
        assert_eq!(m.data(), &[5.0, 7.0]);
        let m0 = max_axis(&a, 0, true);
        assert_eq!(m0.shape(), &[1, 3]);
        assert_eq!(m0.data(), &[7.0, 5.0, 6.0]);
    }

    #[test]
    fn sum_axis_matches_reference_above_threshold() {
        // Big enough to cross PAR_THRESHOLD so the parallel branch runs.
        let a = Tensor::from_vec(
            vec![8, 16, 96],
            (0..8 * 16 * 96).map(|i| (i % 97) as f32 * 0.25 - 12.0).collect(),
        );
        for axis in 0..3 {
            let fast = sum_axis(&a, axis, false);
            let slow = super::super::reference::sum_axis(&a, axis, false);
            assert_eq!(fast.shape(), slow.shape());
            assert_eq!(fast.data(), slow.data());
        }
    }

    #[test]
    fn broadcast_to_materializes() {
        let a = t(&[1, 3], &[1.0, 2.0, 3.0]);
        let b = broadcast_to(&a, &[2, 3]);
        assert_eq!(b.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }
}
