//! `cts-tensor`: a small, dependency-light dense tensor library used as the
//! numeric substrate for the AutoCTS reproduction.
//!
//! Tensors are row-major, contiguous, `f32`. Every differentiable operation
//! exposed by [`ops`] comes with analytic gradient functions so that the
//! autograd layer (`cts-autograd`) can stay a thin bookkeeping shim.
//!
//! The canonical activation layout throughout the workspace is
//! `[B, N, T, D]` — batch, node (time series), time step, channel.

#![warn(missing_docs)]
// `deny` rather than `forbid`: the persistent worker pool (`pool`) and the
// SIMD microkernels (`simd`) are the only modules allowed to opt back in
// (lifetime-erased task pointers; `core::arch` intrinsics), each use
// carrying a `// SAFETY:` proof checked by scripts/lint_forbidden.sh rules
// 2 and 8.
#![deny(unsafe_code)]

mod pool;
mod shape;
mod tensor;

pub mod arena;
pub mod init;
pub mod meter;
pub mod metrics;
pub mod ops;
pub mod parallel;
pub mod simd;
pub mod sym;

pub use shape::{broadcast_shapes, strides_for, Shape};
pub use tensor::Tensor;

/// Numerical tolerance used by tests and gradient checks across the workspace.
pub const TEST_EPS: f32 = 1e-4;
