//! Thread-local buffer arena: size-class free lists that recycle tensor
//! data buffers (and kernel scratch) across tape steps instead of
//! round-tripping every allocation through the system allocator.
//!
//! Every [`crate::Tensor`] acquires its `Vec<f32>` here and returns it on
//! drop, so a steady-state training step — which creates and destroys the
//! same population of activation/gradient tensors every iteration —
//! reaches a fixed point where the arena satisfies (almost) every request
//! from its free lists and the system allocator is no longer on the hot
//! path.
//!
//! # Design
//!
//! - **Thread-local**: each thread owns its free lists, so there is no
//!   locking. The persistent worker pool ([`crate::parallel`]) keeps its
//!   threads alive between kernels, which is what makes worker-local
//!   recycling effective (scoped spawn-per-kernel threads would drop
//!   their lists on every kernel exit).
//! - **Power-of-two size classes**: a freed buffer is binned by
//!   `floor(log2(capacity))`; a request of `len` floats takes from bin
//!   `ceil(log2(len))`, so any recycled hit is guaranteed to have enough
//!   capacity. Fresh allocations round their capacity up to the class
//!   size so they re-enter the exact bin that will serve them next time.
//! - **Bounded residency**: at most [`PER_CLASS`] buffers per class and
//!   [`MAX_RESIDENT_FLOATS`] floats total stay cached per thread; excess
//!   buffers fall through to the system allocator's `dealloc` as before.
//! - **Deterministic values**: every buffer handed out is fully
//!   initialised (zeroed, constant-filled, or copied) before the caller
//!   sees it, so recycling can never change numerical results. Debug
//!   builds additionally poison-fill recycled buffers with a NaN pattern
//!   ([`POISON`]) so any code path that could observe stale data fails
//!   loudly in tests.
//!
//! # Counters
//!
//! [`stats`] exposes per-thread hit/miss/recycle counters; a *miss* is a
//! real system allocation, so `misses per step` is the arena-level
//! counting-allocator metric the benchmark suite and the
//! allocation-regression gate in `scripts/check.sh` report.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Number of size classes (class `c` holds capacities in `[2^c, 2^{c+1})`).
const N_CLASSES: usize = 27;

/// Maximum buffers retained per size class. A whole tape's activations of
/// one size are live simultaneously and all recycle at tape drop, so this
/// must cover the per-step population of a size class (thousands for the
/// supernet's activation shape) or the overflow is discarded and
/// re-allocated every step. [`MAX_RESIDENT_FLOATS`] is the real memory
/// bound; this only guards against one class monopolising it.
const PER_CLASS: usize = 8192;

/// Total floats retained per thread across all classes (2^28 floats =
/// 1 GiB of f32). Sized for the default-scale supernet (`NODES=16`,
/// `BATCH=8`, `D_MODEL=16`), whose per-step buffer population is a few
/// hundred MB; a smaller cap makes every step re-allocate the overflow
/// from the system. Retention is demand-driven — the cap only fills if
/// the workload actually churns that much.
///
/// The budget is accounted in *actual capacity* (`Vec::capacity`), which
/// for arena-allocated buffers is the rounded power-of-two class size —
/// never the smaller requested length. Both sides of the ledger use the
/// same measure (`take_raw` subtracts `buf.capacity()` on a hit,
/// [`recycle`] adds `cap` back), so residency can neither drift nor
/// undercount rounding slack; `arena_residency_counts_class_capacity` in
/// the tests pins this at class boundaries.
const MAX_RESIDENT_FLOATS: usize = 1 << 28;

/// NaN bit pattern written over recycled buffers in debug builds, so any
/// read of stale data is unmistakable (and poisons downstream results).
pub const POISON: f32 = f32::from_bits(0x7fc0_dead);

/// Snapshot of this thread's arena counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Requests served from a free list (no system allocation).
    pub hits: u64,
    /// Requests that fell through to the system allocator.
    pub misses: u64,
    /// Buffers accepted back into a free list.
    pub recycled: u64,
    /// Buffers dropped (arena disabled, class full, or over budget).
    pub discarded: u64,
    /// Floats currently cached in this thread's free lists.
    pub resident_floats: u64,
}

/// Per-size-class gauges for one class of this thread's arena.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Size-class index (buffers hold `2^class` floats).
    pub class: usize,
    /// Buffers currently cached in this class's free list.
    pub buffers: usize,
    /// Floats currently cached in this class (`buffers * 2^class` for
    /// arena-allocated buffers; exact capacity sum in general).
    pub resident_floats: u64,
    /// Requests this class served from its free list.
    pub hits: u64,
    /// Requests routed to this class that fell through to the allocator.
    pub misses: u64,
}

struct ArenaTls {
    bins: Vec<Vec<Vec<f32>>>,
    resident: usize,
    stats: ArenaStats,
    class_hits: [u64; N_CLASSES],
    class_misses: [u64; N_CLASSES],
    // Live-buffer gauge: capacity handed out by `take_raw` and not yet
    // returned through `recycle`. `live` can only undercount (buffers
    // built outside the arena still recycle on Tensor drop), never
    // overcount — which keeps `peak_live` a sound *lower* bound on true
    // peak residency for the static cost model's `estimate >= measured`
    // regression gate.
    live: usize,
    peak_live: usize,
}

impl ArenaTls {
    fn new() -> Self {
        ArenaTls {
            bins: (0..N_CLASSES).map(|_| Vec::new()).collect(),
            resident: 0,
            stats: ArenaStats::default(),
            class_hits: [0; N_CLASSES],
            class_misses: [0; N_CLASSES],
            live: 0,
            peak_live: 0,
        }
    }

    fn note_taken(&mut self, cap: usize) {
        self.live += cap;
        if self.live > self.peak_live {
            self.peak_live = self.live;
        }
    }
}

thread_local! {
    static ARENA: RefCell<ArenaTls> = RefCell::new(ArenaTls::new());
}

/// 0 = follow `CTS_ARENA` env (default on), 1 = forced on, 2 = forced off.
static MODE: AtomicU8 = AtomicU8::new(0);

fn env_disabled() -> bool {
    // Read per call so tests can flip the env before first use; the parse
    // is trivial and off the hot path only when the arena is disabled.
    static ENV: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENV.get_or_init(|| {
        matches!(
            std::env::var("CTS_ARENA").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        )
    })
}

/// Is buffer recycling active on this thread?
pub fn enabled() -> bool {
    match MODE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => !env_disabled(),
    }
}

/// Force the arena on/off process-wide (`None` restores the `CTS_ARENA`
/// env default). Benchmarks use this to measure the allocation churn the
/// arena removes.
pub fn set_enabled(on: Option<bool>) {
    MODE.store(
        match on {
            None => 0,
            Some(true) => 1,
            Some(false) => 2,
        },
        Ordering::Relaxed,
    );
}

/// Size class a request of `len` floats takes from: smallest class whose
/// buffers are all guaranteed to hold `len`.
fn class_for_request(len: usize) -> usize {
    (usize::BITS - len.max(1).next_power_of_two().leading_zeros() - 1) as usize
}

/// Size class a buffer of `cap` floats is stored in.
fn class_for_capacity(cap: usize) -> usize {
    (usize::BITS - cap.leading_zeros() - 1) as usize
}

/// Pop a recycled buffer with capacity ≥ `len`, or allocate a fresh one
/// whose capacity is rounded up to the class size (so it re-enters the
/// serving bin when recycled). The returned Vec has `len == 0`.
fn take_raw(len: usize) -> Vec<f32> {
    if !enabled() {
        return Vec::with_capacity(len);
    }
    let class = class_for_request(len);
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        if class < N_CLASSES {
            if let Some(mut buf) = a.bins[class].pop() {
                a.resident -= buf.capacity();
                a.stats.hits += 1;
                a.class_hits[class] += 1;
                a.stats.resident_floats = a.resident as u64;
                a.note_taken(buf.capacity());
                buf.clear();
                return buf;
            }
            a.class_misses[class] += 1;
        }
        a.stats.misses += 1;
        let cap = len.max(1).next_power_of_two();
        a.note_taken(cap);
        Vec::with_capacity(cap)
    })
}

/// A zero-filled buffer of exactly `len` floats.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    let mut v = take_raw(len);
    v.resize(len, 0.0);
    v
}

/// A constant-filled buffer of exactly `len` floats.
pub fn take_filled(len: usize, value: f32) -> Vec<f32> {
    let mut v = take_raw(len);
    v.resize(len, value);
    v
}

/// A buffer holding a copy of `src`.
pub fn take_copied(src: &[f32]) -> Vec<f32> {
    let mut v = take_raw(src.len());
    v.extend_from_slice(src);
    v
}

/// A buffer of `len` floats filled from `it` (must yield ≥ `len` items).
pub fn take_from_iter(len: usize, it: impl Iterator<Item = f32>) -> Vec<f32> {
    let mut v = take_raw(len);
    v.extend(it.take(len));
    debug_assert_eq!(v.len(), len, "take_from_iter: iterator too short");
    v
}

/// Pre-populate this thread's free lists so that a later sequence of
/// `take_*` requests for exactly these lengths is served without touching
/// the system allocator (compiled inference plans call this with their
/// full intermediate-buffer population before the first forward).
///
/// All buffers are taken *before* any is recycled: duplicate lengths in
/// `lens` therefore end up as distinct free-list entries, matching a
/// forward pass that holds several same-sized intermediates live at once.
pub fn prewarm(lens: &[usize]) {
    let taken: Vec<Vec<f32>> = lens.iter().map(|&l| take_raw(l)).collect();
    for buf in taken {
        recycle(buf);
    }
}

/// Return a buffer to this thread's free lists (or drop it when the
/// arena is disabled, the class is full, or the residency budget is hit).
pub fn recycle(mut buf: Vec<f32>) {
    let cap = buf.capacity();
    if cap == 0 {
        return;
    }
    if !enabled() {
        ARENA.with(|a| a.borrow_mut().stats.discarded += 1);
        return;
    }
    let class = class_for_capacity(cap);
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        // Gauge first: the buffer stops being live whether or not the
        // free list accepts it. Saturating because buffers created
        // outside `take_raw` (e.g. `Tensor::from_vec`) also land here.
        a.live = a.live.saturating_sub(cap);
        if class >= N_CLASSES
            || a.bins[class].len() >= PER_CLASS
            || a.resident + cap > MAX_RESIDENT_FLOATS
        {
            a.stats.discarded += 1;
            return;
        }
        #[cfg(debug_assertions)]
        {
            // Poison so any use of recycled memory that skipped
            // re-initialisation surfaces as NaNs in debug/test builds.
            buf.clear();
            buf.resize(cap, POISON);
        }
        buf.clear();
        a.resident += cap;
        a.stats.recycled += 1;
        a.stats.resident_floats = a.resident as u64;
        a.bins[class].push(buf);
    });
}

/// This thread's arena counters.
pub fn stats() -> ArenaStats {
    ARENA.with(|a| a.borrow().stats)
}

/// `(live, peak_live)` floats currently handed out by `take_raw` and not
/// yet recycled on this thread, and the high-water mark since the last
/// [`reset_live_peak`]. Measured in *actual capacity* (rounded
/// power-of-two class sizes), the same ledger unit as `resident_floats`.
/// The static cost model's peak-bytes regression gate compares its
/// estimate against `peak_live × 4` bytes.
pub fn live_stats() -> (usize, usize) {
    ARENA.with(|a| {
        let a = a.borrow();
        (a.live, a.peak_live)
    })
}

/// Reset this thread's live high-water mark to the current live gauge
/// (the gauge itself is preserved — buffers taken before the reset still
/// count as live until recycled).
pub fn reset_live_peak() {
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        a.peak_live = a.live;
    });
}

/// Per-class gauges for this thread, skipping classes with no activity
/// (no cached buffers and no hits/misses).
pub fn class_stats() -> Vec<ClassStats> {
    ARENA.with(|a| {
        let a = a.borrow();
        (0..N_CLASSES)
            .filter_map(|c| {
                let buffers = a.bins[c].len();
                let hits = a.class_hits[c];
                let misses = a.class_misses[c];
                if buffers == 0 && hits == 0 && misses == 0 {
                    return None;
                }
                Some(ClassStats {
                    class: c,
                    buffers,
                    resident_floats: a.bins[c].iter().map(|b| b.capacity() as u64).sum(),
                    hits,
                    misses,
                })
            })
            .collect()
    })
}

/// Zero this thread's counters (residency is preserved and re-reported).
pub fn reset_stats() {
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        let resident = a.resident as u64;
        a.stats = ArenaStats {
            resident_floats: resident,
            ..ArenaStats::default()
        };
        a.class_hits = [0; N_CLASSES];
        a.class_misses = [0; N_CLASSES];
    });
}

/// Drop every buffer cached by this thread.
pub fn clear() {
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        for bin in &mut a.bins {
            bin.clear();
        }
        a.resident = 0;
        a.stats.resident_floats = 0;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_consistent() {
        // Any buffer stored in the class serving a request has capacity
        // >= the request.
        for len in [1usize, 2, 3, 48, 64, 65, 1000, 4096] {
            let serve = class_for_request(len);
            // fresh allocation capacity for this request
            let cap = len.next_power_of_two();
            assert_eq!(class_for_capacity(cap), serve, "len {len}");
            assert!(cap >= len);
        }
    }

    #[test]
    fn take_recycle_roundtrip_reuses_allocation() {
        clear();
        reset_stats();
        let v = take_zeroed(1000);
        let ptr = v.as_ptr();
        recycle(v);
        let v2 = take_zeroed(900); // same class (1024)
        assert_eq!(v2.as_ptr(), ptr, "same-class request must reuse the buffer");
        assert_eq!(v2.len(), 900);
        assert!(v2.iter().all(|&x| x == 0.0), "recycled buffer must be zeroed");
        let s = stats();
        assert_eq!(s.hits, 1);
        recycle(v2);
        clear();
    }

    #[test]
    fn disabled_arena_never_caches() {
        clear();
        set_enabled(Some(false));
        let v = take_zeroed(128);
        recycle(v);
        assert_eq!(stats().resident_floats, 0);
        set_enabled(None);
    }

    #[test]
    fn filled_and_copied() {
        let f = take_filled(5, 2.5);
        assert_eq!(f, vec![2.5; 5]);
        let c = take_copied(&[1.0, 2.0]);
        assert_eq!(c, vec![1.0, 2.0]);
        let it = take_from_iter(3, [7.0, 8.0, 9.0, 10.0].into_iter());
        assert_eq!(it, vec![7.0, 8.0, 9.0]);
        recycle(f);
        recycle(c);
        recycle(it);
    }

    #[test]
    fn arena_residency_counts_class_capacity() {
        // The residency ledger must count the rounded power-of-two class
        // capacity a buffer actually occupies, not the requested length —
        // a 1025-float request allocates (and must be accounted as) 2048.
        clear();
        reset_stats();
        let v = take_zeroed(1025);
        assert_eq!(v.capacity(), 2048, "fresh alloc rounds up to class size");
        recycle(v);
        let s = stats();
        assert_eq!(
            s.resident_floats, 2048,
            "resident floats must be class capacity, not requested 1025"
        );
        let cs = class_stats();
        let c11 = cs
            .iter()
            .find(|c| c.class == 11)
            .expect("class 11 (2048) active");
        assert_eq!((c11.buffers, c11.resident_floats), (1, 2048));
        // Exact power-of-two boundary: 1024 lands one class below.
        let w = take_zeroed(1024);
        assert_eq!(w.capacity(), 1024);
        recycle(w);
        assert_eq!(stats().resident_floats, 2048 + 1024);
        // Taking the 1025-class buffer back removes its full capacity.
        let v2 = take_zeroed(1025);
        assert_eq!(stats().resident_floats, 1024);
        assert_eq!(v2.capacity(), 2048, "hit returns the rounded buffer");
        recycle(v2);
        clear();
    }

    #[test]
    fn class_stats_track_hits_and_misses() {
        clear();
        reset_stats();
        let v = take_zeroed(100); // miss in class 7 (128)
        recycle(v);
        let v = take_zeroed(100); // hit in class 7
        recycle(v);
        let cs = class_stats();
        let c7 = cs.iter().find(|c| c.class == 7).expect("class 7 active");
        assert_eq!((c7.hits, c7.misses, c7.buffers), (1, 1, 1));
        assert_eq!(c7.resident_floats, 128);
        clear();
        reset_stats();
    }

    #[test]
    fn residency_is_bounded_per_class() {
        clear();
        for _ in 0..(PER_CLASS + 4) {
            recycle(Vec::with_capacity(256));
        }
        ARENA.with(|a| {
            let a = a.borrow();
            assert!(a.bins[class_for_capacity(256)].len() <= PER_CLASS);
        });
        clear();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn recycled_buffers_are_poisoned_then_reinitialised() {
        clear();
        let mut v = take_zeroed(64);
        v[0] = 42.0;
        recycle(v);
        // The cached buffer is poisoned; but everything the public API
        // hands back is re-initialised, so the poison is never visible.
        let v2 = take_zeroed(64);
        assert!(v2.iter().all(|&x| x == 0.0));
        let v3 = take_filled(64, 1.0);
        assert!(v3.iter().all(|&x| x == 1.0));
        recycle(v2);
        recycle(v3);
        clear();
    }
}
