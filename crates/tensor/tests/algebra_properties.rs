//! Property-based tests of algebraic identities the tensor kernels must
//! satisfy — these pin down the substrate every model relies on.

use cts_tensor::{ops, Tensor};
use proptest::prelude::*;

fn tensor_strategy(shape: &'static [usize]) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    proptest::collection::vec(-10.0f32..10.0, n)
        .prop_map(move |v| Tensor::from_vec(shape.to_vec(), v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matmul_identity_left_and_right(a in tensor_strategy(&[3, 3])) {
        let i = Tensor::eye(3);
        prop_assert!(ops::matmul(&i, &a).approx_eq(&a, 1e-4));
        prop_assert!(ops::matmul(&a, &i).approx_eq(&a, 1e-4));
    }

    #[test]
    fn matmul_associative(a in tensor_strategy(&[2, 3]),
                          b in tensor_strategy(&[3, 4]),
                          c in tensor_strategy(&[4, 2])) {
        let left = ops::matmul(&ops::matmul(&a, &b), &c);
        let right = ops::matmul(&a, &ops::matmul(&b, &c));
        // tolerances scale with magnitudes (f32 accumulation)
        let tol = 1e-2 * (1.0 + left.norm());
        prop_assert!(left.approx_eq(&right, tol), "assoc violated");
    }

    #[test]
    fn matmul_distributes_over_add(a in tensor_strategy(&[2, 3]),
                                   b in tensor_strategy(&[3, 2]),
                                   c in tensor_strategy(&[3, 2])) {
        let lhs = ops::matmul(&a, &ops::add(&b, &c));
        let rhs = ops::add(&ops::matmul(&a, &b), &ops::matmul(&a, &c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-3 * (1.0 + lhs.norm())));
    }

    #[test]
    fn transpose_is_involution(a in tensor_strategy(&[3, 4])) {
        let tt = ops::transpose_last2(&ops::transpose_last2(&a));
        prop_assert!(tt.approx_eq(&a, 0.0));
    }

    #[test]
    fn elementwise_ops_commute_where_expected(a in tensor_strategy(&[2, 4]),
                                              b in tensor_strategy(&[2, 4])) {
        prop_assert!(ops::add(&a, &b).approx_eq(&ops::add(&b, &a), 0.0));
        prop_assert!(ops::mul(&a, &b).approx_eq(&ops::mul(&b, &a), 0.0));
    }

    #[test]
    fn broadcast_equals_materialized(a in tensor_strategy(&[2, 3]),
                                     row in tensor_strategy(&[3])) {
        // a + row (broadcast) == a + broadcast_to(row)
        let fast = ops::add(&a, &row);
        let slow = ops::add(&a, &ops::broadcast_to(&row, &[2, 3]));
        prop_assert!(fast.approx_eq(&slow, 0.0));
    }

    #[test]
    fn temporal_conv_is_linear_in_input(x in tensor_strategy(&[1, 2, 5, 2]),
                                        y in tensor_strategy(&[1, 2, 5, 2]),
                                        w in tensor_strategy(&[2, 2, 3])) {
        let sum = ops::temporal_conv(&ops::add(&x, &y), &w, 1);
        let parts = ops::add(
            &ops::temporal_conv(&x, &w, 1),
            &ops::temporal_conv(&y, &w, 1),
        );
        prop_assert!(sum.approx_eq(&parts, 1e-2 * (1.0 + sum.norm())));
    }

    #[test]
    fn sum_axis_consistent_with_total(a in tensor_strategy(&[3, 4])) {
        let by_rows = ops::sum_axis(&a, 0, false).sum();
        let by_cols = ops::sum_axis(&a, 1, false).sum();
        prop_assert!((by_rows - a.sum()).abs() < 1e-3);
        prop_assert!((by_cols - a.sum()).abs() < 1e-3);
    }

    #[test]
    fn permute_preserves_multiset(a in tensor_strategy(&[2, 3, 4])) {
        let p = ops::permute(&a, &[2, 0, 1]);
        let mut x: Vec<f32> = a.data().to_vec();
        let mut y: Vec<f32> = p.data().to_vec();
        x.sort_by(f32::total_cmp);
        y.sort_by(f32::total_cmp);
        prop_assert_eq!(x, y);
    }

    #[test]
    fn slice_concat_roundtrip(a in tensor_strategy(&[2, 6])) {
        let left = ops::slice(&a, 1, 0, 2);
        let right = ops::slice(&a, 1, 2, 6);
        let back = ops::concat(&[&left, &right], 1);
        prop_assert!(back.approx_eq(&a, 0.0));
    }

    #[test]
    fn softmax_invariant_to_shift(a in tensor_strategy(&[2, 5])) {
        let shifted = ops::add_scalar(&a, 7.3);
        prop_assert!(ops::softmax_last(&a).approx_eq(&ops::softmax_last(&shifted), 1e-4));
    }

    #[test]
    fn index_select_all_is_identity(a in tensor_strategy(&[4, 3])) {
        let all = ops::index_select(&a, 0, &[0, 1, 2, 3]);
        prop_assert!(all.approx_eq(&a, 0.0));
    }
}
