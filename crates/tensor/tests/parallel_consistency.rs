//! Property tests pinning the parallel/blocked kernels to the naive serial
//! oracles in `cts_tensor::ops::reference`, across randomized broadcast
//! shapes and thread counts.
//!
//! Two guarantees are checked:
//!
//! 1. **Accuracy**: optimized kernels match the reference to 1e-5 on every
//!    randomized shape (in practice they are bit-exact, because every path
//!    accumulates in the same ascending-`k` order — asserted where true).
//! 2. **Determinism**: a forced single worker (`set_num_threads(1)`, the
//!    programmatic equivalent of `CTS_NUM_THREADS=1`) produces bit-identical
//!    results to multi-worker runs.
//!
//! Tests mutate the process-wide thread override, so they serialize on a
//! mutex.

use cts_tensor::ops::{self, reference};
use cts_tensor::parallel::{reset_pool, set_dispatch, set_num_threads, Dispatch};
use cts_tensor::simd::{self, SimdLevel};
use cts_tensor::{arena, Tensor};
use proptest::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn rand_tensor(rng: &mut SmallRng, shape: Vec<usize>) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect::<Vec<f32>>())
}

fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape());
    a.data()
        .iter()
        .zip(b.data().iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// Run `f` under `threads` workers, restoring the default afterwards.
fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    set_num_threads(threads);
    let out = f();
    set_num_threads(0);
    out
}

/// Run `f` at the forced SIMD `level`, restoring env-driven selection
/// afterwards. Forcing `Scalar` is the programmatic `CTS_SIMD=off`.
fn with_simd<T>(level: SimdLevel, f: impl FnOnce() -> T) -> T {
    simd::set_level(Some(level));
    let out = f();
    simd::set_level(None);
    out
}

/// Every SIMD level the host can actually run (always includes `Scalar`).
fn host_levels() -> Vec<SimdLevel> {
    [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
        .into_iter()
        .filter(|&l| l <= simd::detected())
        .collect()
}

/// Raw IEEE bits — the equality the SIMD determinism contract promises.
fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shared-weight matmul `[B, T, m, k] × [k, n]` — the projection shape
    /// used all over the model zoo — plus determinism across thread counts.
    fn matmul_shared_weight_matches_reference(
        bsz in 1usize..4,
        t in 1usize..5,
        m in 1usize..32,
        k in 1usize..32,
        n in 1usize..32,
        seed in 0u64..1_000_000
    ) {
        let _g = LOCK.lock().unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = rand_tensor(&mut rng, vec![bsz, t, m, k]);
        let b = rand_tensor(&mut rng, vec![k, n]);
        let serial = with_threads(1, || ops::matmul(&a, &b));
        let threaded = with_threads(4, || ops::matmul(&a, &b));
        let oracle = reference::matmul(&a, &b);
        prop_assert!(max_abs_diff(&serial, &oracle) <= 1e-5);
        // Ascending-k accumulation makes every path bit-exact.
        prop_assert_eq!(serial.data(), oracle.data());
        prop_assert_eq!(serial.data(), threaded.data());
    }

    /// Batched matmul with broadcast batch dims on either operand.
    fn matmul_broadcast_batches_match_reference(
        bsz in 1usize..5,
        m in 1usize..20,
        k in 1usize..20,
        n in 1usize..20,
        broadcast_a in proptest::bool::ANY,
        seed in 0u64..1_000_000
    ) {
        let _g = LOCK.lock().unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let (a_batch, b_batch) = if broadcast_a { (1, bsz) } else { (bsz, 1) };
        let a = rand_tensor(&mut rng, vec![a_batch, m, k]);
        let b = rand_tensor(&mut rng, vec![b_batch, k, n]);
        let serial = with_threads(1, || ops::matmul(&a, &b));
        let threaded = with_threads(3, || ops::matmul(&a, &b));
        let oracle = reference::matmul(&a, &b);
        prop_assert_eq!(serial.shape(), oracle.shape());
        prop_assert!(max_abs_diff(&serial, &oracle) <= 1e-5);
        prop_assert_eq!(serial.data(), threaded.data());
    }

    /// Elementwise add/mul across randomized broadcast shapes.
    fn elementwise_broadcast_matches_reference(
        d0 in 1usize..5,
        d1 in 1usize..6,
        d2 in 1usize..48,
        squash_a in proptest::bool::ANY,
        squash_b in proptest::bool::ANY,
        seed in 0u64..1_000_000
    ) {
        let _g = LOCK.lock().unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        // Randomly set middle/leading dims to 1 on either side to exercise
        // broadcasting; at least one side keeps the full shape.
        let a_shape = if squash_a { vec![d0, 1, d2] } else { vec![d0, d1, d2] };
        let b_shape = if squash_b && !squash_a { vec![1, d1, 1] } else { vec![d1, d2] };
        let a = rand_tensor(&mut rng, a_shape);
        let b = rand_tensor(&mut rng, b_shape);
        for (fast, slow) in [
            (ops::add(&a, &b), reference::add(&a, &b)),
            (ops::mul(&a, &b), reference::mul(&a, &b)),
        ] {
            prop_assert_eq!(fast.shape(), slow.shape());
            // Same per-element expression => bit-exact.
            prop_assert_eq!(fast.data(), slow.data());
        }
        // Determinism across worker counts.
        let s1 = with_threads(1, || ops::add(&a, &b));
        let s4 = with_threads(4, || ops::add(&a, &b));
        prop_assert_eq!(s1.data(), s4.data());
    }

    /// Softmax over the last axis, rows partitioned across workers.
    fn softmax_matches_reference(
        rows0 in 1usize..24,
        rows1 in 1usize..24,
        n in 1usize..64,
        seed in 0u64..1_000_000
    ) {
        let _g = LOCK.lock().unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = rand_tensor(&mut rng, vec![rows0, rows1, n]);
        let serial = with_threads(1, || ops::softmax_last(&a));
        let threaded = with_threads(5, || ops::softmax_last(&a));
        let oracle = reference::softmax_last(&a);
        prop_assert!(max_abs_diff(&serial, &oracle) <= 1e-5);
        prop_assert_eq!(serial.data(), oracle.data());
        prop_assert_eq!(serial.data(), threaded.data());
    }

    /// Fused-transpose gradient kernels (`matmul_nt` = a·bᵀ, `matmul_tn` =
    /// aᵀ·g) vs the explicit transpose-then-matmul oracle composition, at
    /// every thread count the pool is expected to run under.
    fn fused_transpose_matmuls_match_reference(
        bsz in 1usize..4,
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in 0u64..1_000_000
    ) {
        let _g = LOCK.lock().unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = rand_tensor(&mut rng, vec![bsz, m, k]);
        let b = rand_tensor(&mut rng, vec![bsz, n, k]);
        let g = rand_tensor(&mut rng, vec![bsz, m, n]);
        let nt_oracle = reference::matmul(&a, &reference::transpose_last2(&b));
        let tn_oracle = reference::matmul(&reference::transpose_last2(&a), &g);
        for threads in [1usize, 2, 4] {
            let nt = with_threads(threads, || ops::matmul_nt(&a, &b));
            let tn = with_threads(threads, || ops::matmul_tn(&a, &g));
            prop_assert_eq!(nt.shape(), nt_oracle.shape());
            prop_assert_eq!(tn.shape(), tn_oracle.shape());
            // Ascending-k accumulation on both sides => bit-exact.
            prop_assert_eq!(nt.data(), nt_oracle.data());
            prop_assert_eq!(tn.data(), tn_oracle.data());
        }
    }

    /// Parallel-gather `reduce_to_shape` vs the serial-scatter oracle over
    /// randomized broadcastable target shapes and thread counts.
    fn reduce_to_shape_matches_reference(
        d0 in 1usize..5,
        d1 in 1usize..12,
        d2 in 1usize..32,
        mask in 0usize..8,
        drop_leading in proptest::bool::ANY,
        seed in 0u64..1_000_000
    ) {
        let _g = LOCK.lock().unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let grad = rand_tensor(&mut rng, vec![d0, d1, d2]);
        // Each mask bit squashes one right-aligned dim to 1; optionally the
        // leading dim is dropped entirely (rank-reducing reduction).
        let mut target = vec![
            if mask & 1 != 0 { 1 } else { d0 },
            if mask & 2 != 0 { 1 } else { d1 },
            if mask & 4 != 0 { 1 } else { d2 },
        ];
        if drop_leading {
            target.remove(0);
        }
        let slow = reference::reduce_to_shape(&grad, &target);
        for threads in [1usize, 2, 4] {
            let fast = with_threads(threads, || ops::reduce_to_shape(&grad, &target));
            prop_assert_eq!(fast.shape(), slow.shape());
            // One ascending gather chain per output element => bit-exact.
            prop_assert_eq!(fast.data(), slow.data());
        }
    }

    /// Axis reductions and transpose stay consistent with the oracle.
    fn reduce_and_transpose_match_reference(
        d0 in 1usize..6,
        d1 in 1usize..24,
        d2 in 1usize..24,
        axis in 0usize..3,
        seed in 0u64..1_000_000
    ) {
        let _g = LOCK.lock().unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = rand_tensor(&mut rng, vec![d0, d1, d2]);
        let fast = with_threads(4, || ops::sum_axis(&a, axis, false));
        let slow = reference::sum_axis(&a, axis, false);
        prop_assert_eq!(fast.shape(), slow.shape());
        prop_assert_eq!(fast.data(), slow.data());
        let ft = with_threads(4, || ops::transpose_last2(&a));
        let st = reference::transpose_last2(&a);
        prop_assert_eq!(ft.data(), st.data());
    }

    /// SIMD determinism contract, matmul family: every vector level the
    /// host supports returns the *bits* of the forced-scalar path
    /// (`CTS_SIMD=off`), with `n` deliberately straddling the 8-lane width
    /// (`n % 8` covers 0..=7) and under both thread counts and both
    /// dispatchers.
    fn simd_levels_bit_identical_matmul_family(
        bsz in 1usize..3,
        m in 1usize..12,
        k in 1usize..24,
        nq in 0usize..3,
        nrem in 0usize..8,
        four_threads in proptest::bool::ANY,
        spawn in proptest::bool::ANY,
        seed in 0u64..1_000_000
    ) {
        let _g = LOCK.lock().unwrap();
        let threads = if four_threads { 4 } else { 1 };
        let n = (nq * 8 + nrem).max(1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = rand_tensor(&mut rng, vec![bsz, m, k]);
        let b = rand_tensor(&mut rng, vec![k, n]);
        let bt = rand_tensor(&mut rng, vec![bsz, n, k]);
        let g = rand_tensor(&mut rng, vec![bsz, m, n]);
        set_dispatch(Some(if spawn { Dispatch::Spawn } else { Dispatch::Pool }));
        let run = || (ops::matmul(&a, &b), ops::matmul_nt(&a, &bt), ops::matmul_tn(&a, &g));
        let scalar = with_threads(threads, || with_simd(SimdLevel::Scalar, run));
        for level in host_levels() {
            let out = with_threads(threads, || with_simd(level, run));
            prop_assert_eq!(bits(&scalar.0), bits(&out.0), "matmul at {:?}", level);
            prop_assert_eq!(bits(&scalar.1), bits(&out.1), "matmul_nt at {:?}", level);
            prop_assert_eq!(bits(&scalar.2), bits(&out.2), "matmul_tn at {:?}", level);
        }
        set_dispatch(None);
    }

    /// SIMD determinism contract, elementwise + softmax: vector levels are
    /// bit-identical to forced-scalar across lane-straddling lengths,
    /// including the specials the pinned forms guarantee (relu's
    /// `maxps(x, 0)` mapping −0 to +0 is identical in both paths).
    fn simd_levels_bit_identical_elementwise_softmax(
        rows in 1usize..10,
        nq in 0usize..3,
        nrem in 0usize..8,
        four_threads in proptest::bool::ANY,
        seed in 0u64..1_000_000
    ) {
        let _g = LOCK.lock().unwrap();
        let threads = if four_threads { 4 } else { 1 };
        let n = (nq * 8 + nrem).max(1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut a = rand_tensor(&mut rng, vec![rows, n]);
        let b = rand_tensor(&mut rng, vec![rows, n]);
        // Seed specials into `a`: a negative zero and (softmax aside) the
        // elementwise ops must pass NaN through identically.
        a.data_mut()[0] = -0.0;
        let run_ew = || {
            (
                ops::add(&a, &b),
                ops::mul(&a, &b),
                ops::relu(&a),
                ops::neg(&a),
                ops::scale(&a, 1.75),
                ops::clamp(&a, -0.5, 0.5),
            )
        };
        let run_sm = || ops::softmax_last(&a);
        let scalar = with_threads(threads, || with_simd(SimdLevel::Scalar, run_ew));
        let scalar_sm = with_threads(threads, || with_simd(SimdLevel::Scalar, run_sm));
        for level in host_levels() {
            let out = with_threads(threads, || with_simd(level, run_ew));
            let sm = with_threads(threads, || with_simd(level, run_sm));
            prop_assert_eq!(bits(&scalar.0), bits(&out.0), "add at {:?}", level);
            prop_assert_eq!(bits(&scalar.1), bits(&out.1), "mul at {:?}", level);
            prop_assert_eq!(bits(&scalar.2), bits(&out.2), "relu at {:?}", level);
            prop_assert_eq!(bits(&scalar.3), bits(&out.3), "neg at {:?}", level);
            prop_assert_eq!(bits(&scalar.4), bits(&out.4), "scale at {:?}", level);
            prop_assert_eq!(bits(&scalar.5), bits(&out.5), "clamp at {:?}", level);
            prop_assert_eq!(bits(&scalar_sm), bits(&sm), "softmax at {:?}", level);
        }
    }

    /// SIMD determinism contract, reductions + conv: axis sums/maxes,
    /// both `reduce_to_shape` layouts (last dim preserved → vector gather;
    /// last dim reduced → scalar walk), and the temporal conv.
    fn simd_levels_bit_identical_reductions_conv(
        d0 in 1usize..4,
        d1 in 1usize..6,
        nq in 0usize..3,
        nrem in 0usize..8,
        axis in 0usize..3,
        four_threads in proptest::bool::ANY,
        seed in 0u64..1_000_000
    ) {
        let _g = LOCK.lock().unwrap();
        let threads = if four_threads { 4 } else { 1 };
        let n = (nq * 8 + nrem).max(1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = rand_tensor(&mut rng, vec![d0, d1, n]);
        let x = rand_tensor(&mut rng, vec![d0, d1, 6, 5]);
        let w = rand_tensor(&mut rng, vec![2, 5, n]);
        let run = || {
            (
                ops::sum_axis(&a, axis, false),
                ops::max_axis(&a, axis, false),
                ops::reduce_to_shape(&a, &[1, d1, n]), // last dim preserved
                ops::reduce_to_shape(&a, &[d0, d1, 1]), // last dim reduced
                ops::temporal_conv(&x, &w, 1),
            )
        };
        let scalar = with_threads(threads, || with_simd(SimdLevel::Scalar, run));
        for level in host_levels() {
            let out = with_threads(threads, || with_simd(level, run));
            prop_assert_eq!(bits(&scalar.0), bits(&out.0), "sum_axis at {:?}", level);
            prop_assert_eq!(bits(&scalar.1), bits(&out.1), "max_axis at {:?}", level);
            prop_assert_eq!(bits(&scalar.2), bits(&out.2), "reduce keep-last at {:?}", level);
            prop_assert_eq!(bits(&scalar.3), bits(&out.3), "reduce drop-last at {:?}", level);
            prop_assert_eq!(bits(&scalar.4), bits(&out.4), "temporal_conv at {:?}", level);
        }
    }
}

/// Deterministic end-to-end: a matmul → softmax → reduce pipeline large
/// enough to cross the parallel threshold must be bit-identical between a
/// single forced worker and several.
#[test]
fn pipeline_bit_exact_across_thread_counts() {
    let _g = LOCK.lock().unwrap();
    let mut rng = SmallRng::seed_from_u64(42);
    let a = rand_tensor(&mut rng, vec![8, 4, 32, 24]);
    let w = rand_tensor(&mut rng, vec![24, 48]);
    let run = || {
        let h = ops::matmul(&a, &w);
        let s = ops::softmax_last(&h);
        ops::sum_axis(&s, 2, false)
    };
    let one = with_threads(1, run);
    let two = with_threads(2, run);
    let eight = with_threads(8, run);
    assert_eq!(one.data(), two.data());
    assert_eq!(one.data(), eight.data());
}

/// Every pooled kernel must produce identical bits before a pool teardown,
/// after the pool is lazily re-initialised at a different width, and under
/// the legacy spawn-per-call dispatcher kept as the benchmark baseline.
#[test]
fn pool_teardown_reinit_and_spawn_dispatch_are_bit_identical() {
    let _g = LOCK.lock().unwrap();
    let mut rng = SmallRng::seed_from_u64(7);
    // Large enough that every kernel crosses PAR_THRESHOLD.
    let a = rand_tensor(&mut rng, vec![6, 48, 40]);
    let b = rand_tensor(&mut rng, vec![40, 56]);
    let bt = rand_tensor(&mut rng, vec![6, 64, 56]);
    let run = || {
        let h = ops::matmul(&a, &b); // [6, 48, 56]
        let nt = ops::matmul_nt(&h, &bt); // [6, 48, 64]
        let tn = ops::matmul_tn(&a, &h); // [6, 40, 56]
        let s = ops::softmax_last(&nt);
        let r = ops::reduce_to_shape(&s, &[48, 64]);
        (h, nt, tn, s, r)
    };
    let pooled = with_threads(4, run);
    reset_pool();
    let reinit = with_threads(2, run); // pool comes back lazily, narrower
    set_dispatch(Some(Dispatch::Spawn));
    let spawned = with_threads(4, run);
    set_dispatch(None);
    for (x, y, z) in [
        (&pooled.0, &reinit.0, &spawned.0),
        (&pooled.1, &reinit.1, &spawned.1),
        (&pooled.2, &reinit.2, &spawned.2),
        (&pooled.3, &reinit.3, &spawned.3),
        (&pooled.4, &reinit.4, &spawned.4),
    ] {
        assert_eq!(x.data(), y.data(), "pool re-init changed results");
        assert_eq!(x.data(), z.data(), "spawn dispatch diverges from pool");
    }
}

/// Arena recycling must never hand a live tensor's storage to a new
/// allocation: only dropped buffers enter the free lists, and recycled
/// storage is fully re-initialised (poison-filled first in debug builds)
/// before reuse.
#[test]
fn arena_reuse_never_aliases_live_buffers() {
    let _g = LOCK.lock().unwrap();
    let mut rng = SmallRng::seed_from_u64(13);
    let a = rand_tensor(&mut rng, vec![512]);
    let before = a.data().to_vec();
    // Recycle a buffer the same size as `a`'s, then allocate and mutate new
    // tensors that will draw from the free list.
    drop(a.clone());
    let mut b = Tensor::zeros(vec![512]);
    assert!(b.data().iter().all(|&v| v == 0.0), "recycled buffer not zeroed");
    for v in b.data_mut() {
        *v = -1234.5;
    }
    assert_eq!(a.data(), &before[..], "live buffer was aliased by arena reuse");
    // No handout may ever expose the debug poison pattern.
    let c = Tensor::full(vec![512], 3.25);
    assert!(c
        .data()
        .iter()
        .chain(b.data())
        .all(|v| v.to_bits() != arena::POISON.to_bits()));
}

/// NaN must flow through the parallel matmul even when the other operand is
/// zero (regression for the old `a == 0.0 { continue }` skip).
#[test]
fn matmul_nan_propagates_under_threads() {
    let _g = LOCK.lock().unwrap();
    let mut a = Tensor::zeros(vec![4, 64, 32]);
    a.data_mut()[0] = 0.0; // explicit: row of zeros meets a NaN column
    let mut b = Tensor::ones(vec![32, 48]);
    b.data_mut()[5] = f32::NAN;
    let y = with_threads(4, || ops::matmul(&a, &b));
    // Column 5 of every output row touched the NaN weight.
    assert!(y.data()[5].is_nan());
}
