//! The structured JSONL run log.
//!
//! One JSON object per line, flat (no nesting), written only while
//! [`metrics_enabled`](crate::metrics_enabled) — so the default
//! (metrics-off) path never opens a file or allocates.
//!
//! # Sink resolution
//!
//! The first emitted event opens the sink, resolved in priority order:
//!
//! 1. an explicit [`set_path`] override (tests, embedding hosts),
//! 2. the `CTS_RUN_LOG` environment variable,
//! 3. `cts_run.jsonl` in the current directory.
//!
//! Every line is flushed as written: run logs are most valuable exactly
//! when the process dies, so buffering across events would be
//! self-defeating. Per-line flushes happen at epoch granularity (or step
//! granularity under `CTS_TRACE=1`), never inside kernels.
//!
//! # Event vocabulary
//!
//! | `event` | emitted by | meaning |
//! |---|---|---|
//! | `run_start` / `run_end` | search/train loops | run boundaries + config echo |
//! | `epoch` | search/train loops | per-epoch roll-up (τ, loss, entropy, …) |
//! | `phase` | [`crate::emit_epoch_rows`] | cumulative per-phase span counters |
//! | `tape` | [`crate::emit_epoch_rows`] | autograd tape counters |
//! | `kernel` | `cts_tensor::metrics` | cumulative per-kernel counters |
//! | `arena` / `arena_class` | `cts_tensor::metrics` | buffer-arena gauges |
//! | `pool` | `cts_tensor::metrics` | worker-pool dispatch counters |
//! | `watchdog` | search/train loops | divergence rollback |
//! | `step` | search/train loops (`CTS_TRACE=1`) | per-step trace |
//! | `warn` | anywhere | non-fatal anomaly (also mirrored to stderr) |

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// A JSON scalar value for one event field.
#[derive(Clone, Copy, Debug)]
pub enum Value<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values are written as `null`).
    F64(f64),
    /// String (escaped on write).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

struct Sink {
    out: Option<BufWriter<File>>,
    /// Explicit path override; `None` falls back to env/default.
    path_override: Option<PathBuf>,
    /// True once an open was attempted (success or not), so a broken sink
    /// does not retry on every event.
    opened: bool,
}

static SINK: Mutex<Sink> = Mutex::new(Sink {
    out: None,
    path_override: None,
    opened: false,
});

fn lock() -> std::sync::MutexGuard<'static, Sink> {
    SINK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Redirect the run log to `path` (truncating it), or reset to the
/// env/default resolution with `None`. Closes any open sink either way.
pub fn set_path(path: Option<&Path>) {
    let mut s = lock();
    if let Some(out) = &mut s.out {
        let _ = out.flush();
    }
    s.out = None;
    s.opened = false;
    s.path_override = path.map(Path::to_path_buf);
    if let Some(p) = path {
        match File::create(p) {
            Ok(f) => {
                s.out = Some(BufWriter::new(f));
                s.opened = true;
            }
            Err(e) => {
                eprintln!("cts-obs: cannot open run log {}: {e}", p.display());
                s.opened = true; // don't retry per event
            }
        }
    }
}

/// The path the sink resolves to right now (override > env > default).
pub fn resolved_path() -> PathBuf {
    let s = lock();
    match &s.path_override {
        Some(p) => p.clone(),
        None => std::env::var("CTS_RUN_LOG")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("cts_run.jsonl")),
    }
}

fn ensure_open(s: &mut Sink) {
    if s.opened {
        return;
    }
    s.opened = true;
    let path = match &s.path_override {
        Some(p) => p.clone(),
        None => std::env::var("CTS_RUN_LOG")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("cts_run.jsonl")),
    };
    match File::create(&path) {
        Ok(f) => s.out = Some(BufWriter::new(f)),
        Err(e) => eprintln!("cts-obs: cannot open run log {}: {e}", path.display()),
    }
}

fn push_escaped(buf: &mut String, raw: &str) {
    for c in raw.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
}

fn push_value(buf: &mut String, v: &Value<'_>) {
    match v {
        Value::U64(n) => buf.push_str(&n.to_string()),
        Value::I64(n) => buf.push_str(&n.to_string()),
        Value::F64(x) if x.is_finite() => buf.push_str(&format!("{x}")),
        Value::F64(_) => buf.push_str("null"),
        Value::Str(raw) => {
            buf.push('"');
            push_escaped(buf, raw);
            buf.push('"');
        }
        Value::Bool(b) => buf.push_str(if *b { "true" } else { "false" }),
    }
}

/// Append one event line (`{"event": <event>, <fields>...}`) to the run
/// log. No-op when metrics are off.
pub fn emit(event: &str, fields: &[(&str, Value<'_>)]) {
    if !crate::metrics_enabled() {
        return;
    }
    let mut line = String::with_capacity(64 + fields.len() * 24);
    line.push_str("{\"event\":\"");
    push_escaped(&mut line, event);
    line.push('"');
    for (k, v) in fields {
        line.push_str(",\"");
        push_escaped(&mut line, k);
        line.push_str("\":");
        push_value(&mut line, v);
    }
    line.push_str("}\n");
    let mut s = lock();
    ensure_open(&mut s);
    if let Some(out) = &mut s.out {
        // Flush per line: the log must survive a crash (see module docs).
        let _ = out.write_all(line.as_bytes());
        let _ = out.flush();
    }
}

/// Report a non-fatal anomaly: always mirrored to stderr, and logged as a
/// `warn` event when metrics are on.
pub fn warn(msg: &str) {
    eprintln!("cts-obs: warning: {msg}");
    emit("warn", &[("msg", Value::Str(msg))]);
}

/// Flush the sink (per-event writes already flush; this exists for hosts
/// that want a barrier before reading the file back).
pub fn flush() {
    let mut s = lock();
    if let Some(out) = &mut s.out {
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_writes_escaped_flat_json() {
        let dir = std::env::temp_dir().join("cts_obs_runlog_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.jsonl");
        crate::set_metrics(Some(true));
        set_path(Some(&path));
        emit(
            "epoch",
            &[
                ("epoch", Value::U64(3)),
                ("tau", Value::F64(4.5)),
                ("nan", Value::F64(f64::NAN)),
                ("msg", Value::Str("a \"quoted\"\nline")),
                ("ok", Value::Bool(true)),
                ("delta", Value::I64(-2)),
            ],
        );
        flush();
        crate::set_metrics(Some(false));
        emit("epoch", &[("epoch", Value::U64(99))]);
        set_path(None);
        crate::set_metrics(None);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            "{\"event\":\"epoch\",\"epoch\":3,\"tau\":4.5,\"nan\":null,\
             \"msg\":\"a \\\"quoted\\\"\\nline\",\"ok\":true,\"delta\":-2}\n"
        );
        std::fs::remove_file(&path).ok();
    }
}
