//! Serving-path degradation counters.
//!
//! The fault-tolerant request path in `cts-runtime`/`cts-serve` reports
//! every admission rejection, shed, quarantine, retry, degradation step,
//! and canary verdict here, so chaos tests and `BENCH_serve.json` can
//! prove the ladder actually fired instead of inferring it from timing.
//! Like every other counter block in this crate, recording is a relaxed
//! atomic increment — always on, never a clock read or an allocation.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! serve_counters {
    ($($(#[$doc:meta])* $name:ident => $record:ident),+ $(,)?) => {
        $(
            $(#[$doc])*
            #[allow(non_upper_case_globals)]
            static $name: AtomicU64 = AtomicU64::new(0);

            $(#[$doc])*
            pub fn $record() {
                $name.fetch_add(1, Ordering::Relaxed);
            }
        )+

        /// Point-in-time copy of every serving counter.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        #[allow(non_snake_case, missing_docs)]
        pub struct ServeCounters {
            $(pub $name: u64,)+
        }

        /// Copy out the current counters.
        pub fn snapshot() -> ServeCounters {
            ServeCounters {
                $($name: $name.load(Ordering::Relaxed),)+
            }
        }

        /// Zero every serving counter (tests, bench warm-up boundaries).
        pub fn reset() {
            $($name.store(0, Ordering::Relaxed);)+
        }

        /// The counters as stable `(name, value)` pairs, in declaration
        /// order — the serialization the serve bench and run log use.
        pub fn rows() -> Vec<(&'static str, u64)> {
            vec![$((stringify!($name), $name.load(Ordering::Relaxed)),)+]
        }
    };
}

serve_counters! {
    /// Requests offered to `MicroBatcher::submit`.
    submitted => record_submitted,
    /// Requests that passed admission and entered the pending queue.
    admitted => record_admitted,
    /// Requests rejected at admission for a shape mismatch.
    rejected_shape => record_rejected_shape,
    /// Requests rejected at admission for unmaskable non-finite input.
    rejected_non_finite => record_rejected_non_finite,
    /// Requests rejected at admission for exceeding the missing-value cap.
    rejected_missing => record_rejected_missing,
    /// Windows whose non-finite entries were masked to the null sentinel.
    masked_windows => record_masked_window,
    /// Requests shed at submit because the pending queue was full.
    queue_shed => record_queue_shed,
    /// Requests shed at flush because their deadline had expired.
    deadline_shed => record_deadline_shed,
    /// Oversize requests split into multiple sub-batches.
    oversize_split => record_oversize_split,
    /// Coalesced batch executions that failed outright.
    batch_failures => record_batch_failure,
    /// Batch or solo outputs found non-finite (poisoned).
    poisoned_outputs => record_poisoned_output,
    /// Requests quarantined out of a failing batch for solo re-run.
    quarantined => record_quarantined,
    /// Solo re-run retry attempts (beyond the first solo attempt).
    solo_retries => record_solo_retry,
    /// Requests answered by a successful solo re-run (ladder step 2).
    degraded_solo => record_degraded_solo,
    /// Requests answered by the tape fallback (ladder step 3).
    degraded_tape => record_degraded_tape,
    /// Requests that exhausted the ladder and returned a typed error.
    failed_requests => record_failed_request,
    /// Plans admitted by the registry canary gate.
    canary_pass => record_canary_pass,
    /// Plans rejected (and rolled back) by the registry canary gate.
    canary_fail => record_canary_fail,
}

/// Emit one flat `serve` event with every counter into the run log (no-op
/// while metrics are off, like every [`crate::runlog`] write).
pub fn emit_row() {
    let pairs = rows();
    let fields: Vec<(&str, crate::runlog::Value<'_>)> = pairs
        .iter()
        .map(|(k, v)| (*k, crate::runlog::Value::U64(*v)))
        .collect();
    crate::runlog::emit("serve", &fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_record_snapshot_reset() {
        reset();
        record_submitted();
        record_submitted();
        record_quarantined();
        record_canary_fail();
        let s = snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.quarantined, 1);
        assert_eq!(s.canary_fail, 1);
        assert_eq!(s.degraded_tape, 0);
        let rows = rows();
        assert_eq!(rows.iter().find(|(k, _)| *k == "submitted"), Some(&("submitted", 2)));
        reset();
        assert_eq!(snapshot(), ServeCounters::default());
    }
}
