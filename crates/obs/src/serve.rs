//! Serving-path degradation counters.
//!
//! The fault-tolerant request path in `cts-runtime`/`cts-serve` reports
//! every admission rejection, shed, quarantine, retry, degradation step,
//! and canary verdict here, so chaos tests and `BENCH_serve.json` can
//! prove the ladder actually fired instead of inferring it from timing.
//! Like every other counter block in this crate, recording is a relaxed
//! atomic increment — always on, never a clock read or an allocation.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! serve_counters {
    ($($(#[$doc:meta])* $name:ident => $record:ident),+ $(,)?) => {
        $(
            $(#[$doc])*
            #[allow(non_upper_case_globals)]
            static $name: AtomicU64 = AtomicU64::new(0);

            $(#[$doc])*
            pub fn $record() {
                $name.fetch_add(1, Ordering::Relaxed);
            }
        )+

        /// Point-in-time copy of every serving counter.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        #[allow(non_snake_case, missing_docs)]
        pub struct ServeCounters {
            $(pub $name: u64,)+
        }

        /// Copy out the current counters.
        pub fn snapshot() -> ServeCounters {
            ServeCounters {
                $($name: $name.load(Ordering::Relaxed),)+
            }
        }

        /// Zero every serving counter and shard gauge (tests, bench
        /// warm-up boundaries).
        pub fn reset() {
            $($name.store(0, Ordering::Relaxed);)+
            reset_shards();
        }

        /// The counters as stable `(name, value)` pairs, in declaration
        /// order — the serialization the serve bench and run log use.
        pub fn rows() -> Vec<(&'static str, u64)> {
            vec![$((stringify!($name), $name.load(Ordering::Relaxed)),)+]
        }
    };
}

serve_counters! {
    /// Requests offered to `MicroBatcher::submit`.
    submitted => record_submitted,
    /// Requests that passed admission and entered the pending queue.
    admitted => record_admitted,
    /// Requests rejected at admission for a shape mismatch.
    rejected_shape => record_rejected_shape,
    /// Requests rejected at admission for unmaskable non-finite input.
    rejected_non_finite => record_rejected_non_finite,
    /// Requests rejected at admission for exceeding the missing-value cap.
    rejected_missing => record_rejected_missing,
    /// Windows whose non-finite entries were masked to the null sentinel.
    masked_windows => record_masked_window,
    /// Requests shed at submit because the pending queue was full.
    queue_shed => record_queue_shed,
    /// Requests shed at flush because their deadline had expired.
    deadline_shed => record_deadline_shed,
    /// Oversize requests split into multiple sub-batches.
    oversize_split => record_oversize_split,
    /// Coalesced batch executions that failed outright.
    batch_failures => record_batch_failure,
    /// Batch or solo outputs found non-finite (poisoned).
    poisoned_outputs => record_poisoned_output,
    /// Requests quarantined out of a failing batch for solo re-run.
    quarantined => record_quarantined,
    /// Solo re-run retry attempts (beyond the first solo attempt).
    solo_retries => record_solo_retry,
    /// Requests answered by a successful solo re-run (ladder step 2).
    degraded_solo => record_degraded_solo,
    /// Requests answered by the tape fallback (ladder step 3).
    degraded_tape => record_degraded_tape,
    /// Requests that exhausted the ladder and returned a typed error.
    failed_requests => record_failed_request,
    /// Plans admitted by the registry canary gate.
    canary_pass => record_canary_pass,
    /// Plans rejected (and rolled back) by the registry canary gate.
    canary_fail => record_canary_fail,
    /// Front-end requests routed to a model id no shard serves. Counted
    /// *instead of* `submitted` (routing happens before admission), so the
    /// conservation invariant `submitted == admitted + rejected_* +
    /// queue_shed` is unaffected.
    unknown_model => record_unknown_model,
    /// Requests answered bit-identically from the per-model result cache.
    cache_hit => record_cache_hit,
    /// Admitted requests that missed the result cache and ran the plan.
    cache_miss => record_cache_miss,
    /// Cache entries evicted LRU to stay under the byte cap.
    cache_evict => record_cache_evict,
    /// Cache entries dropped because the window origin advanced past the
    /// forecast horizon (the horizon-aware TTL).
    cache_expired => record_cache_expired,
}

/// Upper bound on tracked serving shards; depths for shards at or above
/// this index are folded into the last gauge.
pub const MAX_SHARDS: usize = 64;

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
/// Live pending-queue depth per serving shard (gauge, not a counter).
static SHARD_DEPTH: [AtomicU64; MAX_SHARDS] = [ZERO; MAX_SHARDS];
/// High-water pending-queue depth per serving shard since the last reset.
static SHARD_DEPTH_PEAK: [AtomicU64; MAX_SHARDS] = [ZERO; MAX_SHARDS];

/// Record shard `shard`'s pending-queue depth (front-end workers call this
/// after every enqueue and flush). Also advances the shard's high-water
/// mark.
pub fn set_shard_depth(shard: usize, depth: u64) {
    let i = shard.min(MAX_SHARDS - 1);
    SHARD_DEPTH[i].store(depth, Ordering::Relaxed);
    SHARD_DEPTH_PEAK[i].fetch_max(depth, Ordering::Relaxed);
}

/// Current and high-water pending-queue depth for one shard.
pub fn shard_depth(shard: usize) -> (u64, u64) {
    let i = shard.min(MAX_SHARDS - 1);
    (
        SHARD_DEPTH[i].load(Ordering::Relaxed),
        SHARD_DEPTH_PEAK[i].load(Ordering::Relaxed),
    )
}

/// `(shard, depth, peak)` rows for every shard that has seen traffic
/// since the last reset, in shard order — the serialization the serve
/// bench writes next to the counters.
pub fn shard_rows() -> Vec<(usize, u64, u64)> {
    (0..MAX_SHARDS)
        .filter_map(|i| {
            let peak = SHARD_DEPTH_PEAK[i].load(Ordering::Relaxed);
            (peak > 0).then(|| (i, SHARD_DEPTH[i].load(Ordering::Relaxed), peak))
        })
        .collect()
}

/// Zero every shard depth gauge and high-water mark.
pub fn reset_shards() {
    for i in 0..MAX_SHARDS {
        SHARD_DEPTH[i].store(0, Ordering::Relaxed);
        SHARD_DEPTH_PEAK[i].store(0, Ordering::Relaxed);
    }
}

/// Emit one flat `serve` event with every counter into the run log (no-op
/// while metrics are off, like every [`crate::runlog`] write).
pub fn emit_row() {
    let pairs = rows();
    let fields: Vec<(&str, crate::runlog::Value<'_>)> = pairs
        .iter()
        .map(|(k, v)| (*k, crate::runlog::Value::U64(*v)))
        .collect();
    crate::runlog::emit("serve", &fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_record_snapshot_reset() {
        reset();
        record_submitted();
        record_submitted();
        record_quarantined();
        record_canary_fail();
        let s = snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.quarantined, 1);
        assert_eq!(s.canary_fail, 1);
        assert_eq!(s.degraded_tape, 0);
        let rows = rows();
        assert_eq!(rows.iter().find(|(k, _)| *k == "submitted"), Some(&("submitted", 2)));
        reset();
        assert_eq!(snapshot(), ServeCounters::default());
    }

    #[test]
    fn shard_gauges_track_depth_and_peak() {
        reset_shards();
        set_shard_depth(1, 4);
        set_shard_depth(1, 2);
        set_shard_depth(3, 7);
        assert_eq!(shard_depth(1), (2, 4));
        assert_eq!(shard_depth(3), (7, 7));
        assert_eq!(shard_depth(0), (0, 0));
        assert_eq!(shard_rows(), vec![(1, 2, 4), (3, 7, 7)]);
        // Out-of-range shards fold into the last gauge instead of
        // panicking.
        set_shard_depth(MAX_SHARDS + 5, 1);
        assert_eq!(shard_depth(MAX_SHARDS - 1).1, 1);
        reset_shards();
        assert!(shard_rows().is_empty());
    }
}
