//! Run-log summarizer: parses the flat JSONL written by [`crate::runlog`]
//! and folds it into a run [`Summary`] — per-epoch τ/loss/entropy
//! trajectory, per-kernel time shares, phase shares, arena hit rates, and
//! pool counters — renderable as text or as a `BENCH_obs.json` document in
//! the same `{"rows": [...]}` shape as the other `BENCH_*.json` files.
//!
//! The parser accepts exactly the subset of JSON the run log emits: one
//! flat object per line, scalar values only (string / number / bool /
//! null). Lines that do not parse are counted and skipped, never fatal —
//! a crashed run leaves a torn final line and the report must still work.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One scalar field value parsed from a run-log line.
#[derive(Clone, Debug, PartialEq)]
pub enum Field {
    /// Any JSON number (integers parse losslessly up to 2^53).
    Num(f64),
    /// A JSON string.
    Str(String),
    /// A JSON boolean.
    Bool(bool),
    /// JSON `null` (non-finite floats are logged as null).
    Null,
}

impl Field {
    fn as_f64(&self) -> Option<f64> {
        match self {
            Field::Num(x) => Some(*x),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Field::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Field::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One parsed run-log event: the `event` tag plus its remaining fields.
#[derive(Clone, Debug)]
pub struct Event {
    /// The `event` field (`epoch`, `kernel`, `phase`, …).
    pub event: String,
    /// Every other field, keyed by name.
    pub fields: BTreeMap<String, Field>,
}

/// Parse one run-log line into an [`Event`]. Returns `None` for blank,
/// torn, or non-conforming lines.
pub fn parse_line(line: &str) -> Option<Event> {
    let mut p = Parser { s: line.as_bytes(), i: 0 };
    p.skip_ws();
    p.require(b'{')?;
    let mut fields = BTreeMap::new();
    let mut event = None;
    p.skip_ws();
    if !p.eat(b'}') {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.require(b':')?;
            p.skip_ws();
            let val = p.value()?;
            if key == "event" {
                event = val.as_str().map(str::to_owned);
            } else {
                fields.insert(key, val);
            }
            p.skip_ws();
            if p.eat(b',') {
                continue;
            }
            p.require(b'}')?;
            break;
        }
    }
    p.skip_ws();
    if p.i != p.s.len() {
        return None;
    }
    Some(Event { event: event?, fields })
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn require(&mut self, b: u8) -> Option<()> {
        self.eat(b).then_some(())
    }

    fn string(&mut self) -> Option<String> {
        self.require(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.i += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.s.get(self.i + 1..self.i + 5)?;
                            let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.i += 4;
                        }
                        _ => return None,
                    }
                    self.i += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through intact: take
                    // the full char from the remaining str.
                    let rest = std::str::from_utf8(&self.s[self.i..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn value(&mut self) -> Option<Field> {
        match self.peek()? {
            b'"' => self.string().map(Field::Str),
            b't' => self.keyword("true").map(|_| Field::Bool(true)),
            b'f' => self.keyword("false").map(|_| Field::Bool(false)),
            b'n' => self.keyword("null").map(|_| Field::Null),
            _ => {
                let start = self.i;
                while matches!(
                    self.peek(),
                    Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                ) {
                    self.i += 1;
                }
                std::str::from_utf8(&self.s[start..self.i])
                    .ok()?
                    .parse::<f64>()
                    .ok()
                    .map(Field::Num)
            }
        }
    }

    fn keyword(&mut self, kw: &str) -> Option<()> {
        if self.s[self.i..].starts_with(kw.as_bytes()) {
            self.i += kw.len();
            Some(())
        } else {
            None
        }
    }
}

/// One epoch's roll-up row from the `epoch` events.
#[derive(Clone, Debug, Default)]
pub struct EpochRow {
    /// Epoch index.
    pub epoch: u64,
    /// Loop kind (`joint_search`, `train`, …).
    pub kind: String,
    /// Gumbel/softmax temperature (search loops only).
    pub tau: Option<f64>,
    /// Training loss, when reported.
    pub train_loss: Option<f64>,
    /// Validation loss, when reported.
    pub val_loss: Option<f64>,
    /// Mean architecture-distribution entropy (search loops only).
    pub alpha_entropy: Option<f64>,
}

/// Last-seen cumulative counters for one kernel.
#[derive(Clone, Debug, Default)]
pub struct KernelRow {
    /// Kernel name from the `KernelSpec` registry.
    pub name: String,
    /// Total invocations.
    pub calls: u64,
    /// Invocations that crossed a thread boundary.
    pub parallel_calls: u64,
    /// Invocations routed through the vector (SIMD) path. A value far
    /// below `calls` on a SIMD-capable host flags a silent scalar
    /// fallback; scalar-only kernels legitimately stay at zero.
    pub simd_calls: u64,
    /// Work units processed.
    pub units: u64,
    /// Nanoseconds inside the kernel.
    pub ns: u64,
}

/// Last-seen cumulative counters for one phase.
#[derive(Clone, Debug, Default)]
pub struct PhaseRow {
    /// Phase name (`forward`, `backward`, …).
    pub name: String,
    /// Span entries.
    pub calls: u64,
    /// Nanoseconds inside the phase.
    pub ns: u64,
}

/// Per-regime evaluation metrics from the `regime` events (adversarial
/// robustness rows: sensor dropout, missing spans, regime shift, …).
#[derive(Clone, Debug, Default)]
pub struct RegimeRow {
    /// Regime name (`clean`, `sensor_dropout`, …).
    pub name: String,
    /// Masked MAE under the regime.
    pub mae: Option<f64>,
    /// Masked RMSE under the regime.
    pub rmse: Option<f64>,
    /// Masked MAPE under the regime.
    pub mape: Option<f64>,
}

/// The folded summary of one run log.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Per-epoch roll-ups, in emission order.
    pub epochs: Vec<EpochRow>,
    /// Per-regime robustness metrics, in emission order (last value per
    /// regime name wins).
    pub regimes: Vec<RegimeRow>,
    /// Per-kernel cumulative counters (last seen), sorted by time desc.
    pub kernels: Vec<KernelRow>,
    /// Per-phase cumulative counters (last seen), in emission order.
    pub phases: Vec<PhaseRow>,
    /// Arena hits (last seen).
    pub arena_hits: u64,
    /// Arena misses (last seen).
    pub arena_misses: u64,
    /// Arena resident floats (last seen).
    pub arena_resident_floats: u64,
    /// Pool worker count (last seen).
    pub pool_workers: u64,
    /// Pool dispatches (last seen).
    pub pool_dispatches: u64,
    /// Nested-serial fallbacks (last seen).
    pub pool_nested_serial: u64,
    /// Worker wakes (last seen).
    pub pool_wakes: u64,
    /// Worker parks (last seen).
    pub pool_parks: u64,
    /// Backward sweeps (last seen).
    pub tape_backwards: u64,
    /// Peak single-tape node count (last seen).
    pub tape_peak_nodes: u64,
    /// Peak live gradient scalars (last seen).
    pub tape_peak_grad_scalars: u64,
    /// Host hardware parallelism from the `host` row (0 when absent).
    pub host_parallelism: u64,
    /// SIMD level detected on the emitting host (empty when absent).
    pub host_simd_detected: String,
    /// SIMD level actually active on the emitting host (empty when absent).
    pub host_simd_active: String,
    /// Watchdog (divergence rollback) events.
    pub watchdog_events: u64,
    /// `warn` events.
    pub warnings: u64,
    /// Lines that failed to parse (torn tail lines, etc).
    pub skipped_lines: u64,
}

impl Summary {
    /// Arena hit rate in `[0, 1]`, or `None` with no arena traffic.
    pub fn arena_hit_rate(&self) -> Option<f64> {
        let total = self.arena_hits + self.arena_misses;
        (total > 0).then(|| self.arena_hits as f64 / total as f64)
    }

    /// Total kernel nanoseconds (denominator for time shares).
    pub fn kernel_ns_total(&self) -> u64 {
        self.kernels.iter().map(|k| k.ns).sum()
    }
}

fn f(ev: &Event, key: &str) -> Option<f64> {
    ev.fields.get(key).and_then(Field::as_f64)
}

fn u(ev: &Event, key: &str) -> u64 {
    ev.fields.get(key).and_then(Field::as_u64).unwrap_or(0)
}

fn s<'a>(ev: &'a Event, key: &str) -> &'a str {
    ev.fields.get(key).and_then(Field::as_str).unwrap_or("")
}

/// Fold the lines of a run log into a [`Summary`].
///
/// Counters in the log are cumulative; the summary keeps the last value
/// seen per key, so a log truncated mid-run still summarizes cleanly.
pub fn summarize(text: &str) -> Summary {
    let mut sum = Summary::default();
    let mut kernels: BTreeMap<String, KernelRow> = BTreeMap::new();
    let mut phases: Vec<PhaseRow> = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Some(ev) = parse_line(line) else {
            sum.skipped_lines += 1;
            continue;
        };
        match ev.event.as_str() {
            "epoch" => sum.epochs.push(EpochRow {
                epoch: u(&ev, "epoch"),
                kind: s(&ev, "kind").to_owned(),
                tau: f(&ev, "tau"),
                train_loss: f(&ev, "train_loss"),
                val_loss: f(&ev, "val_loss"),
                alpha_entropy: f(&ev, "alpha_entropy"),
            }),
            "kernel" => {
                let name = s(&ev, "name").to_owned();
                let row = kernels.entry(name.clone()).or_default();
                row.name = name;
                row.calls = u(&ev, "calls");
                row.parallel_calls = u(&ev, "parallel_calls");
                row.simd_calls = u(&ev, "simd_calls");
                row.units = u(&ev, "units");
                row.ns = u(&ev, "ns");
            }
            "host" => {
                sum.host_parallelism = u(&ev, "available_parallelism");
                sum.host_simd_detected = s(&ev, "simd_detected").to_owned();
                sum.host_simd_active = s(&ev, "simd_active").to_owned();
            }
            "phase" => {
                let name = s(&ev, "name");
                let row = match phases.iter_mut().find(|p| p.name == name) {
                    Some(row) => row,
                    None => {
                        phases.push(PhaseRow {
                            name: name.to_owned(),
                            ..PhaseRow::default()
                        });
                        // invariant: just pushed, so last() exists
                        phases.last_mut().unwrap()
                    }
                };
                row.calls = u(&ev, "calls");
                row.ns = u(&ev, "ns");
            }
            "arena" => {
                sum.arena_hits = u(&ev, "hits");
                sum.arena_misses = u(&ev, "misses");
                sum.arena_resident_floats = u(&ev, "resident_floats");
            }
            "pool" => {
                sum.pool_workers = u(&ev, "workers");
                sum.pool_dispatches = u(&ev, "dispatches");
                sum.pool_nested_serial = u(&ev, "nested_serial");
                sum.pool_wakes = u(&ev, "wakes");
                sum.pool_parks = u(&ev, "parks");
            }
            "tape" => {
                sum.tape_backwards = u(&ev, "backwards");
                sum.tape_peak_nodes = u(&ev, "peak_nodes");
                sum.tape_peak_grad_scalars = u(&ev, "peak_grad_scalars");
            }
            "regime" => {
                let name = s(&ev, "name");
                let row = match sum.regimes.iter_mut().find(|r| r.name == name) {
                    Some(row) => row,
                    None => {
                        sum.regimes.push(RegimeRow {
                            name: name.to_owned(),
                            ..RegimeRow::default()
                        });
                        // invariant: just pushed, so last() exists
                        sum.regimes.last_mut().unwrap()
                    }
                };
                row.mae = f(&ev, "mae");
                row.rmse = f(&ev, "rmse");
                row.mape = f(&ev, "mape");
            }
            "watchdog" => sum.watchdog_events += 1,
            "warn" => sum.warnings += 1,
            _ => {}
        }
    }
    let mut kernels: Vec<KernelRow> = kernels.into_values().collect();
    kernels.sort_by(|a, b| b.ns.cmp(&a.ns).then_with(|| a.name.cmp(&b.name)));
    sum.kernels = kernels;
    sum.phases = phases;
    sum
}

fn fmt_opt(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{v:.6}"),
        None => "-".to_owned(),
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Render the summary as a human-readable text report.
pub fn render_text(sum: &Summary) -> String {
    let mut out = String::new();
    // invariant: writing to a String cannot fail
    let w = &mut out;
    let _ = writeln!(w, "run summary: {} epoch(s)", sum.epochs.len());
    if !sum.host_simd_detected.is_empty() {
        let _ = writeln!(
            w,
            "  host: parallelism {}  simd detected {}  active {}",
            sum.host_parallelism, sum.host_simd_detected, sum.host_simd_active,
        );
    }
    if let (Some(first), Some(last)) = (sum.epochs.first(), sum.epochs.last()) {
        let _ = writeln!(
            w,
            "  tau {} -> {}   val_loss {} -> {}   alpha_entropy {} -> {}",
            fmt_opt(first.tau),
            fmt_opt(last.tau),
            fmt_opt(first.val_loss),
            fmt_opt(last.val_loss),
            fmt_opt(first.alpha_entropy),
            fmt_opt(last.alpha_entropy),
        );
    }
    if sum.watchdog_events > 0 || sum.warnings > 0 {
        let _ = writeln!(
            w,
            "  watchdog events: {}   warnings: {}",
            sum.watchdog_events, sum.warnings
        );
    }
    let total_ns = sum.kernel_ns_total();
    if !sum.kernels.is_empty() {
        let _ = writeln!(w, "kernels (by time, total {:.1} ms):", ms(total_ns));
        for k in &sum.kernels {
            let share = if total_ns > 0 {
                100.0 * k.ns as f64 / total_ns as f64
            } else {
                0.0
            };
            let _ = writeln!(
                w,
                "  {:<28} {:>10.1} ms  {:>5.1}%  calls {:>9}  par {:>9}  simd {:>9}  units {:>12}",
                k.name,
                ms(k.ns),
                share,
                k.calls,
                k.parallel_calls,
                k.simd_calls,
                k.units
            );
        }
    }
    if !sum.phases.is_empty() {
        let phase_ns: u64 = sum.phases.iter().map(|p| p.ns).sum();
        let _ = writeln!(w, "phases:");
        for p in &sum.phases {
            let share = if phase_ns > 0 {
                100.0 * p.ns as f64 / phase_ns as f64
            } else {
                0.0
            };
            let _ = writeln!(
                w,
                "  {:<28} {:>10.1} ms  {:>5.1}%  calls {:>9}",
                p.name,
                ms(p.ns),
                share,
                p.calls
            );
        }
    }
    if !sum.regimes.is_empty() {
        let _ = writeln!(w, "adversarial regimes (masked metrics):");
        for r in &sum.regimes {
            let _ = writeln!(
                w,
                "  {:<28} mae {:>10}  rmse {:>10}  mape {:>10}",
                r.name,
                fmt_opt(r.mae),
                fmt_opt(r.rmse),
                fmt_opt(r.mape),
            );
        }
    }
    if sum.arena_hits + sum.arena_misses > 0 {
        let _ = writeln!(
            w,
            "arena: hits {}  misses {}  hit-rate {:.2}%  resident {:.1} MiB",
            sum.arena_hits,
            sum.arena_misses,
            100.0 * sum.arena_hit_rate().unwrap_or(0.0),
            sum.arena_resident_floats as f64 * 4.0 / (1024.0 * 1024.0),
        );
    }
    if sum.pool_dispatches > 0 || sum.pool_workers > 0 {
        let _ = writeln!(
            w,
            "pool: workers {}  dispatches {}  nested-serial {}  wakes {}  parks {}",
            sum.pool_workers,
            sum.pool_dispatches,
            sum.pool_nested_serial,
            sum.pool_wakes,
            sum.pool_parks,
        );
    }
    if sum.tape_backwards > 0 {
        let _ = writeln!(
            w,
            "tape: backwards {}  peak nodes {}  peak grad scalars {}",
            sum.tape_backwards, sum.tape_peak_nodes, sum.tape_peak_grad_scalars,
        );
    }
    if sum.skipped_lines > 0 {
        let _ = writeln!(w, "({} unparseable line(s) skipped)", sum.skipped_lines);
    }
    out
}

/// Render the summary as a `BENCH_obs.json` document: a `"rows"` array in
/// the same flat shape as the other `BENCH_*.json` files (one row per
/// kernel and per phase), plus a `"summary"` object with the run-level
/// gauges.
pub fn render_bench_json(sum: &Summary) -> String {
    let mut out = String::from("{\n");
    if !sum.host_simd_detected.is_empty() {
        let _ = writeln!(
            out,
            "  \"host\": {{\"available_parallelism\": {}, \"simd_detected\": \"{}\", \
             \"simd_active\": \"{}\"}},",
            sum.host_parallelism, sum.host_simd_detected, sum.host_simd_active,
        );
    }
    out.push_str("  \"rows\": [\n");
    let total_ns = sum.kernel_ns_total().max(1);
    let mut rows: Vec<String> = Vec::new();
    for k in &sum.kernels {
        rows.push(format!(
            "    {{\"op\": \"kernel.{}\", \"calls\": {}, \"parallel_calls\": {}, \
             \"simd_calls\": {}, \"units\": {}, \"ns\": {}, \"time_share\": {:.4}}}",
            k.name,
            k.calls,
            k.parallel_calls,
            k.simd_calls,
            k.units,
            k.ns,
            k.ns as f64 / total_ns as f64
        ));
    }
    for p in &sum.phases {
        rows.push(format!(
            "    {{\"op\": \"phase.{}\", \"calls\": {}, \"ns\": {}}}",
            p.name, p.calls, p.ns
        ));
    }
    let opt_num = |x: Option<f64>| match x {
        Some(v) if v.is_finite() => format!("{v}"),
        _ => "null".to_owned(),
    };
    for r in &sum.regimes {
        rows.push(format!(
            "    {{\"op\": \"regime.{}\", \"mae\": {}, \"rmse\": {}, \"mape\": {}}}",
            r.name,
            opt_num(r.mae),
            opt_num(r.rmse),
            opt_num(r.mape)
        ));
    }
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n  \"summary\": {");
    let last = sum.epochs.last();
    let opt = |x: Option<f64>| match x {
        Some(v) if v.is_finite() => format!("{v}"),
        _ => "null".to_owned(),
    };
    let _ = write!(
        out,
        "\"epochs\": {}, \"tau_last\": {}, \"val_loss_last\": {}, \
         \"alpha_entropy_last\": {}, \"arena_hits\": {}, \"arena_misses\": {}, \
         \"arena_resident_floats\": {}, \"pool_workers\": {}, \
         \"pool_dispatches\": {}, \"pool_nested_serial\": {}, \
         \"tape_backwards\": {}, \"tape_peak_nodes\": {}, \
         \"watchdog_events\": {}, \"warnings\": {}",
        sum.epochs.len(),
        opt(last.and_then(|e| e.tau)),
        opt(last.and_then(|e| e.val_loss)),
        opt(last.and_then(|e| e.alpha_entropy)),
        sum.arena_hits,
        sum.arena_misses,
        sum.arena_resident_floats,
        sum.pool_workers,
        sum.pool_dispatches,
        sum.pool_nested_serial,
        sum.tape_backwards,
        sum.tape_peak_nodes,
        sum.watchdog_events,
        sum.warnings,
    );
    out.push_str("}\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_lines() {
        let ev = parse_line(
            r#"{"event":"epoch","epoch":2,"kind":"joint_search","tau":3.5,"val_loss":0.25,"alpha_entropy":1.9}"#,
        )
        .unwrap();
        assert_eq!(ev.event, "epoch");
        assert_eq!(ev.fields.get("epoch"), Some(&Field::Num(2.0)));
        assert_eq!(ev.fields.get("kind"), Some(&Field::Str("joint_search".into())));
        assert!(parse_line("{\"event\":\"x\"").is_none(), "torn line rejected");
        assert!(parse_line("").is_none());
        let esc = parse_line(r#"{"event":"warn","msg":"a \"q\"\nline A"}"#).unwrap();
        assert_eq!(esc.fields.get("msg"), Some(&Field::Str("a \"q\"\nline A".into())));
        let nul = parse_line(r#"{"event":"epoch","tau":null,"ok":true,"bad":false}"#).unwrap();
        assert_eq!(nul.fields.get("tau"), Some(&Field::Null));
        assert_eq!(nul.fields.get("ok"), Some(&Field::Bool(true)));
    }

    #[test]
    fn summarize_folds_cumulative_counters() {
        let log = concat!(
            "{\"event\":\"run_start\",\"kind\":\"joint_search\"}\n",
            "{\"event\":\"host\",\"available_parallelism\":8,\"simd_detected\":\"avx2\",\"simd_active\":\"avx2\"}\n",
            "{\"event\":\"epoch\",\"epoch\":0,\"kind\":\"joint_search\",\"tau\":5.0,\"val_loss\":0.5,\"alpha_entropy\":2.0}\n",
            "{\"event\":\"kernel\",\"epoch\":0,\"name\":\"matmul\",\"calls\":10,\"parallel_calls\":4,\"simd_calls\":9,\"units\":100,\"ns\":3000}\n",
            "{\"event\":\"phase\",\"epoch\":0,\"name\":\"forward\",\"calls\":8,\"ns\":500}\n",
            "{\"event\":\"epoch\",\"epoch\":1,\"kind\":\"joint_search\",\"tau\":4.0,\"val_loss\":0.4,\"alpha_entropy\":1.5}\n",
            "{\"event\":\"kernel\",\"epoch\":1,\"name\":\"matmul\",\"calls\":20,\"parallel_calls\":8,\"simd_calls\":18,\"units\":200,\"ns\":6000}\n",
            "{\"event\":\"kernel\",\"epoch\":1,\"name\":\"softmax\",\"calls\":5,\"parallel_calls\":0,\"units\":50,\"ns\":2000}\n",
            "{\"event\":\"phase\",\"epoch\":1,\"name\":\"forward\",\"calls\":16,\"ns\":1200}\n",
            "{\"event\":\"arena\",\"epoch\":1,\"hits\":90,\"misses\":10,\"resident_floats\":4096}\n",
            "{\"event\":\"pool\",\"epoch\":1,\"workers\":4,\"dispatches\":33,\"nested_serial\":2,\"wakes\":99,\"parks\":101}\n",
            "{\"event\":\"tape\",\"epoch\":1,\"backwards\":12,\"nodes\":480,\"peak_nodes\":40,\"peak_grad_scalars\":7}\n",
            "{\"event\":\"watchdog\",\"epoch\":1,\"reason\":\"nan\"}\n",
            "{\"event\":\"regime\",\"name\":\"clean\",\"mae\":1.5,\"rmse\":2.5,\"mape\":0.1}\n",
            "{\"event\":\"regime\",\"name\":\"sensor_dropout\",\"mae\":2.0,\"rmse\":3.0,\"mape\":0.2}\n",
            "{\"event\":\"epoch\",\"epo",  // torn final line
        );
        let sum = summarize(log);
        assert_eq!(sum.epochs.len(), 2);
        assert_eq!(sum.epochs[1].tau, Some(4.0));
        assert_eq!(sum.kernels.len(), 2);
        assert_eq!(sum.kernels[0].name, "matmul", "sorted by time desc");
        assert_eq!(sum.kernels[0].calls, 20, "last cumulative value wins");
        assert_eq!(sum.kernels[0].simd_calls, 18);
        assert_eq!(sum.kernels[1].simd_calls, 0, "absent field defaults to 0");
        assert_eq!(sum.host_parallelism, 8);
        assert_eq!(sum.host_simd_detected, "avx2");
        assert_eq!(sum.phases[0].calls, 16);
        assert_eq!(sum.arena_hits, 90);
        assert_eq!(sum.arena_hit_rate(), Some(0.9));
        assert_eq!(sum.pool_dispatches, 33);
        assert_eq!(sum.tape_peak_nodes, 40);
        assert_eq!(sum.watchdog_events, 1);
        assert_eq!(sum.skipped_lines, 1);
        let text = render_text(&sum);
        assert!(text.contains("matmul"));
        assert!(text.contains("hit-rate 90.00%"));
        assert_eq!(sum.regimes.len(), 2);
        assert_eq!(sum.regimes[1].name, "sensor_dropout");
        assert_eq!(sum.regimes[1].mae, Some(2.0));
        assert!(text.contains("sensor_dropout"));
        let json = render_bench_json(&sum);
        assert!(json.contains("\"op\": \"kernel.matmul\""));
        assert!(json.contains("\"simd_calls\": 18"));
        assert!(json.contains("\"op\": \"regime.sensor_dropout\", \"mae\": 2, \"rmse\": 3"));
        assert!(json.contains("\"tau_last\": 4"));
        assert!(json.contains("\"host\": {\"available_parallelism\": 8, \"simd_detected\": \"avx2\""));
        assert!(json.starts_with("{\n"));
    }
}
