//! `report`: summarize a `cts_run.jsonl` run log.
//!
//! ```text
//! report <run.jsonl> [--out BENCH_obs.json]
//! ```
//!
//! Prints a human-readable summary to stdout; with `--out`, also writes a
//! `BENCH_obs.json` document in the same `{"rows": [...]}` shape as the
//! other `BENCH_*.json` files.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut out_path = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                if i + 1 >= args.len() {
                    eprintln!("report: --out needs a path");
                    return ExitCode::FAILURE;
                }
                out_path = Some(args[i + 1].clone());
                i += 2;
            }
            "-h" | "--help" => {
                println!("usage: report <run.jsonl> [--out BENCH_obs.json]");
                return ExitCode::SUCCESS;
            }
            other if input.is_none() => {
                input = Some(other.to_owned());
                i += 1;
            }
            other => {
                eprintln!("report: unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(input) = input else {
        eprintln!("usage: report <run.jsonl> [--out BENCH_obs.json]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("report: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sum = cts_obs::report::summarize(&text);
    print!("{}", cts_obs::report::render_text(&sum));
    if let Some(out) = out_path {
        let json = cts_obs::report::render_bench_json(&sum);
        if let Err(e) = std::fs::write(&out, json) {
            eprintln!("report: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {out}");
    }
    ExitCode::SUCCESS
}
