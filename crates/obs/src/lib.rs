//! `cts-obs`: the always-cheap observability layer of the workspace.
//!
//! Every other crate reports *into* this one — per-kernel timing and
//! invocation counters from `cts_tensor::parallel`, arena/pool gauges from
//! `cts_tensor::arena`/`pool`, tape statistics from `cts-autograd`, and
//! phase spans (forward, backward, weight/arch step, checkpoint write,
//! derive, retrain) from `cts-nn` and `autocts` — and a structured JSONL
//! run log ([`runlog`]) plus a summarizer ([`report`]) read it back out.
//!
//! # Cost model
//!
//! Observability must never perturb the numbers it observes:
//!
//! - **Metrics off** (the default): every instrumentation point degrades
//!   to a handful of relaxed atomic counter increments. No clock is read
//!   ([`timer`] returns an empty [`Timer`]), nothing is written to disk,
//!   and no allocation happens — the PR-4 allocation budget holds
//!   unchanged (pinned by `tests/alloc_budget.rs`).
//! - **Metrics on** (`CTS_METRICS=1` or [`set_metrics`]): instrumentation
//!   points additionally read a monotonic clock and the run log receives
//!   per-epoch roll-up rows. Timing *observes* compute but never steers
//!   it, so search/train traces are bit-identical with metrics on or off.
//! - **Tracing on** (`CTS_TRACE=1` or [`set_trace`]): loops additionally
//!   emit per-step events. This is the only knob with per-step I/O; it is
//!   for debugging, not production.
//!
//! # Clock discipline
//!
//! This crate (and `cts-bench`) are the only places allowed to name
//! `std::time::Instant` — enforced by `scripts/lint_forbidden.sh` — so
//! wall-clock reads can never leak into deterministic compute paths.
//! Code that legitimately needs coarse timing (per-run / per-epoch
//! seconds in reports) uses [`Stopwatch`]; hot paths use the
//! metrics-gated [`Timer`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod runlog;
pub mod serve;

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Switches
// ---------------------------------------------------------------------------

/// 0 = follow the env (default off), 1 = forced on, 2 = forced off.
static METRICS_MODE: AtomicU8 = AtomicU8::new(0);
static TRACE_MODE: AtomicU8 = AtomicU8::new(0);

fn env_flag(name: &'static str, cell: &'static OnceLock<bool>) -> bool {
    *cell.get_or_init(|| {
        matches!(
            std::env::var(name).as_deref(),
            Ok("1") | Ok("on") | Ok("true")
        )
    })
}

fn env_metrics() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    env_flag("CTS_METRICS", &ENV)
}

fn env_trace() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    env_flag("CTS_TRACE", &ENV)
}

/// Are timing metrics and the JSONL run log active?
///
/// Driven by `CTS_METRICS` (off unless set to `1`/`on`/`true`), overridable
/// process-wide with [`set_metrics`]. When off, instrumentation points
/// increment atomic counters only: no clock reads, no I/O, no allocation.
pub fn metrics_enabled() -> bool {
    match METRICS_MODE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_metrics(),
    }
}

/// Force metrics on/off process-wide (`None` restores the `CTS_METRICS`
/// env default). Tests and benchmarks use this to compare instrumented and
/// bare runs in one process.
pub fn set_metrics(on: Option<bool>) {
    METRICS_MODE.store(mode_byte(on), Ordering::Relaxed);
}

/// Is per-step event tracing requested? (`CTS_TRACE`, or [`set_trace`].)
///
/// Tracing refines metrics: per-step events are only written when
/// [`metrics_enabled`] is also true.
pub fn trace_enabled() -> bool {
    match TRACE_MODE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_trace(),
    }
}

/// Force per-step tracing on/off process-wide (`None` restores the
/// `CTS_TRACE` env default).
pub fn set_trace(on: Option<bool>) {
    TRACE_MODE.store(mode_byte(on), Ordering::Relaxed);
}

fn mode_byte(on: Option<bool>) -> u8 {
    match on {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    }
}

// ---------------------------------------------------------------------------
// Clocks
// ---------------------------------------------------------------------------

/// A metrics-gated hot-path timer: holds a start [`Instant`] only when
/// metrics are enabled, so the disabled path never reads a clock.
#[derive(Clone, Copy, Debug)]
pub struct Timer {
    start: Option<Instant>,
}

/// Start a [`Timer`] (empty when metrics are off).
pub fn timer() -> Timer {
    Timer {
        start: metrics_enabled().then(Instant::now),
    }
}

impl Timer {
    /// Nanoseconds since the timer started, or `None` when metrics were
    /// off at start time.
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.start.map(|s| {
            u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
    }
}

/// An always-on coarse stopwatch for per-run / per-epoch wall-clock fields
/// in reports ([`cts-nn`]'s `TrainReport.secs_per_epoch`, `autocts`'s
/// `SearchStats.secs`). Use [`timer`] instead on hot paths.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Self { start: Instant::now() }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Milliseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}

// ---------------------------------------------------------------------------
// Kernel counters
// ---------------------------------------------------------------------------

/// Cumulative counters for one parallel kernel. Embedded in
/// `cts_tensor::parallel::KernelSpec`, so every registered kernel carries
/// its own slot and recording needs no name lookup.
#[derive(Debug, Default)]
pub struct KernelStats {
    calls: AtomicU64,
    parallel_calls: AtomicU64,
    simd_calls: AtomicU64,
    units: AtomicU64,
    ns: AtomicU64,
}

/// A point-in-time copy of one kernel's [`KernelStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Total invocations (serial and parallel).
    pub calls: u64,
    /// Invocations that crossed a thread boundary.
    pub parallel_calls: u64,
    /// Invocations whose inner loops took a vector (SIMD) path. A fraction
    /// well below `calls` on a SIMD-capable host flags a silent scalar
    /// fallback.
    pub simd_calls: u64,
    /// Total work units processed (kernel-specific: rows, matrices, …).
    pub units: u64,
    /// Total nanoseconds inside the kernel (0 unless metrics were on).
    pub ns: u64,
}

impl KernelStats {
    /// A zeroed counter block (const: usable in `static` kernel specs).
    pub const fn new() -> Self {
        Self {
            calls: AtomicU64::new(0),
            parallel_calls: AtomicU64::new(0),
            simd_calls: AtomicU64::new(0),
            units: AtomicU64::new(0),
            ns: AtomicU64::new(0),
        }
    }

    /// Record one invocation: always counts, adds elapsed time only when
    /// `t` was started with metrics on.
    pub fn record(&self, t: Timer, units: u64, parallel: bool) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.units.fetch_add(units, Ordering::Relaxed);
        if parallel {
            self.parallel_calls.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(ns) = t.elapsed_ns() {
            self.ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Record that this invocation's inner loops ran on a vector path.
    /// Called by the op (not the dispatcher) because only the op knows
    /// whether its hot loops actually route through `cts_tensor::simd`.
    pub fn record_simd(&self) {
        self.simd_calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy out the current counters.
    pub fn snapshot(&self) -> KernelCounters {
        KernelCounters {
            calls: self.calls.load(Ordering::Relaxed),
            parallel_calls: self.parallel_calls.load(Ordering::Relaxed),
            simd_calls: self.simd_calls.load(Ordering::Relaxed),
            units: self.units.load(Ordering::Relaxed),
            ns: self.ns.load(Ordering::Relaxed),
        }
    }

    /// Zero the counters.
    pub fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.parallel_calls.store(0, Ordering::Relaxed);
        self.simd_calls.store(0, Ordering::Relaxed);
        self.units.store(0, Ordering::Relaxed);
        self.ns.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Pool counters (filled by cts_tensor::pool)
// ---------------------------------------------------------------------------

/// Snapshot of the persistent worker pool's dispatch counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads currently alive.
    pub workers: usize,
    /// Jobs published to the pool (parallel regions that woke workers).
    pub dispatches: u64,
    /// Nested parallel regions executed serially in place.
    pub nested_serial: u64,
    /// Worker job pickups (wake transitions).
    pub wakes: u64,
    /// Worker condvar waits entered (park transitions).
    pub parks: u64,
    /// Per-worker busy nanoseconds (index = worker id - 1; all zero
    /// unless metrics were on). Workers beyond the tracked maximum fold
    /// into the last slot.
    pub busy_ns: Vec<u64>,
}

// ---------------------------------------------------------------------------
// Phase spans
// ---------------------------------------------------------------------------

/// The run phases instrumented across the training/search stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Model forward pass (+ loss computation).
    Forward,
    /// Reverse-mode sweep.
    Backward,
    /// Architecture (Θ) optimizer step.
    ArchStep,
    /// Network-weight (w) optimizer step (incl. gradient clipping).
    WeightStep,
    /// Run-state checkpoint serialization + atomic write.
    CheckpointWrite,
    /// Discrete-genotype derivation from the supernet.
    Derive,
    /// Architecture-evaluation retraining (whole stage).
    Retrain,
}

/// Every phase, in stable emission order.
pub const PHASES: [Phase; 7] = [
    Phase::Forward,
    Phase::Backward,
    Phase::ArchStep,
    Phase::WeightStep,
    Phase::CheckpointWrite,
    Phase::Derive,
    Phase::Retrain,
];

impl Phase {
    /// Stable snake_case name used in the run log.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Forward => "forward",
            Phase::Backward => "backward",
            Phase::ArchStep => "arch_step",
            Phase::WeightStep => "weight_step",
            Phase::CheckpointWrite => "checkpoint_write",
            Phase::Derive => "derive",
            Phase::Retrain => "retrain",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Forward => 0,
            Phase::Backward => 1,
            Phase::ArchStep => 2,
            Phase::WeightStep => 3,
            Phase::CheckpointWrite => 4,
            Phase::Derive => 5,
            Phase::Retrain => 6,
        }
    }
}

struct PhaseSlot {
    calls: AtomicU64,
    ns: AtomicU64,
}

static PHASE_SLOTS: [PhaseSlot; 7] = [const {
    PhaseSlot {
        calls: AtomicU64::new(0),
        ns: AtomicU64::new(0),
    }
}; 7];

/// Point-in-time counters of one [`Phase`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseCounters {
    /// Span entries.
    pub calls: u64,
    /// Total nanoseconds inside the phase (0 unless metrics were on).
    pub ns: u64,
}

/// An RAII phase span: records one call (and, with metrics on, the
/// elapsed time) into the phase's slot on drop.
#[must_use = "a span records on drop; binding it to _ discards it immediately"]
pub struct Span {
    phase: Phase,
    t: Timer,
}

/// Open a span over `phase`; drop it to record.
pub fn span(phase: Phase) -> Span {
    Span { phase, t: timer() }
}

impl Drop for Span {
    fn drop(&mut self) {
        let slot = &PHASE_SLOTS[self.phase.index()];
        slot.calls.fetch_add(1, Ordering::Relaxed);
        if let Some(ns) = self.t.elapsed_ns() {
            slot.ns.fetch_add(ns, Ordering::Relaxed);
        }
    }
}

/// Snapshot of every phase's counters, in [`PHASES`] order.
pub fn phase_snapshot() -> Vec<(Phase, PhaseCounters)> {
    PHASES
        .iter()
        .map(|&p| {
            let slot = &PHASE_SLOTS[p.index()];
            (
                p,
                PhaseCounters {
                    calls: slot.calls.load(Ordering::Relaxed),
                    ns: slot.ns.load(Ordering::Relaxed),
                },
            )
        })
        .collect()
}

/// Zero every phase's counters.
pub fn reset_phases() {
    for slot in &PHASE_SLOTS {
        slot.calls.store(0, Ordering::Relaxed);
        slot.ns.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Tape counters (filled by cts-autograd)
// ---------------------------------------------------------------------------

/// Autograd tape statistics, recorded once per backward sweep.
pub mod tape {
    use super::*;

    static BACKWARDS: AtomicU64 = AtomicU64::new(0);
    static NODES: AtomicU64 = AtomicU64::new(0);
    static PEAK_NODES: AtomicU64 = AtomicU64::new(0);
    static PEAK_ACTIVATION_SCALARS: AtomicU64 = AtomicU64::new(0);
    static PEAK_GRAD_SCALARS: AtomicU64 = AtomicU64::new(0);

    /// Point-in-time copy of the tape counters.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct TapeCounters {
        /// Backward sweeps recorded.
        pub backwards: u64,
        /// Total nodes across all recorded sweeps.
        pub nodes: u64,
        /// Largest single-tape node count seen.
        pub peak_nodes: u64,
        /// Largest per-tape activation-scalar total seen (0 unless
        /// metrics were on — computing it walks the tape).
        pub peak_activation_scalars: u64,
        /// Largest number of gradient scalars simultaneously live inside
        /// one backward sweep (0 unless metrics were on).
        pub peak_grad_scalars: u64,
    }

    fn store_max(cell: &AtomicU64, v: u64) {
        cell.fetch_max(v, Ordering::Relaxed);
    }

    /// Record one backward sweep. `activation_scalars` and
    /// `peak_grad_scalars` should be 0 when metrics are off (the caller
    /// skips computing them).
    pub fn record_backward(nodes: u64, activation_scalars: u64, peak_grad_scalars: u64) {
        BACKWARDS.fetch_add(1, Ordering::Relaxed);
        NODES.fetch_add(nodes, Ordering::Relaxed);
        store_max(&PEAK_NODES, nodes);
        store_max(&PEAK_ACTIVATION_SCALARS, activation_scalars);
        store_max(&PEAK_GRAD_SCALARS, peak_grad_scalars);
    }

    /// Copy out the current tape counters.
    pub fn snapshot() -> TapeCounters {
        TapeCounters {
            backwards: BACKWARDS.load(Ordering::Relaxed),
            nodes: NODES.load(Ordering::Relaxed),
            peak_nodes: PEAK_NODES.load(Ordering::Relaxed),
            peak_activation_scalars: PEAK_ACTIVATION_SCALARS.load(Ordering::Relaxed),
            peak_grad_scalars: PEAK_GRAD_SCALARS.load(Ordering::Relaxed),
        }
    }

    /// Zero the tape counters.
    pub fn reset() {
        BACKWARDS.store(0, Ordering::Relaxed);
        NODES.store(0, Ordering::Relaxed);
        PEAK_NODES.store(0, Ordering::Relaxed);
        PEAK_ACTIVATION_SCALARS.store(0, Ordering::Relaxed);
        PEAK_GRAD_SCALARS.store(0, Ordering::Relaxed);
    }
}

/// Emit the obs-layer epoch roll-up rows (phases + tape) into the run
/// log: one `phase` row per phase with calls, and one `tape` row.
/// Counters are cumulative; the [`report`] summarizer diffs them.
///
/// Tensor-layer rows (kernels, arena, pool) are emitted by
/// `cts_tensor::metrics::emit_epoch_rows`, which callers pair with this.
pub fn emit_epoch_rows(epoch: u64) {
    if !metrics_enabled() {
        return;
    }
    use runlog::Value;
    for (p, c) in phase_snapshot() {
        if c.calls == 0 {
            continue;
        }
        runlog::emit(
            "phase",
            &[
                ("epoch", Value::U64(epoch)),
                ("name", Value::Str(p.name())),
                ("calls", Value::U64(c.calls)),
                ("ns", Value::U64(c.ns)),
            ],
        );
    }
    let t = tape::snapshot();
    if t.backwards > 0 {
        runlog::emit(
            "tape",
            &[
                ("epoch", Value::U64(epoch)),
                ("backwards", Value::U64(t.backwards)),
                ("nodes", Value::U64(t.nodes)),
                ("peak_nodes", Value::U64(t.peak_nodes)),
                ("peak_activation_scalars", Value::U64(t.peak_activation_scalars)),
                ("peak_grad_scalars", Value::U64(t.peak_grad_scalars)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests here flip the process-wide metrics switch; serialize them.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn metrics_switch_roundtrip() {
        let _g = LOCK.lock().unwrap();
        set_metrics(Some(true));
        assert!(metrics_enabled());
        set_metrics(Some(false));
        assert!(!metrics_enabled());
        set_metrics(None);
    }

    #[test]
    fn timer_is_empty_when_metrics_off() {
        let _g = LOCK.lock().unwrap();
        set_metrics(Some(false));
        assert_eq!(timer().elapsed_ns(), None);
        set_metrics(Some(true));
        assert!(timer().elapsed_ns().is_some());
        set_metrics(None);
    }

    #[test]
    fn kernel_stats_record_and_reset() {
        let _g = LOCK.lock().unwrap();
        static K: KernelStats = KernelStats::new();
        K.reset();
        set_metrics(Some(false));
        K.record(timer(), 7, false);
        let s = K.snapshot();
        assert_eq!((s.calls, s.units, s.parallel_calls, s.ns), (1, 7, 0, 0));
        set_metrics(Some(true));
        K.record(timer(), 3, true);
        let s = K.snapshot();
        assert_eq!((s.calls, s.units, s.parallel_calls), (2, 10, 1));
        K.reset();
        assert_eq!(K.snapshot(), KernelCounters::default());
        set_metrics(None);
    }

    #[test]
    fn spans_count_per_phase() {
        let _g = LOCK.lock().unwrap();
        set_metrics(Some(false));
        reset_phases();
        {
            let _s = span(Phase::Forward);
        }
        {
            let _s = span(Phase::Forward);
        }
        {
            let _s = span(Phase::Derive);
        }
        let snap = phase_snapshot();
        let get = |p: Phase| snap.iter().find(|(q, _)| *q == p).unwrap().1;
        assert_eq!(get(Phase::Forward).calls, 2);
        assert_eq!(get(Phase::Derive).calls, 1);
        assert_eq!(get(Phase::Forward).ns, 0, "metrics off must not time");
        reset_phases();
        set_metrics(None);
    }

    #[test]
    fn tape_counters_track_peaks() {
        let _g = LOCK.lock().unwrap();
        tape::reset();
        tape::record_backward(10, 100, 50);
        tape::record_backward(30, 80, 70);
        let s = tape::snapshot();
        assert_eq!(s.backwards, 2);
        assert_eq!(s.nodes, 40);
        assert_eq!(s.peak_nodes, 30);
        assert_eq!(s.peak_activation_scalars, 100);
        assert_eq!(s.peak_grad_scalars, 70);
        tape::reset();
    }
}
