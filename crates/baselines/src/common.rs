//! Shared plumbing for all baseline models.

use cts_autograd::{Parameter, Tape, Var};
use cts_data::{DatasetSpec, Scaler, Task};
use cts_graph::SensorGraph;
use cts_nn::Linear;
use cts_ops::{node_mix, GraphContext};
use rand::Rng;

/// Common construction inputs of every baseline.
#[derive(Clone)]
pub struct BaselineConfig {
    /// Hidden channel width.
    pub hidden: usize,
    /// Diffusion/Chebyshev order.
    pub k: usize,
    /// Node-embedding width for adaptive adjacencies.
    pub adaptive_emb: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            hidden: 16,
            k: 2,
            adaptive_emb: 8,
            seed: 1,
        }
    }
}

/// Output horizon from a spec.
pub(crate) fn q_out(spec: &DatasetSpec) -> usize {
    match spec.task {
        Task::MultiStep => spec.output_len,
        Task::SingleStep { .. } => 1,
    }
}

/// Shared output head: flatten `[B,N,T,D] → [B,N,T·D]`, project to `Q`,
/// and invert the dataset scaling so predictions are in raw units.
pub struct OutputHead {
    linear: Linear,
    input_len: usize,
    d: usize,
    out_scale: f32,
    out_shift: f32,
}

impl OutputHead {
    /// Head for a model with `d` hidden channels.
    pub fn new(rng: &mut impl Rng, spec: &DatasetSpec, scaler: &Scaler, d: usize) -> Self {
        Self {
            linear: Linear::new(rng, "head", spec.input_len * d, q_out(spec), true),
            input_len: spec.input_len,
            d,
            out_scale: scaler.target_std(),
            out_shift: scaler.target_mean(),
        }
    }

    /// Project `[B,N,T,D]` to `[B,N,Q]` raw-scale forecasts.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let s = x.shape();
        let flat = x.relu().reshape(&[s[0], s[1], self.input_len * self.d]);
        self.linear
            .forward(tape, &flat)
            .scale(self.out_scale)
            .add_scalar(self.out_shift)
    }

    /// Trainable parameters.
    pub fn parameters(&self) -> Vec<Parameter> {
        self.linear.parameters()
    }
}

/// Raw-scale affine applied to normalised predictions `[B,N,Q]`.
pub struct OutputScale {
    scale: f32,
    shift: f32,
}

impl OutputScale {
    /// From a dataset scaler.
    pub fn new(scaler: &Scaler) -> Self {
        Self {
            scale: scaler.target_std(),
            shift: scaler.target_mean(),
        }
    }

    /// Apply `y·σ + μ`.
    pub fn apply(&self, y: &Var) -> Var {
        y.scale(self.scale).add_scalar(self.shift)
    }
}

/// Diffusion graph convolution on a per-timestep tensor `[B, N, D]`:
/// `Σ_k P^k X W_k` over both directions plus a self term (the DCRNN/AGCRN
/// gate primitive).
pub fn diffusion_gconv(
    tape: &Tape,
    x: &Var,
    ctx: &GraphContext,
    self_w: &Linear,
    fwd_w: &[Linear],
    bwd_w: &[Linear],
) -> Var {
    let s = x.shape(); // [B,N,D]
    let x4 = x.reshape(&[s[0], s[1], 1, s[2]]);
    let mut acc = self_w.forward(tape, &x4);
    for (p, w) in ctx.diffusion_fwd(tape).iter().zip(fwd_w.iter()) {
        acc = acc.add(&w.forward(tape, &node_mix(&x4, p)));
    }
    for (p, w) in ctx.diffusion_bwd(tape).iter().zip(bwd_w.iter()) {
        acc = acc.add(&w.forward(tape, &node_mix(&x4, p)));
    }
    if let Some(adp) = ctx.adaptive_support(tape) {
        // reuse the forward weights for the adaptive direction
        if let Some(w) = fwd_w.first() {
            acc = acc.add(&w.forward(tape, &node_mix(&x4, &adp)));
        }
    }
    // invariant: the accumulator tensor is at least rank 1.
    let d_out = *acc.shape().last().expect("non-empty");
    acc.reshape(&[s[0], s[1], d_out])
}

/// Build a graph context for a baseline, learning an adaptive adjacency
/// when no predefined one exists.
pub(crate) fn baseline_context(
    rng: &mut impl Rng,
    cfg: &BaselineConfig,
    graph: &SensorGraph,
    force_adaptive: bool,
) -> GraphContext {
    let ctx = GraphContext::from_graph(graph, cfg.k);
    if force_adaptive || !ctx.has_spatial_signal() {
        GraphContext::from_graph(graph, cfg.k).with_adaptive(rng, cfg.adaptive_emb)
    } else {
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_tensor::{init, Tensor};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn head_projects_and_rescales() {
        let mut rng = SmallRng::seed_from_u64(0);
        let spec = DatasetSpec::metr_la().scaled(0.05, 0.02);
        let vals = Tensor::full([spec.n, 100, 2], 50.0);
        let scaler = Scaler::fit(&vals, 100);
        let head = OutputHead::new(&mut rng, &spec, &scaler, 4);
        let tape = Tape::new();
        let x = tape.constant(init::uniform(&mut rng, [2, spec.n, spec.input_len, 4], -1.0, 1.0));
        let y = head.forward(&tape, &x);
        assert_eq!(y.shape(), vec![2, spec.n, spec.output_len]);
        // constant-50 training data: shift is 50, so outputs sit near 50
        assert!((y.value().mean() - 50.0).abs() < 10.0);
    }

    #[test]
    fn diffusion_gconv_keeps_shape() {
        use cts_graph::{random_geometric_graph, GraphGenConfig};
        let mut rng = SmallRng::seed_from_u64(1);
        let g = random_geometric_graph(&mut rng, &GraphGenConfig { n: 5, ..Default::default() });
        let ctx = GraphContext::from_graph(&g, 2);
        let self_w = Linear::new(&mut rng, "s", 3, 6, true);
        let fwd: Vec<Linear> = (0..2).map(|i| Linear::new(&mut rng, &format!("f{i}"), 3, 6, false)).collect();
        let bwd: Vec<Linear> = (0..2).map(|i| Linear::new(&mut rng, &format!("b{i}"), 3, 6, false)).collect();
        let tape = Tape::new();
        let x = tape.constant(init::uniform(&mut rng, [2, 5, 3], -1.0, 1.0));
        let y = diffusion_gconv(&tape, &x, &ctx, &self_w, &fwd, &bwd);
        assert_eq!(y.shape(), vec![2, 5, 6]);
    }
}
