//! DCRNN: diffusion convolutional recurrent neural network (Li et al.
//! 2018). Two stacked DCGRU layers sweep the window; the output head reads
//! the full hidden sequence (a direct multi-horizon decoder substitutes
//! for the original recurrent decoder, noted in DESIGN.md).

use crate::blocks::{DcrnnBlock, HumanStBlock};
use crate::common::{baseline_context, BaselineConfig, OutputHead};
use cts_autograd::{Parameter, Tape, Var};
use cts_data::{DatasetSpec, Scaler};
use cts_graph::SensorGraph;
use cts_nn::{Forecaster, Linear};
use cts_ops::GraphContext;
use rand::{rngs::SmallRng, SeedableRng};

/// Encoder-style DCRNN with a direct multi-step head.
pub struct Dcrnn {
    embed: Linear,
    layers: Vec<DcrnnBlock>,
    head: OutputHead,
    ctx: GraphContext,
}

impl Dcrnn {
    /// Build for a dataset.
    pub fn new(cfg: &BaselineConfig, spec: &DatasetSpec, graph: &SensorGraph, scaler: &Scaler) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let d = cfg.hidden;
        Self {
            embed: Linear::new(&mut rng, "dcrnn.embed", spec.features, d, true),
            layers: (0..2)
                .map(|i| DcrnnBlock::new(&mut rng, &format!("dcrnn.l{i}"), d))
                .collect(),
            head: OutputHead::new(&mut rng, spec, scaler, d),
            ctx: baseline_context(&mut rng, cfg, graph, false),
        }
    }
}

impl Forecaster for Dcrnn {
    fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let mut h = self.embed.forward(tape, x);
        for layer in &self.layers {
            h = layer.forward(tape, &h, &self.ctx);
        }
        self.head.forward(tape, &h)
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.embed.parameters();
        for l in &self.layers {
            v.extend(l.parameters());
        }
        v.extend(self.head.parameters());
        v.extend(self.ctx.parameters());
        v
    }

    fn name(&self) -> &str {
        "DCRNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_data::{batches_from_windows, build_windows, generate};

    #[test]
    fn dcrnn_forward_shape() {
        let spec = DatasetSpec::pems08().scaled(0.05, 0.02);
        let data = generate(&spec, 1);
        let windows = build_windows(&data, 8, 6);
        let model = Dcrnn::new(&BaselineConfig::default(), &spec, &data.graph, &windows.scaler);
        let batches = batches_from_windows(&windows.train, 2);
        let tape = Tape::new();
        let y = model.forward(&tape, &tape.constant(batches[0].0.clone()));
        assert_eq!(y.shape(), vec![2, spec.n, spec.output_len]);
    }
}
