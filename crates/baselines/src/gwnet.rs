//! Graph WaveNet (Wu et al. 2019): stacked GDCC + diffusion-GCN blocks
//! with growing dilations, adaptive adjacency, and skip connections.

use crate::blocks::{GwnetBlock, HumanStBlock};
use crate::common::{baseline_context, BaselineConfig, OutputHead};
use cts_autograd::{Parameter, Tape, Var};
use cts_data::{DatasetSpec, Scaler};
use cts_graph::SensorGraph;
use cts_nn::{Forecaster, Linear};
use cts_ops::GraphContext;
use rand::{rngs::SmallRng, SeedableRng};

/// Four blocks with dilations 1, 2, 1, 2, skip-summed into the head.
pub struct GraphWaveNet {
    embed: Linear,
    blocks: Vec<GwnetBlock>,
    head: OutputHead,
    ctx: GraphContext,
}

impl GraphWaveNet {
    /// Build for a dataset (adaptive adjacency always on, as in the
    /// original's best configuration).
    pub fn new(cfg: &BaselineConfig, spec: &DatasetSpec, graph: &SensorGraph, scaler: &Scaler) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let d = cfg.hidden;
        Self {
            embed: Linear::new(&mut rng, "gwnet.embed", spec.features, d, true),
            blocks: [1usize, 2, 1, 2]
                .iter()
                .enumerate()
                .map(|(i, &dil)| GwnetBlock::new(&mut rng, &format!("gwnet.b{i}"), d, dil))
                .collect(),
            head: OutputHead::new(&mut rng, spec, scaler, d),
            ctx: baseline_context(&mut rng, cfg, graph, true),
        }
    }
}

impl Forecaster for GraphWaveNet {
    fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let mut h = self.embed.forward(tape, x);
        let mut skip: Option<Var> = None;
        for block in &self.blocks {
            h = block.forward(tape, &h, &self.ctx);
            skip = Some(match skip {
                Some(s) => s.add(&h),
                None => h.clone(),
            });
        }
        // invariant: the model has at least one block, so `skip` was set in the loop.
        self.head.forward(tape, &skip.expect("at least one block"))
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.embed.parameters();
        for b in &self.blocks {
            v.extend(b.parameters());
        }
        v.extend(self.head.parameters());
        v.extend(self.ctx.parameters());
        v
    }

    fn name(&self) -> &str {
        "Graph WaveNet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_data::{batches_from_windows, build_windows, generate};

    #[test]
    fn gwnet_uses_growing_dilations() {
        let spec = DatasetSpec::metr_la().scaled(0.04, 0.015);
        let data = generate(&spec, 2);
        let windows = build_windows(&data, 8, 6);
        let model = GraphWaveNet::new(&BaselineConfig::default(), &spec, &data.graph, &windows.scaler);
        assert_eq!(
            model.blocks.iter().map(GwnetBlock::dilation).collect::<Vec<_>>(),
            vec![1, 2, 1, 2]
        );
        let batches = batches_from_windows(&windows.train, 2);
        let tape = Tape::new();
        let y = model.forward(&tape, &tape.constant(batches[0].0.clone()));
        assert_eq!(y.shape(), vec![2, spec.n, spec.output_len]);
    }
}
