//! `cts-baselines`: re-implementations of the paper's comparison methods
//! (§4.1.3) on the shared `cts-nn` substrate.
//!
//! * [`Dcrnn`] — diffusion-convolutional GRU encoder (Li et al. 2018)
//! * [`Stgcn`] — sandwich Cheb-GCN blocks (Yu et al. 2018)
//! * [`GraphWaveNet`] — GDCC + diffusion GCN stacks (Wu et al. 2019)
//! * [`Agcrn`] — adaptive-graph-conv GRU (Bai et al. 2020)
//! * [`LstNet`] — CNN + GRU + autoregressive highway (Lai et al. 2018)
//! * [`TpaLstm`] — temporal-pattern-attention LSTM (Shih et al. 2019)
//! * [`Mtgnn`] — graph-learning GDCC/GCN stacks (Wu et al. 2020)
//!
//! AutoSTG is reproduced in the bench harness as a restricted AutoCTS
//! configuration (micro-only search over {1D-Conv, DGCN}) — see DESIGN.md.
//!
//! The [`blocks`] module exposes the models' ST-blocks as standalone units;
//! the *macro only* ablation searches topologies over them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
mod common;

mod agcrn;
mod dcrnn;
mod gwnet;
mod lstnet;
mod mtgnn;
mod stgcn;
mod tpa_lstm;

pub use agcrn::Agcrn;
pub use common::{diffusion_gconv, BaselineConfig, OutputHead};
pub use dcrnn::Dcrnn;
pub use gwnet::GraphWaveNet;
pub use lstnet::LstNet;
pub use mtgnn::Mtgnn;
pub use stgcn::Stgcn;
pub use tpa_lstm::TpaLstm;
