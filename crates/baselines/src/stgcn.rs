//! STGCN: spatio-temporal graph convolutional network (Yu et al. 2018).

use crate::blocks::{HumanStBlock, StgcnBlock};
use crate::common::{baseline_context, BaselineConfig, OutputHead};
use cts_autograd::{Parameter, Tape, Var};
use cts_data::{DatasetSpec, Scaler};
use cts_graph::SensorGraph;
use cts_nn::{Forecaster, Linear};
use cts_ops::GraphContext;
use rand::{rngs::SmallRng, SeedableRng};

/// Two stacked "sandwich" ST-blocks (TCN → Cheb-GCN → TCN) and an output
/// head — the architecture of Figure 3.
pub struct Stgcn {
    embed: Linear,
    blocks: Vec<StgcnBlock>,
    head: OutputHead,
    ctx: GraphContext,
}

impl Stgcn {
    /// Build for a dataset.
    pub fn new(cfg: &BaselineConfig, spec: &DatasetSpec, graph: &SensorGraph, scaler: &Scaler) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let d = cfg.hidden;
        Self {
            embed: Linear::new(&mut rng, "stgcn.embed", spec.features, d, true),
            blocks: (0..2)
                .map(|i| StgcnBlock::new(&mut rng, &format!("stgcn.b{i}"), d))
                .collect(),
            head: OutputHead::new(&mut rng, spec, scaler, d),
            ctx: baseline_context(&mut rng, cfg, graph, false),
        }
    }
}

impl Forecaster for Stgcn {
    fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let mut h = self.embed.forward(tape, x);
        for block in &self.blocks {
            h = block.forward(tape, &h, &self.ctx);
        }
        self.head.forward(tape, &h)
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.embed.parameters();
        for b in &self.blocks {
            v.extend(b.parameters());
        }
        v.extend(self.head.parameters());
        v.extend(self.ctx.parameters());
        v
    }

    fn name(&self) -> &str {
        "STGCN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_data::{batches_from_windows, build_windows, generate};

    #[test]
    fn stgcn_forward_and_gradients() {
        let spec = DatasetSpec::metr_la().scaled(0.04, 0.015);
        let data = generate(&spec, 0);
        let windows = build_windows(&data, 8, 8);
        let model = Stgcn::new(&BaselineConfig::default(), &spec, &data.graph, &windows.scaler);
        let batches = batches_from_windows(&windows.train, 2);
        let tape = Tape::new();
        let x = tape.constant(batches[0].0.clone());
        let y = model.forward(&tape, &x);
        assert_eq!(y.shape()[2], spec.output_len);
        let loss = cts_nn::masked_mae_loss(&tape, &y, &batches[0].1, Some(0.0));
        tape.backward(&loss);
        assert!(model.parameters().iter().any(|p| p.grad().norm() > 0.0));
    }
}
