//! LSTNet (Lai et al. 2018): CNN + GRU + autoregressive highway.
//!
//! Treats the `N` series as channels of one multivariate sequence — no
//! explicit spatial modelling, which is exactly why the paper's Table 8
//! expects it to lose to MTGNN/AutoCTS. The recurrent-skip component of
//! the original is folded into the highway (noted in DESIGN.md).

use crate::common::{BaselineConfig, OutputScale};
use cts_autograd::{Parameter, Tape, Var};
use cts_data::{DatasetSpec, Scaler};
use cts_graph::SensorGraph;
use cts_nn::{Forecaster, Gru, Linear, TemporalConvLayer};
use rand::{rngs::SmallRng, SeedableRng};

/// LSTNet with a `hw`-step autoregressive highway.
pub struct LstNet {
    conv: TemporalConvLayer,
    gru: Gru,
    out: Linear,
    highway: Linear,
    scale: OutputScale,
    n: usize,
    q: usize,
    hw: usize,
    hidden: usize,
}

impl LstNet {
    /// Build for a dataset.
    pub fn new(cfg: &BaselineConfig, spec: &DatasetSpec, graph: &SensorGraph, scaler: &Scaler) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let n = graph.n();
        let c = cfg.hidden;
        let q = crate::common::q_out(spec);
        let hw = spec.input_len.min(8);
        Self {
            conv: TemporalConvLayer::new(&mut rng, "lstnet.conv", 4, n, c, 1, true),
            gru: Gru::new(&mut rng, "lstnet.gru", c, c),
            out: Linear::new(&mut rng, "lstnet.out", c, n * q, true),
            highway: Linear::new(&mut rng, "lstnet.hw", hw, q, true),
            scale: OutputScale::new(scaler),
            n,
            q,
            hw,
            hidden: c,
        }
    }

    /// Extract `[B, P, N]` (feature 0, nodes as channels).
    fn series(&self, x: &Var) -> Var {
        let s = x.shape(); // [B,N,P,F]
        x.slice(3, 0, 1)
            .reshape(&[s[0], s[1], s[2]])
            .permute(&[0, 2, 1])
    }
}

impl Forecaster for LstNet {
    fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let series = self.series(x); // [B,P,N]
        let s = series.shape();
        let (b, p) = (s[0], s[1]);
        // CNN over time with nodes as input channels
        let conv_in = series.reshape(&[b, 1, p, self.n]);
        let conv_out = self
            .conv
            .forward(tape, &conv_in)
            .relu()
            .reshape(&[b, p, self.hidden]);
        // GRU over the convolved sequence
        let h_last = self.gru.forward_last(tape, &conv_out); // [B,C]
        let nn_out = self.out.forward(tape, &h_last).reshape(&[b, self.n, self.q]);
        // autoregressive highway on the raw last hw steps
        let recent = series
            .slice(1, p - self.hw, p) // [B,hw,N]
            .permute(&[0, 2, 1]); // [B,N,hw]
        let ar = self.highway.forward(tape, &recent); // [B,N,Q]
        self.scale.apply(&nn_out).add(&ar)
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.conv.parameters();
        v.extend(self.gru.parameters());
        v.extend(self.out.parameters());
        v.extend(self.highway.parameters());
        v
    }

    fn name(&self) -> &str {
        "LSTNet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_data::{batches_from_windows, build_windows, generate};

    #[test]
    fn lstnet_single_step_shape_and_training_signal() {
        let spec = DatasetSpec::electricity(3).scaled(0.03, 0.02);
        let data = generate(&spec, 0);
        let windows = build_windows(&data, 24, 6);
        let model = LstNet::new(&BaselineConfig::default(), &spec, &data.graph, &windows.scaler);
        let batches = batches_from_windows(&windows.train, 2);
        let tape = Tape::new();
        let y = model.forward(&tape, &tape.constant(batches[0].0.clone()));
        assert_eq!(y.shape(), vec![2, spec.n, 1]);
        let loss = cts_nn::mse_loss(&tape, &y, &batches[0].1);
        tape.backward(&loss);
        let live = model.parameters().iter().filter(|p| p.grad().norm() > 0.0).count();
        assert!(live >= 4, "only {live} parameters got gradients");
    }

    #[test]
    fn highway_sees_recent_history() {
        // the AR path alone makes outputs react to the last input step
        let spec = DatasetSpec::electricity(3).scaled(0.03, 0.02);
        let data = generate(&spec, 1);
        let windows = build_windows(&data, 24, 6);
        let model = LstNet::new(&BaselineConfig::default(), &spec, &data.graph, &windows.scaler);
        let batches = batches_from_windows(&windows.train, 1);
        let tape = Tape::new();
        let mut x = batches[0].0.clone();
        let y0 = model.forward(&tape, &tape.constant(x.clone())).value();
        let p = spec.input_len;
        *x.at_mut(&[0, 0, p - 1, 0]) += 10.0;
        let y1 = model.forward(&tape, &tape.constant(x)).value();
        assert_ne!(y0.at(&[0, 0, 0]), y1.at(&[0, 0, 0]));
    }
}
