//! AGCRN: adaptive graph convolutional recurrent network (Bai et al.
//! 2020) — a GRU whose gate transforms are graph convolutions over a
//! *learned* adjacency (no predefined graph needed).

use crate::common::{BaselineConfig, OutputHead};
use cts_autograd::{Parameter, Tape, Var};
use cts_data::{DatasetSpec, Scaler};
use cts_graph::SensorGraph;
use cts_nn::{Forecaster, Linear};
use cts_ops::node_mix;
use cts_tensor::{init, Tensor};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// One adaptive graph convolution: `W₀x + W₁(Ax)` with `A = softmax(relu(E₁E₂))`.
struct AdaptiveGconv {
    w0: Linear,
    w1: Linear,
}

impl AdaptiveGconv {
    fn new(rng: &mut impl Rng, name: &str, d_in: usize, d_out: usize) -> Self {
        Self {
            w0: Linear::new(rng, &format!("{name}.w0"), d_in, d_out, true),
            w1: Linear::new(rng, &format!("{name}.w1"), d_in, d_out, false),
        }
    }

    /// `x: [B,N,D]`, `adj: [N,N]`.
    fn forward(&self, tape: &Tape, x: &Var, adj: &Var) -> Var {
        let s = x.shape();
        let x4 = x.reshape(&[s[0], s[1], 1, s[2]]);
        let mixed = node_mix(&x4, adj);
        let out = self.w0.forward(tape, &x4).add(&self.w1.forward(tape, &mixed));
        // invariant: the projection output is at least rank 1.
        let d_out = *out.shape().last().expect("non-empty");
        out.reshape(&[s[0], s[1], d_out])
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.w0.parameters();
        v.extend(self.w1.parameters());
        v
    }
}

/// AGCRN: adaptive-GCN GRU over the window plus the shared output head.
pub struct Agcrn {
    embed: Linear,
    e1: Parameter,
    e2: Parameter,
    zr: AdaptiveGconv, // [x;h] -> 2D
    cand: AdaptiveGconv,
    head: OutputHead,
    d: usize,
}

impl Agcrn {
    /// Build for a dataset.
    pub fn new(cfg: &BaselineConfig, spec: &DatasetSpec, graph: &SensorGraph, scaler: &Scaler) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let d = cfg.hidden;
        let n = graph.n();
        Self {
            embed: Linear::new(&mut rng, "agcrn.embed", spec.features, d, true),
            e1: Parameter::new("agcrn.e1", init::normal(&mut rng, [n, cfg.adaptive_emb], 0.1)),
            e2: Parameter::new("agcrn.e2", init::normal(&mut rng, [cfg.adaptive_emb, n], 0.1)),
            zr: AdaptiveGconv::new(&mut rng, "agcrn.zr", 2 * d, 2 * d),
            cand: AdaptiveGconv::new(&mut rng, "agcrn.cand", 2 * d, d),
            head: OutputHead::new(&mut rng, spec, scaler, d),
            d,
        }
    }
}

impl Forecaster for Agcrn {
    fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let z = self.embed.forward(tape, x); // [B,N,T,D]
        let s = z.shape();
        let (b, n, t) = (s[0], s[1], s[2]);
        let adj = tape
            .param(&self.e1)
            .matmul(&tape.param(&self.e2))
            .relu()
            .softmax_last();
        let mut h = tape.constant(Tensor::zeros([b, n, self.d]));
        let mut outs = Vec::with_capacity(t);
        for ti in 0..t {
            let x_t = z.slice(2, ti, ti + 1).reshape(&[b, n, self.d]);
            let xh = Var::concat(&[x_t.clone(), h.clone()], 2);
            let zr = self.zr.forward(tape, &xh, &adj).sigmoid();
            let zg = zr.slice(2, 0, self.d);
            let rg = zr.slice(2, self.d, 2 * self.d);
            let xrh = Var::concat(&[x_t, rg.mul(&h)], 2);
            let cand = self.cand.forward(tape, &xrh, &adj).tanh();
            let one_minus_z = zg.neg().add_scalar(1.0);
            h = zg.mul(&h).add(&one_minus_z.mul(&cand));
            outs.push(h.reshape(&[b, n, 1, self.d]));
        }
        let seq = Var::concat(&outs, 2);
        self.head.forward(tape, &seq)
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.embed.parameters();
        v.push(self.e1.clone());
        v.push(self.e2.clone());
        v.extend(self.zr.parameters());
        v.extend(self.cand.parameters());
        v.extend(self.head.parameters());
        v
    }

    fn name(&self) -> &str {
        "AGCRN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_data::{batches_from_windows, build_windows, generate};

    #[test]
    fn agcrn_runs_without_predefined_graph() {
        // AGCRN learns its graph, so feed it a disconnected one.
        let spec = DatasetSpec::pems04().scaled(0.04, 0.02);
        let data = generate(&spec, 3);
        let windows = build_windows(&data, 8, 6);
        let graph = SensorGraph::disconnected(spec.n);
        let model = Agcrn::new(&BaselineConfig::default(), &spec, &graph, &windows.scaler);
        let batches = batches_from_windows(&windows.train, 2);
        let tape = Tape::new();
        let y = model.forward(&tape, &tape.constant(batches[0].0.clone()));
        assert_eq!(y.shape(), vec![2, spec.n, spec.output_len]);
        let loss = cts_nn::masked_mae_loss(&tape, &y, &batches[0].1, Some(0.0));
        tape.backward(&loss);
        assert!(model.e1.grad().norm() > 0.0, "adaptive graph got no grads");
    }
}
