//! MTGNN (Wu et al. 2020): GDCC temporal convolutions with learned-graph
//! mix-hop propagation — the strongest human baseline in Tables 5/6/8.

use crate::blocks::{HumanStBlock, MtgnnBlock};
use crate::common::{BaselineConfig, OutputHead};
use cts_autograd::{Parameter, Tape, Var};
use cts_data::{DatasetSpec, Scaler};
use cts_graph::SensorGraph;
use cts_nn::{Forecaster, Linear};
use cts_ops::GraphContext;
use rand::{rngs::SmallRng, SeedableRng};

/// Three MTGNN blocks with skip connections into the shared head.
pub struct Mtgnn {
    embed: Linear,
    blocks: Vec<MtgnnBlock>,
    head: OutputHead,
    ctx: GraphContext,
}

impl Mtgnn {
    /// Build for a dataset (graph learning is internal to each block, so
    /// the predefined adjacency is optional — matching the original).
    pub fn new(cfg: &BaselineConfig, spec: &DatasetSpec, graph: &SensorGraph, scaler: &Scaler) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let d = cfg.hidden;
        Self {
            embed: Linear::new(&mut rng, "mtgnn.embed", spec.features, d, true),
            blocks: (0..3)
                .map(|i| MtgnnBlock::new(&mut rng, &format!("mtgnn.b{i}"), d, graph.n(), cfg.adaptive_emb))
                .collect(),
            head: OutputHead::new(&mut rng, spec, scaler, d),
            ctx: GraphContext::from_graph(graph, cfg.k),
        }
    }
}

impl Forecaster for Mtgnn {
    fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let mut h = self.embed.forward(tape, x);
        let mut skip: Option<Var> = None;
        for block in &self.blocks {
            h = block.forward(tape, &h, &self.ctx);
            skip = Some(match skip {
                Some(s) => s.add(&h),
                None => h.clone(),
            });
        }
        // invariant: the model has at least one block, so `skip` was set in the loop.
        self.head.forward(tape, &skip.expect("blocks non-empty"))
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.embed.parameters();
        for b in &self.blocks {
            v.extend(b.parameters());
        }
        v.extend(self.head.parameters());
        v
    }

    fn name(&self) -> &str {
        "MTGNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_data::{batches_from_windows, build_windows, generate};

    #[test]
    fn mtgnn_multistep_and_singlestep() {
        // multi-step traffic
        let spec = DatasetSpec::pems03().scaled(0.03, 0.02);
        let data = generate(&spec, 4);
        let windows = build_windows(&data, 8, 6);
        let model = Mtgnn::new(&BaselineConfig::default(), &spec, &data.graph, &windows.scaler);
        let batches = batches_from_windows(&windows.train, 2);
        let tape = Tape::new();
        let y = model.forward(&tape, &tape.constant(batches[0].0.clone()));
        assert_eq!(y.shape(), vec![2, spec.n, spec.output_len]);

        // single-step energy (no predefined graph)
        let spec = DatasetSpec::solar_energy(3).scaled(0.05, 0.005);
        let data = generate(&spec, 5);
        let windows = build_windows(&data, 16, 4);
        let model = Mtgnn::new(&BaselineConfig::default(), &spec, &data.graph, &windows.scaler);
        let batches = batches_from_windows(&windows.train, 1);
        let tape = Tape::new();
        let y = model.forward(&tape, &tape.constant(batches[0].0.clone()));
        assert_eq!(y.shape(), vec![1, spec.n, 1]);
    }
}
