//! Human-designed ST-blocks as reusable `[B,N,T,D] → [B,N,T,D]` units.
//!
//! These are the atomic search units of the *macro only* ablation
//! (§4.2.3): the ST-blocks of STGCN, DCRNN, Graph WaveNet, and MTGNN.

use crate::common::diffusion_gconv;
use cts_autograd::{Parameter, Tape, Var};
use cts_nn::{GatedTemporalConv, LayerNorm, Linear};
use cts_ops::{node_mix, GraphContext};
use rand::Rng;

/// A human-designed ST-block (shape-preserving).
pub trait HumanStBlock {
    /// Apply the block.
    fn forward(&self, tape: &Tape, x: &Var, ctx: &GraphContext) -> Var;
    /// Trainable weights.
    fn parameters(&self) -> Vec<Parameter>;
    /// Source model name.
    fn name(&self) -> &'static str;
}

/// STGCN's "sandwich": gated temporal conv → Chebyshev GCN → gated
/// temporal conv, with layer normalisation (Yu et al. 2018, Figure 3).
pub struct StgcnBlock {
    tcn1: GatedTemporalConv,
    cheb: Vec<Linear>,
    tcn2: GatedTemporalConv,
    norm: LayerNorm,
}

impl StgcnBlock {
    /// Build with `d` channels.
    pub fn new(rng: &mut impl Rng, name: &str, d: usize) -> Self {
        Self {
            tcn1: GatedTemporalConv::new(rng, &format!("{name}.tcn1"), 2, d, d, 1),
            cheb: (0..3)
                .map(|k| Linear::new(rng, &format!("{name}.cheb{k}"), d, d, k == 0))
                .collect(),
            tcn2: GatedTemporalConv::new(rng, &format!("{name}.tcn2"), 2, d, d, 1),
            norm: LayerNorm::new(&format!("{name}.norm"), d),
        }
    }
}

impl HumanStBlock for StgcnBlock {
    fn forward(&self, tape: &Tape, x: &Var, ctx: &GraphContext) -> Var {
        let t1 = self.tcn1.forward(tape, x);
        let basis = ctx.chebyshev(tape);
        let mut gc: Option<Var> = None;
        for (t_k, w_k) in basis.iter().zip(self.cheb.iter()) {
            let term = w_k.forward(tape, &node_mix(&t1, t_k));
            gc = Some(match gc {
                Some(a) => a.add(&term),
                None => term,
            });
        }
        // invariant: the Chebyshev basis loop runs at least once, so `gc` is Some.
        let t2 = self.tcn2.forward(tape, &gc.expect("basis non-empty").relu());
        self.norm.forward(tape, &t2)
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.tcn1.parameters();
        v.extend(self.cheb.iter().flat_map(Linear::parameters));
        v.extend(self.tcn2.parameters());
        v.extend(self.norm.parameters());
        v
    }

    fn name(&self) -> &'static str {
        "STGCN-block"
    }
}

/// Graph WaveNet's block: GDCC then diffusion GCN with a residual
/// (Wu et al. 2019).
pub struct GwnetBlock {
    gdcc: GatedTemporalConv,
    self_w: Linear,
    fwd: Vec<Linear>,
    bwd: Vec<Linear>,
    norm: LayerNorm,
    dilation_marker: usize,
}

impl GwnetBlock {
    /// Build with `d` channels and the given GDCC dilation.
    pub fn new(rng: &mut impl Rng, name: &str, d: usize, dilation: usize) -> Self {
        Self {
            gdcc: GatedTemporalConv::new(rng, &format!("{name}.gdcc"), 2, d, d, dilation),
            self_w: Linear::new(rng, &format!("{name}.self"), d, d, true),
            fwd: (0..2)
                .map(|k| Linear::new(rng, &format!("{name}.fwd{k}"), d, d, false))
                .collect(),
            bwd: (0..2)
                .map(|k| Linear::new(rng, &format!("{name}.bwd{k}"), d, d, false))
                .collect(),
            norm: LayerNorm::new(&format!("{name}.norm"), d),
            dilation_marker: dilation,
        }
    }

    /// The GDCC dilation this block was built with.
    pub fn dilation(&self) -> usize {
        self.dilation_marker
    }
}

impl HumanStBlock for GwnetBlock {
    fn forward(&self, tape: &Tape, x: &Var, ctx: &GraphContext) -> Var {
        let t = self.gdcc.forward(tape, x);
        // diffusion GCN applied across the whole [B,N,T,D] tensor
        let mut acc = self.self_w.forward(tape, &t);
        for (p, w) in ctx.diffusion_fwd(tape).iter().zip(self.fwd.iter()) {
            acc = acc.add(&w.forward(tape, &node_mix(&t, p)));
        }
        for (p, w) in ctx.diffusion_bwd(tape).iter().zip(self.bwd.iter()) {
            acc = acc.add(&w.forward(tape, &node_mix(&t, p)));
        }
        if let Some(adp) = ctx.adaptive_support(tape) {
            acc = acc.add(&self.fwd[0].forward(tape, &node_mix(&t, &adp)));
        }
        self.norm.forward(tape, &acc.add(x))
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.gdcc.parameters();
        v.extend(self.self_w.parameters());
        v.extend(self.fwd.iter().flat_map(Linear::parameters));
        v.extend(self.bwd.iter().flat_map(Linear::parameters));
        v.extend(self.norm.parameters());
        v
    }

    fn name(&self) -> &'static str {
        "GWNet-block"
    }
}

/// MTGNN's block: GDCC with a *learned* (adaptive) graph propagation
/// (Wu et al. 2020). The block owns its node embeddings so it works even
/// without a predefined adjacency.
pub struct MtgnnBlock {
    gdcc: GatedTemporalConv,
    e1: Parameter,
    e2: Parameter,
    hop_w: Vec<Linear>,
    norm: LayerNorm,
}

impl MtgnnBlock {
    /// Build with `d` channels for an `n`-node graph.
    pub fn new(rng: &mut impl Rng, name: &str, d: usize, n: usize, emb: usize) -> Self {
        Self {
            gdcc: GatedTemporalConv::new(rng, &format!("{name}.gdcc"), 2, d, d, 1),
            e1: Parameter::new(format!("{name}.e1"), cts_tensor::init::normal(rng, [n, emb], 0.1)),
            e2: Parameter::new(format!("{name}.e2"), cts_tensor::init::normal(rng, [emb, n], 0.1)),
            hop_w: (0..2)
                .map(|k| Linear::new(rng, &format!("{name}.hop{k}"), d, d, k == 0))
                .collect(),
            norm: LayerNorm::new(&format!("{name}.norm"), d),
        }
    }
}

impl HumanStBlock for MtgnnBlock {
    fn forward(&self, tape: &Tape, x: &Var, _ctx: &GraphContext) -> Var {
        let t = self.gdcc.forward(tape, x);
        let adj = tape
            .param(&self.e1)
            .matmul(&tape.param(&self.e2))
            .relu()
            .softmax_last();
        // mix-hop propagation: h_{k+1} = A h_k, summed with per-hop weights
        let mut acc = self.hop_w[0].forward(tape, &t);
        let mut h = t.clone();
        for w in &self.hop_w[1..] {
            h = node_mix(&h, &adj);
            acc = acc.add(&w.forward(tape, &h));
        }
        self.norm.forward(tape, &acc.add(x))
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.gdcc.parameters();
        v.push(self.e1.clone());
        v.push(self.e2.clone());
        v.extend(self.hop_w.iter().flat_map(Linear::parameters));
        v.extend(self.norm.parameters());
        v
    }

    fn name(&self) -> &'static str {
        "MTGNN-block"
    }
}

/// DCRNN's block: a diffusion-convolutional GRU sweep over the window,
/// returning the hidden state at every step (Li et al. 2018).
pub struct DcrnnBlock {
    // gate graph convs operate on [x; h] of width 2d
    z_self: Linear,
    z_fwd: Vec<Linear>,
    z_bwd: Vec<Linear>,
    r_self: Linear,
    r_fwd: Vec<Linear>,
    r_bwd: Vec<Linear>,
    c_self: Linear,
    c_fwd: Vec<Linear>,
    c_bwd: Vec<Linear>,
    d: usize,
}

impl DcrnnBlock {
    /// Build with `d` channels.
    pub fn new(rng: &mut impl Rng, name: &str, d: usize) -> Self {
        let mk_set = |rng: &mut dyn FnMut(&str, bool) -> Linear, tag: &str| -> (Linear, Vec<Linear>, Vec<Linear>) {
            (
                rng(&format!("{name}.{tag}.self"), true),
                (0..2).map(|k| rng(&format!("{name}.{tag}.fwd{k}"), false)).collect(),
                (0..2).map(|k| rng(&format!("{name}.{tag}.bwd{k}"), false)).collect(),
            )
        };
        let mut build = |n: &str, bias: bool| Linear::new(rng, n, 2 * d, d, bias);
        let (z_self, z_fwd, z_bwd) = mk_set(&mut build, "z");
        let (r_self, r_fwd, r_bwd) = mk_set(&mut build, "r");
        let (c_self, c_fwd, c_bwd) = mk_set(&mut build, "c");
        Self {
            z_self,
            z_fwd,
            z_bwd,
            r_self,
            r_fwd,
            r_bwd,
            c_self,
            c_fwd,
            c_bwd,
            d,
        }
    }

    /// One DCGRU step on `[B,N,D]` inputs.
    fn step(&self, tape: &Tape, x_t: &Var, h: &Var, ctx: &GraphContext) -> Var {
        let xh = Var::concat(&[x_t.clone(), h.clone()], 2); // [B,N,2D]
        let z = diffusion_gconv(tape, &xh, ctx, &self.z_self, &self.z_fwd, &self.z_bwd).sigmoid();
        let r = diffusion_gconv(tape, &xh, ctx, &self.r_self, &self.r_fwd, &self.r_bwd).sigmoid();
        let xrh = Var::concat(&[x_t.clone(), r.mul(h)], 2);
        let c = diffusion_gconv(tape, &xrh, ctx, &self.c_self, &self.c_fwd, &self.c_bwd).tanh();
        let one_minus_z = z.neg().add_scalar(1.0);
        z.mul(h).add(&one_minus_z.mul(&c))
    }
}

impl HumanStBlock for DcrnnBlock {
    fn forward(&self, tape: &Tape, x: &Var, ctx: &GraphContext) -> Var {
        let s = x.shape(); // [B,N,T,D]
        let (b, n, t) = (s[0], s[1], s[2]);
        let mut h = tape.constant(cts_tensor::Tensor::zeros([b, n, self.d]));
        let mut outs = Vec::with_capacity(t);
        for ti in 0..t {
            let x_t = x.slice(2, ti, ti + 1).reshape(&[b, n, self.d]);
            h = self.step(tape, &x_t, &h, ctx);
            outs.push(h.reshape(&[b, n, 1, self.d]));
        }
        Var::concat(&outs, 2)
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut v = Vec::new();
        for lin in [&self.z_self, &self.r_self, &self.c_self] {
            v.extend(lin.parameters());
        }
        for set in [
            &self.z_fwd, &self.z_bwd, &self.r_fwd, &self.r_bwd, &self.c_fwd, &self.c_bwd,
        ] {
            v.extend(set.iter().flat_map(Linear::parameters));
        }
        v
    }

    fn name(&self) -> &'static str {
        "DCRNN-block"
    }
}

/// The four human blocks of the *macro only* ablation (§4.2.3).
pub fn macro_only_blocks(
    rng: &mut impl Rng,
    d: usize,
    n: usize,
    emb: usize,
) -> Vec<Box<dyn HumanStBlock>> {
    vec![
        Box::new(StgcnBlock::new(rng, "stgcn", d)),
        Box::new(DcrnnBlock::new(rng, "dcrnn", d)),
        Box::new(GwnetBlock::new(rng, "gwnet", d, 2)),
        Box::new(MtgnnBlock::new(rng, "mtgnn", d, n, emb)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_graph::{random_geometric_graph, GraphGenConfig};
    use cts_tensor::init;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn all_human_blocks_preserve_shape_and_train() {
        let mut rng = SmallRng::seed_from_u64(0);
        let g = random_geometric_graph(&mut rng, &GraphGenConfig { n: 4, ..Default::default() });
        let ctx = GraphContext::from_graph(&g, 2);
        for block in macro_only_blocks(&mut rng, 6, 4, 4) {
            let tape = Tape::new();
            let x = tape.constant(init::uniform(&mut rng, [2, 4, 5, 6], -1.0, 1.0));
            let y = block.forward(&tape, &x, &ctx);
            assert_eq!(y.shape(), vec![2, 4, 5, 6], "{} changed shape", block.name());
            let loss = y.square().sum_all();
            tape.backward(&loss);
            let live = block
                .parameters()
                .iter()
                .filter(|p| p.grad().norm() > 0.0)
                .count();
            assert!(live > 0, "{} got no gradients", block.name());
        }
    }

    #[test]
    fn dcrnn_block_is_causal() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = random_geometric_graph(&mut rng, &GraphGenConfig { n: 3, ..Default::default() });
        let ctx = GraphContext::from_graph(&g, 2);
        let block = DcrnnBlock::new(&mut rng, "d", 4);
        let tape = Tape::new();
        let mut x = init::uniform(&mut rng, [1, 3, 5, 4], -1.0, 1.0);
        let y0 = block.forward(&tape, &tape.constant(x.clone()), &ctx).value();
        // change the final step: earlier hiddens must not move
        for n in 0..3 {
            for d in 0..4 {
                *x.at_mut(&[0, n, 4, d]) += 1.0;
            }
        }
        let y1 = block.forward(&tape, &tape.constant(x), &ctx).value();
        for t in 0..4 {
            assert_eq!(y0.at(&[0, 0, t, 0]), y1.at(&[0, 0, t, 0]), "leak at t={t}");
        }
    }

    #[test]
    fn mtgnn_block_works_without_predefined_graph() {
        let mut rng = SmallRng::seed_from_u64(2);
        let ctx = GraphContext::from_graph(&cts_graph::SensorGraph::disconnected(4), 2);
        let block = MtgnnBlock::new(&mut rng, "m", 4, 4, 3);
        let tape = Tape::new();
        let x = tape.constant(init::uniform(&mut rng, [1, 4, 3, 4], -1.0, 1.0));
        let y = block.forward(&tape, &x, &ctx);
        assert_eq!(y.shape(), vec![1, 4, 3, 4]);
    }
}
