//! TPA-LSTM (Shih et al. 2019): an LSTM over the multivariate series with
//! temporal pattern attention over its hidden-state history.

use crate::common::{BaselineConfig, OutputScale};
use cts_autograd::{Parameter, Tape, Var};
use cts_data::{DatasetSpec, Scaler};
use cts_graph::SensorGraph;
use cts_nn::{Forecaster, Linear, Lstm};
use rand::{rngs::SmallRng, SeedableRng};

/// TPA-LSTM with bilinear attention scores and a sigmoid gating of
/// attended hidden rows (as in the original).
pub struct TpaLstm {
    embed: Linear, // N -> C per step
    lstm: Lstm,
    attn_w: Linear,    // C -> C (bilinear score)
    combine_h: Linear, // C -> C
    combine_c: Linear, // C -> C
    out: Linear,       // C -> N*Q
    scale: OutputScale,
    n: usize,
    q: usize,
    hidden: usize,
}

impl TpaLstm {
    /// Build for a dataset.
    pub fn new(cfg: &BaselineConfig, spec: &DatasetSpec, graph: &SensorGraph, scaler: &Scaler) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let n = graph.n();
        let c = cfg.hidden;
        let q = crate::common::q_out(spec);
        Self {
            embed: Linear::new(&mut rng, "tpa.embed", n, c, true),
            lstm: Lstm::new(&mut rng, "tpa.lstm", c, c),
            attn_w: Linear::new(&mut rng, "tpa.attn", c, c, false),
            combine_h: Linear::new(&mut rng, "tpa.ch", c, c, false),
            combine_c: Linear::new(&mut rng, "tpa.cc", c, c, false),
            out: Linear::new(&mut rng, "tpa.out", c, n * q, true),
            scale: OutputScale::new(scaler),
            n,
            q,
            hidden: c,
        }
    }
}

impl Forecaster for TpaLstm {
    fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let s = x.shape(); // [B,N,P,F]
        let (b, p) = (s[0], s[2]);
        let series = x
            .slice(3, 0, 1)
            .reshape(&[b, self.n, p])
            .permute(&[0, 2, 1]); // [B,P,N]
        let z = self.embed.forward(tape, &series); // [B,P,C]
        let hs = self.lstm.forward_sequence(tape, &z); // [B,P,C]
        let h_last = hs.slice(1, p - 1, p); // [B,1,C]
        // bilinear attention: score_t = H_t · (W h_last)
        let key = self.attn_w.forward(tape, &h_last).permute(&[0, 2, 1]); // [B,C,1]
        let scores = hs.matmul(&key); // [B,P,1]
        let weights = scores.sigmoid(); // original TPA uses sigmoid gates
        let context = hs.permute(&[0, 2, 1]).matmul(&weights); // [B,C,1]
        let context = context.reshape(&[b, self.hidden]);
        let h_last_flat = h_last.reshape(&[b, self.hidden]);
        let combined = self
            .combine_c
            .forward(tape, &context)
            .add(&self.combine_h.forward(tape, &h_last_flat));
        let out = self.out.forward(tape, &combined).reshape(&[b, self.n, self.q]);
        self.scale.apply(&out)
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.embed.parameters();
        v.extend(self.lstm.parameters());
        v.extend(self.attn_w.parameters());
        v.extend(self.combine_h.parameters());
        v.extend(self.combine_c.parameters());
        v.extend(self.out.parameters());
        v
    }

    fn name(&self) -> &str {
        "TPA-LSTM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_data::{batches_from_windows, build_windows, generate};

    #[test]
    fn tpa_forward_shape_and_grads() {
        let spec = DatasetSpec::solar_energy(3).scaled(0.05, 0.005);
        let data = generate(&spec, 0);
        let windows = build_windows(&data, 32, 4);
        let model = TpaLstm::new(&BaselineConfig::default(), &spec, &data.graph, &windows.scaler);
        let batches = batches_from_windows(&windows.train, 2);
        let tape = Tape::new();
        let y = model.forward(&tape, &tape.constant(batches[0].0.clone()));
        assert_eq!(y.shape(), vec![2, spec.n, 1]);
        let loss = cts_nn::mse_loss(&tape, &y, &batches[0].1);
        tape.backward(&loss);
        assert!(model.attn_w.parameters()[0].grad().norm() > 0.0, "attention unused");
    }
}
