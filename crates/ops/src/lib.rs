//! `cts-ops`: the spatio-temporal operator library of Table 1.
//!
//! Every operator maps `[B, N, T, D] → [B, N, T, D]` so that the micro-DAG
//! can mix them freely. T-operators (1D-Conv, GDCC, LSTM, GRU, Transformer,
//! Informer) act along the time axis per series; S-operators (Chebyshev GCN,
//! Diffusion GCN, Transformer, Informer) act across series per timestamp.
//!
//! [`compact_set`] is the paper's judiciously selected operator set
//! {GDCC, INF-T, DGCN, INF-S, zero, identity} (§3.2.3); [`full_set`] is the
//! unpruned Table 1 set used by the *w/o design principles* ablation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod attention_ops;
mod basic;
mod context;
mod cost;
mod gcn_ops;
mod kinds;
mod meta;
mod registry;
mod rnn_ops;
mod taxonomy;

pub use attention_ops::{InformerSOp, InformerTOp, TransformerSOp, TransformerTOp};
pub use basic::{Conv1dOp, GdccOp, IdentityOp, ZeroOp};
pub use context::{node_mix, node_mix_eval, GraphContext};
pub use cost::{arena_bytes, informer_u, CostCtx, OpCost, Trace, BYTES_PER_ELEM};
pub use gcn_ops::{ChebGcnOp, DgcnOp};
pub use kinds::{OpFamily, OpKind};
pub use meta::{ShapeCtx, ShapeIssue};
pub use registry::{build_operator, compact_set, full_set, StOperator};
pub use rnn_ops::{GruOp, LstmOp};
pub use taxonomy::{operator_table, st_block_taxonomy, OperatorRow, TaxonomyCell};
