//! Operator kinds and their family taxonomy (§3.2.3, Figure 6, Table 2).

use std::fmt;

/// The family an operator belongs to — the unit of the paper's first
/// selection principle ("cover different perspectives").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpFamily {
    /// Temporal convolutions (efficient, local receptive field).
    TemporalCnn,
    /// Temporal recurrence (inefficient, weak long-term modelling —
    /// excluded from the compact set).
    TemporalRnn,
    /// Temporal attention (strong long-term modelling).
    TemporalAttention,
    /// Spectral/diffusion graph convolution (needs an adjacency matrix).
    SpatialGcn,
    /// Spatial attention (adjacency-free, time-varying correlations).
    SpatialAttention,
    /// Non-parametric plumbing (zero / identity).
    NonParametric,
}

/// Every operator the search spaces can draw from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Output all zeros (prunes an edge).
    Zero,
    /// Pass-through (residual edge).
    Identity,
    /// Plain 1D temporal convolution (Eq. 8).
    Conv1d,
    /// Gated dilated causal convolution (Eq. 9).
    Gdcc,
    /// LSTM over time (Eq. 10).
    Lstm,
    /// GRU over time (Eq. 11).
    Gru,
    /// Full temporal self-attention (Eq. 12).
    TransformerT,
    /// ProbSparse temporal self-attention (Eq. 13) — INF-T.
    InformerT,
    /// Chebyshev graph convolution (Eq. 14).
    ChebGcn,
    /// Diffusion graph convolution (Eq. 15) — DGCN.
    Dgcn,
    /// Full spatial self-attention (Eq. 16).
    TransformerS,
    /// ProbSparse spatial self-attention (Eq. 17) — INF-S.
    InformerS,
}

impl OpKind {
    /// The family this operator belongs to.
    pub fn family(&self) -> OpFamily {
        match self {
            OpKind::Zero | OpKind::Identity => OpFamily::NonParametric,
            OpKind::Conv1d | OpKind::Gdcc => OpFamily::TemporalCnn,
            OpKind::Lstm | OpKind::Gru => OpFamily::TemporalRnn,
            OpKind::TransformerT | OpKind::InformerT => OpFamily::TemporalAttention,
            OpKind::ChebGcn | OpKind::Dgcn => OpFamily::SpatialGcn,
            OpKind::TransformerS | OpKind::InformerS => OpFamily::SpatialAttention,
        }
    }

    /// True for operators with trainable weights.
    pub fn is_parametric(&self) -> bool {
        self.family() != OpFamily::NonParametric
    }

    /// True for S-operators (spatial correlation modelling).
    pub fn is_spatial(&self) -> bool {
        matches!(
            self.family(),
            OpFamily::SpatialGcn | OpFamily::SpatialAttention
        )
    }

    /// True for T-operators (temporal dependency modelling).
    pub fn is_temporal(&self) -> bool {
        matches!(
            self.family(),
            OpFamily::TemporalCnn | OpFamily::TemporalRnn | OpFamily::TemporalAttention
        )
    }

    /// Short label used in genotype printouts (Figure 8 style).
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::Zero => "zero",
            OpKind::Identity => "identity",
            OpKind::Conv1d => "conv1d",
            OpKind::Gdcc => "gdcc",
            OpKind::Lstm => "lstm",
            OpKind::Gru => "gru",
            OpKind::TransformerT => "trans-t",
            OpKind::InformerT => "inf-t",
            OpKind::ChebGcn => "cheb-gcn",
            OpKind::Dgcn => "dgcn",
            OpKind::TransformerS => "trans-s",
            OpKind::InformerS => "inf-s",
        }
    }

    /// Parse a label back into a kind (genotype deserialisation).
    pub fn from_label(label: &str) -> Option<Self> {
        Some(match label {
            "zero" => OpKind::Zero,
            "identity" => OpKind::Identity,
            "conv1d" => OpKind::Conv1d,
            "gdcc" => OpKind::Gdcc,
            "lstm" => OpKind::Lstm,
            "gru" => OpKind::Gru,
            "trans-t" => OpKind::TransformerT,
            "inf-t" => OpKind::InformerT,
            "cheb-gcn" => OpKind::ChebGcn,
            "dgcn" => OpKind::Dgcn,
            "trans-s" => OpKind::TransformerS,
            "inf-s" => OpKind::InformerS,
            _ => return None,
        })
    }

    /// Relative computational cost of one application, in units of a 1×1
    /// convolution (used by the efficiency-aware search extension — the
    /// paper's future-work item of §6). Derived from the per-operator
    /// criterion benchmarks (`cts-bench/benches/operators.rs`).
    pub fn relative_cost(&self) -> f32 {
        match self {
            OpKind::Zero => 0.0,
            OpKind::Identity => 0.05,
            OpKind::Conv1d => 1.0,
            OpKind::Gdcc => 2.2,
            OpKind::Lstm => 8.0,
            OpKind::Gru => 7.0,
            OpKind::TransformerT => 4.5,
            OpKind::InformerT => 3.0,
            OpKind::ChebGcn => 3.0,
            OpKind::Dgcn => 4.0,
            OpKind::TransformerS => 4.5,
            OpKind::InformerS => 3.0,
        }
    }

    /// All operator kinds.
    pub fn all() -> [OpKind; 12] {
        [
            OpKind::Zero,
            OpKind::Identity,
            OpKind::Conv1d,
            OpKind::Gdcc,
            OpKind::Lstm,
            OpKind::Gru,
            OpKind::TransformerT,
            OpKind::InformerT,
            OpKind::ChebGcn,
            OpKind::Dgcn,
            OpKind::TransformerS,
            OpKind::InformerS,
        ]
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for kind in OpKind::all() {
            assert_eq!(OpKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(OpKind::from_label("nonsense"), None);
    }

    #[test]
    fn spatial_temporal_partition() {
        let mut s = 0;
        let mut t = 0;
        let mut other = 0;
        for kind in OpKind::all() {
            if kind.is_spatial() {
                s += 1;
            } else if kind.is_temporal() {
                t += 1;
            } else {
                other += 1;
            }
            assert!(!(kind.is_spatial() && kind.is_temporal()));
        }
        assert_eq!((s, t, other), (4, 6, 2));
    }

    #[test]
    fn non_parametric_ops() {
        assert!(!OpKind::Zero.is_parametric());
        assert!(!OpKind::Identity.is_parametric());
        assert!(OpKind::Gdcc.is_parametric());
    }
}
