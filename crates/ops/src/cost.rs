//! Static op pricing: the `cost_fn` contract mirroring [`OpKind::infer_shape`].
//!
//! Every operator kind declares, *without being instantiated or executed*,
//! how much work its tape-free `forward_eval` performs: floating-point
//! operations, bytes moved through the element-wise/matmul kernels, kernel
//! dispatches, parameter count, and an upper bound on the arena bytes its
//! intermediates occupy. `cts-verify` rolls these up into whole-genotype
//! budgets checked before a single forward pass runs.
//!
//! The contract (the static counterpart of the meter in
//! `cts_tensor::meter`):
//!
//! * `flops` / `bytes_read` / `bytes_written` / `kernel_calls` are **exact**:
//!   they must equal, bit for bit, what [`cts_tensor::meter`] observes during
//!   one `forward_eval` of the same operator on the same concrete shape. A
//!   workspace test (`tests/cost_oracle.rs`) and the unit tests below enforce
//!   this against randomized genotypes. The traces therefore mirror the eval
//!   paths kernel by kernel — including which kernels are *free* (shape ops,
//!   clones, `sum_all`, `scale_inplace`) and fast paths (same-shape zips,
//!   ProbSparse's full-attention fallback when `u ≥ L`).
//! * `dense_flops` is the matmul/conv-class subset of `flops`, used by the
//!   latency model (dense flops run much faster per flop than strided
//!   element-wise traffic).
//! * `scratch_bytes` is an arena-aligned **upper bound** (sum, not max) on
//!   the bytes of every buffer the op allocates while evaluating, including
//!   un-metered shape-op outputs and clones. It over-counts the true
//!   transient peak by design; it must never under-count.
//!
//! New operators MUST extend [`OpKind::cost`]; the exhaustive match makes
//! forgetting a compile error, and the oracle test makes a wrong trace a
//! test failure.

use crate::meta::{ShapeCtx, ShapeIssue};
use crate::OpKind;
use cts_tensor::sym::SymDim;

/// Every tensor element is an `f32`.
pub const BYTES_PER_ELEM: u64 = 4;

/// Informer's sampling factor `c` in `u = ⌈c·ln L⌉` (must match
/// `attention_ops::INFORMER_FACTOR`; `informer_u` replicates the f32 math).
const INFORMER_FACTOR: f32 = 1.0;

/// The number of active queries Informer's ProbSparse attention selects for
/// sequence length `l` — the exact `f32` computation of
/// `prob_sparse_attention_eval`, exposed so cost and runtime can never
/// disagree about which path (sparse or full fallback) executes.
pub fn informer_u(l: u64) -> u64 {
    let lf = l as f32;
    let u = ((INFORMER_FACTOR * lf.ln()).ceil() as usize).clamp(1, l as usize);
    u as u64
}

/// Static resource price of one operator application (or any composition of
/// kernel invocations — costs add).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCost {
    /// Floating-point operations, matching the meter's per-kernel `work`.
    pub flops: u64,
    /// Bytes read by metered kernels (input elements × 4).
    pub bytes_read: u64,
    /// Bytes written by metered kernels (output elements × 4).
    pub bytes_written: u64,
    /// Trainable parameter count of the operator (excluding shared
    /// context parameters such as adaptive-adjacency embeddings).
    pub param_count: u64,
    /// Metered kernel dispatches.
    pub kernel_calls: u64,
    /// The matmul/conv-class subset of `flops` (for the latency model).
    pub dense_flops: u64,
    /// Arena-aligned upper bound on bytes allocated while evaluating.
    pub scratch_bytes: u64,
}

impl OpCost {
    /// Field-wise saturating sum (param counts included — callers rolling up
    /// a graph where one operator instance serves one edge can add freely).
    pub fn saturating_add(&self, other: &OpCost) -> OpCost {
        OpCost {
            flops: self.flops.saturating_add(other.flops),
            bytes_read: self.bytes_read.saturating_add(other.bytes_read),
            bytes_written: self.bytes_written.saturating_add(other.bytes_written),
            param_count: self.param_count.saturating_add(other.param_count),
            kernel_calls: self.kernel_calls.saturating_add(other.kernel_calls),
            dense_flops: self.dense_flops.saturating_add(other.dense_flops),
            scratch_bytes: self.scratch_bytes.saturating_add(other.scratch_bytes),
        }
    }

    /// Total bytes moved (read + written).
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read.saturating_add(self.bytes_written)
    }
}

/// Concrete evaluation context the cost rules price against.
///
/// Unlike [`ShapeCtx`], pricing needs every dimension bound to a number:
/// symbolic dims resolve as `"B" → batch`, `"N" → nodes` (any other symbol
/// prices as 1). `graph_nodes` keeps the *validation* semantics identical
/// to the shape pass: when `None`, spatial ops accept any node dim, exactly
/// as `infer_shape` does.
#[derive(Clone, Copy, Debug)]
pub struct CostCtx {
    /// Batch size `B` the symbolic batch dim resolves to.
    pub batch: usize,
    /// Node count `N` the symbolic node dim resolves to.
    pub nodes: usize,
    /// Channel width `d` the operator weights are sized for.
    pub width: usize,
    /// Node count used for shape *validation* (`None` = accept any node
    /// dim, mirroring [`ShapeCtx::graph_nodes`]).
    pub graph_nodes: Option<usize>,
    /// Diffusion order / Chebyshev order `K` of the GCN-family ops.
    pub gcn_k: usize,
    /// Whether the graph context carries an adaptive adjacency (gates
    /// DGCN's adaptive diffusion direction).
    pub adaptive: bool,
    /// Embedding width of the adaptive adjacency factors `E₁ [N, emb]`,
    /// `E₂ [emb, N]` (ignored when `adaptive` is false).
    pub adaptive_emb: usize,
}

impl CostCtx {
    /// The validation view of this context, for [`OpKind::infer_shape`].
    pub fn shape_ctx(&self) -> ShapeCtx {
        ShapeCtx {
            width: self.width,
            graph_nodes: self.graph_nodes,
        }
    }

    fn resolve(&self, dim: &SymDim) -> u64 {
        match dim {
            SymDim::Const(c) => *c as u64,
            SymDim::Sym("B") => self.batch as u64,
            SymDim::Sym("N") => self.nodes as u64,
            SymDim::Sym(_) => 1,
        }
    }
}

/// Arena-aligned byte footprint of a buffer of `elems` f32 elements: the
/// arena rounds every allocation up to the next power of two capacity.
pub fn arena_bytes(elems: u64) -> u64 {
    elems
        .max(1)
        .checked_next_power_of_two()
        .unwrap_or(u64::MAX)
        .saturating_mul(BYTES_PER_ELEM)
}

/// A virtual execution trace: replays an eval path's kernel sequence on
/// shapes alone, accumulating an [`OpCost`].
///
/// Each method mirrors one `cts_tensor::ops` kernel's metering contract
/// (`flops` = the kernel's `work` parameter, `reads`/`writes` = the elements
/// its entry hook and dispatch record). Free operations (shape ops, clones)
/// only contribute `scratch_bytes` through [`Trace::alloc`].
#[derive(Clone, Debug, Default)]
pub struct Trace {
    cost: OpCost,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish the trace, yielding the accumulated cost.
    pub fn finish(self) -> OpCost {
        self.cost
    }

    /// Record an un-metered arena allocation of `elems` elements (clones,
    /// permutes, slices, concat outputs, zero/ones buffers).
    pub fn alloc(&mut self, elems: u64) {
        self.cost.scratch_bytes = self.cost.scratch_bytes.saturating_add(arena_bytes(elems));
    }

    /// Record `elems` elements read at a metered kernel's entry hook.
    pub fn reads(&mut self, elems: u64) {
        self.cost.bytes_read = self
            .cost
            .bytes_read
            .saturating_add(elems.saturating_mul(BYTES_PER_ELEM));
    }

    fn exec(&mut self, work: u64, out_elems: u64) {
        self.cost.flops = self.cost.flops.saturating_add(work);
        self.cost.bytes_written = self
            .cost
            .bytes_written
            .saturating_add(out_elems.saturating_mul(BYTES_PER_ELEM));
        self.cost.kernel_calls = self.cost.kernel_calls.saturating_add(1);
        self.alloc(out_elems);
    }

    /// A same-shape element-wise zip (`add`/`sub`/`mul`/`div` fast path):
    /// work = len, reads both operands, writes len.
    pub fn zip_same(&mut self, len: u64) {
        self.reads(len.saturating_mul(2));
        self.exec(len, len);
    }

    /// A broadcasting element-wise zip: work = output elements, reads both
    /// operands in full, writes the output.
    pub fn zip_bcast(&mut self, a_len: u64, b_len: u64, out_len: u64) {
        self.reads(a_len.saturating_add(b_len));
        self.exec(out_len, out_len);
    }

    /// An element-wise unary kernel (`relu`, `tanh`, `sigmoid`, `scale`,
    /// `add_scalar`, `sqrt`, `square`, `neg`, …): work = reads = writes = len.
    pub fn unary(&mut self, len: u64) {
        self.reads(len);
        self.exec(len, len);
    }

    /// A batched matmul `[batch, m, k] × [batch|1, k, n]`: `2·batch·m·n·k`
    /// dense flops, reads both operands in full (`a_len`, `b_len` elements),
    /// writes `batch·m·n`.
    pub fn matmul(&mut self, dims: [u64; 4], a_len: u64, b_len: u64) {
        let [batch, m, k, n] = dims;
        let work = 2u64
            .saturating_mul(batch)
            .saturating_mul(m)
            .saturating_mul(n)
            .saturating_mul(k);
        self.reads(a_len.saturating_add(b_len));
        self.exec(work, batch.saturating_mul(m).saturating_mul(n));
        self.cost.dense_flops = self.cost.dense_flops.saturating_add(work);
    }

    /// `transpose_last2`: a metered data movement of `len` elements.
    pub fn transpose(&mut self, len: u64) {
        self.reads(len);
        self.exec(len, len);
    }

    /// `softmax_last` over `len` total elements: ~4 flops per element.
    pub fn softmax(&mut self, len: u64) {
        self.reads(len);
        self.exec(len.saturating_mul(4), len);
    }

    /// An axis reduction (`sum_axis` / `max_axis`) decomposed as
    /// `(outer, len, inner)`: work/reads = the full input, writes
    /// `outer·inner`. (`mean_axis` adds nothing — its scale is in-place
    /// and un-metered.)
    pub fn reduce(&mut self, outer: u64, len: u64, inner: u64) {
        let total = outer.saturating_mul(len).saturating_mul(inner);
        self.reads(total);
        self.exec(total, outer.saturating_mul(inner));
    }

    /// The dilated causal `temporal_conv` kernel: `2·series·t·k·din·dout`
    /// dense flops, reads activations and kernel, writes `series·t·dout`.
    pub fn temporal_conv(&mut self, series: u64, t: u64, taps: [u64; 3]) {
        let [k, din, dout] = taps;
        let work = 2u64
            .saturating_mul(series)
            .saturating_mul(t)
            .saturating_mul(k)
            .saturating_mul(din)
            .saturating_mul(dout);
        self.reads(
            series
                .saturating_mul(t)
                .saturating_mul(din)
                .saturating_add(k.saturating_mul(din).saturating_mul(dout)),
        );
        self.exec(work, series.saturating_mul(t).saturating_mul(dout));
        self.cost.dense_flops = self.cost.dense_flops.saturating_add(work);
    }

    /// A `Linear(d_in → d_out)` eval on `rows` positions: one matmul plus,
    /// with `bias`, one broadcast add against the `[d_out]` bias vector.
    pub fn linear(&mut self, rows: u64, d_in: u64, d_out: u64, bias: bool) {
        self.matmul(
            [1, rows, d_in, d_out],
            rows.saturating_mul(d_in),
            d_in.saturating_mul(d_out),
        );
        if bias {
            let out = rows.saturating_mul(d_out);
            self.zip_bcast(out, d_out, out);
        }
    }

    /// `LayerNorm(d)` eval over `len` total elements (`len / d` rows): the
    /// exact nine-kernel sequence of `LayerNorm::forward_eval`.
    pub fn layernorm(&mut self, len: u64, d: u64) {
        let rows = len.checked_div(d).unwrap_or(0);
        // mean_axis → sum_axis over the channel axis.
        self.reduce(rows, d, 1);
        // centered = x − mean (broadcast over the channel axis).
        self.zip_bcast(len, rows, len);
        // square, then the variance's mean_axis.
        self.unary(len);
        self.reduce(rows, d, 1);
        // add_scalar(eps), sqrt on the [rows] tensor.
        self.unary(rows);
        self.unary(rows);
        // normed = centered / std (broadcast).
        self.zip_bcast(len, rows, len);
        // affine: ⊙ gamma[d], + beta[d] (both broadcast).
        self.zip_bcast(len, d, len);
        self.zip_bcast(len, d, len);
    }

    /// `node_mix_eval`: permute → `support[N,N] · x[B,T,N,D]` → permute.
    pub fn node_mix(&mut self, b: u64, n: u64, t: u64, d: u64) {
        let len = b.saturating_mul(n).saturating_mul(t).saturating_mul(d);
        self.alloc(len); // permute to [B,T,N,D]
        self.matmul([b.saturating_mul(t), n, n, d], n.saturating_mul(n), len);
        self.alloc(len); // permute back
    }

    /// One `AttentionLayer::forward_eval` on `[bp, l, d]` (projections plus
    /// full or ProbSparse attention — the sparse path falls back to full
    /// when `u ≥ l`, exactly like the kernel).
    pub fn attention(&mut self, bp: u64, l: u64, d: u64, probsparse: bool) {
        let bld = bp.saturating_mul(l).saturating_mul(d);
        let bll = bp.saturating_mul(l).saturating_mul(l);
        // wq, wk, wv projections (no bias).
        for _ in 0..3 {
            self.linear(bp.saturating_mul(l), d, d, false);
        }
        let u = informer_u(l);
        if !probsparse || u >= l {
            // Full scaled-dot-product attention.
            self.alloc(bld); // permute(k)
            self.matmul([bp, l, d, l], bld, bld);
            self.unary(bll); // scale by 1/√d
            self.softmax(bll);
            self.matmul([bp, l, l, d], bll, bld);
            return;
        }
        // ProbSparse: sparsity measurement on detached values…
        self.transpose(bld); // transpose_last2(k)
        self.matmul([bp, l, d, l], bld, bld);
        let bl = bp.saturating_mul(l);
        self.reduce(bl, l, 1); // max_axis(scores, 2)
        self.reduce(bl, l, 1); // mean_axis(scores, 2)
        self.zip_same(bl); // max − mean
        self.reduce(1, bp, l); // batch average (mean_axis over axis 0)
        // …then attention for the u selected queries…
        let bud = bp.saturating_mul(u).saturating_mul(d);
        let bul = bp.saturating_mul(u).saturating_mul(l);
        self.alloc(bud); // index_select(q, sel)
        self.alloc(bld); // permute(k)
        self.matmul([bp, u, d, l], bud, bld);
        self.unary(bul); // scale
        self.softmax(bul);
        self.matmul([bp, u, l, d], bul, bld);
        // …lazy queries output mean(V), broadcast over L−u rows…
        self.reduce(bp, l, d); // mean_axis(v, 1)
        self.alloc(l - u); // ones([1, l−u, 1])
        let rep = bp.saturating_mul(l - u).saturating_mul(d);
        self.zip_bcast(bp.saturating_mul(d), l - u, rep);
        // …and rows reassemble via concat + inverse gather (free).
        self.alloc(bld);
        self.alloc(bld);
    }

    /// One LSTM step of `Lstm::step_eval` on `[b, d]` rows, hidden = d.
    fn lstm_step(&mut self, b: u64, d: u64) {
        let bh = b.saturating_mul(d);
        let b4h = bh.saturating_mul(4);
        self.alloc(bh); // slice x_t
        self.linear(b, d, 4 * d, true); // wx
        self.linear(b, d, 4 * d, false); // wh
        self.zip_same(b4h); // gates_x + gates_h
        for _ in 0..4 {
            self.alloc(bh); // i/f/g/o gate slices
        }
        self.unary(bh); // sigmoid(i)
        self.unary(bh); // sigmoid(f)
        self.unary(bh); // tanh(g)
        self.unary(bh); // sigmoid(o)
        self.zip_same(bh); // f ⊙ c
        self.zip_same(bh); // i ⊙ g
        self.zip_same(bh); // c_new = +
        self.unary(bh); // tanh(c_new)
        self.zip_same(bh); // h_new = o ⊙ tanh
        self.alloc(bh); // h.clone() pushed to outputs
    }

    /// `Lstm::forward_sequence_eval` on `[b, t, d]`, hidden = d.
    pub fn lstm(&mut self, b: u64, t: u64, d: u64) {
        let bh = b.saturating_mul(d);
        self.alloc(bh); // h = zeros
        self.alloc(bh); // c = h.clone()
        for _ in 0..t {
            self.lstm_step(b, d);
        }
        self.alloc(b.saturating_mul(t).saturating_mul(d)); // concat
    }

    /// One GRU step of `Gru::step_eval` on `[b, d]` rows, hidden = d.
    fn gru_step(&mut self, b: u64, d: u64) {
        let bh = b.saturating_mul(d);
        let b2h = bh.saturating_mul(2);
        self.alloc(bh); // slice x_t
        self.linear(b, d, 2 * d, true); // wx_zr
        self.linear(b, d, 2 * d, false); // wh_zr
        self.zip_same(b2h); // zr sum
        self.alloc(bh); // slice z
        self.unary(bh); // sigmoid(z)
        self.alloc(bh); // slice r
        self.unary(bh); // sigmoid(r)
        self.zip_same(bh); // r ⊙ h
        self.linear(b, d, d, true); // wx_n
        self.linear(b, d, d, false); // wh_n
        self.zip_same(bh); // n sum
        self.unary(bh); // tanh(n)
        self.unary(bh); // neg(z)
        self.unary(bh); // add_scalar 1.0
        self.zip_same(bh); // (1−z) ⊙ n
        self.zip_same(bh); // z ⊙ h
        self.zip_same(bh); // h'
        self.alloc(bh); // h.clone() pushed to outputs
    }

    /// `Gru::forward_sequence_eval` on `[b, t, d]`, hidden = d.
    pub fn gru(&mut self, b: u64, t: u64, d: u64) {
        self.alloc(b.saturating_mul(d)); // h = zeros
        for _ in 0..t {
            self.gru_step(b, d);
        }
        self.alloc(b.saturating_mul(t).saturating_mul(d)); // concat
    }
}

impl OpKind {
    /// Price one application of this operator on the symbolic `input`
    /// shape, resolved and evaluated under `ctx` — pure metadata, mirroring
    /// [`OpKind::infer_shape`]'s validation and the operator's
    /// `forward_eval` kernel sequence.
    ///
    /// # Errors
    /// The same [`ShapeIssue`]s `infer_shape` reports: costs exist only for
    /// inputs the operator accepts.
    pub fn cost(&self, input: &[SymDim], ctx: &CostCtx) -> Result<OpCost, ShapeIssue> {
        // Validation is the shape rule's, verbatim.
        let _ = self.infer_shape(input, &ctx.shape_ctx())?;
        let dims: Vec<u64> = input.iter().map(|d| ctx.resolve(d)).collect();
        let numel = dims.iter().fold(1u64, |acc, &d| acc.saturating_mul(d));
        let mut tr = Trace::new();
        let d64 = ctx.width as u64;

        // Zero and Identity are polymorphic and priced on raw numel.
        match self {
            OpKind::Zero => {
                tr.unary(numel); // ops::scale(x, 0.0)
                return Ok(tr.finish());
            }
            OpKind::Identity => {
                tr.alloc(numel); // x.clone()
                return Ok(tr.finish());
            }
            _ => {}
        }

        // Parametric ops: infer_shape proved rank-4 [B, N, T, d].
        let (b, n, t) = (dims[0], dims[1], dims[2]);
        let len = numel;
        let series = b.saturating_mul(n);
        let rows = series.saturating_mul(t);

        // ReLU → inner → LayerNorm wrapper, shared by every parametric op.
        tr.unary(len); // relu
        let mut params: u64 = 2 * d64; // the wrapper's LayerNorm affine
        match self {
            OpKind::Conv1d => {
                tr.temporal_conv(series, t, [2, d64, d64]);
                tr.zip_bcast(len, d64, len); // bias
                params = params
                    .saturating_add(2 * d64 * d64 + d64);
            }
            OpKind::Gdcc => {
                for _ in 0..2 {
                    // filter (→ tanh) and gate (→ sigmoid) branches
                    tr.temporal_conv(series, t, [2, d64, d64]);
                    tr.zip_bcast(len, d64, len); // bias
                    tr.unary(len); // tanh / sigmoid
                }
                tr.zip_same(len); // f ⊙ g
                params = params.saturating_add(2 * (2 * d64 * d64 + d64));
            }
            OpKind::Lstm => {
                tr.alloc(len); // temporal view clone
                tr.lstm(series, t, d64);
                params = params.saturating_add(8 * d64 * d64 + 4 * d64);
            }
            OpKind::Gru => {
                tr.alloc(len); // temporal view clone
                tr.gru(series, t, d64);
                params = params.saturating_add(6 * d64 * d64 + 3 * d64);
            }
            OpKind::TransformerT | OpKind::InformerT => {
                tr.alloc(len); // temporal view clone
                tr.attention(series, t, d64, *self == OpKind::InformerT);
                params = params.saturating_add(3 * d64 * d64);
            }
            OpKind::TransformerS | OpKind::InformerS => {
                tr.alloc(len); // spatial view permute
                tr.attention(b.saturating_mul(t), n, d64, *self == OpKind::InformerS);
                tr.alloc(len); // un-view permute
                params = params.saturating_add(3 * d64 * d64);
            }
            OpKind::ChebGcn => {
                let k = ctx.gcn_k as u64;
                for i in 0..=k {
                    tr.node_mix(b, n, t, d64);
                    tr.linear(rows, d64, d64, i == 0);
                    if i > 0 {
                        tr.zip_same(len); // accumulate
                    }
                }
                params = params
                    .saturating_add((k + 1).saturating_mul(d64 * d64) + d64);
            }
            OpKind::Dgcn => {
                let k = ctx.gcn_k as u64;
                tr.linear(rows, d64, d64, true); // self term
                for _ in 0..2 * k {
                    // forward then backward diffusion directions
                    tr.node_mix(b, n, t, d64);
                    tr.linear(rows, d64, d64, false);
                    tr.zip_same(len); // accumulate
                }
                params = params.saturating_add(
                    (2 * k + 1).saturating_mul(d64 * d64) + d64,
                );
                if ctx.adaptive {
                    // support = softmax(relu(E₁·E₂)), computed per eval.
                    let emb = ctx.adaptive_emb as u64;
                    let nn = (ctx.nodes as u64).saturating_mul(ctx.nodes as u64);
                    let ne = (ctx.nodes as u64).saturating_mul(emb);
                    tr.matmul([1, ctx.nodes as u64, emb, ctx.nodes as u64], ne, ne);
                    tr.unary(nn); // relu
                    tr.softmax(nn);
                    tr.alloc(len); // mixed = x.clone()
                    for _ in 0..k {
                        tr.node_mix(b, n, t, d64);
                        tr.linear(rows, d64, d64, false);
                        tr.zip_same(len);
                    }
                    params = params.saturating_add(k.saturating_mul(d64 * d64));
                }
            }
            OpKind::Zero | OpKind::Identity => unreachable!("handled above"),
        }
        tr.layernorm(len, d64);
        let mut cost = tr.finish();
        cost.param_count = params;
        Ok(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_operator, full_set, GraphContext};
    use cts_graph::{random_geometric_graph, GraphGenConfig};
    use cts_tensor::{init, meter};
    use rand::{rngs::SmallRng, SeedableRng};

    fn bntd(n: usize, t: usize, d: usize) -> Vec<SymDim> {
        vec![
            SymDim::Sym("B"),
            SymDim::Const(n),
            SymDim::Const(t),
            SymDim::Const(d),
        ]
    }

    /// The heart of the contract: for every operator kind, the static cost
    /// must equal the instrumented meter's observation of one forward_eval,
    /// bit for bit, and the parameter count must match the real weights.
    #[test]
    fn cost_matches_meter_for_every_op() {
        let (b, n, t, d, k) = (2usize, 5usize, 12usize, 6usize, 2usize);
        let mut rng = SmallRng::seed_from_u64(42);
        let g = random_geometric_graph(
            &mut rng,
            &GraphGenConfig { n, sigma: 0.8, threshold: 0.1 },
        );
        for adaptive in [false, true] {
            let ctx = if adaptive {
                GraphContext::from_graph(&g, k).with_adaptive(&mut rng, 4)
            } else {
                GraphContext::from_graph(&g, k)
            };
            let cctx = CostCtx {
                batch: b,
                nodes: n,
                width: d,
                graph_nodes: Some(n),
                gcn_k: k,
                adaptive,
                adaptive_emb: 4,
            };
            for kind in full_set() {
                let op = build_operator(&mut rng, kind, "op", d, k, adaptive);
                let x = init::uniform(&mut rng, [b, n, t, d], -1.0, 1.0);
                meter::set_enabled(true);
                meter::reset();
                let y = op.forward_eval(&x, &ctx);
                let got = meter::snapshot();
                meter::set_enabled(false);
                assert_eq!(y.shape(), x.shape(), "{kind} changed shape");
                let want = kind.cost(&bntd(n, t, d), &cctx).unwrap();
                assert_eq!(want.flops, got.flops, "{kind} (adaptive={adaptive}): flops");
                assert_eq!(
                    want.bytes_read,
                    got.bytes_read(),
                    "{kind} (adaptive={adaptive}): bytes_read"
                );
                assert_eq!(
                    want.bytes_written,
                    got.bytes_written(),
                    "{kind} (adaptive={adaptive}): bytes_written"
                );
                assert_eq!(
                    want.kernel_calls, got.kernel_calls,
                    "{kind} (adaptive={adaptive}): kernel_calls"
                );
                let real_params: usize = op.parameters().iter().map(|p| p.len()).sum();
                assert_eq!(
                    want.param_count, real_params as u64,
                    "{kind} (adaptive={adaptive}): param_count"
                );
                assert!(want.dense_flops <= want.flops, "{kind}: dense subset");
            }
        }
    }

    /// ProbSparse must fall back to the full path exactly when the runtime
    /// does (u ≥ L), including the boundary the f32 ceil math produces.
    #[test]
    fn informer_fallback_boundary_matches_runtime() {
        let (b, n, d, k) = (1usize, 3usize, 4usize, 2usize);
        let mut rng = SmallRng::seed_from_u64(7);
        let g = random_geometric_graph(&mut rng, &GraphGenConfig { n, ..Default::default() });
        let ctx = GraphContext::from_graph(&g, k);
        let cctx = CostCtx {
            batch: b,
            nodes: n,
            width: d,
            graph_nodes: Some(n),
            gcn_k: k,
            adaptive: false,
            adaptive_emb: 0,
        };
        for t in [2usize, 3, 4, 8, 16, 24] {
            let op = build_operator(&mut rng, OpKind::InformerT, "op", d, k, false);
            let x = init::uniform(&mut rng, [b, n, t, d], -1.0, 1.0);
            meter::set_enabled(true);
            meter::reset();
            let _ = op.forward_eval(&x, &ctx);
            let got = meter::snapshot();
            meter::set_enabled(false);
            let want = OpKind::InformerT.cost(&bntd(n, t, d), &cctx).unwrap();
            assert_eq!(want.flops, got.flops, "T={t}: flops");
            assert_eq!(want.kernel_calls, got.kernel_calls, "T={t}: calls");
        }
    }

    #[test]
    fn cost_rejects_what_infer_shape_rejects() {
        let cctx = CostCtx {
            batch: 2,
            nodes: 5,
            width: 6,
            graph_nodes: Some(5),
            gcn_k: 2,
            adaptive: false,
            adaptive_emb: 0,
        };
        // Wrong rank.
        assert!(OpKind::Gdcc.cost(&[SymDim::Sym("B")], &cctx).is_err());
        // Wrong channel width.
        assert!(OpKind::Gdcc.cost(&bntd(5, 8, 7), &cctx).is_err());
        // Wrong node count for a spatial op.
        assert!(OpKind::Dgcn.cost(&bntd(4, 8, 6), &cctx).is_err());
        // Zero accepts anything and is one metered kernel.
        let z = OpKind::Zero.cost(&[SymDim::Const(3)], &cctx).unwrap();
        assert_eq!(z.kernel_calls, 1);
        assert_eq!(z.flops, 3);
        // Identity is free but still occupies scratch.
        let i = OpKind::Identity.cost(&[SymDim::Const(3)], &cctx).unwrap();
        assert_eq!(i.kernel_calls, 0);
        assert!(i.scratch_bytes > 0);
    }

    #[test]
    fn costs_scale_with_batch() {
        let cctx = |batch: usize| CostCtx {
            batch,
            nodes: 5,
            width: 6,
            graph_nodes: Some(5),
            gcn_k: 2,
            adaptive: false,
            adaptive_emb: 0,
        };
        let small = OpKind::Gdcc.cost(&bntd(5, 8, 6), &cctx(1)).unwrap();
        let big = OpKind::Gdcc.cost(&bntd(5, 8, 6), &cctx(4)).unwrap();
        assert!(big.flops > small.flops);
        assert_eq!(big.param_count, small.param_count);
    }
}
