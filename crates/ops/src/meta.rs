//! Static op metadata: the `shape_fn` contract.
//!
//! Every operator kind declares, *without being instantiated*, what input
//! shapes it accepts and what output shape it produces. `cts-verify` uses
//! this to infer every intermediate shape of a candidate architecture
//! before a single forward pass runs.
//!
//! The contract (see DESIGN.md § "shape_fn contract"):
//!
//! * Non-parametric ops (`zero`, `identity`) are polymorphic: any shape
//!   passes through unchanged.
//! * Parametric ops require rank-4 `[B, N, T, D]` input with the channel
//!   dim provably equal to the operator width `d` they were built with
//!   (the `ReluNormed` wrapper's LayerNorm is sized to `d`).
//! * Spatial ops additionally require the node dim to provably equal the
//!   graph's node count when one is known (their supports are `[N, N]`).
//!
//! New operators MUST extend [`OpKind::infer_shape`]; the exhaustive match
//! makes forgetting a compile error.

use crate::OpKind;
use cts_tensor::sym::{format_shape, SymDim};
use std::fmt;

/// Static context the shape rules check against.
#[derive(Clone, Copy, Debug)]
pub struct ShapeCtx {
    /// Channel width `d` the operator's weights are sized for.
    pub width: usize,
    /// Node count of the graph the spatial ops were built against;
    /// `None` when unknown (shape rule then accepts any node dim).
    pub graph_nodes: Option<usize>,
}

/// Why an operator rejects an input shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShapeIssue {
    /// Input rank differs from the required rank.
    Rank {
        /// Rank the operator requires.
        expected: usize,
        /// Shape that was offered.
        got: Vec<SymDim>,
    },
    /// Channel dim is not provably the operator width.
    Channel {
        /// Width the operator's weights are sized for.
        expected: usize,
        /// The channel dim offered.
        got: SymDim,
    },
    /// Node dim is not provably the graph's node count.
    Nodes {
        /// Node count of the graph context.
        expected: usize,
        /// The node dim offered.
        got: SymDim,
    },
}

impl fmt::Display for ShapeIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeIssue::Rank { expected, got } => write!(
                f,
                "rank error: expected rank-{expected} [B, N, T, D], got {}",
                format_shape(got)
            ),
            ShapeIssue::Channel { expected, got } => write!(
                f,
                "channel mismatch: operator width is {expected}, input channel dim is {got}"
            ),
            ShapeIssue::Nodes { expected, got } => write!(
                f,
                "node-count mismatch: graph has {expected} nodes, input node dim is {got}"
            ),
        }
    }
}

impl OpKind {
    /// Infer the symbolic output shape this operator produces for `input`,
    /// or explain why it rejects it. Pure metadata — no weights touched.
    pub fn infer_shape(
        &self,
        input: &[SymDim],
        ctx: &ShapeCtx,
    ) -> Result<Vec<SymDim>, ShapeIssue> {
        match self {
            // Zero and Identity are plumbing: whatever comes in goes out.
            OpKind::Zero | OpKind::Identity => Ok(input.to_vec()),
            // Every parametric ST-operator maps [B, N, T, d] → [B, N, T, d].
            OpKind::Conv1d
            | OpKind::Gdcc
            | OpKind::Lstm
            | OpKind::Gru
            | OpKind::TransformerT
            | OpKind::InformerT
            | OpKind::ChebGcn
            | OpKind::Dgcn
            | OpKind::TransformerS
            | OpKind::InformerS => {
                if input.len() != 4 {
                    return Err(ShapeIssue::Rank {
                        expected: 4,
                        got: input.to_vec(),
                    });
                }
                let d = input[3];
                if !d.is_const(ctx.width) {
                    return Err(ShapeIssue::Channel {
                        expected: ctx.width,
                        got: d,
                    });
                }
                if self.is_spatial() {
                    if let Some(n) = ctx.graph_nodes {
                        if !input[1].is_const(n) {
                            return Err(ShapeIssue::Nodes {
                                expected: n,
                                got: input[1],
                            });
                        }
                    }
                }
                Ok(input.to_vec())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_tensor::sym::SymShape;

    const B: SymDim = SymDim::Sym("B");

    fn bntd(n: usize, t: usize, d: usize) -> SymShape {
        vec![B, SymDim::Const(n), SymDim::Const(t), SymDim::Const(d)]
    }

    #[test]
    fn parametric_ops_preserve_bntd() {
        let ctx = ShapeCtx { width: 6, graph_nodes: Some(5) };
        for kind in OpKind::all() {
            let out = kind.infer_shape(&bntd(5, 8, 6), &ctx).unwrap();
            assert_eq!(out, bntd(5, 8, 6), "{kind}");
        }
    }

    #[test]
    fn zero_identity_polymorphic() {
        let ctx = ShapeCtx { width: 6, graph_nodes: None };
        let odd = vec![SymDim::Const(3), SymDim::Const(2)];
        assert_eq!(OpKind::Zero.infer_shape(&odd, &ctx).unwrap(), odd);
        assert_eq!(OpKind::Identity.infer_shape(&odd, &ctx).unwrap(), odd);
    }

    #[test]
    fn rank_error_reported() {
        let ctx = ShapeCtx { width: 6, graph_nodes: None };
        let err = OpKind::Gdcc
            .infer_shape(&[B, SymDim::Const(6)], &ctx)
            .unwrap_err();
        assert!(matches!(err, ShapeIssue::Rank { expected: 4, .. }));
        assert!(err.to_string().contains("rank error"));
    }

    #[test]
    fn channel_mismatch_reported() {
        let ctx = ShapeCtx { width: 6, graph_nodes: None };
        let err = OpKind::InformerT.infer_shape(&bntd(5, 8, 7), &ctx).unwrap_err();
        assert_eq!(
            err,
            ShapeIssue::Channel { expected: 6, got: SymDim::Const(7) }
        );
        // A symbolic channel dim is not *provably* the width either.
        let sym_d = vec![B, SymDim::Const(5), SymDim::Const(8), SymDim::Sym("D")];
        assert!(OpKind::InformerT.infer_shape(&sym_d, &ctx).is_err());
    }

    #[test]
    fn spatial_ops_check_node_count() {
        let ctx = ShapeCtx { width: 6, graph_nodes: Some(5) };
        let err = OpKind::Dgcn.infer_shape(&bntd(4, 8, 6), &ctx).unwrap_err();
        assert_eq!(err, ShapeIssue::Nodes { expected: 5, got: SymDim::Const(4) });
        // Temporal ops don't care about the node dim.
        assert!(OpKind::Gdcc.infer_shape(&bntd(4, 8, 6), &ctx).is_ok());
        // Without a known graph, any node dim passes.
        let free = ShapeCtx { width: 6, graph_nodes: None };
        assert!(OpKind::Dgcn.infer_shape(&bntd(4, 8, 6), &free).is_ok());
    }

    /// The static rule must agree with what the runtime operators actually
    /// do: build every op at a concrete size, run a forward pass, and
    /// compare shapes.
    #[test]
    fn static_shapes_agree_with_runtime() {
        use crate::{build_operator, GraphContext};
        use cts_autograd::Tape;
        use cts_graph::{random_geometric_graph, GraphGenConfig};
        use cts_tensor::init;
        use cts_tensor::sym::eval_shape;
        use rand::{rngs::SmallRng, SeedableRng};

        let (n, t, d, b) = (5usize, 8usize, 6usize, 2usize);
        let mut rng = SmallRng::seed_from_u64(11);
        let g = random_geometric_graph(&mut rng, &GraphGenConfig { n, ..Default::default() });
        let ctx = GraphContext::from_graph(&g, 2);
        let sctx = ShapeCtx { width: d, graph_nodes: Some(n) };
        let input = bntd(n, t, d);
        for kind in OpKind::all() {
            let stat = kind.infer_shape(&input, &sctx).unwrap();
            let op = build_operator(&mut rng, kind, &format!("t.{kind}"), d, 2, false);
            let tape = Tape::new();
            let x = tape.constant(init::uniform(&mut rng, [b, n, t, d], -1.0, 1.0));
            let y = op.forward(&tape, &x, &ctx);
            let concrete = eval_shape(&stat, &[("B", b)]).unwrap();
            assert_eq!(
                y.shape(),
                concrete,
                "static and runtime shapes disagree for {kind}"
            );
        }
    }
}
