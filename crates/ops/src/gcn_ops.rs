//! GCN-family S-operators: Chebyshev GCN (Eq. 14) and Diffusion GCN
//! (Eq. 15).

use crate::registry::StOperator;
use crate::{node_mix, node_mix_eval, GraphContext, OpKind};
use cts_autograd::{Parameter, Tape, Var};
use cts_nn::Linear;
use cts_tensor::{ops, Tensor};
use rand::Rng;

/// Chebyshev graph convolution: `H_t = Σ_k W_k T_k(L̃) Z_t`.
pub struct ChebGcnOp {
    weights: Vec<Linear>,
}

impl ChebGcnOp {
    /// One linear map per Chebyshev order. `k` must match the diffusion
    /// order of the [`GraphContext`] the op will run against (the basis has
    /// `k + 1` matrices): fewer weights silently truncate the expansion,
    /// more weights are never reached by a gradient.
    pub fn new(rng: &mut impl Rng, name: &str, d: usize, k: usize) -> Self {
        let weights = (0..=k)
            .map(|k| Linear::new(rng, &format!("{name}.w{k}"), d, d, k == 0))
            .collect();
        Self { weights }
    }
}

impl StOperator for ChebGcnOp {
    fn forward(&self, tape: &Tape, x: &Var, ctx: &GraphContext) -> Var {
        let basis = ctx.chebyshev(tape);
        let mut acc: Option<Var> = None;
        for (t_k, w_k) in basis.iter().zip(self.weights.iter()) {
            let mixed = node_mix(x, t_k);
            let term = w_k.forward(tape, &mixed);
            acc = Some(match acc {
                Some(a) => a.add(&term),
                None => term,
            });
        }
        // invariant: gcn_k >= 1 (validated config), so the basis is non-empty.
        acc.expect("chebyshev basis is never empty")
    }

    fn forward_eval(&self, x: &Tensor, ctx: &GraphContext) -> Tensor {
        let mut acc: Option<Tensor> = None;
        for (t_k, w_k) in ctx.chebyshev_tensors().iter().zip(self.weights.iter()) {
            let mixed = node_mix_eval(x, t_k);
            let term = w_k.forward_eval(&mixed);
            acc = Some(match acc {
                Some(a) => ops::add(&a, &term),
                None => term,
            });
        }
        // invariant: gcn_k >= 1 (validated config), so the basis is non-empty.
        acc.expect("chebyshev basis is never empty")
    }

    fn parameters(&self) -> Vec<Parameter> {
        self.weights.iter().flat_map(Linear::parameters).collect()
    }

    fn kind(&self) -> OpKind {
        OpKind::ChebGcn
    }
}

/// Diffusion graph convolution:
/// `H_t = Σ_k (D_O⁻¹A)^k Z_t W1_k + (D_I⁻¹Aᵀ)^k Z_t W2_k`, plus an adaptive
/// third direction when the context learns one (Graph WaveNet extension —
/// this is what lets DGCN run on datasets without a predefined adjacency).
pub struct DgcnOp {
    fwd_weights: Vec<Linear>,
    bwd_weights: Vec<Linear>,
    adp_weights: Vec<Linear>,
    self_weight: Linear,
}

impl DgcnOp {
    /// DGCN with `d` channels and `k` diffusion steps per direction
    /// (matching the [`GraphContext`]'s support count — a mismatch leaves
    /// weights gradient-starved or truncates the diffusion). Adaptive
    /// weights are only allocated when `adaptive` is set: a context without
    /// an adaptive support would never route a gradient into them.
    pub fn new(rng: &mut impl Rng, name: &str, d: usize, k: usize, adaptive: bool) -> Self {
        let mk = |tag: &str, rng: &mut dyn FnMut(&str) -> Linear| -> Vec<Linear> {
            (0..k).map(|i| rng(&format!("{name}.{tag}{i}"))).collect()
        };
        let mut build = |n: &str| Linear::new(rng, n, d, d, false);
        let fwd_weights = mk("fwd", &mut build);
        let bwd_weights = mk("bwd", &mut build);
        let adp_weights = if adaptive { mk("adp", &mut build) } else { Vec::new() };
        Self {
            fwd_weights,
            bwd_weights,
            adp_weights,
            self_weight: Linear::new(rng, &format!("{name}.self"), d, d, true),
        }
    }
}

impl StOperator for DgcnOp {
    fn forward(&self, tape: &Tape, x: &Var, ctx: &GraphContext) -> Var {
        // k = 0 term: the node's own features.
        let mut acc = self.self_weight.forward(tape, x);
        let fwd = ctx.diffusion_fwd(tape);
        let bwd = ctx.diffusion_bwd(tape);
        for (p_k, w_k) in fwd.iter().zip(self.fwd_weights.iter()) {
            acc = acc.add(&w_k.forward(tape, &node_mix(x, p_k)));
        }
        for (p_k, w_k) in bwd.iter().zip(self.bwd_weights.iter()) {
            acc = acc.add(&w_k.forward(tape, &node_mix(x, p_k)));
        }
        if let Some(adp) = ctx.adaptive_support(tape) {
            let mut mixed = x.clone();
            for w_k in &self.adp_weights {
                mixed = node_mix(&mixed, &adp);
                acc = acc.add(&w_k.forward(tape, &mixed));
            }
        }
        acc
    }

    fn forward_eval(&self, x: &Tensor, ctx: &GraphContext) -> Tensor {
        // k = 0 term: the node's own features.
        let mut acc = self.self_weight.forward_eval(x);
        for (p_k, w_k) in ctx.diffusion_fwd_tensors().iter().zip(self.fwd_weights.iter()) {
            acc = ops::add(&acc, &w_k.forward_eval(&node_mix_eval(x, p_k)));
        }
        for (p_k, w_k) in ctx.diffusion_bwd_tensors().iter().zip(self.bwd_weights.iter()) {
            acc = ops::add(&acc, &w_k.forward_eval(&node_mix_eval(x, p_k)));
        }
        if let Some(adp) = ctx.adaptive_support_eval() {
            let mut mixed = x.clone();
            for w_k in &self.adp_weights {
                mixed = node_mix_eval(&mixed, &adp);
                acc = ops::add(&acc, &w_k.forward_eval(&mixed));
            }
        }
        acc
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut v: Vec<Parameter> = self
            .fwd_weights
            .iter()
            .chain(self.bwd_weights.iter())
            .chain(self.adp_weights.iter())
            .flat_map(Linear::parameters)
            .collect();
        v.extend(self.self_weight.parameters());
        v
    }

    fn kind(&self) -> OpKind {
        OpKind::Dgcn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_graph::{random_geometric_graph, GraphGenConfig, SensorGraph};
    use cts_tensor::init;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn dgcn_uses_neighbour_information() {
        let mut rng = SmallRng::seed_from_u64(0);
        let g = random_geometric_graph(&mut rng, &GraphGenConfig { n: 5, sigma: 0.8, threshold: 0.1 });
        let ctx = GraphContext::from_graph(&g, 2);
        let op = DgcnOp::new(&mut rng, "dgcn", 3, 2, false);
        let tape = cts_autograd::Tape::new();
        let mut x = init::uniform(&mut rng, [1, 5, 2, 3], -1.0, 1.0);
        let y0 = op.forward(&tape, &tape.constant(x.clone()), &ctx).value();
        // perturb node 4; some other node's output must change
        for t in 0..2 {
            for d in 0..3 {
                *x.at_mut(&[0, 4, t, d]) += 2.0;
            }
        }
        let y1 = op.forward(&tape, &tape.constant(x), &ctx).value();
        let mut changed = false;
        for n in 0..4 {
            for t in 0..2 {
                for d in 0..3 {
                    if (y0.at(&[0, n, t, d]) - y1.at(&[0, n, t, d])).abs() > 1e-6 {
                        changed = true;
                    }
                }
            }
        }
        assert!(changed, "diffusion did not propagate");
    }

    #[test]
    fn dgcn_on_disconnected_graph_degenerates_to_self_term() {
        let mut rng = SmallRng::seed_from_u64(1);
        let ctx = GraphContext::from_graph(&SensorGraph::disconnected(4), 2);
        let op = DgcnOp::new(&mut rng, "dgcn", 3, 2, false);
        let tape = cts_autograd::Tape::new();
        let mut x = init::uniform(&mut rng, [1, 4, 2, 3], -1.0, 1.0);
        let y0 = op.forward(&tape, &tape.constant(x.clone()), &ctx).value();
        for t in 0..2 {
            for d in 0..3 {
                *x.at_mut(&[0, 3, t, d]) += 2.0;
            }
        }
        let y1 = op.forward(&tape, &tape.constant(x), &ctx).value();
        for n in 0..3 {
            for t in 0..2 {
                for d in 0..3 {
                    assert_eq!(y0.at(&[0, n, t, d]), y1.at(&[0, n, t, d]));
                }
            }
        }
    }

    #[test]
    fn dgcn_adaptive_support_gets_gradients() {
        let mut rng = SmallRng::seed_from_u64(2);
        let ctx = GraphContext::from_graph(&SensorGraph::disconnected(4), 2)
            .with_adaptive(&mut rng, 3);
        let op = DgcnOp::new(&mut rng, "dgcn", 3, 2, true);
        let tape = cts_autograd::Tape::new();
        let x = tape.constant(init::uniform(&mut rng, [1, 4, 2, 3], -1.0, 1.0));
        let loss = op.forward(&tape, &x, &ctx).square().sum_all();
        tape.backward(&loss);
        for p in ctx.parameters() {
            assert!(p.grad().norm() > 0.0, "adaptive embedding got no grad");
        }
    }

    #[test]
    fn cheb_gcn_shape_and_grads() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = random_geometric_graph(&mut rng, &GraphGenConfig { n: 4, ..Default::default() });
        let ctx = GraphContext::from_graph(&g, 2);
        let op = ChebGcnOp::new(&mut rng, "cheb", 3, 2);
        let tape = cts_autograd::Tape::new();
        let x = tape.constant(init::uniform(&mut rng, [2, 4, 3, 3], -1.0, 1.0));
        let y = op.forward(&tape, &x, &ctx);
        assert_eq!(y.shape(), vec![2, 4, 3, 3]);
        let loss = y.square().sum_all();
        tape.backward(&loss);
        assert!(op.parameters().iter().all(|p| p.grad().norm() >= 0.0));
        assert!(op.parameters().iter().any(|p| p.grad().norm() > 0.0));
    }
}
