//! The `StOperator` trait, the compact/full operator sets, and the factory.

use crate::{
    ChebGcnOp, Conv1dOp, DgcnOp, GdccOp, GraphContext, GruOp, IdentityOp, InformerSOp,
    InformerTOp, LstmOp, OpKind, TransformerSOp, TransformerTOp, ZeroOp,
};
use cts_autograd::{Parameter, Tape, Var};
use cts_nn::LayerNorm;
use cts_tensor::Tensor;
use rand::Rng;

/// A spatio-temporal operator: `[B,N,T,D] → [B,N,T,D]`.
pub trait StOperator {
    /// Apply the operator.
    fn forward(&self, tape: &Tape, x: &Var, ctx: &GraphContext) -> Var;
    /// Tape-free forward for compiled inference plans. Implementations MUST
    /// call the same kernels in the same order as [`Self::forward`] so the
    /// output is bit-identical (weights are read in place, never copied).
    fn forward_eval(&self, x: &Tensor, ctx: &GraphContext) -> Tensor;
    /// The operator's trainable weights (excluding shared context params).
    fn parameters(&self) -> Vec<Parameter>;
    /// Which kind this operator instantiates.
    fn kind(&self) -> OpKind;
}

/// The paper's compact operator set `O` (§3.2.3): GDCC, INF-T, DGCN, INF-S
/// plus the non-parametric zero and identity.
pub fn compact_set() -> Vec<OpKind> {
    vec![
        OpKind::Zero,
        OpKind::Identity,
        OpKind::Gdcc,
        OpKind::InformerT,
        OpKind::Dgcn,
        OpKind::InformerS,
    ]
}

/// Every operator of Table 1 plus zero/identity — the *w/o design
/// principles* ablation search space (Tables 9–16).
pub fn full_set() -> Vec<OpKind> {
    OpKind::all().to_vec()
}

/// ReLU → op → LayerNorm wrapper applied to every parametric operator for
/// training stability (the paper follows DARTS's ReLU-op-BN ordering;
/// LayerNorm substitutes for BN, see DESIGN.md).
struct ReluNormed {
    inner: Box<dyn StOperator>,
    norm: LayerNorm,
}

impl StOperator for ReluNormed {
    fn forward(&self, tape: &Tape, x: &Var, ctx: &GraphContext) -> Var {
        let activated = x.relu();
        let out = self.inner.forward(tape, &activated, ctx);
        self.norm.forward(tape, &out)
    }

    fn forward_eval(&self, x: &Tensor, ctx: &GraphContext) -> Tensor {
        let activated = cts_tensor::ops::relu(x);
        let out = self.inner.forward_eval(&activated, ctx);
        self.norm.forward_eval(&out)
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.inner.parameters();
        v.extend(self.norm.parameters());
        v
    }

    fn kind(&self) -> OpKind {
        self.inner.kind()
    }
}

/// Instantiate an operator of `kind` with channel width `d`.
///
/// `gcn_k` sizes the GCN-family weight stacks and must match the diffusion
/// order the [`GraphContext`] was built with; `adaptive` states whether
/// that context carries an adaptive support (it gates DGCN's adaptive
/// weights — allocating them against a context that never offers the
/// support would leave them permanently gradient-starved).
///
/// Parametric operators are wrapped in ReLU-op-norm; zero/identity are
/// returned bare.
pub fn build_operator(
    rng: &mut impl Rng,
    kind: OpKind,
    name: &str,
    d: usize,
    gcn_k: usize,
    adaptive: bool,
) -> Box<dyn StOperator> {
    let inner: Box<dyn StOperator> = match kind {
        OpKind::Zero => return Box::new(ZeroOp),
        OpKind::Identity => return Box::new(IdentityOp),
        OpKind::Conv1d => Box::new(Conv1dOp::new(rng, name, d)),
        OpKind::Gdcc => Box::new(GdccOp::new(rng, name, d)),
        OpKind::Lstm => Box::new(LstmOp::new(rng, name, d)),
        OpKind::Gru => Box::new(GruOp::new(rng, name, d)),
        OpKind::TransformerT => Box::new(TransformerTOp::new(rng, name, d)),
        OpKind::InformerT => Box::new(InformerTOp::new(rng, name, d)),
        OpKind::ChebGcn => Box::new(ChebGcnOp::new(rng, name, d, gcn_k)),
        OpKind::Dgcn => Box::new(DgcnOp::new(rng, name, d, gcn_k, adaptive)),
        OpKind::TransformerS => Box::new(TransformerSOp::new(rng, name, d)),
        OpKind::InformerS => Box::new(InformerSOp::new(rng, name, d)),
    };
    Box::new(ReluNormed {
        inner,
        norm: LayerNorm::new(&format!("{name}.norm"), d),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_graph::{random_geometric_graph, GraphGenConfig};
    use cts_tensor::init;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn compact_set_matches_paper() {
        let set = compact_set();
        assert_eq!(set.len(), 6);
        assert!(set.contains(&OpKind::Gdcc));
        assert!(set.contains(&OpKind::InformerT));
        assert!(set.contains(&OpKind::Dgcn));
        assert!(set.contains(&OpKind::InformerS));
        assert!(set.contains(&OpKind::Zero));
        assert!(set.contains(&OpKind::Identity));
        // RNNs and the non-chosen variants are excluded
        assert!(!set.contains(&OpKind::Gru));
        assert!(!set.contains(&OpKind::TransformerT));
        assert!(!set.contains(&OpKind::ChebGcn));
    }

    #[test]
    fn full_set_has_all_twelve() {
        assert_eq!(full_set().len(), 12);
    }

    #[test]
    fn every_operator_preserves_shape_and_trains() {
        let mut rng = SmallRng::seed_from_u64(0);
        let g = random_geometric_graph(&mut rng, &GraphGenConfig { n: 5, ..Default::default() });
        let ctx = GraphContext::from_graph(&g, 2);
        let d = 6;
        for kind in full_set() {
            let op = build_operator(&mut rng, kind, "op", d, 2, false);
            assert_eq!(op.kind(), kind);
            let tape = Tape::new();
            let x = tape.constant(init::uniform(&mut rng, [2, 5, 8, d], -1.0, 1.0));
            let y = op.forward(&tape, &x, &ctx);
            assert_eq!(y.shape(), vec![2, 5, 8, d], "{kind} changed shape");
            if kind.is_parametric() {
                let loss = y.square().sum_all();
                tape.backward(&loss);
                let got_grad = op.parameters().iter().any(|p| p.grad().norm() > 0.0);
                assert!(got_grad, "{kind}: no gradient reached any parameter");
                assert!(!op.parameters().is_empty());
            } else {
                assert!(op.parameters().is_empty());
            }
        }
    }

    /// Regression for the hard-coded `k = 2` weight stacks: at any other
    /// diffusion order the GCN ops used to leave weights permanently
    /// gradient-starved (ChebGcn) or truncate the expansion (Dgcn). Every
    /// parameter must now see a gradient at non-default `k`.
    #[test]
    fn gcn_ops_train_every_weight_at_non_default_k() {
        let mut rng = SmallRng::seed_from_u64(9);
        let g = random_geometric_graph(&mut rng, &GraphGenConfig { n: 5, sigma: 0.8, threshold: 0.1 });
        for k in [1usize, 3] {
            let ctx = GraphContext::from_graph(&g, k).with_adaptive(&mut rng, 4);
            let d = 4;
            for kind in [OpKind::ChebGcn, OpKind::Dgcn] {
                let op = build_operator(&mut rng, kind, "op", d, k, true);
                let tape = Tape::new();
                let x = tape.constant(init::uniform(&mut rng, [2, 5, 3, d], -1.0, 1.0));
                let loss = op.forward(&tape, &x, &ctx).square().sum_all();
                tape.backward(&loss);
                for p in op.parameters() {
                    assert!(
                        p.grad().norm() > 0.0,
                        "{kind} (k={k}): parameter {} got no gradient",
                        p.name()
                    );
                }
            }
        }
    }
}
