//! Non-parametric ops and the CNN-family T-operators.

use crate::{GraphContext, OpKind};
use crate::registry::StOperator;
use cts_autograd::{Parameter, Tape, Var};
use cts_nn::{GatedTemporalConv, TemporalConvLayer};
use cts_tensor::{ops, Tensor};
use rand::Rng;

/// The zero operator: cuts an edge in the micro-DAG.
pub struct ZeroOp;

impl StOperator for ZeroOp {
    fn forward(&self, _tape: &Tape, x: &Var, _ctx: &GraphContext) -> Var {
        x.scale(0.0)
    }

    fn forward_eval(&self, x: &Tensor, _ctx: &GraphContext) -> Tensor {
        ops::scale(x, 0.0)
    }

    fn parameters(&self) -> Vec<Parameter> {
        vec![]
    }

    fn kind(&self) -> OpKind {
        OpKind::Zero
    }
}

/// The identity operator: a residual edge.
pub struct IdentityOp;

impl StOperator for IdentityOp {
    fn forward(&self, _tape: &Tape, x: &Var, _ctx: &GraphContext) -> Var {
        x.clone()
    }

    fn forward_eval(&self, x: &Tensor, _ctx: &GraphContext) -> Tensor {
        x.clone()
    }

    fn parameters(&self) -> Vec<Parameter> {
        vec![]
    }

    fn kind(&self) -> OpKind {
        OpKind::Identity
    }
}

/// Plain 1D causal convolution over time (Eq. 8), kernel 2.
pub struct Conv1dOp {
    conv: TemporalConvLayer,
}

impl Conv1dOp {
    /// Kernel-2, dilation-1 causal convolution with `d` channels.
    pub fn new(rng: &mut impl Rng, name: &str, d: usize) -> Self {
        Self {
            conv: TemporalConvLayer::new(rng, name, 2, d, d, 1, true),
        }
    }
}

impl StOperator for Conv1dOp {
    fn forward(&self, tape: &Tape, x: &Var, _ctx: &GraphContext) -> Var {
        self.conv.forward(tape, x)
    }

    fn forward_eval(&self, x: &Tensor, _ctx: &GraphContext) -> Tensor {
        self.conv.forward_eval(x)
    }

    fn parameters(&self) -> Vec<Parameter> {
        self.conv.parameters()
    }

    fn kind(&self) -> OpKind {
        OpKind::Conv1d
    }
}

/// Gated dilated causal convolution (Eq. 9), kernel 2, dilation 2 — the
/// CNN-family representative of the compact set.
pub struct GdccOp {
    gate: GatedTemporalConv,
}

impl GdccOp {
    /// GDCC with `d` channels.
    pub fn new(rng: &mut impl Rng, name: &str, d: usize) -> Self {
        Self {
            gate: GatedTemporalConv::new(rng, name, 2, d, d, 2),
        }
    }
}

impl StOperator for GdccOp {
    fn forward(&self, tape: &Tape, x: &Var, _ctx: &GraphContext) -> Var {
        self.gate.forward(tape, x)
    }

    fn forward_eval(&self, x: &Tensor, _ctx: &GraphContext) -> Tensor {
        self.gate.forward_eval(x)
    }

    fn parameters(&self) -> Vec<Parameter> {
        self.gate.parameters()
    }

    fn kind(&self) -> OpKind {
        OpKind::Gdcc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_graph::SensorGraph;
    use cts_tensor::{init, Tensor};
    use rand::{rngs::SmallRng, SeedableRng};

    fn ctx() -> GraphContext {
        GraphContext::from_graph(&SensorGraph::identity(3), 2)
    }

    #[test]
    fn zero_is_zero_identity_is_identity() {
        let tape = Tape::new();
        let x = tape.constant(init::uniform(
            &mut SmallRng::seed_from_u64(0),
            [1, 3, 4, 2],
            -1.0,
            1.0,
        ));
        let zero = ZeroOp.forward(&tape, &x, &ctx());
        assert_eq!(zero.value().sum(), 0.0);
        assert_eq!(zero.value().shape(), x.value().shape());
        let id = IdentityOp.forward(&tape, &x, &ctx());
        assert!(id.value().approx_eq(&x.value(), 0.0));
    }

    #[test]
    fn gdcc_respects_causality() {
        let mut rng = SmallRng::seed_from_u64(1);
        let op = GdccOp::new(&mut rng, "gdcc", 2);
        let tape = Tape::new();
        let mut base = Tensor::zeros([1, 1, 8, 2]);
        base.data_mut()[0] = 1.0;
        let x0 = tape.constant(base.clone());
        let y0 = op.forward(&tape, &x0, &ctx()).value();
        // perturb the last timestamp: earlier outputs must not change
        base.data_mut()[7 * 2] = 9.0;
        let x1 = tape.constant(base);
        let y1 = op.forward(&tape, &x1, &ctx()).value();
        for t in 0..7 {
            assert_eq!(y0.at(&[0, 0, t, 0]), y1.at(&[0, 0, t, 0]), "leak at t={t}");
        }
    }

    #[test]
    fn conv1d_param_count() {
        let mut rng = SmallRng::seed_from_u64(2);
        let op = Conv1dOp::new(&mut rng, "c", 4);
        // kernel [2,4,4] + bias [4]
        let total: usize = op.parameters().iter().map(|p| p.len()).sum();
        assert_eq!(total, 2 * 4 * 4 + 4);
    }
}
