//! Graph context shared by all S-operators: precomputed diffusion supports,
//! Chebyshev bases, and (optionally) a learned adaptive adjacency.

use cts_autograd::{Parameter, Tape, Var};
use cts_graph::{chebyshev_basis, transition_matrices, transition_powers, SensorGraph};
use cts_tensor::{init, ops, Tensor};
use rand::Rng;

/// Everything an S-operator needs beyond its own weights.
///
/// Built once per model from the dataset's [`SensorGraph`]; the diffusion
/// powers `P_f^k`, `P_b^k` (Eq. 15) and the Chebyshev basis `T_k(L̃)`
/// (Eq. 14) are precomputed as constants. When the dataset has no
/// predefined adjacency (Solar-Energy, Electricity) an *adaptive* adjacency
/// `softmax(relu(E₁·E₂))` is learned from node embeddings instead
/// (Graph WaveNet / MTGNN style).
pub struct GraphContext {
    n: usize,
    diffusion_fwd: Vec<Tensor>,
    diffusion_bwd: Vec<Tensor>,
    cheb: Vec<Tensor>,
    adaptive: Option<(Parameter, Parameter)>,
}

impl GraphContext {
    /// Precompute supports from a sensor graph with `k` diffusion steps /
    /// Chebyshev order.
    pub fn from_graph(graph: &SensorGraph, k: usize) -> Self {
        let (fwd, bwd) = transition_matrices(graph.adjacency());
        Self {
            n: graph.n(),
            // skip power 0 (identity) — the identity path is the DAG's job
            diffusion_fwd: transition_powers(&fwd, k)[1..].to_vec(),
            diffusion_bwd: transition_powers(&bwd, k)[1..].to_vec(),
            cheb: chebyshev_basis(graph.adjacency(), k + 1),
            adaptive: None,
        }
    }

    /// Add learned node embeddings for an adaptive adjacency.
    pub fn with_adaptive(mut self, rng: &mut impl Rng, emb_dim: usize) -> Self {
        let e1 = Parameter::new("adaptive.e1", init::normal(rng, [self.n, emb_dim], 0.1));
        let e2 = Parameter::new("adaptive.e2", init::normal(rng, [emb_dim, self.n], 0.1));
        self.adaptive = Some((e1, e2));
        self
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Diffusion-step count `K`.
    pub fn k(&self) -> usize {
        self.diffusion_fwd.len()
    }

    /// Forward diffusion supports `P_f¹..P_f^K` as tape constants.
    pub fn diffusion_fwd(&self, tape: &Tape) -> Vec<Var> {
        self.diffusion_fwd.iter().map(|m| tape.constant(m.clone())).collect()
    }

    /// Backward diffusion supports `P_b¹..P_b^K` as tape constants.
    pub fn diffusion_bwd(&self, tape: &Tape) -> Vec<Var> {
        self.diffusion_bwd.iter().map(|m| tape.constant(m.clone())).collect()
    }

    /// Chebyshev basis `T₀..T_K` as tape constants.
    pub fn chebyshev(&self, tape: &Tape) -> Vec<Var> {
        self.cheb.iter().map(|m| tape.constant(m.clone())).collect()
    }

    /// The adaptive adjacency `softmax(relu(E₁·E₂))` as a differentiable
    /// var, when embeddings are present.
    pub fn adaptive_support(&self, tape: &Tape) -> Option<Var> {
        self.adaptive.as_ref().map(|(e1, e2)| {
            tape.param(e1)
                .matmul(&tape.param(e2))
                .relu()
                .softmax_last()
        })
    }

    /// Forward diffusion supports as raw tensors (tape-free path).
    pub fn diffusion_fwd_tensors(&self) -> &[Tensor] {
        &self.diffusion_fwd
    }

    /// Backward diffusion supports as raw tensors (tape-free path).
    pub fn diffusion_bwd_tensors(&self) -> &[Tensor] {
        &self.diffusion_bwd
    }

    /// Chebyshev basis as raw tensors (tape-free path).
    pub fn chebyshev_tensors(&self) -> &[Tensor] {
        &self.cheb
    }

    /// Tape-free adaptive adjacency mirroring [`Self::adaptive_support`]
    /// kernel for kernel; reads the embeddings in place, so weight updates
    /// flow through without recompilation.
    pub fn adaptive_support_eval(&self) -> Option<Tensor> {
        self.adaptive.as_ref().map(|(e1, e2)| {
            ops::softmax_last(&ops::relu(&ops::matmul(&e1.value(), &e2.value())))
        })
    }

    /// Embedding parameters (must be trained with the network weights).
    pub fn parameters(&self) -> Vec<Parameter> {
        match &self.adaptive {
            Some((e1, e2)) => vec![e1.clone(), e2.clone()],
            None => vec![],
        }
    }

    /// True when an adaptive adjacency is learned (operators that own
    /// adaptive-direction weights should only allocate them in this case).
    pub fn has_adaptive(&self) -> bool {
        self.adaptive.is_some()
    }

    /// Embedding width of the adaptive adjacency factors, when present —
    /// the `emb_dim` passed to [`Self::with_adaptive`]. Static cost
    /// analysis prices the per-eval `softmax(relu(E₁·E₂))` from this.
    pub fn adaptive_emb_dim(&self) -> Option<usize> {
        self.adaptive.as_ref().map(|(e1, _)| e1.value().shape()[1])
    }

    /// True when the context carries usable spatial structure (either a
    /// non-empty predefined graph or adaptive embeddings).
    pub fn has_spatial_signal(&self) -> bool {
        self.adaptive.is_some() || self.diffusion_fwd.iter().any(|m| m.sum() > 0.0)
    }
}

/// Mix node information: `A · X` over the node axis of `[B, N, T, D]`.
///
/// `support` is `[N, N]` (constant or learned). Implemented as
/// permute → broadcast matmul → permute.
pub fn node_mix(x: &Var, support: &Var) -> Var {
    let shape = x.shape(); // [B,N,T,D]
    debug_assert_eq!(shape.len(), 4);
    let xt = x.permute(&[0, 2, 1, 3]); // [B,T,N,D]
    let mixed = support.matmul(&xt); // broadcast over [B,T]
    mixed.permute(&[0, 2, 1, 3])
}

/// Tape-free [`node_mix`]: the same permute → matmul → permute kernels,
/// bit-identical output.
pub fn node_mix_eval(x: &Tensor, support: &Tensor) -> Tensor {
    debug_assert_eq!(x.rank(), 4);
    let xt = ops::permute(x, &[0, 2, 1, 3]); // [B,T,N,D]
    let mixed = ops::matmul(support, &xt); // broadcast over [B,T]
    ops::permute(&mixed, &[0, 2, 1, 3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_graph::{random_geometric_graph, GraphGenConfig};
    use rand::{rngs::SmallRng, SeedableRng};

    fn ctx() -> GraphContext {
        let mut rng = SmallRng::seed_from_u64(0);
        let g = random_geometric_graph(&mut rng, &GraphGenConfig { n: 6, ..Default::default() });
        GraphContext::from_graph(&g, 2)
    }

    #[test]
    fn supports_have_right_counts_and_shapes() {
        let c = ctx();
        let tape = Tape::new();
        assert_eq!(c.diffusion_fwd(&tape).len(), 2);
        assert_eq!(c.diffusion_bwd(&tape).len(), 2);
        assert_eq!(c.chebyshev(&tape).len(), 3);
        assert_eq!(c.diffusion_fwd(&tape)[0].shape(), vec![6, 6]);
        assert!(c.adaptive_support(&tape).is_none());
        assert!(c.has_spatial_signal());
    }

    #[test]
    fn adaptive_rows_are_distributions() {
        let mut rng = SmallRng::seed_from_u64(1);
        let c = ctx().with_adaptive(&mut rng, 4);
        let tape = Tape::new();
        let a = c.adaptive_support(&tape).unwrap().value();
        for i in 0..6 {
            let s: f32 = (0..6).map(|j| a.at(&[i, j])).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert_eq!(c.parameters().len(), 2);
    }

    #[test]
    fn node_mix_identity_is_noop() {
        let tape = Tape::new();
        let x = tape.constant(cts_tensor::init::uniform(
            &mut SmallRng::seed_from_u64(2),
            [2, 4, 3, 5],
            -1.0,
            1.0,
        ));
        let eye = tape.constant(Tensor::eye(4));
        let y = node_mix(&x, &eye);
        assert!(y.value().approx_eq(&x.value(), 1e-6));
    }

    #[test]
    fn node_mix_averages_neighbours() {
        let tape = Tape::new();
        // two nodes, swap matrix
        let x = tape.constant(Tensor::from_vec([1, 2, 1, 1], vec![1.0, 5.0]));
        let swap = tape.constant(Tensor::from_vec([2, 2], vec![0.0, 1.0, 1.0, 0.0]));
        let y = node_mix(&x, &swap).value();
        assert_eq!(y.data(), &[5.0, 1.0]);
    }

    #[test]
    fn disconnected_graph_has_no_signal() {
        let g = SensorGraph::disconnected(4);
        let c = GraphContext::from_graph(&g, 2);
        assert!(!c.has_spatial_signal());
    }
}
