//! Static taxonomy data backing Table 1 (operator catalogue) and Table 38
//! (categorisation of human-designed ST-blocks).

use crate::{OpFamily, OpKind};

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct OperatorRow {
    /// The operator.
    pub kind: OpKind,
    /// Its family.
    pub family: OpFamily,
    /// Representative literature (paper reference numbers).
    pub literature: &'static str,
    /// Equation number in the paper.
    pub equation: &'static str,
    /// Whether the compact set keeps it (§3.2.3).
    pub in_compact_set: bool,
}

/// The full operator catalogue of Table 1 with the selection outcome.
pub fn operator_table() -> Vec<OperatorRow> {
    use OpKind::*;
    let row = |kind: OpKind, literature, equation, in_compact_set| OperatorRow {
        kind,
        family: kind.family(),
        literature,
        equation,
        in_compact_set,
    };
    vec![
        row(Conv1d, "[14]", "Eq. 8", false),
        row(Gdcc, "[9, 17, 51]", "Eq. 9", true),
        row(Lstm, "[24, 39]", "Eq. 10", false),
        row(Gru, "[1, 4, 29]", "Eq. 11", false),
        row(TransformerT, "[35, 47]", "Eq. 12", false),
        row(InformerT, "[54]", "Eq. 13", true),
        row(ChebGcn, "[9, 11, 14, 17, 51]", "Eq. 14", false),
        row(Dgcn, "[29, 34, 46]", "Eq. 15", true),
        row(TransformerS, "[35, 47]", "Eq. 16", false),
        row(InformerS, "(new)", "Eq. 17", true),
    ]
}

/// One cell of Table 38: which human-designed models combine a T-family
/// (column) with an S-family (row).
#[derive(Clone, Debug)]
pub struct TaxonomyCell {
    /// Spatial family of the ST-block.
    pub s_family: &'static str,
    /// Temporal family of the ST-block.
    pub t_family: &'static str,
    /// Citations occupying the cell ("None" when empty).
    pub models: &'static str,
}

/// Table 38: categorisation of human-designed ST-blocks.
pub fn st_block_taxonomy() -> Vec<TaxonomyCell> {
    vec![
        TaxonomyCell { s_family: "GCN", t_family: "CNN", models: "[9, 11, 14, 17, 45, 46, 51]" },
        TaxonomyCell { s_family: "GCN", t_family: "RNN", models: "[1, 4, 16, 29]" },
        TaxonomyCell { s_family: "GCN", t_family: "Attention", models: "[14]" },
        TaxonomyCell { s_family: "Attention", t_family: "CNN", models: "[14]" },
        TaxonomyCell { s_family: "Attention", t_family: "RNN", models: "None" },
        TaxonomyCell { s_family: "Attention", t_family: "Attention", models: "[47, 53]" },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_ten_operators() {
        let rows = operator_table();
        assert_eq!(rows.len(), 10);
        // exactly the four compact parametric choices are kept
        let kept: Vec<OpKind> = rows.iter().filter(|r| r.in_compact_set).map(|r| r.kind).collect();
        assert_eq!(
            kept,
            vec![OpKind::Gdcc, OpKind::InformerT, OpKind::Dgcn, OpKind::InformerS]
        );
    }

    #[test]
    fn families_are_consistent() {
        for row in operator_table() {
            assert_eq!(row.family, row.kind.family());
        }
    }

    #[test]
    fn taxonomy_covers_the_2x3_grid() {
        let cells = st_block_taxonomy();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells.iter().filter(|c| c.models == "None").count(), 1);
    }
}
