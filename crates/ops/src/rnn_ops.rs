//! RNN-family T-operators (Eqs. 10–11). Excluded from the compact set by
//! design principle 1, but required for the *w/o design principles*
//! ablation.

use crate::registry::StOperator;
use crate::{GraphContext, OpKind};
use cts_autograd::{Parameter, Tape, Var};
use cts_nn::{Gru, Lstm};
use cts_tensor::Tensor;
use rand::Rng;

fn to_series(x: &Var) -> (Var, [usize; 4]) {
    let s = x.shape();
    let dims = [s[0], s[1], s[2], s[3]];
    (x.reshape(&[s[0] * s[1], s[2], s[3]]), dims)
}

fn from_series(y: &Var, dims: [usize; 4]) -> Var {
    y.reshape(&[dims[0], dims[1], dims[2], dims[3]])
}

// Tape-free view mirrors of `to_series` / `from_series`: `Var::reshape`
// clones the value and reinterprets the shape, so these are bit-identical.

fn to_series_eval(x: &Tensor) -> (Tensor, [usize; 4]) {
    let s = x.shape();
    let dims = [s[0], s[1], s[2], s[3]];
    (x.clone().reshaped([dims[0] * dims[1], dims[2], dims[3]]), dims)
}

fn from_series_eval(y: Tensor, dims: [usize; 4]) -> Tensor {
    y.reshaped([dims[0], dims[1], dims[2], dims[3]])
}

/// LSTM applied independently to each series (Eq. 10); hidden width = D so
/// the shape is preserved.
pub struct LstmOp {
    cell: Lstm,
}

impl LstmOp {
    /// LSTM with hidden width `d`.
    pub fn new(rng: &mut impl Rng, name: &str, d: usize) -> Self {
        Self {
            cell: Lstm::new(rng, name, d, d),
        }
    }
}

impl StOperator for LstmOp {
    fn forward(&self, tape: &Tape, x: &Var, _ctx: &GraphContext) -> Var {
        let (series, dims) = to_series(x);
        let y = self.cell.forward_sequence(tape, &series);
        from_series(&y, dims)
    }

    fn forward_eval(&self, x: &Tensor, _ctx: &GraphContext) -> Tensor {
        let (series, dims) = to_series_eval(x);
        let y = self.cell.forward_sequence_eval(&series);
        from_series_eval(y, dims)
    }

    fn parameters(&self) -> Vec<Parameter> {
        self.cell.parameters()
    }

    fn kind(&self) -> OpKind {
        OpKind::Lstm
    }
}

/// GRU applied independently to each series (Eq. 11).
pub struct GruOp {
    cell: Gru,
}

impl GruOp {
    /// GRU with hidden width `d`.
    pub fn new(rng: &mut impl Rng, name: &str, d: usize) -> Self {
        Self {
            cell: Gru::new(rng, name, d, d),
        }
    }
}

impl StOperator for GruOp {
    fn forward(&self, tape: &Tape, x: &Var, _ctx: &GraphContext) -> Var {
        let (series, dims) = to_series(x);
        let y = self.cell.forward_sequence(tape, &series);
        from_series(&y, dims)
    }

    fn forward_eval(&self, x: &Tensor, _ctx: &GraphContext) -> Tensor {
        let (series, dims) = to_series_eval(x);
        let y = self.cell.forward_sequence_eval(&series);
        from_series_eval(y, dims)
    }

    fn parameters(&self) -> Vec<Parameter> {
        self.cell.parameters()
    }

    fn kind(&self) -> OpKind {
        OpKind::Gru
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_graph::SensorGraph;
    use cts_tensor::init;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn rnn_ops_preserve_shape() {
        let mut rng = SmallRng::seed_from_u64(0);
        let ctx = GraphContext::from_graph(&SensorGraph::identity(3), 2);
        let tape = Tape::new();
        let x = tape.constant(init::uniform(&mut rng, [2, 3, 5, 4], -1.0, 1.0));
        let lstm = LstmOp::new(&mut rng, "l", 4);
        assert_eq!(lstm.forward(&tape, &x, &ctx).shape(), vec![2, 3, 5, 4]);
        let gru = GruOp::new(&mut rng, "g", 4);
        assert_eq!(gru.forward(&tape, &x, &ctx).shape(), vec![2, 3, 5, 4]);
    }

    #[test]
    fn series_are_independent() {
        // output of series 0 must not depend on series 1's input
        let mut rng = SmallRng::seed_from_u64(1);
        let ctx = GraphContext::from_graph(&SensorGraph::identity(2), 2);
        let op = GruOp::new(&mut rng, "g", 2);
        let tape = Tape::new();
        let mut a = init::uniform(&mut rng, [1, 2, 4, 2], -1.0, 1.0);
        let y0 = op.forward(&tape, &tape.constant(a.clone()), &ctx).value();
        // perturb node 1's inputs only
        for t in 0..4 {
            *a.at_mut(&[0, 1, t, 0]) += 5.0;
        }
        let y1 = op.forward(&tape, &tape.constant(a), &ctx).value();
        for t in 0..4 {
            for d in 0..2 {
                assert_eq!(y0.at(&[0, 0, t, d]), y1.at(&[0, 0, t, d]));
            }
        }
    }
}
