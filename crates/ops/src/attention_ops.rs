//! Attention-family T- and S-operators (Eqs. 12–13, 16–17).

use crate::registry::StOperator;
use crate::{GraphContext, OpKind};
use cts_autograd::{Parameter, Tape, Var};
use cts_nn::{AttentionKind, AttentionLayer};
use cts_tensor::{ops, Tensor};
use rand::Rng;

/// Informer's default sampling factor `c` in `u = ⌈c·ln L⌉`.
const INFORMER_FACTOR: f32 = 1.0;

fn temporal_view(x: &Var) -> (Var, [usize; 4]) {
    let s = x.shape();
    let dims = [s[0], s[1], s[2], s[3]];
    (x.reshape(&[s[0] * s[1], s[2], s[3]]), dims)
}

fn spatial_view(x: &Var) -> (Var, [usize; 4]) {
    let s = x.shape();
    let dims = [s[0], s[1], s[2], s[3]];
    // [B,N,T,D] -> [B,T,N,D] -> [B·T, N, D]
    (
        x.permute(&[0, 2, 1, 3]).reshape(&[s[0] * s[2], s[1], s[3]]),
        dims,
    )
}

fn from_temporal(y: &Var, d: [usize; 4]) -> Var {
    y.reshape(&[d[0], d[1], d[2], d[3]])
}

fn from_spatial(y: &Var, d: [usize; 4]) -> Var {
    y.reshape(&[d[0], d[2], d[1], d[3]]).permute(&[0, 2, 1, 3])
}

// Tape-free view mirrors: a `Var::reshape` clones the value then
// reinterprets the shape, so `clone().reshaped(..)` is bit-identical.

fn temporal_view_eval(x: &Tensor) -> (Tensor, [usize; 4]) {
    let s = x.shape();
    let dims = [s[0], s[1], s[2], s[3]];
    (x.clone().reshaped([dims[0] * dims[1], dims[2], dims[3]]), dims)
}

fn spatial_view_eval(x: &Tensor) -> (Tensor, [usize; 4]) {
    let s = x.shape();
    let dims = [s[0], s[1], s[2], s[3]];
    (
        ops::permute(x, &[0, 2, 1, 3]).reshaped([dims[0] * dims[2], dims[1], dims[3]]),
        dims,
    )
}

fn from_temporal_eval(y: Tensor, d: [usize; 4]) -> Tensor {
    y.reshaped([d[0], d[1], d[2], d[3]])
}

fn from_spatial_eval(y: Tensor, d: [usize; 4]) -> Tensor {
    ops::permute(&y.reshaped([d[0], d[2], d[1], d[3]]), &[0, 2, 1, 3])
}

macro_rules! attention_op {
    ($name:ident, $kind:expr, $attn:expr, $view:ident, $unview:ident, $view_eval:ident, $unview_eval:ident, $doc:literal) => {
        #[doc = $doc]
        pub struct $name {
            attn: AttentionLayer,
        }

        impl $name {
            /// Build with channel width `d`.
            pub fn new(rng: &mut impl Rng, name: &str, d: usize) -> Self {
                Self {
                    attn: AttentionLayer::new(rng, name, d, $attn),
                }
            }
        }

        impl StOperator for $name {
            fn forward(&self, tape: &Tape, x: &Var, _ctx: &GraphContext) -> Var {
                let (v, dims) = $view(x);
                let y = self.attn.forward(tape, &v);
                $unview(&y, dims)
            }

            fn forward_eval(&self, x: &Tensor, _ctx: &GraphContext) -> Tensor {
                let (v, dims) = $view_eval(x);
                let y = self.attn.forward_eval(&v);
                $unview_eval(y, dims)
            }

            fn parameters(&self) -> Vec<Parameter> {
                self.attn.parameters()
            }

            fn kind(&self) -> OpKind {
                $kind
            }
        }
    };
}

attention_op!(
    TransformerTOp,
    OpKind::TransformerT,
    AttentionKind::Full,
    temporal_view,
    from_temporal,
    temporal_view_eval,
    from_temporal_eval,
    "Full self-attention over timestamps per series (Eq. 12)."
);

attention_op!(
    InformerTOp,
    OpKind::InformerT,
    AttentionKind::ProbSparse { factor: INFORMER_FACTOR },
    temporal_view,
    from_temporal,
    temporal_view_eval,
    from_temporal_eval,
    "ProbSparse self-attention over timestamps per series — INF-T (Eq. 13)."
);

attention_op!(
    TransformerSOp,
    OpKind::TransformerS,
    AttentionKind::Full,
    spatial_view,
    from_spatial,
    spatial_view_eval,
    from_spatial_eval,
    "Full self-attention over series per timestamp (Eq. 16)."
);

attention_op!(
    InformerSOp,
    OpKind::InformerS,
    AttentionKind::ProbSparse { factor: INFORMER_FACTOR },
    spatial_view,
    from_spatial,
    spatial_view_eval,
    from_spatial_eval,
    "ProbSparse self-attention over series per timestamp — INF-S (Eq. 17)."
);

#[cfg(test)]
mod tests {
    use super::*;
    use cts_graph::SensorGraph;
    use cts_tensor::init;
    use rand::{rngs::SmallRng, SeedableRng};

    fn ctx(n: usize) -> GraphContext {
        GraphContext::from_graph(&SensorGraph::identity(n), 2)
    }

    #[test]
    fn views_roundtrip() {
        let tape = cts_autograd::Tape::new();
        let x = tape.constant(init::uniform(
            &mut SmallRng::seed_from_u64(0),
            [2, 3, 4, 5],
            -1.0,
            1.0,
        ));
        let (tv, td) = temporal_view(&x);
        assert_eq!(tv.shape(), vec![6, 4, 5]);
        assert!(from_temporal(&tv, td).value().approx_eq(&x.value(), 0.0));
        let (sv, sd) = spatial_view(&x);
        assert_eq!(sv.shape(), vec![8, 3, 5]);
        assert!(from_spatial(&sv, sd).value().approx_eq(&x.value(), 1e-6));
    }

    #[test]
    fn temporal_attention_isolates_series() {
        // T-attention must not mix information across nodes.
        let mut rng = SmallRng::seed_from_u64(1);
        let op = TransformerTOp::new(&mut rng, "att", 3);
        let tape = cts_autograd::Tape::new();
        let mut x = init::uniform(&mut rng, [1, 2, 4, 3], -1.0, 1.0);
        let y0 = op.forward(&tape, &tape.constant(x.clone()), &ctx(2)).value();
        for t in 0..4 {
            for d in 0..3 {
                *x.at_mut(&[0, 1, t, d]) += 3.0;
            }
        }
        let y1 = op.forward(&tape, &tape.constant(x), &ctx(2)).value();
        for t in 0..4 {
            for d in 0..3 {
                assert_eq!(y0.at(&[0, 0, t, d]), y1.at(&[0, 0, t, d]));
            }
        }
    }

    #[test]
    fn spatial_attention_isolates_timestamps() {
        // S-attention must not mix information across time.
        let mut rng = SmallRng::seed_from_u64(2);
        let op = TransformerSOp::new(&mut rng, "att", 3);
        let tape = cts_autograd::Tape::new();
        let mut x = init::uniform(&mut rng, [1, 3, 4, 3], -1.0, 1.0);
        let y0 = op.forward(&tape, &tape.constant(x.clone()), &ctx(3)).value();
        for n in 0..3 {
            for d in 0..3 {
                *x.at_mut(&[0, n, 3, d]) += 3.0; // only t=3 changes
            }
        }
        let y1 = op.forward(&tape, &tape.constant(x), &ctx(3)).value();
        for n in 0..3 {
            for t in 0..3 {
                for d in 0..3 {
                    assert_eq!(y0.at(&[0, n, t, d]), y1.at(&[0, n, t, d]));
                }
            }
        }
    }

    #[test]
    fn spatial_attention_mixes_nodes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let op = TransformerSOp::new(&mut rng, "att", 3);
        let tape = cts_autograd::Tape::new();
        let mut x = init::uniform(&mut rng, [1, 3, 2, 3], -1.0, 1.0);
        let y0 = op.forward(&tape, &tape.constant(x.clone()), &ctx(3)).value();
        *x.at_mut(&[0, 2, 0, 0]) += 4.0;
        let y1 = op.forward(&tape, &tape.constant(x), &ctx(3)).value();
        // node 0 at t=0 should feel node 2's change
        assert_ne!(y0.at(&[0, 0, 0, 0]), y1.at(&[0, 0, 0, 0]));
    }
}
