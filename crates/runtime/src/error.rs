//! Typed serving-path errors.
//!
//! Every failure a request can hit between `submit` and its forecast is a
//! [`ServeError`] variant — the serving layer never panics on request
//! data. Operational knobs gone wrong (`Config`), hostile inputs
//! (`BadShape`, `NonFinite`, `TooMissing`), overload (`QueueFull`,
//! `DeadlineExpired`), execution faults after the degradation ladder is
//! exhausted (`PlanExec`, `PoisonedOutput`), rollout protection
//! (`CanaryRejected`), and front-end routing/transport failures
//! (`UnknownModel`, `ShardDown`, `FrontClosed`) each carry the numbers an
//! operator needs to act on the error without a debugger.

use std::fmt;

/// Why a serving request (or a serving-layer operation) failed.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The serving layer was configured with an unusable knob value.
    Config(String),
    /// The request tensor does not match the compiled plan's input shape.
    BadShape {
        /// The shape the request arrived with.
        got: Vec<usize>,
        /// The `[N, T, F]` trailer the plan was compiled for (batch free).
        want: [usize; 3],
    },
    /// The request contains NaN/Inf and the dataset has no null sentinel
    /// to mask them into.
    NonFinite {
        /// Number of non-finite entries found.
        count: usize,
    },
    /// The request's missing-value fraction exceeds the admission cap.
    TooMissing {
        /// Observed missing fraction (sentinel + non-finite entries).
        frac: f32,
        /// The configured cap.
        cap: f32,
    },
    /// The pending queue is at its bound; the request was shed at submit.
    QueueFull {
        /// The configured queue bound.
        limit: usize,
    },
    /// The request waited past its deadline and was shed at flush.
    DeadlineExpired {
        /// Milliseconds the request spent queued.
        waited_ms: f64,
        /// The deadline it carried.
        deadline_ms: f64,
    },
    /// Plan execution failed and every ladder rung (solo retries, tape
    /// fallback) was exhausted.
    PlanExec {
        /// Total execution attempts made for this request.
        attempts: usize,
        /// What the last failure looked like.
        cause: String,
    },
    /// Execution succeeded but the output stayed non-finite through every
    /// ladder rung.
    PoisonedOutput {
        /// Total execution attempts made for this request.
        attempts: usize,
    },
    /// A new plan failed the registry's canary health check and was not
    /// admitted; the previously registered plan (if any) still serves.
    CanaryRejected {
        /// The model id the plan was offered under.
        id: String,
        /// Why the canary run failed or diverged.
        cause: String,
    },
    /// The request named a model id no serving shard has a plan for.
    UnknownModel {
        /// The model id the request carried.
        id: String,
    },
    /// A shard's request channel or worker is gone (the worker exited or
    /// its channel disconnected); the request was not enqueued.
    ShardDown {
        /// Index of the unreachable shard.
        shard: usize,
        /// What the channel failure looked like.
        cause: String,
    },
    /// The front-end's reply channel disconnected mid-collection — every
    /// worker is gone, so no further answers can arrive.
    FrontClosed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "invalid serving config: {msg}"),
            ServeError::BadShape { got, want } => write!(
                f,
                "request shape {got:?} does not match plan input [B, {}, {}, {}]",
                want[0], want[1], want[2]
            ),
            ServeError::NonFinite { count } => write!(
                f,
                "request has {count} non-finite entries and no null sentinel to mask them into"
            ),
            ServeError::TooMissing { frac, cap } => write!(
                f,
                "request is {:.1}% missing, above the {:.1}% admission cap",
                frac * 100.0,
                cap * 100.0
            ),
            ServeError::QueueFull { limit } => {
                write!(f, "pending queue is at its bound of {limit}; request shed")
            }
            ServeError::DeadlineExpired {
                waited_ms,
                deadline_ms,
            } => write!(
                f,
                "request waited {waited_ms:.2} ms, past its {deadline_ms:.2} ms deadline"
            ),
            ServeError::PlanExec { attempts, cause } => write!(
                f,
                "plan execution failed after {attempts} attempts: {cause}"
            ),
            ServeError::PoisonedOutput { attempts } => write!(
                f,
                "output stayed non-finite through {attempts} attempts"
            ),
            ServeError::CanaryRejected { id, cause } => {
                write!(f, "plan '{id}' rejected by canary gate: {cause}")
            }
            ServeError::UnknownModel { id } => {
                write!(f, "no serving shard has a plan for model '{id}'")
            }
            ServeError::ShardDown { shard, cause } => {
                write!(f, "serving shard {shard} is unreachable: {cause}")
            }
            ServeError::FrontClosed => {
                write!(f, "serving front-end reply channel closed: all workers exited")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_operator_numbers() {
        let e = ServeError::TooMissing { frac: 0.5, cap: 0.2 };
        assert_eq!(e.to_string(), "request is 50.0% missing, above the 20.0% admission cap");
        let e = ServeError::BadShape {
            got: vec![1, 2, 3],
            want: [3, 4, 2],
        };
        assert!(e.to_string().contains("[B, 3, 4, 2]"));
        let e = ServeError::DeadlineExpired {
            waited_ms: 7.5,
            deadline_ms: 5.0,
        };
        assert!(e.to_string().contains("7.50 ms"));
        let e = ServeError::UnknownModel { id: "m9".into() };
        assert!(e.to_string().contains("'m9'"));
        let e = ServeError::ShardDown {
            shard: 3,
            cause: "request channel disconnected".into(),
        };
        assert!(e.to_string().contains("shard 3"));
    }
}
