//! Per-model forecast result cache with a horizon-aware TTL.
//!
//! Serving the same window twice is common under real traffic: dashboards
//! poll, retries re-ask, and many consumers watch the same sensors. Since
//! a compiled plan is a pure function of its input window (weights held
//! fixed between retraining admissions), a forecast can be answered from
//! cache **bit-identically** — the cache stores the exact output tensor
//! and keys on the exact input bit pattern, so a hit is indistinguishable
//! from a fresh [`crate::ExecPlan::try_run`].
//!
//! Two eviction axes:
//!
//! * **Horizon TTL** — a forecast made from a window at origin `o` covers
//!   steps `o+1 ..= o+Q`. Once the newest window origin the cache has
//!   seen advances to `o + Q` or beyond, that forecast lies entirely in
//!   the past and the entry is dropped (`cache_expired`). Origins are
//!   logical window positions supplied by the caller, not wall-clock —
//!   callers that never supply origins (always `0`) simply never expire
//!   entries and rely on the LRU cap alone.
//! * **Byte cap** — inputs + outputs are accounted per entry; inserting
//!   past the cap evicts least-recently-used entries (`cache_evict`)
//!   until the new entry fits. An entry larger than the whole cap is
//!   never stored.

use cts_obs::serve as counters;
use cts_tensor::Tensor;
use std::collections::HashMap;

/// Content identity of one (sanitized) request window: shape plus the
/// exact `f32` bit pattern, pre-hashed for bucket lookup.
///
/// Built once per request with [`ForecastCache::key`] so the same bits
/// are not re-hashed between lookup and insert.
#[derive(Clone, Debug)]
pub struct CacheKey {
    hash: u64,
    shape: Vec<usize>,
    bits: Vec<u32>,
}

/// One cached forecast.
struct Entry {
    key: CacheKey,
    out_shape: Vec<usize>,
    out_bits: Vec<u32>,
    /// Window origin the forecast was made from (TTL clock position).
    origin: u64,
    /// Logical LRU clock value of the last hit or insert.
    last_used: u64,
    /// Accounted size: input bits + output bits.
    bytes: usize,
}

/// LRU + horizon-TTL cache of forecasts for one model replica.
///
/// Lives on a single serving worker thread (one per model per shard), so
/// it needs no interior synchronization; the deterministic request→shard
/// assignment in [`crate::ServeFront`] guarantees a given window content
/// always consults the same replica, so replicas never duplicate entries.
pub struct ForecastCache {
    /// Hash → entries with that hash (collision bucket).
    buckets: HashMap<u64, Vec<Entry>>,
    byte_cap: usize,
    horizon: u64,
    bytes: usize,
    entries: usize,
    /// Newest window origin observed in any lookup or insert.
    latest_origin: u64,
    /// Monotonic logical clock for LRU ordering.
    tick: u64,
}

/// FNV-1a over the shape and the window's `f32` bit pattern.
fn content_hash(shape: &[usize], bits: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(shape.len() as u64);
    for &d in shape {
        eat(d as u64);
    }
    for &w in bits {
        eat(u64::from(w));
    }
    h
}

impl ForecastCache {
    /// Cache bounded by `byte_cap` bytes with forecasts valid for
    /// `horizon` window-origin steps.
    pub fn new(byte_cap: usize, horizon: usize) -> Self {
        Self {
            buckets: HashMap::new(),
            byte_cap,
            horizon: horizon.max(1) as u64,
            bytes: 0,
            entries: 0,
            latest_origin: 0,
            tick: 0,
        }
    }

    /// Content key for a (sanitized) request window.
    pub fn key(x: &Tensor) -> CacheKey {
        let shape = x.shape().to_vec();
        let bits: Vec<u32> = x.data().iter().map(|v| v.to_bits()).collect();
        let hash = content_hash(&shape, &bits);
        CacheKey { hash, shape, bits }
    }

    /// Look up a forecast for `key` at window origin `origin`. Advances
    /// the TTL clock (expiring stale entries) and, on a hit, the entry's
    /// LRU position. Records `cache_hit`/`cache_miss`.
    pub fn lookup(&mut self, key: &CacheKey, origin: u64) -> Option<Tensor> {
        self.advance_origin(origin);
        self.tick += 1;
        let tick = self.tick;
        let hit = self.buckets.get_mut(&key.hash).and_then(|bucket| {
            bucket
                .iter_mut()
                .find(|e| e.key.shape == key.shape && e.key.bits == key.bits)
                .map(|e| {
                    e.last_used = tick;
                    Tensor::from_vec(
                        e.out_shape.clone(),
                        e.out_bits.iter().map(|&b| f32::from_bits(b)).collect(),
                    )
                })
        });
        match &hit {
            Some(_) => counters::record_cache_hit(),
            None => counters::record_cache_miss(),
        }
        hit
    }

    /// Store the forecast `y` for `key`, made from a window at `origin`.
    /// Evicts LRU entries to fit under the byte cap; an entry that alone
    /// exceeds the cap is silently skipped.
    pub fn insert(&mut self, key: CacheKey, y: &Tensor, origin: u64) {
        self.advance_origin(origin);
        // A forecast already in the past would expire on the next
        // advance; don't store it.
        if self.latest_origin.saturating_sub(origin) >= self.horizon {
            return;
        }
        let entry_bytes = (key.bits.len() + y.len()) * std::mem::size_of::<u32>();
        if entry_bytes > self.byte_cap {
            return;
        }
        // Replace an existing entry for the same content (refreshes its
        // origin — a newer identical window extends the TTL).
        self.remove_matching(&key, false);
        while self.bytes + entry_bytes > self.byte_cap {
            if !self.evict_lru() {
                break;
            }
        }
        self.tick += 1;
        self.bytes += entry_bytes;
        self.entries += 1;
        let entry = Entry {
            out_shape: y.shape().to_vec(),
            out_bits: y.data().iter().map(|v| v.to_bits()).collect(),
            origin,
            last_used: self.tick,
            bytes: entry_bytes,
            key,
        };
        self.buckets.entry(entry.key.hash).or_default().push(entry);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Accounted bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Advance the TTL clock to (at least) `origin` and drop every entry
    /// whose forecast now lies entirely in the past.
    fn advance_origin(&mut self, origin: u64) {
        if origin <= self.latest_origin {
            return;
        }
        self.latest_origin = origin;
        let horizon = self.horizon;
        let mut freed = 0usize;
        let mut expired = 0usize;
        self.buckets.retain(|_, bucket| {
            bucket.retain(|e| {
                let stale = origin.saturating_sub(e.origin) >= horizon;
                if stale {
                    freed += e.bytes;
                    expired += 1;
                }
                !stale
            });
            !bucket.is_empty()
        });
        self.bytes -= freed;
        self.entries -= expired;
        for _ in 0..expired {
            counters::record_cache_expired();
        }
    }

    /// Remove the entry matching `key`, if any. Counts it as an eviction
    /// when `count` is set.
    fn remove_matching(&mut self, key: &CacheKey, count: bool) {
        if let Some(bucket) = self.buckets.get_mut(&key.hash) {
            if let Some(pos) = bucket
                .iter()
                .position(|e| e.key.shape == key.shape && e.key.bits == key.bits)
            {
                let e = bucket.swap_remove(pos);
                self.bytes -= e.bytes;
                self.entries -= 1;
                if count {
                    counters::record_cache_evict();
                }
            }
            if bucket.is_empty() {
                self.buckets.remove(&key.hash);
            }
        }
    }

    /// Evict the least-recently-used entry. Returns false when empty.
    fn evict_lru(&mut self) -> bool {
        let victim = self
            .buckets
            .values()
            .flatten()
            .min_by_key(|e| e.last_used)
            .map(|e| e.key.clone());
        match victim {
            Some(key) => {
                self.remove_matching(&key, true);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(fill: f32) -> Tensor {
        Tensor::full([1, 2, 3], fill)
    }

    fn forecast(fill: f32) -> Tensor {
        Tensor::full([1, 2], fill)
    }

    #[test]
    fn hit_returns_exact_bits_and_miss_on_different_content() {
        let _gate = crate::testlock::counters();
        cts_obs::serve::reset();
        let mut cache = ForecastCache::new(1 << 20, 12);
        let x = window(1.25);
        let y = forecast(-0.5);
        let key = ForecastCache::key(&x);
        assert!(cache.lookup(&key, 0).is_none());
        cache.insert(key.clone(), &y, 0);
        let hit = cache.lookup(&key, 0).expect("cached");
        assert_eq!(hit.shape(), y.shape());
        assert!(hit
            .data()
            .iter()
            .zip(y.data())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        // Different content (same shape) misses.
        let other = ForecastCache::key(&window(1.26));
        assert!(cache.lookup(&other, 0).is_none());
        let snap = cts_obs::serve::snapshot();
        assert_eq!(snap.cache_hit, 1);
        assert_eq!(snap.cache_miss, 2);
    }

    #[test]
    fn nan_and_negative_zero_are_distinct_contents() {
        let mut cache = ForecastCache::new(1 << 20, 12);
        let mut a = window(0.0);
        let mut b = window(0.0);
        b.data_mut()[0] = -0.0;
        a.data_mut()[1] = f32::NAN;
        let (ka, kb) = (ForecastCache::key(&a), ForecastCache::key(&b));
        cache.insert(ka.clone(), &forecast(1.0), 0);
        assert!(cache.lookup(&kb, 0).is_none(), "-0.0 aliased 0.0");
        assert!(cache.lookup(&ka, 0).is_some(), "NaN window did not match itself");
    }

    #[test]
    fn horizon_ttl_expires_past_forecasts() {
        let _gate = crate::testlock::counters();
        cts_obs::serve::reset();
        let mut cache = ForecastCache::new(1 << 20, 4); // Q = 4
        let key = ForecastCache::key(&window(2.0));
        cache.insert(key.clone(), &forecast(9.0), 10);
        // Origin 13: forecast covers 11..=14, still partially ahead.
        assert!(cache.lookup(&key, 13).is_some());
        // Origin 14: forecast covers 11..=14, now entirely in the past.
        assert!(cache.lookup(&key, 14).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cts_obs::serve::snapshot().cache_expired, 1);
        // Inserting an already-stale forecast is a no-op.
        cache.insert(key.clone(), &forecast(9.0), 10);
        assert!(cache.is_empty());
    }

    #[test]
    fn byte_cap_evicts_lru_first() {
        let _gate = crate::testlock::counters();
        cts_obs::serve::reset();
        let per_entry = (6 + 2) * 4; // input 6 f32 + output 2 f32
        let mut cache = ForecastCache::new(per_entry * 2, 100);
        let keys: Vec<CacheKey> = (0..3)
            .map(|i| ForecastCache::key(&window(i as f32)))
            .collect();
        cache.insert(keys[0].clone(), &forecast(0.0), 0);
        cache.insert(keys[1].clone(), &forecast(1.0), 0);
        assert_eq!(cache.len(), 2);
        // Touch entry 0 so entry 1 is the LRU victim.
        assert!(cache.lookup(&keys[0], 0).is_some());
        cache.insert(keys[2].clone(), &forecast(2.0), 0);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&keys[1], 0).is_none(), "LRU entry survived");
        assert!(cache.lookup(&keys[0], 0).is_some());
        assert!(cache.lookup(&keys[2], 0).is_some());
        assert_eq!(cts_obs::serve::snapshot().cache_evict, 1);
        assert!(cache.bytes() <= per_entry * 2);
        // An entry alone above the cap is skipped.
        let mut tiny = ForecastCache::new(4, 100);
        tiny.insert(keys[0].clone(), &forecast(0.0), 0);
        assert!(tiny.is_empty());
    }

    #[test]
    fn reinsert_same_content_refreshes_instead_of_duplicating() {
        let mut cache = ForecastCache::new(1 << 20, 8);
        let key = ForecastCache::key(&window(5.0));
        cache.insert(key.clone(), &forecast(1.0), 0);
        cache.insert(key.clone(), &forecast(1.0), 3);
        assert_eq!(cache.len(), 1);
        // The refreshed origin (3) keeps it alive past the original TTL.
        assert!(cache.lookup(&key, 9).is_some());
        assert!(cache.lookup(&key, 11).is_none());
    }
}
